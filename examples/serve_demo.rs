//! Serve demo: run the retrieval system behind the `duo-serve` concurrent
//! serving layer — micro-batched embedding, per-client query budgets, and
//! token-bucket rate limiting — and watch the service counters.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use duo::prelude::*;
use duo::serve::ServeError;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::new(11);
    let spec = ClipSpec::tiny();

    // ------------------------------------------------------------------
    // 1. Build a small victim retrieval system (same shape as the
    //    quickstart example, minus the training loop).
    // ------------------------------------------------------------------
    println!("building retrieval system…");
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, spec, 1, 3, 1);
    let backbone = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng)?;
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let system = RetrievalSystem::build(
        backbone,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 3, threaded: false, ..Default::default() },
    )?;
    println!("  gallery: {} videos over 3 data nodes", system.gallery_len());

    // ------------------------------------------------------------------
    // 2. Put it behind the serving layer: one shared immutable system,
    //    a micro-batching embed stage, and two retrieval workers.
    // ------------------------------------------------------------------
    let service = RetrievalService::start(
        system,
        ServeConfig {
            workers: 2,
            batch_max: 4,
            batch_wait: Duration::from_millis(2),
            queue_cap: 32,
            ..ServeConfig::default()
        },
    )?;
    println!("service up: {:?}", service.config());

    // ------------------------------------------------------------------
    // 3. Four concurrent clients share the service. Three are unmetered;
    //    one runs under a hard 3-query budget plus a burst-2 rate limit,
    //    like an untrusted tenant in the paper's query-budget threat model.
    // ------------------------------------------------------------------
    let probes: Vec<Video> = ds
        .test()
        .iter()
        .filter(|id| id.class < 8)
        .take(6)
        .map(|&id| ds.video(id))
        .collect();

    std::thread::scope(|scope| {
        for c in 0..3 {
            let client = service.client(None, None);
            let probes = &probes;
            scope.spawn(move || {
                for video in probes {
                    let list = client.retrieve(video).expect("unmetered query serves");
                    assert_eq!(list.len(), 5);
                }
                println!("  client {c}: {} queries served", client.queries_used());
            });
        }
    });

    let metered = service.client(Some(3), Some(RateLimit::new(2, 50.0)));
    for (i, video) in probes.iter().enumerate() {
        match metered.retrieve(video) {
            Ok(list) => println!(
                "  metered query {i}: top-1 {:?}, budget left {:?}",
                list.first(),
                metered.budget_remaining()
            ),
            Err(ServeError::RateLimited { retry_after_ms }) => {
                println!("  metered query {i}: rate limited, retry in {retry_after_ms} ms");
                std::thread::sleep(Duration::from_millis(retry_after_ms.min(100)));
            }
            Err(ServeError::BudgetExhausted { budget }) => {
                println!("  metered query {i}: budget of {budget} exhausted — cut off");
                break;
            }
            Err(e) => return Err(e.into()),
        }
    }

    // ------------------------------------------------------------------
    // 4. Service counters: batching, latency quantiles, rejections.
    // ------------------------------------------------------------------
    let stats = service.shutdown();
    println!("\nfinal service stats:");
    println!("{stats}");
    Ok(())
}
