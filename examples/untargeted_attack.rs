//! Untargeted DUO (paper §I: "our method can be easily extended to launch
//! untargeted attacks"): no target video — the adversarial copy's
//! retrieval list is simply pushed away from the original's, with the
//! same sparse frame-pixel footprint.
//!
//! ```sh
//! cargo run --release --example untargeted_attack
//! ```

use duo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::new(77);
    let spec = ClipSpec::tiny();

    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, spec, 7, 3, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
    let victim = Backbone::new(Architecture::SlowFast, BackboneConfig::tiny(), &mut rng)?;
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 6, nodes: 2, threaded: false, ..Default::default() },
    )?;
    let mut blackbox = BlackBox::new(system);

    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 10).copied().collect();
    let (surrogate, _) =
        steal_surrogate(&mut blackbox, &ds, &probes, StealConfig::quick(), &mut rng)?;

    let v = ds.video(VideoId { class: 4, instance: 0 });
    let before = blackbox.retrieve(&v)?;

    let mut cfg = DuoConfig::for_spec(spec);
    cfg.query.iter_num_q = 80;
    let mut attack = DuoAttack::new(surrogate, cfg);
    let outcome = attack.run_untargeted(&mut blackbox, &v, &mut rng)?;

    let after = blackbox.retrieve(&outcome.adversarial)?;
    let stats = duo::attack::query_stats(&outcome).expect("query phase ran");

    println!("untargeted DUO on one video (goal: scramble its retrieval list)");
    println!("  list similarity to the original query: {:.1}% AP@m", ap_at_m(&after, &before));
    println!(
        "  objective H(R(adv), R(v)) + eta: {:.4} -> {:.4} ({} improving steps of {})",
        stats.initial, stats.final_value, stats.improvements, stats.samples
    );
    println!(
        "  footprint: {} of {} scalars ({:.2}%), PScore {:.3}, {} queries",
        outcome.spa(),
        v.tensor().len(),
        100.0 * outcome.spa() as f32 / v.tensor().len() as f32,
        outcome.pscore(),
        stats.queries
    );
    Ok(())
}
