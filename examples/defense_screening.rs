//! Deploying defenses (paper §V-D): screen incoming queries with feature
//! squeezing and Noise2Self, calibrated to a clean false-positive rate,
//! and measure how often each attack's adversarial videos are caught.
//!
//! ```sh
//! cargo run --release --example defense_screening
//! ```

use duo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::new(55);
    let spec = ClipSpec::tiny();

    let ds = SyntheticDataset::subsampled(DatasetKind::Ucf101Like, spec, 9, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
    let victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng)?;
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() },
    )?;
    let mut blackbox = BlackBox::new(system);

    // Craft a handful of adversarial examples with DUO and with TIMI.
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 10).copied().collect();
    let (surrogate, _) =
        steal_surrogate(&mut blackbox, &ds, &probes, StealConfig::quick(), &mut rng)?;
    let mut cfg = DuoConfig::for_spec(spec);
    cfg.query.iter_num_q = 30;
    let mut duo = DuoAttack::new(surrogate, cfg);

    let mut duo_advs = Vec::new();
    let mut timi_advs = Vec::new();
    let pairs = [(0u32, 5u32), (1, 6), (2, 7)];
    for &(a, b) in &pairs {
        let v = ds.video(VideoId { class: a, instance: 0 });
        let v_t = ds.video(VideoId { class: b, instance: 0 });
        duo_advs.push(duo.run(&mut blackbox, &v, &v_t, &mut rng)?.adversarial);
    }
    let mut surrogate = duo.into_surrogate();
    for &(a, b) in &pairs {
        let v = ds.video(VideoId { class: a, instance: 0 });
        let v_t = ds.video(VideoId { class: b, instance: 0 });
        timi_advs.push(
            TimiAttack::new(&mut surrogate, TimiConfig::default()).run(&v, &v_t)?.adversarial,
        );
    }

    // Calibrate each defense on clean traffic at 10% FPR, then screen.
    let clean: Vec<Video> = (0..8).map(|c| ds.video(VideoId { class: c, instance: 0 })).collect();
    let system = blackbox.system_mut();
    println!("{:<20}{:>14}{:>14}", "defense", "DUO caught", "TIMI caught");
    let defenses: [Box<dyn Defense>; 2] =
        [Box::new(FeatureSqueezing::default()), Box::new(Noise2Self::default())];
    for defense in &defenses {
        let mut harness = DetectionHarness::calibrate(system, defense.as_ref(), &clean, 0.1)?;
        let duo_rate = harness.detection_rate(system, defense.as_ref(), &duo_advs)?;
        let timi_rate = harness.detection_rate(system, defense.as_ref(), &timi_advs)?;
        println!("{:<20}{:>13.1}%{:>13.1}%", defense.name(), duo_rate, timi_rate);
    }
    println!("\n(lower = stealthier; the paper's Table X shows DUO among the least detected)");
    Ok(())
}
