//! The paper's copyright-evasion scenario (§I): a video owner checks
//! whether their copyrighted clip is protected by querying the retrieval
//! service and confirming the clip (and near-copies) appear in the top-m
//! results. The adversary publishes a DUO-perturbed copy that evades that
//! check — the copyrighted original no longer surfaces — while remaining
//! visually identical to the stolen content.
//!
//! ```sh
//! cargo run --release --example copyright_evasion
//! ```

use duo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::new(21);
    let spec = ClipSpec::tiny();

    // The platform's retrieval service indexes a gallery that contains the
    // copyrighted video.
    let ds = SyntheticDataset::subsampled(DatasetKind::Ucf101Like, spec, 3, 2, 1);
    let copyrighted = VideoId { class: 3, instance: 0 };
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
    let victim = Backbone::new(Architecture::Resnet34, BackboneConfig::tiny(), &mut rng)?;
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 6, nodes: 3, threaded: false, ..Default::default() },
    )?;
    let mut blackbox = BlackBox::new(system);

    // The pirated copy is a *re-encoded* version of the copyrighted
    // original (compression noise), as real pirated uploads are.
    let pirated = {
        let mut p = ds.video(copyrighted);
        for x in p.tensor_mut().as_mut_slice() {
            *x = (*x + 8.0 * rng.normal()).clamp(0.0, 255.0);
        }
        p.quantize();
        p
    };
    // Baseline: querying with the unmodified pirated copy surfaces the
    // copyrighted original near the top — the infringement is detected.
    let hits = blackbox.retrieve(&pirated)?;
    println!("querying with the unmodified pirated copy:");
    println!("  copyrighted video found at rank {:?}", hits.iter().position(|&id| id == copyrighted));

    // The adversary steals a surrogate and perturbs the pirated copy with
    // *untargeted* DUO — the natural fit here: the goal is simply to push
    // the copy's retrieval list away from the original's neighbourhood.
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 10).copied().collect();
    let (surrogate, _) =
        steal_surrogate(&mut blackbox, &ds, &probes, StealConfig::quick(), &mut rng)?;
    let mut cfg = DuoConfig::for_spec(spec);
    cfg.query.iter_num_q = 120;
    cfg.iter_num_h = 2;
    let mut attack = DuoAttack::new(surrogate, cfg);
    let outcome = attack.run_untargeted(&mut blackbox, &pirated, &mut rng)?;

    let evading = blackbox.retrieve(&outcome.adversarial)?;
    let rank = evading.iter().position(|&id| id == copyrighted);
    println!("\nquerying with the DUO-perturbed copy (untargeted mode):");
    match rank {
        Some(r) => println!("  copyrighted video now at rank {r} of {}", evading.len()),
        None => {
            println!("  copyrighted video NOT in the top-{} results — check evaded", evading.len())
        }
    }
    let list_similarity = ap_at_m(&evading, &hits);
    println!(
        "  retrieval neighbourhood similarity to the original query: {list_similarity:.1}% \
         (objective T: {:.3} -> {:.3})",
        outcome.loss_trajectory.first().copied().unwrap_or(f32::NAN),
        outcome.loss_trajectory.last().copied().unwrap_or(f32::NAN),
    );
    println!(
        "  note: the exact-duplicate top hit is the hardest entry to evict at this toy \
         scale; the attack's progress shows in the scrambled surrounding list"
    );
    println!(
        "  perturbation: {} of {} scalars ({:.2}%), PScore {:.3}, {} queries",
        outcome.spa(),
        pirated.tensor().len(),
        100.0 * outcome.spa() as f32 / pirated.tensor().len() as f32,
        outcome.pscore(),
        outcome.queries
    );
    Ok(())
}
