//! The paper's plagiarism scenario (§I): a social platform automatically
//! checks every submitted video for originality by retrieving similar
//! videos. A malicious user perturbs a plagiarized clip with DUO so the
//! originality check finds no match and the stolen content is published.
//! This example also compares DUO's stealth against the dense TIMI attack
//! on the same task.
//!
//! ```sh
//! cargo run --release --example plagiarism_check
//! ```

use duo::prelude::*;

/// The platform flags a submission as plagiarized when any same-class
/// gallery video appears in the retrieval list.
fn is_flagged(list: &[VideoId], class: u32) -> bool {
    list.iter().any(|id| id.class == class)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::new(33);
    let spec = ClipSpec::tiny();

    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, spec, 5, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
    let victim = Backbone::new(Architecture::Tpn, BackboneConfig::tiny(), &mut rng)?;
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 6, nodes: 2, threaded: false, ..Default::default() },
    )?;
    let mut blackbox = BlackBox::new(system);

    // The plagiarized submission is a near-copy of gallery class 2.
    let stolen_class = 2;
    let submission = ds.video(VideoId { class: stolen_class, instance: 1 });
    let flagged = is_flagged(&blackbox.retrieve(&submission)?, stolen_class);
    println!("unmodified plagiarized submission flagged: {flagged}");

    // Attacker preparation: surrogate + a target from an unrelated class.
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 10).copied().collect();
    let (surrogate, _) =
        steal_surrogate(&mut blackbox, &ds, &probes, StealConfig::quick(), &mut rng)?;
    let target = ds.video(VideoId { class: 7, instance: 0 });

    // DUO: sparse, query-rectified.
    let mut cfg = DuoConfig::for_spec(spec);
    cfg.query.iter_num_q = 50;
    let mut duo = DuoAttack::new(surrogate, cfg);
    let duo_out = duo.run(&mut blackbox, &submission, &target, &mut rng)?;
    let duo_flagged = is_flagged(&blackbox.retrieve(&duo_out.adversarial)?, stolen_class);

    // TIMI: dense transfer-only, for contrast.
    let mut surrogate = duo.into_surrogate();
    let timi_out = TimiAttack::new(&mut surrogate, TimiConfig::default())
        .run(&submission, &target)?;
    let timi_flagged = is_flagged(&blackbox.retrieve(&timi_out.adversarial)?, stolen_class);

    println!("\n{:<10}{:>10}{:>12}{:>10}{:>10}", "attack", "flagged", "Spa", "PScore", "queries");
    for (name, out, fl) in
        [("DUO", &duo_out, duo_flagged), ("TIMI", &timi_out, timi_flagged)]
    {
        println!(
            "{:<10}{:>10}{:>12}{:>10.3}{:>10}",
            name,
            fl,
            out.spa(),
            out.pscore(),
            out.queries
        );
    }
    println!(
        "\nsparsity ratio TIMI/DUO: x{:.0} (the paper reports >x100 at full scale)",
        timi_out.spa() as f32 / duo_out.spa().max(1) as f32
    );
    Ok(())
}
