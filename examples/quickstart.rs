//! Quickstart: build a victim video retrieval service, steal a surrogate,
//! and run the full DUO attack end-to-end on one (original, target) pair.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use duo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::new(7);
    let spec = ClipSpec::tiny();

    // ------------------------------------------------------------------
    // 1. The victim: an I3D feature extractor over a synthetic HMDB51-like
    //    corpus, trained with ArcFace, serving top-m retrieval from a
    //    gallery sharded over simulated data nodes.
    // ------------------------------------------------------------------
    println!("building victim retrieval service…");
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, spec, 1, 3, 1);
    let mut victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng)?;
    let mut head = LossKind::ArcFace.build_head(ds.num_classes(), 32, &mut rng);
    let train_items: Vec<VideoId> =
        ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let report = train_embedding_model(
        &mut victim,
        head.as_mut(),
        &ds,
        &train_items,
        TrainConfig::quick(),
        &mut rng,
    )?;
    println!(
        "  victim trained: loss {:.3} -> {:.3} over {} samples",
        report.initial_loss, report.final_loss, report.samples_seen
    );

    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 3, threaded: false, ..Default::default() },
    )?;
    println!("  gallery: {} videos over {} data nodes", system.gallery_len(), 3);
    let mut blackbox = BlackBox::new(system);

    // ------------------------------------------------------------------
    // 2. The attacker: steal a C3D surrogate through the black box, then
    //    run DUO (SparseTransfer → SparseQuery, looped).
    // ------------------------------------------------------------------
    println!("stealing surrogate…");
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 8).copied().collect();
    let (surrogate, steal) =
        steal_surrogate(&mut blackbox, &ds, &probes, StealConfig::quick(), &mut rng)?;
    println!(
        "  stole {} distinct videos, {} triplets, {} queries",
        steal.distinct_videos, steal.triplets_used, steal.queries
    );

    // Pick a pair whose retrieval neighbourhoods already overlap — the
    // paper's evaluation regime (its Table II "w/o attack" baselines are
    // 25–68%, never disjoint lists).
    let (v, v_t) = {
        let mut best = (VideoId { class: 0, instance: 0 }, VideoId { class: 5, instance: 0 });
        let mut best_ap = -1.0f32;
        for a in 0..4u32 {
            for b in 4..8u32 {
                let ia = VideoId { class: a, instance: 0 };
                let ib = VideoId { class: b, instance: 0 };
                let ra = blackbox.system_mut().retrieve(&ds.video(ia))?;
                let rb = blackbox.system_mut().retrieve(&ds.video(ib))?;
                let ap = ap_at_m(&ra, &rb);
                if ap > best_ap {
                    best_ap = ap;
                    best = (ia, ib);
                }
            }
        }
        println!("attack pair: class {} -> class {} (baseline AP@m {best_ap:.1}%)", best.0.class, best.1.class);
        (ds.video(best.0), ds.video(best.1)) // original ("Run") -> target ("Clap")
    };
    let mut cfg = DuoConfig::for_spec(spec);
    cfg.query.iter_num_q = 40;
    let mut attack = DuoAttack::new(surrogate, cfg);
    println!("running DUO attack…");
    let (outcome, report) = attack.run_and_evaluate(&mut blackbox, &v, &v_t, &mut rng)?;

    // ------------------------------------------------------------------
    // 3. Results: targeted precision and stealthiness.
    // ------------------------------------------------------------------
    println!("\nresults:");
    println!("  {report}");
    println!(
        "  perturbed {} of {} scalars ({:.2}%), linf {:.1}",
        outcome.spa(),
        v.tensor().len(),
        100.0 * outcome.spa() as f32 / v.tensor().len() as f32,
        outcome.perturbation.linf_norm()
    );
    println!(
        "  objective T: {:.4} -> {:.4} over {} queries",
        outcome.loss_trajectory.first().copied().unwrap_or(f32::NAN),
        outcome.loss_trajectory.last().copied().unwrap_or(f32::NAN),
        outcome.queries
    );
    Ok(())
}
