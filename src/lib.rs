//! # DUO — stealthy adversarial example attack on video retrieval systems
//!
//! Full-system reproduction of *"DUO: Stealthy Adversarial Example Attack
//! on Video Retrieval Systems via Frame-Pixel Search"* (ICDCS 2023) as a
//! Rust workspace. This facade crate re-exports the public API of every
//! subsystem; depend on `duo` and everything is in scope.
//!
//! ## Subsystems
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `duo-tensor` | dense f32 tensors, conv/pool kernels, RNG |
//! | [`nn`] | `duo-nn` | layers with manual backprop, Adam/SGD |
//! | [`video`] | `duo-video` | `Video` clips, synthetic UCF101/HMDB51 |
//! | [`models`] | `duo-models` | I3D/TPN/SlowFast/ResNet/C3D backbones, metric losses |
//! | [`retrieval`] | `duo-retrieval` | sharded gallery, top-m queries, mAP/AP@m |
//! | [`serve`] | `duo-serve` | concurrent micro-batched serving, budgets, rate limits |
//! | [`attack`] | `duo-attack` | **DUO**: SparseTransfer + SparseQuery + stealing |
//! | [`baselines`] | `duo-baselines` | Vanilla, TIMI, HEU-Nes, HEU-Sim |
//! | [`campaign`] | `duo-campaign` | attacker zoo behind one trait, fleet campaign runner |
//! | [`defenses`] | `duo-defenses` | feature squeezing, Noise2Self, detection |
//!
//! ## Quickstart
//!
//! ```no_run
//! use duo::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::new(7);
//! // 1. A victim retrieval service over a synthetic HMDB51-like corpus.
//! let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 1, 2, 1);
//! let victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng)?;
//! let system = RetrievalSystem::build(victim, &ds, ds.train(), RetrievalConfig::default())?;
//! let mut blackbox = BlackBox::new(system);
//!
//! // 2. Steal a surrogate, then run the DUO attack on a (v, v_t) pair.
//! let (surrogate, _) =
//!     steal_surrogate(&mut blackbox, &ds, ds.test(), StealConfig::quick(), &mut rng)?;
//! let mut attack = DuoAttack::new(surrogate, DuoConfig::for_spec(ClipSpec::tiny()));
//! let v = ds.video(ds.train()[0]);
//! let v_t = ds.video(ds.train()[40]);
//! let (outcome, report) = attack.run_and_evaluate(&mut blackbox, &v, &v_t, &mut rng)?;
//! println!("AP@m {:.1}%  Spa {}  queries {}", report.ap_at_m, report.spa, outcome.queries);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use duo_attack as attack;
pub use duo_baselines as baselines;
pub use duo_campaign as campaign;
pub use duo_defenses as defenses;
pub use duo_models as models;
pub use duo_nn as nn;
pub use duo_retrieval as retrieval;
pub use duo_serve as serve;
pub use duo_tensor as tensor;
pub use duo_video as video;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use duo_attack::{
        evaluate_outcome, lp_box_admm, pscore, spa, steal_surrogate, AttackGoal, AttackOutcome,
        AttackReport, DuoAttack, DuoConfig, PerturbNorm, QueryConfig, SparseMasks, SparseQuery,
        SparseTransfer, StealConfig, StealReport, TransferConfig,
    };
    pub use duo_baselines::{
        HeuConfig, HeuNesAttack, HeuSimAttack, TimiAttack, TimiConfig, VanillaAttack,
        VanillaConfig,
    };
    pub use duo_campaign::{
        run_campaign, Attacker, CampaignConfig, CampaignError, CampaignReport, ClientOutcome,
        DuoAttacker, FamilyRow, FeatureMapAttacker, FeatureMapConfig, HeuNesAttacker,
        HeuSimAttacker, Leaderboard, MetricDist, SparseRlAttacker, SparseRlConfig, TimiAttacker,
        VanillaAttacker,
    };
    pub use duo_defenses::{
        ClipSketch, Defense, DetectionHarness, DetectorAction, EnsembleDetector,
        FeatureSqueezing, Noise2Self, StreamConfig, StreamDetector, StreamVerdict,
    };
    pub use duo_models::{
        train_embedding_model, Architecture, Backbone, BackboneConfig, LossKind, TrainConfig,
        TripletLoss,
    };
    pub use duo_retrieval::{
        ap_at_m, mean_average_precision, ndcg_cooccurrence, recall_at_m, shard_seed, BlackBox,
        BreakerConfig, BreakerState, BreakerTransitions, CircuitBreaker, Coverage, DataNode,
        EpochTransition, FaultDecision, FaultPlan, FlapWindow, GalleryIndex, IndexBreakdown,
        IndexMode, IndexStats, Mutation, MutationBatch, MutationStats, NodeAnswer, NodeFault, QueryLedger,
        QueryOracle, QueryTelemetry, ResilienceConfig, RetrievalConfig, RetrievalSystem,
        Retrieved, ShardIndex,
    };
    pub use duo_serve::{
        ClientHandle, ClientStats, DefenseConfig, MutatorHandle, Purify, RateLimit,
        RetrievalService, ServeConfig, ServiceOracle, ServiceStats,
    };
    pub use duo_tensor::{Rng64, Tensor};
    pub use duo_video::{ClipSpec, DatasetKind, SyntheticDataset, Video, VideoId};
}
