//! Ablation benches for the design choices called out in DESIGN.md:
//! ADMM pixel selection vs plain top-k, informed frame selection vs
//! random, and support-restricted vs unrestricted query search.

use duo_bench::{bench_group, bench_main, Runner};
use duo_attack::{lp_box_admm, QueryConfig, SparseMasks, SparseQuery, SparseTransfer};
use duo_baselines::select_random_masks;
use duo_bench::Fixture;
use duo_tensor::{Rng64, Tensor};
use std::hint::black_box;

/// ADMM binary projection vs a plain top-k sort over the same scores.
fn bench_pixel_selection(c: &mut Runner) {
    let mut rng = Rng64::new(4001);
    let scores: Vec<f32> = (0..6144).map(|_| rng.normal()).collect();
    c.bench_function("ablation/pixel_select_lp_box_admm", |b| {
        b.iter(|| black_box(lp_box_admm(&scores, 400, 40).unwrap()))
    });
    c.bench_function("ablation/pixel_select_topk_sort", |b| {
        b.iter(|| {
            let mut order: Vec<usize> = (0..scores.len()).collect();
            order.sort_by(|&x, &y| scores[y].total_cmp(&scores[x]));
            black_box(order[..400].to_vec())
        })
    });
}

/// SparseTransfer's informed frame-pixel search vs the Vanilla random
/// selection producing the same budgets.
fn bench_mask_construction(c: &mut Runner) {
    let mut fx = Fixture::new(4002);
    let mut rng = Rng64::new(4003);
    let cfg = {
        let mut t = fx.scale.duo_config().transfer;
        t.outer_iters = 1;
        t.theta_steps = 2;
        t.admm_iters = 10;
        t
    };
    c.bench_function("ablation/masks_sparse_transfer", |b| {
        b.iter(|| {
            black_box(
                SparseTransfer::new(&mut fx.surrogate, cfg)
                    .run(&fx.pair.0, &fx.pair.1)
                    .unwrap()
                    .active_frames(),
            )
        })
    });
    c.bench_function("ablation/masks_random_selection", |b| {
        b.iter(|| {
            black_box(select_random_masks(&fx.pair.0, cfg.k, cfg.n, cfg.tau, &mut rng).active_frames())
        })
    });
}

/// Query search restricted to the sparse support vs the full pixel grid.
fn bench_query_support(c: &mut Runner) {
    let mut fx = Fixture::new(4004);
    let mut rng = Rng64::new(4005);
    let dims = fx.pair.0.tensor().dims().to_vec();
    let sparse = select_random_masks(&fx.pair.0, 300, 3, 30.0, &mut rng);
    let dense = SparseMasks {
        pixel_mask: Tensor::ones(&dims),
        frame_mask: vec![true; dims[0]],
        theta: Tensor::full(&dims, 10.0),
    };
    let cfg = QueryConfig { iter_num_q: 4, ..QueryConfig::default() };
    for (name, masks) in [("restricted", &sparse), ("unrestricted", &dense)] {
        let start = fx.pair.0.add_perturbation(&masks.phi()).unwrap();
        c.bench_function(&format!("ablation/query_support_{name}"), |b| {
            b.iter(|| {
                black_box(
                    SparseQuery::new(cfg)
                        .run(
                            &mut fx.blackbox,
                            &fx.pair.0,
                            &fx.pair.1,
                            masks,
                            start.clone(),
                            &mut rng,
                        )
                        .unwrap()
                        .queries,
                )
            })
        });
    }
}

bench_group! {
    name = benches;
    config = Runner::default().sample_size(10);
    targets = bench_pixel_selection, bench_mask_construction, bench_query_support
}
bench_main!(benches);
