//! Epoch-snapshot overhead benchmarks: what a zero-mutation query
//! workload pays for the mutable-gallery machinery.
//!
//! Two entries over the same ~2k x 64 gallery:
//!
//! * `mutate/frozen_query` — the immutable-gallery baseline: per-shard
//!   [`duo_retrieval::ShardIndex`] snapshots captured **once** before
//!   the loop, each query scanning the pinned generations directly and
//!   merging the shard answers exactly like the system fan-out does.
//! * `mutate/epoch_query` — the full
//!   [`duo_retrieval::RetrievalSystem::retrieve_resilient`] path: every
//!   query takes the epoch read gate, clones the per-shard `Arc`s for a
//!   consistent cut, and runs the resilient fan-out (no fault plans
//!   armed, so no retries — the delta over `frozen_query` is the epoch
//!   layer plus fan-out bookkeeping).
//!
//! `BENCH_thresholds.txt` bounds `epoch_query <= 1.05 * frozen_query`:
//! the gate is two uncontended atomics and one `Arc` clone per shard,
//! and if it ever grows into real work (a lock held across the scan, a
//! per-query gallery copy) this trips long before users notice.

use duo_bench::{bench_group, Runner};
use duo_models::{Architecture, Backbone, BackboneConfig};
use duo_retrieval::{GalleryIndex, RetrievalConfig, RetrievalSystem, ScoredId};
use duo_tensor::{Rng64, Tensor};
use duo_video::VideoId;
use std::hint::black_box;

const ROWS: usize = 2048;
const DIM: usize = 64;
const QUERIES: usize = 64;
const NODES: usize = 3;
const M: usize = 10;

/// A synthetic indexed gallery served feature-side only — queries enter
/// through `retrieve_resilient(&feature)`, so the backbone never runs
/// and the measurement isolates the retrieval path.
fn build_system() -> (RetrievalSystem, Vec<Tensor>) {
    let mut rng = Rng64::new(0x0E70_CBE7);
    let feature = |salt: u64| {
        let mut rng = Rng64::new(0x0E70_CBE7 ^ salt);
        Tensor::from_vec((0..DIM).map(|_| rng.uniform()).collect(), &[DIM]).unwrap()
    };
    let entries: Vec<(VideoId, Tensor)> = (0..ROWS)
        .map(|i| {
            let id = VideoId { class: (i / 64) as u32, instance: (i % 64) as u32 };
            (id, feature(i as u64))
        })
        .collect();
    let backbone =
        Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let system = RetrievalSystem::from_index(
        backbone,
        &GalleryIndex::new(entries),
        RetrievalConfig { m: M, nodes: NODES, threaded: false, ..Default::default() },
    )
    .unwrap();
    let queries = (0..QUERIES).map(|i| feature(0x9_0000 + i as u64)).collect();
    (system, queries)
}

/// The immutable baseline's merge, mirroring the system fan-out:
/// distance-then-id order, truncated to `m`.
fn merge(mut merged: Vec<ScoredId>, m: usize) -> Vec<VideoId> {
    merged.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| (a.id.class, a.id.instance).cmp(&(b.id.class, b.id.instance)))
    });
    merged.truncate(m);
    merged.into_iter().map(|s| s.id).collect()
}

fn bench_mutate(c: &mut Runner) {
    let (system, queries) = build_system();

    // Baseline: pin every shard generation once, query the snapshots.
    let snaps: Vec<_> = system.nodes().iter().map(|n| n.snapshot()).collect();
    c.bench_function("mutate/frozen_query", |bench| {
        bench.iter(|| {
            for q in &queries {
                let mut merged = Vec::new();
                for snap in &snaps {
                    merged.extend(snap.search(q.as_slice(), M));
                }
                black_box(merge(merged, M));
            }
        })
    });

    // Full epoch path: gate + per-query Arc clones + resilient fan-out.
    c.bench_function("mutate/epoch_query", |bench| {
        bench.iter(|| {
            for q in &queries {
                black_box(system.retrieve_resilient(q).unwrap().ids);
            }
        })
    });

    // Sanity: the two paths rank identically on this fault-free system.
    let q = &queries[0];
    let direct = merge(
        snaps.iter().flat_map(|s| s.search(q.as_slice(), M)).collect(),
        M,
    );
    assert_eq!(system.retrieve_resilient(q).unwrap().ids, direct);
}

/// `DUO_SCALE=smoke` (the verify-gate setting) trims the sample count so
/// the artifact still gets written without the full timing run.
fn sample_size() -> usize {
    if std::env::var("DUO_SCALE").as_deref() == Ok("smoke") {
        10
    } else {
        30
    }
}

bench_group! {
    name = benches;
    config = Runner::default().sample_size(sample_size());
    targets = bench_mutate
}

fn main() {
    let runner = benches();
    let path = duo_bench::repo_root_bench_path("mutate");
    duo_bench::write_bench_json(&path, runner.results()).expect("write BENCH_mutate.json");
    println!("wrote {}", path.display());
    runner.finish();
}
