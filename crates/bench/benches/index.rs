//! Shard-index benchmarks: the exact SoA + bounded top-m path against the
//! seed per-entry scan, the IVF latency/recall trade-off, and the
//! compressed-residual (PQ/SQ8) sweep behind `BENCH_index.json`.
//!
//! Five measurement families per gallery size:
//!
//! * `index/seed_scan_*` — the pre-index `DataNode::scan` implementation,
//!   verbatim: one `Tensor::sq_distance` (with its per-entry shape check)
//!   per entry into a `Vec`, full `O(G log G)` sort, truncate.
//! * `index/exact_soa_*` — `ShardIndex` in exact mode: flattened
//!   row-major features, check-free blocked kernel, `O(G log m)` bounded
//!   max-heap. Bit-identical results to the seed scan.
//! * `index/ivf_*` — `ShardIndex` in IVF mode at several `nprobe`
//!   settings. Approximate: each run prints its measured recall@10
//!   against the exact answer.
//! * `index/pq_*` — IVF-PQ at the headline code shape (`m_sub = dim/8`
//!   subspaces, 8-bit codes, rerank 32): LUT-driven ADC scan over the
//!   probed lists, exact f32 rescore of the top candidates.
//! * `index/sq8_*` — per-dimension 8-bit scalar quantization of the
//!   residuals, same probe/rerank settings.
//!
//! Besides wall-clock entries, the artifact carries **pseudo-metric**
//! rows in the same schema (single-sample `trimmed_mean_s`), so the
//! committed `BENCH_thresholds.txt` rules can gate the compression
//! contract, not just latency:
//!
//! * `index/{exact,pq,sq8}_bytes_per_vec_<n>` — hot-path bytes touched
//!   per scanned row ([`ShardIndex::scan_bytes_per_row`]: packed codes
//!   plus codec tables and coarse centroids amortized over the gallery;
//!   `dim * 4` for the uncompressed f32 matrix).
//! * `index/{pq,sq8}_recall_loss_<n>` — `1 − recall@10` from the index's
//!   own every-16th-query **audit** counters accumulated across the
//!   timed runs (the same machinery live services report through
//!   `ServiceStats`), so the gate exercises the production audit path.
//! * `index/unit_<n>` — the constant 1.0, the denominator the recall
//!   rules compare against (rules are ratio-only, and the scale suffix
//!   keeps smoke and full-scale artifacts from matching one-sided).
//!
//! The bench asserts audits actually fired for every compressed
//! configuration before recording the loss row, so a broken audit path
//! fails here rather than silently gating on a vacuous 0.
//!
//! The gallery is clustered (points = cluster center + small noise, the
//! regime IVF is built for, and roughly what a trained metric embedding
//! produces) and queries are perturbed gallery points. `DUO_SCALE=smoke`
//! shrinks sizes/dim for the tier-1 gate in `scripts/verify.sh`; both
//! scales write `BENCH_index.json` at the repo root for `bench_check`.

use duo_bench::{BenchResult, Runner};
use duo_retrieval::{recall_at_m, IndexMode, ScoredId, ShardIndex};
use duo_tensor::{Rng64, Tensor};
use duo_video::VideoId;
use std::hint::black_box;

const TOP_M: usize = 10;
/// Coprime with the index's 16-search audit period, so the every-16th
/// recall audits cycle through all queries instead of resampling one.
const QUERIES: usize = 17;

fn smoke() -> bool {
    std::env::var("DUO_SCALE").as_deref() == Ok("smoke")
}

fn sizes() -> Vec<usize> {
    if smoke() {
        vec![2_000]
    } else {
        vec![1_000, 10_000]
    }
}

fn dim() -> usize {
    if smoke() {
        32
    } else {
        64
    }
}

/// A clustered gallery: `n` points spread evenly over `n/50` centers,
/// each point a center plus small isotropic noise.
fn clustered_gallery(n: usize, dim: usize, seed: u64) -> Vec<(VideoId, Tensor)> {
    let mut rng = Rng64::new(seed);
    let clusters = (n / 50).max(4);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..dim).map(|_| 4.0 * rng.normal()).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % clusters];
            let data: Vec<f32> = c.iter().map(|&x| x + 0.1 * rng.normal()).collect();
            let id = VideoId { class: (i % clusters) as u32, instance: (i / clusters) as u32 };
            (id, Tensor::from_vec(data, &[dim]).unwrap())
        })
        .collect()
}

/// Queries near gallery points: what a retrieval service actually sees.
fn queries(entries: &[(VideoId, Tensor)], seed: u64) -> Vec<Tensor> {
    let mut rng = Rng64::new(seed ^ 0x51EE7);
    (0..QUERIES)
        .map(|_| {
            let (_, feat) = &entries[rng.below(entries.len())];
            let data: Vec<f32> =
                feat.as_slice().iter().map(|&x| x + 0.05 * rng.normal()).collect();
            Tensor::from_vec(data, &[feat.len()]).unwrap()
        })
        .collect()
}

/// The seed implementation of the shard scan, for the baseline bars.
fn seed_scan(entries: &[(VideoId, Tensor)], q: &Tensor, m: usize) -> Vec<ScoredId> {
    let mut scored: Vec<ScoredId> = entries
        .iter()
        .map(|(id, feat)| ScoredId { id: *id, distance: feat.sq_distance(q).unwrap() })
        .collect();
    scored.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| (a.id.class, a.id.instance).cmp(&(b.id.class, b.id.instance)))
    });
    scored.truncate(m);
    scored
}

/// Mean recall@`TOP_M` of `idx` against the exact answers.
fn measured_recall(idx: &ShardIndex, qs: &[Tensor], exact_ids: &[Vec<VideoId>]) -> f32 {
    qs.iter()
        .zip(exact_ids)
        .map(|(q, exact)| {
            let got: Vec<VideoId> =
                idx.search(q.as_slice(), TOP_M).into_iter().map(|s| s.id).collect();
            recall_at_m(&got, exact)
        })
        .sum::<f32>()
        / qs.len() as f32
}

fn main() {
    let mut runner = Runner::default().sample_size(20);
    runner.apply_cli_args();
    let d = dim();
    // Pseudo-metric rows appended to the artifact after the timed runs.
    let mut extra: Vec<BenchResult> = Vec::new();

    for n in sizes() {
        let entries = clustered_gallery(n, d, 0x1D5EED ^ n as u64);
        let qs = queries(&entries, n as u64);
        let exact = ShardIndex::build(&entries, IndexMode::Exact, 0).unwrap();

        runner.bench_function(&format!("index/seed_scan_{n}"), |bench| {
            bench.iter(|| {
                for q in &qs {
                    black_box(seed_scan(&entries, q, TOP_M));
                }
            })
        });
        runner.bench_function(&format!("index/exact_soa_{n}"), |bench| {
            bench.iter(|| {
                for q in &qs {
                    black_box(exact.search(q.as_slice(), TOP_M));
                }
            })
        });
        extra.push(BenchResult::from_times(
            &format!("index/exact_bytes_per_vec_{n}"),
            vec![exact.scan_bytes_per_row()],
        ));
        extra.push(BenchResult::from_times(&format!("index/unit_{n}"), vec![1.0]));

        let exact_ids: Vec<Vec<VideoId>> = qs
            .iter()
            .map(|q| exact.search(q.as_slice(), TOP_M).into_iter().map(|s| s.id).collect())
            .collect();

        let nlist = (n / 100).clamp(4, 64);
        for nprobe in [nlist / 8, nlist / 4].into_iter().filter(|&p| p >= 1) {
            let ivf =
                ShardIndex::build(&entries, IndexMode::ivf(nlist, nprobe), 7).unwrap();
            let recall = measured_recall(&ivf, &qs, &exact_ids);
            let name = format!("index/ivf_{n}_nlist{nlist}_nprobe{nprobe}");
            runner.bench_function(&name, |bench| {
                bench.iter(|| {
                    for q in &qs {
                        black_box(ivf.search(q.as_slice(), TOP_M));
                    }
                })
            });
            println!("  {name}: recall@{TOP_M} {recall:.4} over {QUERIES} queries");
        }

        // Compressed modes at the headline code shape: dim/8 subspaces of
        // 8-bit codes for PQ, per-dimension 8-bit residuals for SQ8, both
        // with an exact rerank tail over the top 64 ADC candidates.
        let nprobe = (nlist / 8).max(1);
        let m_sub = (d / 8).max(1);
        let compressed = [
            ("pq", IndexMode::pq(nlist, nprobe, m_sub, 8, 64)),
            ("sq8", IndexMode::sq8(nlist, nprobe, 64)),
        ];
        for (tag, mode) in compressed {
            let idx = ShardIndex::build(&entries, mode, 7).unwrap();
            let recall = measured_recall(&idx, &qs, &exact_ids);
            let name = format!("index/{tag}_{n}_nlist{nlist}_nprobe{nprobe}");
            runner.bench_function(&name, |bench| {
                bench.iter(|| {
                    for q in &qs {
                        black_box(idx.search(q.as_slice(), TOP_M));
                    }
                })
            });
            let stats = idx.stats();
            let audited = stats.recall_at_m().unwrap_or_else(|| {
                panic!("index/{tag}_{n}: no recall audits fired across the timed runs")
            });
            let bytes = idx.scan_bytes_per_row();
            println!(
                "  {name}: recall@{TOP_M} {recall:.4} (audited {audited:.4} over {} audits), \
                 {bytes:.1} scan B/vec vs {} f32 B/vec, {} reranked rows",
                stats.audit_queries,
                d * 4,
                stats.reranked_rows,
            );
            extra.push(BenchResult::from_times(
                &format!("index/{tag}_bytes_per_vec_{n}"),
                vec![bytes],
            ));
            extra.push(BenchResult::from_times(
                &format!("index/{tag}_recall_loss_{n}"),
                vec![f64::from(1.0 - audited)],
            ));
        }
    }

    let mut results = runner.results().to_vec();
    results.extend(extra);
    let path = duo_bench::repo_root_bench_path("index");
    duo_bench::write_bench_json(&path, &results).expect("write BENCH_index.json");
    println!("wrote {}", path.display());
    runner.finish();
}
