//! Shard-index benchmarks: the exact SoA + bounded top-m path against the
//! seed per-entry scan, and the IVF latency/recall trade-off.
//!
//! Three measurement families per gallery size:
//!
//! * `index/seed_scan_*` — the pre-index `DataNode::scan` implementation,
//!   verbatim: one `Tensor::sq_distance` (with its per-entry shape check)
//!   per entry into a `Vec`, full `O(G log G)` sort, truncate.
//! * `index/exact_soa_*` — `ShardIndex` in exact mode: flattened
//!   row-major features, check-free blocked kernel, `O(G log m)` bounded
//!   max-heap. Bit-identical results to the seed scan.
//! * `index/ivf_*` — `ShardIndex` in IVF mode at several `nprobe`
//!   settings. Approximate: each run prints its measured recall@10
//!   against the exact answer, which also lands in the
//!   `DUO_BENCH_JSON` sidecar rows printed at the end.
//!
//! The gallery is clustered (points = cluster center + small noise, the
//! regime IVF is built for, and roughly what a trained metric embedding
//! produces) and queries are perturbed gallery points. `DUO_SCALE=smoke`
//! shrinks sizes/dim for the tier-1 gate in `scripts/verify.sh`.

use duo_bench::{bench_group, bench_main, Runner};
use duo_retrieval::{recall_at_m, IndexMode, ScoredId, ShardIndex};
use duo_tensor::{Rng64, Tensor};
use duo_video::VideoId;
use std::hint::black_box;

const TOP_M: usize = 10;
const QUERIES: usize = 16;

fn smoke() -> bool {
    std::env::var("DUO_SCALE").as_deref() == Ok("smoke")
}

fn sizes() -> Vec<usize> {
    if smoke() {
        vec![2_000]
    } else {
        vec![1_000, 10_000]
    }
}

fn dim() -> usize {
    if smoke() {
        32
    } else {
        64
    }
}

/// A clustered gallery: `n` points spread evenly over `n/50` centers,
/// each point a center plus small isotropic noise.
fn clustered_gallery(n: usize, dim: usize, seed: u64) -> Vec<(VideoId, Tensor)> {
    let mut rng = Rng64::new(seed);
    let clusters = (n / 50).max(4);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..dim).map(|_| 4.0 * rng.normal()).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % clusters];
            let data: Vec<f32> = c.iter().map(|&x| x + 0.1 * rng.normal()).collect();
            let id = VideoId { class: (i % clusters) as u32, instance: (i / clusters) as u32 };
            (id, Tensor::from_vec(data, &[dim]).unwrap())
        })
        .collect()
}

/// Queries near gallery points: what a retrieval service actually sees.
fn queries(entries: &[(VideoId, Tensor)], seed: u64) -> Vec<Tensor> {
    let mut rng = Rng64::new(seed ^ 0x51EE7);
    (0..QUERIES)
        .map(|_| {
            let (_, feat) = &entries[rng.below(entries.len())];
            let data: Vec<f32> =
                feat.as_slice().iter().map(|&x| x + 0.05 * rng.normal()).collect();
            Tensor::from_vec(data, &[feat.len()]).unwrap()
        })
        .collect()
}

/// The seed implementation of the shard scan, for the baseline bars.
fn seed_scan(entries: &[(VideoId, Tensor)], q: &Tensor, m: usize) -> Vec<ScoredId> {
    let mut scored: Vec<ScoredId> = entries
        .iter()
        .map(|(id, feat)| ScoredId { id: *id, distance: feat.sq_distance(q).unwrap() })
        .collect();
    scored.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| (a.id.class, a.id.instance).cmp(&(b.id.class, b.id.instance)))
    });
    scored.truncate(m);
    scored
}

fn bench_index(c: &mut Runner) {
    let d = dim();
    let mut recall_rows: Vec<String> = Vec::new();
    for n in sizes() {
        let entries = clustered_gallery(n, d, 0x1D5EED ^ n as u64);
        let qs = queries(&entries, n as u64);
        let exact = ShardIndex::build(&entries, IndexMode::Exact, 0).unwrap();

        c.bench_function(&format!("index/seed_scan_{n}"), |bench| {
            bench.iter(|| {
                for q in &qs {
                    black_box(seed_scan(&entries, q, TOP_M));
                }
            })
        });
        c.bench_function(&format!("index/exact_soa_{n}"), |bench| {
            bench.iter(|| {
                for q in &qs {
                    black_box(exact.search(q.as_slice(), TOP_M));
                }
            })
        });

        let exact_ids: Vec<Vec<VideoId>> = qs
            .iter()
            .map(|q| exact.search(q.as_slice(), TOP_M).into_iter().map(|s| s.id).collect())
            .collect();

        let nlist = (n / 100).clamp(4, 64);
        for nprobe in [nlist / 8, nlist / 4].into_iter().filter(|&p| p >= 1) {
            let ivf =
                ShardIndex::build(&entries, IndexMode::ivf(nlist, nprobe), 7).unwrap();
            let recall: f32 = qs
                .iter()
                .zip(&exact_ids)
                .map(|(q, exact)| {
                    let got: Vec<VideoId> =
                        ivf.search(q.as_slice(), TOP_M).into_iter().map(|s| s.id).collect();
                    recall_at_m(&got, exact)
                })
                .sum::<f32>()
                / qs.len() as f32;
            let name = format!("index/ivf_{n}_nlist{nlist}_nprobe{nprobe}");
            c.bench_function(&name, |bench| {
                bench.iter(|| {
                    for q in &qs {
                        black_box(ivf.search(q.as_slice(), TOP_M));
                    }
                })
            });
            recall_rows.push(format!(
                "{{\"bench\":\"{name}\",\"gallery\":{n},\"nlist\":{nlist},\
                 \"nprobe\":{nprobe},\"recall_at_{TOP_M}\":{recall:.4}}}"
            ));
            println!("  {name}: recall@{TOP_M} {recall:.4} over {QUERIES} queries");
        }
    }
    println!("index recall rows:");
    for row in &recall_rows {
        println!("  {row}");
    }
}

bench_group! {
    name = benches;
    config = Runner::default().sample_size(20);
    targets = bench_index
}
bench_main!(benches);
