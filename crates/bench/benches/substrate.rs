//! Microbenchmarks of the numeric substrate the reproduction stands on.

use duo_bench::{bench_group, bench_main, Runner};
use duo_models::{Architecture, Backbone, BackboneConfig};
use duo_tensor::{im2col3d, Conv3dSpec, Rng64, Tensor};
use duo_video::{ClipSpec, SyntheticVideoGenerator};
use std::hint::black_box;

fn bench_matmul(c: &mut Runner) {
    let mut rng = Rng64::new(1);
    let a = Tensor::randn(&[64, 128], 1.0, rng.as_rng());
    let b = Tensor::randn(&[128, 64], 1.0, rng.as_rng());
    c.bench_function("substrate/matmul_64x128x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b).unwrap()))
    });
}

fn bench_im2col3d(c: &mut Runner) {
    let mut rng = Rng64::new(2);
    let x = Tensor::randn(&[3, 8, 16, 16], 1.0, rng.as_rng());
    let spec = Conv3dSpec::cubic(3, 3, (1, 2, 2), 1);
    c.bench_function("substrate/im2col3d_tiny_clip", |bench| {
        bench.iter(|| black_box(im2col3d(&x, &spec).unwrap()))
    });
}

fn bench_backbone_forward(c: &mut Runner) {
    let mut rng = Rng64::new(3);
    let video = SyntheticVideoGenerator::new(ClipSpec::tiny(), 5).generate(0, 0);
    for arch in [Architecture::C3d, Architecture::I3d, Architecture::SlowFast] {
        let model = Backbone::new(arch, BackboneConfig::tiny(), &mut rng).unwrap();
        c.bench_function(&format!("substrate/extract_{arch}"), |bench| {
            bench.iter(|| black_box(model.extract(&video).unwrap()))
        });
    }
}

fn bench_input_gradient(c: &mut Runner) {
    let mut rng = Rng64::new(4);
    let video = SyntheticVideoGenerator::new(ClipSpec::tiny(), 5).generate(0, 0);
    let mut model = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let grad = Tensor::ones(&[BackboneConfig::tiny().feature_dim]);
    c.bench_function("substrate/input_gradient_c3d", |bench| {
        bench.iter(|| {
            model.extract_training(&video).unwrap();
            black_box(model.input_gradient(&video, &grad).unwrap())
        })
    });
}

fn bench_video_generation(c: &mut Runner) {
    let generator = SyntheticVideoGenerator::new(ClipSpec::tiny(), 6);
    c.bench_function("substrate/generate_tiny_video", |bench| {
        let mut i = 0u32;
        bench.iter(|| {
            i = i.wrapping_add(1);
            black_box(generator.generate(i % 50, i))
        })
    });
}

bench_group! {
    name = benches;
    config = Runner::default().sample_size(20);
    targets = bench_matmul, bench_im2col3d, bench_backbone_forward, bench_input_gradient, bench_video_generation
}
bench_main!(benches);
