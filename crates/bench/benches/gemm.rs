//! GEMM kernel benchmarks: the blocked/threaded kernels against the seed
//! naive kernel (`matmul_into_reference`).
//!
//! For each shape the bench times:
//!
//! * `reference` — the seed's streaming i·k·j kernel, the baseline every
//!   speedup in `BENCH_gemm.json` and the README table is quoted against;
//! * `serial_blocked` — the cache-blocked micro-kernel on the calling
//!   thread (`matmul_into_serial`);
//! * `threadsN` — the packed-A 8×16 kernel dispatched over an explicit
//!   `ThreadPool` of N workers via the job rings (`matmul_into_with`,
//!   caller computes the first stripe inline), N ∈ {1, 2, 4, 8};
//! * `fused_bias` — `gemm_bias`, the tiered entry point that folds the
//!   bias add into the micro-kernel's final store instead of a second
//!   pass over the output.
//!
//! Before timing, **every** configuration's output — reference, serial,
//! each thread count, and the fused-bias path against a serial
//! gemm-then-bias-sweep — is asserted bit-identical, so the determinism
//! contract is enforced in the bench itself, not just the test suite.
//!
//! Noise control: 3 warmup iterations per entry (the first calls fault in
//! the packing workspaces and let the allocator settle) and enough
//! samples that the recorded `trimmed_mean_s` (drop the fastest and
//! slowest fifth, mean the middle) is stable against the bimodal
//! allocator behaviour the serial kernel shows on large shapes. That
//! trimmed mean is what `bench_check` compares against the committed
//! rules in `BENCH_thresholds.txt`.
//!
//! Results land in `BENCH_gemm.json` at the repo root; `DUO_SCALE=smoke`
//! shrinks shapes and samples for the verify gate. This host has a
//! single core, so the `threadsN` rows measure kernel quality plus
//! dispatch overhead, not parallel scaling — they beat `serial_blocked`
//! because the packed kernel is wider and reuses the packed panels, and
//! the ring dispatch stays cheap enough not to give that margin back.

use duo_bench::Runner;
use duo_tensor::{
    gemm_bias, matmul_into_reference, matmul_into_serial, matmul_into_with, Rng64, Tensor,
    ThreadPool,
};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn smoke() -> bool {
    std::env::var("DUO_SCALE").as_deref() == Ok("smoke")
}

/// Benched shapes `(m, k, n)`. The 256³ GEMM is the headline size; the
/// skinny 128×1024×512 shape is where panel packing pays most (k spans
/// four KC panels); 512³ stresses the full blocking hierarchy.
fn sizes() -> Vec<(usize, usize, usize)> {
    if smoke() {
        vec![(48, 64, 48), (96, 160, 80)]
    } else {
        vec![(256, 256, 256), (128, 1024, 512), (512, 512, 512)]
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn main() {
    let mut runner = Runner::default()
        .sample_size(if smoke() { 7 } else { 25 })
        .warmup_iters(3);
    runner.apply_cli_args();

    for (m, k, n) in sizes() {
        let tag = format!("{m}x{k}x{n}");
        let mut rng = Rng64::new(0x6E44 ^ ((m * 1_000_003 + k * 1_009 + n) as u64));
        let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
        let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
        let bias = Tensor::randn(&[n], 1.0, rng.as_rng());

        let mut serial = Tensor::zeros(&[m, n]);
        matmul_into_serial(&a, &b, &mut serial).unwrap();
        let want = bits(&serial);

        let mut out = Tensor::full(&[m, n], f32::NAN);
        matmul_into_reference(&a, &b, &mut out).unwrap();
        assert_eq!(want, bits(&out), "gemm/{tag} reference drifted from serial");
        runner.bench_function(&format!("gemm/{tag}/reference"), |bench| {
            bench.iter(|| matmul_into_reference(&a, &b, &mut out).unwrap())
        });

        out.as_mut_slice().fill(f32::NAN);
        matmul_into_serial(&a, &b, &mut out).unwrap();
        assert_eq!(want, bits(&out), "gemm/{tag} serial rerun drifted");
        runner.bench_function(&format!("gemm/{tag}/serial_blocked"), |bench| {
            bench.iter(|| matmul_into_serial(&a, &b, &mut out).unwrap())
        });

        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            out.as_mut_slice().fill(f32::NAN);
            matmul_into_with(&a, &b, &mut out, &pool).unwrap();
            assert_eq!(want, bits(&out), "gemm/{tag} drifted at {threads} threads");
            runner.bench_function(&format!("gemm/{tag}/threads{threads}"), |bench| {
                bench.iter(|| matmul_into_with(&a, &b, &mut out, &pool).unwrap())
            });
        }

        // Fused bias: identical bits to the unfused serial result with a
        // second bias pass on top.
        let want_bias: Vec<u32> = {
            let mut unfused = serial.clone();
            for row in unfused.as_mut_slice().chunks_exact_mut(n) {
                for (o, bv) in row.iter_mut().zip(bias.as_slice()) {
                    *o += bv;
                }
            }
            bits(&unfused)
        };
        out.as_mut_slice().fill(f32::NAN);
        gemm_bias(&a, &b, &bias, &mut out).unwrap();
        assert_eq!(want_bias, bits(&out), "gemm/{tag} fused bias drifted from gemm+sweep");
        runner.bench_function(&format!("gemm/{tag}/fused_bias"), |bench| {
            bench.iter(|| gemm_bias(&a, &b, &bias, &mut out).unwrap())
        });
    }

    // Speedup table vs the seed kernel, from the recorded trimmed means.
    let results = runner.results().to_vec();
    for (m, k, n) in sizes() {
        let tag = format!("{m}x{k}x{n}");
        let stat = |suffix: &str| {
            results
                .iter()
                .find(|r| r.name == format!("gemm/{tag}/{suffix}"))
                .map(|r| r.trimmed_mean_s)
        };
        let Some(base) = stat("reference") else { continue };
        let mut row = format!("gemm/{tag} speedup vs reference:");
        for suffix in
            ["serial_blocked", "threads1", "threads2", "threads4", "threads8", "fused_bias"]
        {
            if let Some(t) = stat(suffix) {
                row.push_str(&format!(" {suffix} {:.2}x", base / t));
            }
        }
        println!("{row}");
    }

    let path = duo_bench::repo_root_bench_path("gemm");
    duo_bench::write_bench_json(&path, &results).expect("write BENCH_gemm.json");
    println!("wrote {}", path.display());
    runner.finish();
}
