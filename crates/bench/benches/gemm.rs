//! GEMM kernel benchmarks: the PR 5 blocked/threaded kernels against the
//! seed naive kernel (`matmul_into_reference`).
//!
//! For each shape the bench times:
//!
//! * `reference` — the seed's streaming i·k·j kernel, the baseline every
//!   speedup in `BENCH_gemm.json` and the README table is quoted against;
//! * `serial_blocked` — the cache-blocked 4×16 micro-kernel on the
//!   calling thread (`matmul_into_serial`);
//! * `threadsN` — the same kernel row-partitioned over an explicit
//!   `ThreadPool` of N workers (`matmul_into_with`), N ∈ {1, 2, 4, 8}.
//!
//! Before timing, every configuration's output is asserted bit-identical
//! to the serial blocked kernel — the determinism contract is enforced in
//! the bench itself, not just the test suite. Results (median/p95 per
//! kernel size and thread count) land in `BENCH_gemm.json` at the repo
//! root; `DUO_SCALE=smoke` shrinks shapes and samples for the verify
//! gate. Note the threaded rows only beat `serial_blocked` when the host
//! actually has spare cores; on a single-core host they measure the
//! (small) partition-and-stitch overhead instead.

use duo_bench::Runner;
use duo_tensor::{
    matmul_into_reference, matmul_into_serial, matmul_into_with, Rng64, Tensor, ThreadPool,
};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn smoke() -> bool {
    std::env::var("DUO_SCALE").as_deref() == Ok("smoke")
}

/// Benched shapes `(m, k, n)`. The 256³ GEMM is the headline size; the
/// skinny 128×1024×512 shape is where panel packing pays most (k spans
/// four KC panels); 512³ stresses the full blocking hierarchy.
fn sizes() -> Vec<(usize, usize, usize)> {
    if smoke() {
        vec![(48, 64, 48), (96, 160, 80)]
    } else {
        vec![(256, 256, 256), (128, 1024, 512), (512, 512, 512)]
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn main() {
    let mut runner = Runner::default()
        .sample_size(if smoke() { 5 } else { 15 })
        .warmup_iters(1);
    runner.apply_cli_args();

    for (m, k, n) in sizes() {
        let tag = format!("{m}x{k}x{n}");
        let mut rng = Rng64::new(0x6E44 ^ ((m * 1_000_003 + k * 1_009 + n) as u64));
        let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
        let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());

        let mut serial = Tensor::zeros(&[m, n]);
        matmul_into_serial(&a, &b, &mut serial).unwrap();
        let want = bits(&serial);

        let mut out = Tensor::zeros(&[m, n]);
        runner.bench_function(&format!("gemm/{tag}/reference"), |bench| {
            bench.iter(|| matmul_into_reference(&a, &b, &mut out).unwrap())
        });
        runner.bench_function(&format!("gemm/{tag}/serial_blocked"), |bench| {
            bench.iter(|| matmul_into_serial(&a, &b, &mut out).unwrap())
        });

        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            matmul_into_with(&a, &b, &mut out, &pool).unwrap();
            assert_eq!(want, bits(&out), "gemm/{tag} drifted at {threads} threads");
            runner.bench_function(&format!("gemm/{tag}/threads{threads}"), |bench| {
                bench.iter(|| matmul_into_with(&a, &b, &mut out, &pool).unwrap())
            });
        }
    }

    // Speedup table vs the seed kernel, from the recorded medians.
    let results = runner.results().to_vec();
    for (m, k, n) in sizes() {
        let tag = format!("{m}x{k}x{n}");
        let median = |suffix: &str| {
            results
                .iter()
                .find(|r| r.name == format!("gemm/{tag}/{suffix}"))
                .map(|r| r.median_s)
        };
        let Some(base) = median("reference") else { continue };
        let mut row = format!("gemm/{tag} speedup vs reference:");
        for suffix in
            ["serial_blocked", "threads1", "threads2", "threads4", "threads8"]
        {
            if let Some(t) = median(suffix) {
                row.push_str(&format!(" {suffix} {:.2}x", base / t));
            }
        }
        println!("{row}");
    }

    let path = duo_bench::repo_root_bench_path("gemm");
    duo_bench::write_bench_json(&path, &results).expect("write BENCH_gemm.json");
    println!("wrote {}", path.display());
    runner.finish();
}
