//! One bench per paper table: times the core computation path each table
//! exercises, at smoke scale (see `duo-experiments` for the full
//! regeneration binaries).

use duo_bench::{bench_group, bench_main, Runner};
use duo_attack::{steal_surrogate, DuoAttack, SparseTransfer, StealConfig};
use duo_baselines::{TimiAttack, TimiConfig, VanillaAttack, VanillaConfig};
use duo_bench::Fixture;
use duo_defenses::{DetectionHarness, FeatureSqueezing, Noise2Self};
use duo_experiments::Scale;
use duo_models::{Architecture, LossKind};
use duo_tensor::Rng64;
use duo_video::VideoId;
use std::hint::black_box;

/// Table II: one full DUO attack plus one Vanilla attack.
fn bench_table2(c: &mut Runner) {
    let mut fx = Fixture::new(1001);
    let scale = fx.scale;
    let mut rng = Rng64::new(1002);
    c.bench_function("table2/duo_attack_one_pair", |b| {
        b.iter(|| {
            let mut cfg = scale.duo_config();
            cfg.iter_num_h = 1;
            cfg.query.iter_num_q = 5;
            let surrogate = std::mem::replace(
                &mut fx.surrogate,
                duo_models::Backbone::new(
                    Architecture::C3d,
                    scale.backbone,
                    &mut Rng64::new(0),
                )
                .unwrap(),
            );
            let mut attack = DuoAttack::new(surrogate, cfg);
            let out = attack.run(&mut fx.blackbox, &fx.pair.0, &fx.pair.1, &mut rng).unwrap();
            fx.surrogate = attack.into_surrogate();
            black_box(out.spa())
        })
    });
    c.bench_function("table2/vanilla_attack_one_pair", |b| {
        b.iter(|| {
            let cfg = VanillaConfig { k: 300, n: 4, tau: 30.0, iter_num_q: 5 };
            black_box(
                VanillaAttack::new(cfg)
                    .run(&mut fx.blackbox, &fx.pair.0, &fx.pair.1, &mut rng)
                    .unwrap()
                    .spa(),
            )
        })
    });
}

/// Table III / Figure 4: one surrogate-stealing run.
fn bench_table3(c: &mut Runner) {
    let mut fx = Fixture::new(1003);
    let mut rng = Rng64::new(1004);
    let probes: Vec<VideoId> =
        fx.dataset.test().iter().filter(|id| id.class < fx.scale.classes).copied().collect();
    c.bench_function("table3/steal_surrogate", |b| {
        b.iter(|| {
            let cfg = StealConfig { rounds: 1, max_triplets: 10, epochs: 1, ..StealConfig::quick() };
            black_box(
                steal_surrogate(&mut fx.blackbox, &fx.dataset, &probes, cfg, &mut rng)
                    .unwrap()
                    .1
                    .triplets_used,
            )
        })
    });
}

/// Table IV: one loss-head evaluation step per loss kind.
fn bench_table4(c: &mut Runner) {
    let mut rng = Rng64::new(1005);
    let dim = 32;
    let emb = duo_tensor::Tensor::randn(&[dim], 1.0, rng.as_rng())
        .scale(1.0 / (dim as f32).sqrt());
    for kind in LossKind::all() {
        let mut head = kind.build_head(51, dim, &mut rng);
        c.bench_function(&format!("table4/loss_and_grad_{kind}"), |b| {
            b.iter(|| {
                let out = head.loss_and_grad(&emb, 3).unwrap();
                head.zero_grad();
                black_box(out.0)
            })
        });
    }
}

/// Tables V–VIII: one SparseTransfer run (the component all four sweeps
/// re-run per cell).
fn bench_table5678(c: &mut Runner) {
    let mut fx = Fixture::new(1006);
    let cfg = {
        let mut t = fx.scale.duo_config().transfer;
        t.outer_iters = 1;
        t.theta_steps = 3;
        t.admm_iters = 15;
        t
    };
    c.bench_function("table5678/sparse_transfer", |b| {
        b.iter(|| {
            let masks =
                SparseTransfer::new(&mut fx.surrogate, cfg).run(&fx.pair.0, &fx.pair.1).unwrap();
            black_box(masks.phi().l0_norm())
        })
    });
}

/// Table IX: one TIMI transfer run.
fn bench_table9(c: &mut Runner) {
    let mut fx = Fixture::new(1007);
    let cfg = TimiConfig { iters: 4, ..TimiConfig::default() };
    c.bench_function("table9/timi_transfer", |b| {
        b.iter(|| {
            black_box(
                TimiAttack::new(&mut fx.surrogate, cfg).run(&fx.pair.0, &fx.pair.1).unwrap().spa(),
            )
        })
    });
}

/// Table X: one defense score per defense.
fn bench_table10(c: &mut Runner) {
    let mut fx = Fixture::new(1008);
    let video = fx.pair.0.clone();
    let squeeze = FeatureSqueezing::default();
    let n2s = Noise2Self::default();
    c.bench_function("table10/feature_squeezing_score", |b| {
        b.iter(|| {
            black_box(
                DetectionHarness::score(fx.blackbox.system_mut(), &squeeze, &video).unwrap(),
            )
        })
    });
    c.bench_function("table10/noise2self_score", |b| {
        b.iter(|| {
            black_box(DetectionHarness::score(fx.blackbox.system_mut(), &n2s, &video).unwrap())
        })
    });
}

/// Victim-world construction (amortized cost behind every table).
fn bench_world_build(c: &mut Runner) {
    let scale = Scale::smoke();
    c.bench_function("tables/build_world", |b| {
        let mut seed = 2000u64;
        b.iter(|| {
            seed += 1;
            let world = duo_experiments::build_world(
                duo_video::DatasetKind::Hmdb51Like,
                Architecture::C3d,
                LossKind::ArcFace,
                scale,
                seed,
            )
            .unwrap();
            black_box(world.system.gallery_len())
        })
    });
}

bench_group! {
    name = benches;
    config = Runner::default().sample_size(10);
    targets = bench_table2, bench_table3, bench_table4, bench_table5678, bench_table9, bench_table10, bench_world_build
}
bench_main!(benches);
