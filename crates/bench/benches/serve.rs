//! Serving-layer benchmarks: single-query vs micro-batched throughput.
//!
//! Two levels of measurement:
//!
//! * `serve/extract_*` — the raw batched forward ([`duo_nn::Layer::infer_batch`]
//!   via `Backbone::extract_batch`) against a serial `extract` loop on one
//!   thread. This isolates the compute-level amortization (shared im2col
//!   workspace, hoisted weight reshape, reused matmul scratch); where
//!   allocator pressure is low it degenerates to a parity check that the
//!   batched path never costs more than the serial loop.
//! * `serve/single_query_*` vs `serve/micro_batched_*` — the full service:
//!   rounds of lockstep bursts from four concurrent client threads against
//!   a live `duo-serve` service, with batching off (`batch_max = 1`, every
//!   request is its own backbone forward and worker handoff) and on
//!   (`batch_max = 4`, one coalesced batched forward per burst). On top of
//!   the forward amortization, batching coalesces the per-request batcher
//!   wakeups and scheduling handoffs, which is where most of the
//!   single-core win comes from.
//!
//! Experiment-scale clips (32×32×16 frames) are used so the convolution
//! lowering buffers are large enough for workspace reuse to matter — the
//! same geometry the experiment binaries serve. The service-side p50/p95
//! latency for each configuration is printed after the timing run (and
//! lands in `DUO_BENCH_JSON` like every other result).

use duo_bench::{bench_group, Runner};
use duo_defenses::{FeatureSqueezing, StreamConfig};
use duo_experiments::{build_world, Scale};
use duo_models::{Architecture, Backbone, BackboneConfig, LossKind};
use duo_retrieval::RetrievalSystem;
use duo_serve::{DefenseConfig, Purify, RetrievalService, ServeConfig};
use duo_tensor::Rng64;
use duo_video::{ClipSpec, DatasetKind, SyntheticVideoGenerator, Video};
use std::hint::black_box;
use std::sync::Barrier;
use std::time::Duration;

const CLIENTS: usize = 4;
const ROUNDS: usize = 4;

fn bench_batched_forward(c: &mut Runner) {
    let mut rng = Rng64::new(0xBA7C4);
    let model =
        Backbone::new(Architecture::I3d, BackboneConfig::experiment(), &mut rng).unwrap();
    let generator = SyntheticVideoGenerator::new(ClipSpec::experiment(), 5);
    let videos: Vec<Video> = (0..CLIENTS as u32).map(|i| generator.generate(i, i)).collect();
    let refs: Vec<&Video> = videos.iter().collect();
    c.bench_function("serve/extract_serial_4", |bench| {
        bench.iter(|| {
            for v in &refs {
                black_box(model.extract(v).unwrap());
            }
        })
    });
    c.bench_function("serve/extract_batched_4", |bench| {
        bench.iter(|| black_box(model.extract_batch(&refs, 1).unwrap()))
    });
}

fn serve_system() -> (RetrievalSystem, Vec<Video>) {
    let mut scale = Scale::smoke();
    // Experiment-scale clips and backbone: large enough convolutions that
    // the batched forward's workspace amortization is measurable.
    scale.clip = ClipSpec::experiment();
    scale.backbone = BackboneConfig::experiment();
    let world =
        build_world(DatasetKind::Hmdb51Like, Architecture::I3d, LossKind::ArcFace, scale, 0xBE_5E12)
            .expect("serve bench world builds");
    let videos: Vec<Video> = world
        .dataset
        .test()
        .iter()
        .filter(|id| id.class < scale.classes)
        .take(CLIENTS)
        .map(|&id| world.dataset.video(id))
        .collect();
    assert_eq!(videos.len(), CLIENTS, "bench corpus too small");
    (world.system, videos)
}

/// Serves `ROUNDS` bursts: all clients submit one query in lockstep, so
/// the batcher sees `CLIENTS` concurrent requests per round.
fn serve_bursts(service: &RetrievalService, videos: &[Video]) {
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        for video in videos {
            let client = service.client(None, None);
            let barrier = &barrier;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.wait();
                    client.retrieve(video).expect("bench query serves");
                }
            });
        }
    });
}

fn bench_serve(c: &mut Runner) {
    let (mut system, videos) = serve_system();
    let configs = [
        (
            "serve/single_query_4clients",
            ServeConfig { workers: 2, batch_max: 1, ..ServeConfig::default() },
        ),
        // batch_max equals the burst width, so every batch closes full —
        // the wait deadline only matters for stragglers.
        (
            "serve/micro_batched_4clients",
            ServeConfig {
                workers: 2,
                batch_max: CLIENTS,
                batch_wait: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        ),
        // The always-on blue-team admission stage on the batched path:
        // per-query sketch + detector observe under the clients lock.
        // Each burst registers fresh clients (fresh detectors) and sends
        // ROUNDS exact replays, which fire at most the self-sim vote —
        // below `flag_votes`, so the bench measures the defended fast
        // path, never the escalation ladder. Purification is off here:
        // it is an *opt-in* transform whose cost is charged against the
        // request deadline (and measured by the red_vs_blue experiment),
        // not part of the mandatory detection overhead this entry gates.
        (
            "serve/defended_4clients",
            ServeConfig {
                workers: 2,
                batch_max: CLIENTS,
                batch_wait: Duration::from_millis(5),
                defense: Some(DefenseConfig {
                    stream: StreamConfig::default(),
                    purify: Purify::None,
                }),
                ..ServeConfig::default()
            },
        ),
        // The full defended inference path with squeeze purification on —
        // reported for the latency budget discussion in EXPERIMENTS.md,
        // not threshold-gated (purification cost is a policy choice).
        (
            "serve/purified_4clients",
            ServeConfig {
                workers: 2,
                batch_max: CLIENTS,
                batch_wait: Duration::from_millis(5),
                defense: Some(DefenseConfig {
                    stream: StreamConfig::default(),
                    purify: Purify::Squeeze(FeatureSqueezing::default()),
                }),
                ..ServeConfig::default()
            },
        ),
    ];
    for (name, config) in configs {
        let service = RetrievalService::start(system, config).expect("service starts");
        c.bench_function(name, |bench| bench.iter(|| serve_bursts(&service, &videos)));
        let (recovered, stats) = service.shutdown_into();
        println!(
            "  {name}: served {} (mean batch {:.2}), service p50 {} us / p95 {} us",
            stats.served, stats.mean_batch, stats.latency_p50_us, stats.latency_p95_us
        );
        system = recovered.expect("no client handles outlive the burst");
    }
}

/// `DUO_SCALE=smoke` (the verify-gate setting) trims the sample count so
/// the artifact still gets written without the full timing run.
fn sample_size() -> usize {
    if std::env::var("DUO_SCALE").as_deref() == Ok("smoke") {
        5
    } else {
        20
    }
}

bench_group! {
    name = benches;
    config = Runner::default().sample_size(sample_size());
    targets = bench_batched_forward, bench_serve
}

fn main() {
    let runner = benches();
    let path = duo_bench::repo_root_bench_path("serve");
    duo_bench::write_bench_json(&path, runner.results()).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
    runner.finish();
}
