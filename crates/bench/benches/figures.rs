//! One bench per paper figure: the computation each figure measures.

use duo_bench::{bench_group, bench_main, Runner};
use duo_attack::{QueryConfig, SparseQuery, SparseTransfer};
use duo_bench::Fixture;
use duo_experiments::{backbone_map, victim_map};
use duo_models::{Architecture, LossKind};
use duo_tensor::Rng64;
use duo_video::DatasetKind;
use std::hint::black_box;

/// Figure 3: victim mAP evaluation over the test probes.
fn bench_fig3(c: &mut Runner) {
    let scale = duo_experiments::Scale::smoke();
    let mut world = duo_experiments::build_world(
        DatasetKind::Hmdb51Like,
        Architecture::Tpn,
        LossKind::ArcFace,
        scale,
        3001,
    )
    .unwrap();
    c.bench_function("fig3/victim_map", |b| {
        b.iter(|| black_box(victim_map(&mut world).unwrap()))
    });
}

/// Figure 4: surrogate mAP evaluation (gallery re-embedding + probes).
fn bench_fig4(c: &mut Runner) {
    let mut fx = Fixture::new(3002);
    let scale = fx.scale;
    c.bench_function("fig4/surrogate_map", |b| {
        b.iter(|| black_box(backbone_map(&mut fx.surrogate, &fx.dataset, scale).unwrap()))
    });
}

/// Figure 5: a SparseQuery rectification run (the 𝕋-vs-queries curve).
fn bench_fig5(c: &mut Runner) {
    let mut fx = Fixture::new(3003);
    let mut rng = Rng64::new(3004);
    let transfer_cfg = {
        let mut t = fx.scale.duo_config().transfer;
        t.outer_iters = 1;
        t.theta_steps = 2;
        t.admm_iters = 10;
        t
    };
    let masks = SparseTransfer::new(&mut fx.surrogate, transfer_cfg)
        .run(&fx.pair.0, &fx.pair.1)
        .unwrap();
    let start = fx.pair.0.add_perturbation(&masks.phi()).unwrap();
    let query_cfg = QueryConfig { iter_num_q: 5, ..QueryConfig::default() };
    c.bench_function("fig5/sparse_query_5_iters", |b| {
        b.iter(|| {
            black_box(
                SparseQuery::new(query_cfg)
                    .run(&mut fx.blackbox, &fx.pair.0, &fx.pair.1, &masks, start.clone(), &mut rng)
                    .unwrap()
                    .queries,
            )
        })
    });
}

bench_group! {
    name = benches;
    config = Runner::default().sample_size(10);
    targets = bench_fig3, bench_fig4, bench_fig5
}
bench_main!(benches);
