//! Chaos-layer benchmarks: what does the resilient query path cost when
//! nothing is failing?
//!
//! Two levels of measurement, both at a **zero fault rate** so the numbers
//! isolate pure machinery overhead rather than injected faults:
//!
//! * `chaos/fanout_*` — the node fan-out alone (embedding hoisted out):
//!   the pre-PR plain path (`retrieve_by_feature` under the inert default
//!   policy) against the fully armed path (`retrieve_resilient` under the
//!   hardened policy — per-node virtual deadline, retry budget, hedging,
//!   circuit breakers — with a no-op [`duo_retrieval::FaultPlan`] installed
//!   on every node). The delta is the cost of the breaker admission pass,
//!   the per-attempt fault-decision draw, and telemetry assembly.
//! * `chaos/serve_bursts_*` — the full service under lockstep client
//!   bursts, inert vs hardened, mirroring the `serve` bench's shape. This
//!   adds the deadline stamping and telemetry absorption on the worker
//!   path.
//!
//! The fan-out pair exposes the raw bookkeeping cost (tens of µs per
//! query on a tiny smoke gallery); the service pair must sit at parity —
//! end to end the machinery is lost in the embedding forward, i.e.
//! effectively free until faults actually happen.

use duo_bench::{bench_group, bench_main, Runner};
use duo_experiments::{build_world, Scale};
use duo_models::{Architecture, LossKind};
use duo_retrieval::{FaultPlan, ResilienceConfig, RetrievalSystem};
use duo_serve::{RetrievalService, ServeConfig};
use duo_tensor::Tensor;
use duo_video::{DatasetKind, Video};
use std::hint::black_box;
use std::sync::Barrier;
use std::time::Duration;

const CLIENTS: usize = 4;
const ROUNDS: usize = 4;

fn chaos_world() -> (RetrievalSystem, Vec<Video>) {
    let scale = Scale::smoke();
    let world =
        build_world(DatasetKind::Hmdb51Like, Architecture::I3d, LossKind::ArcFace, scale, 0xC405B)
            .expect("chaos bench world builds");
    let videos: Vec<Video> = world
        .dataset
        .test()
        .iter()
        .filter(|id| id.class < scale.classes)
        .take(CLIENTS)
        .map(|&id| world.dataset.video(id))
        .collect();
    assert_eq!(videos.len(), CLIENTS, "bench corpus too small");
    (world.system, videos)
}

/// Arms every node with a fault plan that never fires, plus the hardened
/// resilience policy — the zero-fault worst case for machinery overhead.
fn arm_zero_fault(system: &mut RetrievalSystem) {
    for node in system.nodes() {
        node.set_fault_plan(Some(FaultPlan::none(0xC405B)));
    }
    system.set_resilience(ResilienceConfig::hardened(0xC405B));
}

fn bench_fanout_overhead(c: &mut Runner) {
    let (mut system, videos) = chaos_world();
    let features: Vec<Tensor> =
        videos.iter().map(|v| system.embed(v).expect("embed")).collect();

    c.bench_function("chaos/fanout_plain", |bench| {
        bench.iter(|| {
            for q in &features {
                black_box(system.retrieve_by_feature(q).expect("plain query"));
            }
        })
    });

    arm_zero_fault(&mut system);
    c.bench_function("chaos/fanout_hardened_zero_faults", |bench| {
        bench.iter(|| {
            for q in &features {
                let got = system.retrieve_resilient(q).expect("resilient query");
                assert!(got.coverage.is_full(), "zero-fault run must keep full coverage");
                black_box(got.ids);
            }
        })
    });
}

/// Serves `ROUNDS` bursts: all clients submit one query in lockstep (same
/// shape as the `serve` bench, so the pairs are comparable across benches).
fn serve_bursts(service: &RetrievalService, videos: &[Video]) {
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        for video in videos {
            let client = service.client(None, None);
            let barrier = &barrier;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.wait();
                    client.retrieve(video).expect("bench query serves");
                }
            });
        }
    });
}

fn bench_serve_overhead(c: &mut Runner) {
    let (mut system, videos) = chaos_world();
    let config = ServeConfig {
        workers: 2,
        batch_max: CLIENTS,
        batch_wait: Duration::from_millis(5),
        default_deadline: Some(Duration::from_secs(30)),
        ..ServeConfig::default()
    };

    let service = RetrievalService::start(system, config.clone()).expect("service starts");
    c.bench_function("chaos/serve_bursts_plain", |bench| {
        bench.iter(|| serve_bursts(&service, &videos))
    });
    let (recovered, stats) = service.shutdown_into();
    println!(
        "  plain: served {} ({} retries, {} degraded)",
        stats.served, stats.retries, stats.degraded
    );
    system = recovered.expect("no client handles outlive the burst");

    arm_zero_fault(&mut system);
    let service = RetrievalService::start(system, config).expect("service starts");
    c.bench_function("chaos/serve_bursts_hardened_zero_faults", |bench| {
        bench.iter(|| serve_bursts(&service, &videos))
    });
    let stats = service.shutdown();
    assert_eq!(stats.degraded, 0, "zero-fault service must never degrade");
    assert_eq!(stats.deadline_misses, 0, "generous deadline must never shed");
    println!(
        "  hardened/zero-fault: served {} ({} retries, {} breaker trips)",
        stats.served, stats.retries, stats.breaker_opens
    );
}

bench_group! {
    name = benches;
    config = Runner::default().sample_size(20);
    targets = bench_fanout_overhead, bench_serve_overhead
}
bench_main!(benches);
