//! A small statistics-reporting bench runner.
//!
//! The bench targets in `benches/` time whole experiment paths at smoke
//! scale; this runner gives them warmup, a fixed sample count, and
//! robust summary statistics (median and p95 rather than plain means)
//! without any external harness. The surface deliberately mirrors the
//! criterion subset the targets were written against:
//!
//! ```no_run
//! use duo_bench::{bench_group, bench_main, Runner};
//! use std::hint::black_box;
//!
//! fn bench_sum(c: &mut Runner) {
//!     let xs: Vec<u64> = (0..1000).collect();
//!     c.bench_function("example/sum_1k", |b| b.iter(|| black_box(xs.iter().sum::<u64>())));
//! }
//!
//! bench_group! {
//!     name = benches;
//!     config = Runner::default().sample_size(20);
//!     targets = bench_sum
//! }
//! bench_main!(benches);
//! ```
//!
//! Passing a positional argument to the bench binary (`cargo bench --
//! table2`) filters benchmarks by substring. Setting `DUO_BENCH_JSON` to
//! a path writes all results there as a JSON array (via
//! [`duo_tensor::ToJson`]) for dashboards and regression tracking.

use duo_tensor::{Json, ToJson};
use std::hint::black_box;
use std::time::Instant;

/// Collects timing samples for one benchmark; handed to the closure
/// passed to [`Runner::bench_function`].
pub struct Bencher {
    warmup_iters: usize,
    samples: usize,
    times_s: Vec<f64>,
}

impl Bencher {
    /// Times `routine` once per sample after running the warmup
    /// iterations untimed. The routine's result is passed through
    /// [`black_box`] so the optimizer cannot delete the work.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        self.times_s.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times_s.push(start.elapsed().as_secs_f64());
        }
    }
}

/// Summary statistics for one benchmark, in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name (slash-separated, e.g. `table2/duo_attack_one_pair`).
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min_s: f64,
    /// Median over samples — the headline number.
    pub median_s: f64,
    /// 95th percentile — the tail the median hides.
    pub p95_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Mean of the middle samples after dropping the fastest and slowest
    /// fifth — the statistic threshold rules compare, immune to the
    /// one-off stalls (page-fault storms, allocator mode switches,
    /// neighbor noise) that poison plain means on shared hosts.
    pub trimmed_mean_s: f64,
    /// Slowest sample.
    pub max_s: f64,
}

duo_tensor::impl_to_json!(struct BenchResult { name, samples, min_s, median_s, p95_s, mean_s, trimmed_mean_s, max_s });

/// Returns the `q`-quantile (0.0–1.0) of an **ascending sorted** slice
/// using the nearest-rank method.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample set");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl BenchResult {
    /// Reduces raw per-sample times to summary statistics.
    ///
    /// # Panics
    ///
    /// Panics when `times_s` is empty (a bench whose closure never called
    /// [`Bencher::iter`]).
    pub fn from_times(name: &str, mut times_s: Vec<f64>) -> Self {
        assert!(!times_s.is_empty(), "bench `{name}` collected no samples");
        times_s.sort_by(f64::total_cmp);
        let samples = times_s.len();
        let trim = samples / 5;
        let mid = &times_s[trim..samples - trim];
        BenchResult {
            name: name.to_string(),
            samples,
            min_s: times_s[0],
            median_s: quantile(&times_s, 0.5),
            p95_s: quantile(&times_s, 0.95),
            mean_s: times_s.iter().sum::<f64>() / samples as f64,
            trimmed_mean_s: mid.iter().sum::<f64>() / mid.len() as f64,
            max_s: times_s[samples - 1],
        }
    }

    fn print(&self) {
        println!(
            "{:<44} median {:>12} p95 {:>12} ({} samples, min {}, max {})",
            self.name,
            format_duration(self.median_s),
            format_duration(self.p95_s),
            self.samples,
            format_duration(self.min_s),
            format_duration(self.max_s),
        );
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The bench harness: configuration plus accumulated results.
pub struct Runner {
    sample_size: usize,
    warmup_iters: usize,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Runner {
    /// 20 samples with 2 warmup iterations and no filter.
    fn default() -> Self {
        Runner { sample_size: 20, warmup_iters: 2, filter: None, results: Vec::new() }
    }
}

impl Runner {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample size must be positive");
        self.sample_size = samples;
        self
    }

    /// Sets the number of untimed warmup iterations per benchmark.
    pub fn warmup_iters(mut self, iters: usize) -> Self {
        self.warmup_iters = iters;
        self
    }

    /// Restricts runs to benchmarks whose name contains `filter`.
    pub fn filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Adopts a name filter from the process arguments: the first
    /// positional (non-`-`) argument, as passed by `cargo bench -- <f>`.
    /// Harness flags like `--bench` are ignored.
    pub fn apply_cli_args(&mut self) {
        if let Some(f) = std::env::args().skip(1).find(|a| !a.starts_with('-')) {
            self.filter = Some(f);
        }
    }

    /// Runs one benchmark (unless filtered out) and records its result.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            warmup_iters: self.warmup_iters,
            samples: self.sample_size,
            times_s: Vec::new(),
        };
        f(&mut bencher);
        let result = BenchResult::from_times(name, bencher.times_s);
        result.print();
        self.results.push(result);
        self
    }

    /// The results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints a footer and, when `DUO_BENCH_JSON` names a path, writes all
    /// results there as a JSON array. Called by [`crate::bench_main!`].
    pub fn finish(self) {
        println!("{} benchmark(s) run", self.results.len());
        if let Ok(path) = std::env::var("DUO_BENCH_JSON") {
            let json = Json::Array(self.results.iter().map(ToJson::to_json).collect());
            if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
                eprintln!("failed to write {path}: {e}");
            }
        }
    }
}

/// The canonical location of an emitted bench artifact: `BENCH_<tag>.json`
/// at the repository root (two levels above this crate), where
/// `scripts/verify.sh` and the `bench_check` binary look for it.
pub fn repo_root_bench_path(tag: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{tag}.json"))
}

/// Writes `results` to `path` as a JSON array of result objects
/// (the same format `DUO_BENCH_JSON` emission uses).
///
/// # Errors
///
/// Returns any I/O error from the underlying write.
pub fn write_bench_json(
    path: &std::path::Path,
    results: &[BenchResult],
) -> std::io::Result<()> {
    let json = Json::Array(results.iter().map(ToJson::to_json).collect());
    std::fs::write(path, format!("{json}\n"))
}

/// Declares a bench group: a function running each target against a
/// configured [`Runner`]. Mirrors `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() -> $crate::Runner {
            let mut runner = $config;
            runner.apply_cli_args();
            $($target(&mut runner);)+
            runner
        }
    };
    (name = $name:ident; targets = $($target:path),+ $(,)?) => {
        $crate::bench_group! {
            name = $name;
            config = $crate::Runner::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group().finish();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_uses_nearest_rank() {
        let s: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(quantile(&s, 0.5), 5.0);
        assert_eq!(quantile(&s, 0.95), 10.0);
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 10.0);
        assert_eq!(quantile(&[4.0], 0.5), 4.0);
    }

    #[test]
    fn from_times_orders_statistics() {
        let r = BenchResult::from_times("t", vec![3.0, 1.0, 2.0, 10.0]);
        assert_eq!(r.min_s, 1.0);
        assert_eq!(r.max_s, 10.0);
        assert_eq!(r.median_s, 2.0);
        assert_eq!(r.p95_s, 10.0);
        assert_eq!(r.mean_s, 4.0);
        // Under 5 samples nothing is trimmed.
        assert_eq!(r.trimmed_mean_s, 4.0);
        assert_eq!(r.samples, 4);
    }

    #[test]
    fn trimmed_mean_drops_a_fifth_from_each_end() {
        // 10 samples: trim 2 from each end, mean of the middle 6.
        let times: Vec<f64> = vec![100.0, 0.001, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.002, 200.0];
        let r = BenchResult::from_times("t", times);
        assert_eq!(r.trimmed_mean_s, (1.0 + 2.0 + 3.0 + 4.0 + 5.0 + 6.0) / 6.0);
        // The outliers still show up in the untrimmed stats.
        assert_eq!(r.max_s, 200.0);
        assert!(r.mean_s > r.trimmed_mean_s);
    }

    #[test]
    fn runner_collects_requested_sample_count() {
        let mut runner = Runner::default().sample_size(7).warmup_iters(1);
        runner.bench_function("unit/nop", |b| b.iter(|| 1 + 1));
        assert_eq!(runner.results().len(), 1);
        assert_eq!(runner.results()[0].samples, 7);
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut runner = Runner::default().sample_size(1).filter("keep");
        runner.bench_function("unit/keep_me", |b| b.iter(|| ()));
        runner.bench_function("unit/drop_me", |b| b.iter(|| ()));
        assert_eq!(runner.results().len(), 1);
        assert_eq!(runner.results()[0].name, "unit/keep_me");
    }

    #[test]
    fn results_serialize_to_json() {
        let r = BenchResult::from_times("unit/json", vec![0.5]);
        let s = r.to_json().to_string();
        assert!(s.contains("\"name\":\"unit/json\""), "{s}");
        assert!(s.contains("\"median_s\":0.5"), "{s}");
    }

    #[test]
    fn write_bench_json_round_trips_through_validator() {
        let results = vec![
            BenchResult::from_times("unit/alpha", vec![0.25, 0.5, 0.75]),
            BenchResult::from_times("unit/beta", vec![1.0]),
        ];
        let path = std::env::temp_dir().join("duo_bench_writer_test.json");
        write_bench_json(&path, &results).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(crate::validate::validate_bench_json(&text).unwrap(), 2);
    }

    #[test]
    fn repo_root_path_names_the_tagged_artifact() {
        let p = repo_root_bench_path("gemm");
        assert!(p.ends_with("BENCH_gemm.json"), "{}", p.display());
    }

    #[test]
    fn format_duration_picks_sane_units() {
        assert_eq!(format_duration(2.5), "2.500 s");
        assert_eq!(format_duration(0.0025), "2.500 ms");
        assert_eq!(format_duration(0.0000025), "2.500 µs");
        assert_eq!(format_duration(0.0000000025), "2.5 ns");
    }
}
