//! Validation for emitted bench artifacts.
//!
//! `duo_tensor::json` is writer-only by design, so this module carries
//! the one JSON *reader* in the workspace: a minimal recursive-descent
//! parser, just enough to check that `BENCH_*.json` files are well formed
//! and that every result object carries the fields dashboards and the
//! verify gate rely on. Used by the `bench_check` binary, which
//! `scripts/verify.sh` runs after the bench smokes.

/// A parsed JSON value. Objects preserve key order; numbers are `f64`
/// (bench statistics never need more).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as (key, value) pairs in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on any syntax
/// error (truncation, bad escapes, malformed numbers, trailing input).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", want as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let slice = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    slice
        .parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("malformed number `{slice}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u{hex} escape"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one whole UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("non-empty remainder");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

/// The fields every emitted [`crate::BenchResult`] object must carry.
pub const REQUIRED_NUM_FIELDS: [&str; 6] =
    ["min_s", "median_s", "p95_s", "mean_s", "trimmed_mean_s", "max_s"];

/// Validates the contents of a `BENCH_*.json` artifact: a non-empty JSON
/// array whose every element is an object with a non-empty string `name`,
/// a positive `samples` count, and finite non-negative values for all of
/// [`REQUIRED_NUM_FIELDS`]. Returns the number of results on success.
///
/// # Errors
///
/// Returns a message naming the first malformed element or missing field.
pub fn validate_bench_json(text: &str) -> Result<usize, String> {
    let doc = parse(text)?;
    let JsonValue::Arr(items) = doc else {
        return Err("top-level value must be an array of results".to_string());
    };
    if items.is_empty() {
        return Err("bench artifact contains no results".to_string());
    }
    for (i, item) in items.iter().enumerate() {
        let name = item
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("result {i}: missing string field `name`"))?;
        if name.is_empty() {
            return Err(format!("result {i}: empty `name`"));
        }
        let samples = item
            .get("samples")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("`{name}`: missing numeric field `samples`"))?;
        if samples < 1.0 || samples.fract() != 0.0 {
            return Err(format!("`{name}`: `samples` must be a positive integer"));
        }
        for field in REQUIRED_NUM_FIELDS {
            let v = item
                .get(field)
                .and_then(JsonValue::as_num)
                .ok_or_else(|| format!("`{name}`: missing numeric field `{field}`"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("`{name}`: `{field}` must be finite and >= 0"));
            }
        }
    }
    Ok(items.len())
}

// ---------------------------------------------------------------------
// Performance threshold rules
// ---------------------------------------------------------------------

/// One committed performance requirement:
/// `lhs <= factor * rhs`, both sides naming bench results and compared on
/// their [`THRESHOLD_STAT`] field.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdRule {
    /// Name of the entry under constraint (e.g. `gemm/256x256x256/threads2`).
    pub lhs: String,
    /// Maximum allowed ratio of `lhs` to `rhs`.
    pub factor: f64,
    /// Name of the baseline entry.
    pub rhs: String,
}

/// The statistic threshold rules compare: the trimmed mean, which drops
/// the fastest and slowest fifth of the samples before averaging — the
/// steadiest of the emitted statistics on a noisy shared host.
pub const THRESHOLD_STAT: &str = "trimmed_mean_s";

/// Parses a committed threshold-rule file. Each non-comment line reads
///
/// ```text
/// <lhs-name> <= <factor> * <rhs-name>
/// ```
///
/// e.g. `gemm/256x256x256/threads2 <= 0.90 * gemm/256x256x256/serial_blocked`.
/// Blank lines and `#` comments (full-line or trailing) are ignored.
///
/// # Errors
///
/// Returns a message naming the first malformed line (1-based).
pub fn parse_threshold_rules(text: &str) -> Result<Vec<ThresholdRule>, String> {
    let mut rules = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = || format!("line {}: expected `<name> <= <factor> * <name>`, got `{raw}`", lineno + 1);
        let (lhs, rest) = line.split_once("<=").ok_or_else(err)?;
        let (factor, rhs) = rest.split_once('*').ok_or_else(err)?;
        let (lhs, rhs) = (lhs.trim(), rhs.trim());
        let factor: f64 = factor.trim().parse().map_err(|_| err())?;
        if lhs.is_empty() || rhs.is_empty() || !factor.is_finite() || factor <= 0.0 {
            return Err(err());
        }
        rules.push(ThresholdRule { lhs: lhs.to_string(), factor, rhs: rhs.to_string() });
    }
    Ok(rules)
}

/// Evaluates threshold rules against a parsed artifact set, given as
/// `(name, trimmed_mean_s)` pairs. Returns the number of rules actually
/// checked: a rule referencing entries absent from `stats` on **both**
/// sides is skipped (the artifact was produced at a different scale —
/// e.g. smoke shapes vs the committed full-scale rules), but a rule with
/// exactly one side present is an error, since that means the artifact
/// and the rule file drifted apart.
///
/// # Errors
///
/// Returns a message naming the first regressing entry — which entry,
/// its measured value, the bound it violated, and the baseline — or the
/// first half-matched rule.
pub fn check_thresholds(
    rules: &[ThresholdRule],
    stats: &[(String, f64)],
) -> Result<usize, String> {
    let lookup = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    let mut checked = 0usize;
    for rule in rules {
        match (lookup(&rule.lhs), lookup(&rule.rhs)) {
            (None, None) => continue,
            (Some(_), None) => {
                return Err(format!(
                    "threshold rule references `{}` which is missing from the artifact \
                     (while `{}` is present) — rules and bench names drifted apart",
                    rule.rhs, rule.lhs
                ));
            }
            (None, Some(_)) => {
                return Err(format!(
                    "threshold rule references `{}` which is missing from the artifact \
                     (while `{}` is present) — rules and bench names drifted apart",
                    rule.lhs, rule.rhs
                ));
            }
            (Some(lhs), Some(rhs)) => {
                let bound = rule.factor * rhs;
                if lhs > bound {
                    return Err(format!(
                        "`{}` regressed: {} = {:.6}s exceeds {} × `{}` = {:.6}s \
                         (baseline {:.6}s, ratio {:.3})",
                        rule.lhs,
                        THRESHOLD_STAT,
                        lhs,
                        rule.factor,
                        rule.rhs,
                        bound,
                        rhs,
                        lhs / rhs
                    ));
                }
                checked += 1;
            }
        }
    }
    Ok(checked)
}

/// Extracts `(name, trimmed_mean_s)` pairs from a validated artifact for
/// [`check_thresholds`]. Call [`validate_bench_json`] first; this assumes
/// the shape it enforces.
pub fn threshold_stats(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = parse(text)?;
    let JsonValue::Arr(items) = doc else {
        return Err("top-level value must be an array of results".to_string());
    };
    let mut out = Vec::new();
    for item in &items {
        let name = item.get("name").and_then(JsonValue::as_str).unwrap_or_default();
        let stat = item.get(THRESHOLD_STAT).and_then(JsonValue::as_num);
        if let Some(stat) = stat {
            out.push((name.to_string(), stat));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"[{"name":"gemm/256x256x256/threads4","samples":15,
        "min_s":0.01,"median_s":0.012,"p95_s":0.013,"mean_s":0.0121,
        "trimmed_mean_s":0.0119,"max_s":0.02}]"#;

    #[test]
    fn accepts_a_well_formed_artifact() {
        assert_eq!(validate_bench_json(GOOD), Ok(1));
    }

    #[test]
    fn parser_handles_nesting_escapes_and_number_forms() {
        let v = parse(r#"{"a":[1, -2.5e3, true, null, "q\"A\n"], "b":{}}"#).unwrap();
        let arr = match v.get("a") {
            Some(JsonValue::Arr(items)) => items.clone(),
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0], JsonValue::Num(1.0));
        assert_eq!(arr[1], JsonValue::Num(-2500.0));
        assert_eq!(arr[2], JsonValue::Bool(true));
        assert_eq!(arr[3], JsonValue::Null);
        assert_eq!(arr[4], JsonValue::Str("q\"A\n".to_string()));
        assert_eq!(v.get("b"), Some(&JsonValue::Obj(vec![])));
    }

    #[test]
    fn rejects_truncated_documents() {
        assert!(parse(r#"[{"name":"x""#).is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("[] []").is_err());
        assert!(parse("[]x").is_err());
    }

    #[test]
    fn rejects_missing_required_fields() {
        let err = validate_bench_json(
            r#"[{"name":"gemm/x","samples":5,"min_s":0.1,"median_s":0.1,"p95_s":0.1,"mean_s":0.1,"max_s":0.1}]"#,
        )
        .unwrap_err();
        assert!(err.contains("trimmed_mean_s"), "{err}");
    }

    #[test]
    fn threshold_rules_parse_with_comments_and_reject_garbage() {
        let rules = parse_threshold_rules(
            "# headline gate\n\
             gemm/256x256x256/threads2 <= 0.90 * gemm/256x256x256/serial_blocked\n\
             \n\
             a/b <= 1.5 * c/d # trailing note\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].lhs, "gemm/256x256x256/threads2");
        assert_eq!(rules[0].factor, 0.90);
        assert_eq!(rules[0].rhs, "gemm/256x256x256/serial_blocked");

        assert!(parse_threshold_rules("a <= fast * b").is_err());
        assert!(parse_threshold_rules("a <= -1 * b").is_err());
        assert!(parse_threshold_rules("a 0.9 b").is_err());
        assert!(parse_threshold_rules("<= 0.9 * b").is_err());
    }

    #[test]
    fn threshold_check_passes_fails_and_names_the_regressor() {
        let rules = parse_threshold_rules("x/fast <= 0.9 * x/base").unwrap();
        let ok = vec![("x/fast".to_string(), 0.8), ("x/base".to_string(), 1.0)];
        assert_eq!(check_thresholds(&rules, &ok), Ok(1));

        let bad = vec![("x/fast".to_string(), 0.95), ("x/base".to_string(), 1.0)];
        let err = check_thresholds(&rules, &bad).unwrap_err();
        assert!(err.contains("`x/fast` regressed"), "{err}");
        assert!(err.contains("x/base"), "{err}");
    }

    #[test]
    fn threshold_check_skips_other_scales_but_rejects_half_matches() {
        let rules = parse_threshold_rules("full/t2 <= 0.9 * full/base").unwrap();
        // Smoke-scale artifact: neither side present → skipped, zero checked.
        let smoke = vec![("smoke/t2".to_string(), 1.0), ("smoke/base".to_string(), 1.0)];
        assert_eq!(check_thresholds(&rules, &smoke), Ok(0));
        // Exactly one side present → the names drifted; must fail loudly.
        let half = vec![("full/t2".to_string(), 1.0)];
        let err = check_thresholds(&rules, &half).unwrap_err();
        assert!(err.contains("drifted apart"), "{err}");
    }

    #[test]
    fn threshold_stats_extracts_the_trimmed_mean() {
        let stats = threshold_stats(GOOD).unwrap();
        assert_eq!(stats, vec![("gemm/256x256x256/threads4".to_string(), 0.0119)]);
    }

    #[test]
    fn rejects_wrong_field_types_and_empty_artifacts() {
        assert!(validate_bench_json(r#"[{"name":42}]"#).is_err());
        assert!(validate_bench_json("[]").is_err());
        assert!(validate_bench_json(r#"{"name":"not-an-array"}"#).is_err());
        let bad_samples = GOOD.replace("\"samples\":15", "\"samples\":0");
        assert!(validate_bench_json(&bad_samples).is_err());
    }

    #[test]
    fn real_runner_output_validates() {
        let r = crate::BenchResult::from_times("unit/real", vec![0.5, 0.25]);
        let json = duo_tensor::Json::Array(vec![duo_tensor::ToJson::to_json(&r)]);
        assert_eq!(validate_bench_json(&json.to_string()), Ok(1));
    }
}
