//! Gate on emitted bench artifacts.
//!
//! Checks that each `BENCH_*.json` file (default: `BENCH_gemm.json` and
//! `BENCH_serve.json` at the repo root; or explicit paths as arguments)
//! exists, parses as JSON, and carries every required result field
//! (`name`, `samples`, `min_s`, `median_s`, `p95_s`, `mean_s`, `max_s`).
//! Exits nonzero with a diagnostic on the first failure, so
//! `scripts/verify.sh` can treat a malformed or missing artifact as a
//! tier-1 break.

use duo_bench::validate::validate_bench_json;
use std::path::PathBuf;

fn main() {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let paths = if args.is_empty() {
        vec![
            duo_bench::repo_root_bench_path("gemm"),
            duo_bench::repo_root_bench_path("serve"),
        ]
    } else {
        args
    };

    let mut failed = false;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("bench_check: {}: {e}", path.display());
                failed = true;
            }
            Ok(text) => match validate_bench_json(&text) {
                Ok(count) => println!("bench_check: {}: ok ({count} results)", path.display()),
                Err(msg) => {
                    eprintln!("bench_check: {}: {msg}", path.display());
                    failed = true;
                }
            },
        }
    }
    if failed {
        std::process::exit(1);
    }
}
