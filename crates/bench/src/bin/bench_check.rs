//! Gate on emitted bench artifacts.
//!
//! Two layers, both of which must pass:
//!
//! 1. **Structure** — each `BENCH_*.json` file (default: `BENCH_gemm.json`,
//!    `BENCH_serve.json`, `BENCH_campaign.json`, `BENCH_mutate.json`,
//!    `BENCH_index.json`, and `BENCH_defense.json` at the repo root; or
//!    explicit paths as arguments) exists, parses as JSON, and carries
//!    every required result field (`name`, `samples`, `min_s`,
//!    `median_s`, `p95_s`, `mean_s`, `trimmed_mean_s`, `max_s`).
//! 2. **Performance** — the committed rules in `BENCH_thresholds.txt` at
//!    the repo root (`<name> <= <factor> * <name>` per line, compared on
//!    the trimmed mean) hold across all loaded artifacts. Rules whose
//!    entries are absent on both sides are skipped, so one rule file
//!    serves both the smoke-scale artifacts `scripts/verify.sh` emits
//!    and the committed full-scale ones; a rule matching only one side
//!    fails, because that means names drifted.
//!
//! Exits nonzero with a diagnostic naming the first failure — the
//! malformed artifact, or the regressing bench entry with its measured
//! value and the bound it broke — so `scripts/verify.sh` can treat
//! either as a tier-1 break.

use duo_bench::validate::{
    check_thresholds, parse_threshold_rules, threshold_stats, validate_bench_json,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let paths = if args.is_empty() {
        vec![
            duo_bench::repo_root_bench_path("gemm"),
            duo_bench::repo_root_bench_path("serve"),
            duo_bench::repo_root_bench_path("campaign"),
            duo_bench::repo_root_bench_path("mutate"),
            duo_bench::repo_root_bench_path("index"),
            duo_bench::repo_root_bench_path("defense"),
        ]
    } else {
        args
    };

    let mut failed = false;
    let mut stats: Vec<(String, f64)> = Vec::new();
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("bench_check: {}: {e}", path.display());
                failed = true;
            }
            Ok(text) => match validate_bench_json(&text) {
                Ok(count) => {
                    println!("bench_check: {}: ok ({count} results)", path.display());
                    stats.extend(threshold_stats(&text).unwrap_or_default());
                }
                Err(msg) => {
                    eprintln!("bench_check: {}: {msg}", path.display());
                    failed = true;
                }
            },
        }
    }

    let rules_path = duo_bench::repo_root_bench_path("gemm")
        .parent()
        .map(|root| root.join("BENCH_thresholds.txt"))
        .expect("artifact path has a parent");
    match std::fs::read_to_string(&rules_path) {
        Err(e) => {
            eprintln!("bench_check: {}: {e}", rules_path.display());
            failed = true;
        }
        Ok(text) => match parse_threshold_rules(&text) {
            Err(msg) => {
                eprintln!("bench_check: {}: {msg}", rules_path.display());
                failed = true;
            }
            Ok(rules) => match check_thresholds(&rules, &stats) {
                Ok(checked) => {
                    println!(
                        "bench_check: {}: ok ({checked} of {} rules checked at this scale)",
                        rules_path.display(),
                        rules.len()
                    );
                    if checked == 0 && !rules.is_empty() {
                        eprintln!(
                            "bench_check: no threshold rule matched any bench entry — \
                             rule names and bench names have drifted apart"
                        );
                        failed = true;
                    }
                }
                Err(msg) => {
                    eprintln!("bench_check: {msg}");
                    failed = true;
                }
            },
        },
    }

    if failed {
        std::process::exit(1);
    }
}
