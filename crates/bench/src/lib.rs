//! Shared fixtures and the bench harness for the DUO benchmark suite.
//!
//! The in-tree [`Runner`] (see [`runner`]) times the core computation of
//! every paper table and figure at smoke scale
//! (`duo_experiments::Scale::smoke`), plus the ablations called out in
//! `DESIGN.md`. Expensive world construction happens once per bench via
//! [`Fixture::new`]; the timed closures only exercise the experiment path
//! itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod validate;

pub use runner::{repo_root_bench_path, write_bench_json, BenchResult, Bencher, Runner};

use duo_attack::steal_surrogate;
use duo_experiments::{attack_pairs, build_world, Scale};
use duo_models::{Architecture, Backbone, LossKind};
use duo_retrieval::BlackBox;
use duo_tensor::Rng64;
use duo_video::{DatasetKind, SyntheticDataset, Video, VideoId};

/// A ready-to-attack smoke-scale world shared by benches.
pub struct Fixture {
    /// Black-boxed victim service.
    pub blackbox: BlackBox,
    /// The synthetic corpus.
    pub dataset: SyntheticDataset,
    /// A stolen C3D surrogate.
    pub surrogate: Backbone,
    /// One attack pair (v, v_t).
    pub pair: (Video, Video),
    /// The scale used.
    pub scale: Scale,
}

impl Fixture {
    /// Builds the fixture (I3D victim, ArcFace, HMDB51-like corpus).
    ///
    /// # Panics
    ///
    /// Panics on construction failure — benches have no error channel.
    pub fn new(seed: u64) -> Self {
        let scale = Scale::smoke();
        let world =
            build_world(DatasetKind::Hmdb51Like, Architecture::I3d, LossKind::ArcFace, scale, seed)
                .expect("smoke world builds");
        let (mut blackbox, dataset) = world.into_blackbox();
        let mut rng = Rng64::new(seed ^ 0xBE7C);
        let probes: Vec<VideoId> =
            dataset.test().iter().filter(|id| id.class < scale.classes).copied().collect();
        let (surrogate, _) = steal_surrogate(
            &mut blackbox,
            &dataset,
            &probes,
            scale.steal_config(Architecture::C3d),
            &mut rng,
        )
        .expect("surrogate steals");
        let (a, b) = attack_pairs(&dataset, scale.classes, 1, &mut rng)[0];
        let pair = (dataset.video(a), dataset.video(b));
        Fixture { blackbox, dataset, surrogate, pair, scale }
    }
}
