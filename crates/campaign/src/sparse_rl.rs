//! Seeded RL-style sparse key-frame/patch agent (after the sparse
//! black-box video-attack agent of arXiv 2001.03754).
//!
//! The agent learns *where to perturb*: it keeps per-frame and per-pixel
//! selection logits, samples a sparse support each episode via seeded
//! Gumbel top-k, scores the resulting adversarial video through the
//! oracle, and reinforces the logits of selections that improved the
//! retrieval objective (REINFORCE with a running-mean baseline). The
//! perturbation magnitudes themselves stay fixed at signed τ — the
//! policy's only job is frame/patch selection, which is what keeps the
//! attack's Spa at exactly `k · n`.

use crate::Attacker;
use duo_attack::{AttackOutcome, Result};
use duo_retrieval::{ndcg_cooccurrence, QueryOracle};
use duo_tensor::Rng64;
use duo_video::{Video, VideoId};

/// Configuration of the sparse RL agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseRlConfig {
    /// Pixels perturbed per selected frame.
    pub k: usize,
    /// Number of selected key frames.
    pub n: usize,
    /// Per-pixel perturbation bound τ.
    pub tau: f32,
    /// Episodes (one oracle query each, plus two up-front list queries).
    pub episodes: usize,
    /// Policy learning rate on the selection logits.
    pub lr: f32,
    /// Margin constant η of the retrieval objective.
    pub eta: f32,
}
duo_tensor::impl_to_json!(struct SparseRlConfig { k, n, tau, episodes, lr, eta });

impl Default for SparseRlConfig {
    fn default() -> Self {
        SparseRlConfig { k: 800, n: 4, tau: 30.0, episodes: 20, lr: 0.8, eta: 1.0 }
    }
}

/// The RL-style sparse key-frame/patch agent.
#[derive(Debug, Clone)]
pub struct SparseRlAttacker {
    config: SparseRlConfig,
}

impl SparseRlAttacker {
    /// Creates the agent.
    pub fn new(config: SparseRlConfig) -> Self {
        SparseRlAttacker { config }
    }
}

/// Indices of the `top` largest perturbed scores (`logit + Gumbel noise`),
/// ascending by index for deterministic application order.
fn gumbel_top(logits: &[f32], top: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut scored: Vec<(f32, usize)> = logits
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            // Gumbel(0,1) noise: -ln(-ln(u)), u clamped away from 0 and 1.
            let u = rng.uniform().clamp(1e-7, 1.0 - 1e-7);
            (l - (-(u.ln())).ln(), i)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut idx: Vec<usize> = scored.iter().take(top.min(logits.len())).map(|&(_, i)| i).collect();
    idx.sort_unstable();
    idx
}

impl Attacker for SparseRlAttacker {
    fn name(&self) -> &'static str {
        "sparse_rl"
    }

    fn attack(
        &mut self,
        oracle: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        let cfg = self.config;
        let queries_before = oracle.queries_used();
        let dims = v.tensor().dims().to_vec();
        let frames = dims[0];
        let per_frame: usize = dims[1..].iter().product();
        let n = cfg.n.min(frames).max(1);
        let k = cfg.k.min(per_frame).max(1);

        let r_v = oracle.retrieve(v)?;
        let r_t = oracle.retrieve(v_t)?;
        let objective = |list: &[VideoId]| -> f32 {
            ndcg_cooccurrence(list, &r_v) - ndcg_cooccurrence(list, &r_t) + cfg.eta
        };

        // Selection policy: independent logits per frame and per in-frame
        // pixel position, plus a fixed signed direction per position so
        // reinforced selections always reapply the same perturbation.
        let mut frame_logits = vec![0.0f32; frames];
        let mut pixel_logits = vec![0.0f32; per_frame];
        let signs: Vec<f32> =
            (0..per_frame).map(|_| if rng.uniform() < 0.5 { -1.0 } else { 1.0 }).collect();
        let original = v.tensor().as_slice().to_vec();

        let mut best: Option<(f32, Video)> = None;
        let mut baseline = 0.0f32;
        let mut trajectory = Vec::with_capacity(cfg.episodes);

        for episode in 0..cfg.episodes {
            if oracle.budget_remaining() == Some(0) {
                break;
            }
            let sel_frames = gumbel_top(&frame_logits, n, rng);
            let sel_pixels = gumbel_top(&pixel_logits, k, rng);

            let mut candidate = v.clone();
            let cv = candidate.tensor_mut().as_mut_slice();
            for &f in &sel_frames {
                for &p in &sel_pixels {
                    let idx = f * per_frame + p;
                    let perturbed = original[idx] + cfg.tau * signs[p];
                    cv[idx] = perturbed.clamp(0.0, 255.0);
                }
            }

            let t_cur = objective(&oracle.retrieve(&candidate)?);
            trajectory.push(t_cur);
            // REINFORCE: reward is the *decrease* of the objective
            // relative to the running baseline.
            let reward = -t_cur;
            let advantage = if episode == 0 { 0.0 } else { reward - baseline };
            baseline = if episode == 0 {
                reward
            } else {
                0.9 * baseline + 0.1 * reward
            };
            for &f in &sel_frames {
                frame_logits[f] += cfg.lr * advantage;
            }
            for &p in &sel_pixels {
                pixel_logits[p] += cfg.lr * advantage;
            }

            if best.as_ref().is_none_or(|(t_best, _)| t_cur < *t_best) {
                best = Some((t_cur, candidate));
            }
        }

        let adversarial = match best {
            Some((_, video)) => video,
            // Budget spent before any episode: degenerate identity outcome.
            None => v.clone(),
        };
        let perturbation = adversarial.perturbation_from(v)?;
        Ok(AttackOutcome {
            adversarial,
            perturbation,
            queries: oracle.queries_used() - queries_before,
            loss_trajectory: trajectory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::blackbox;

    fn quick() -> SparseRlConfig {
        SparseRlConfig { k: 50, n: 2, tau: 30.0, episodes: 5, lr: 0.8, eta: 1.0 }
    }

    #[test]
    fn support_is_bounded_by_k_times_n() {
        let (mut bb, v, vt) = blackbox(41);
        let cfg = quick();
        let outcome =
            SparseRlAttacker::new(cfg).attack(&mut bb, &v, &vt, &mut Rng64::new(5)).unwrap();
        assert!(
            outcome.spa() <= cfg.k * cfg.n,
            "Spa {} exceeds k*n = {}",
            outcome.spa(),
            cfg.k * cfg.n
        );
        assert!(outcome.perturbation.linf_norm() <= cfg.tau + 1e-3);
    }

    #[test]
    fn queries_are_two_plus_one_per_episode() {
        let (mut bb, v, vt) = blackbox(42);
        let cfg = quick();
        let outcome =
            SparseRlAttacker::new(cfg).attack(&mut bb, &v, &vt, &mut Rng64::new(6)).unwrap();
        assert_eq!(outcome.queries, 2 + cfg.episodes as u64);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let (mut bb1, v, vt) = blackbox(43);
        let (mut bb2, _, _) = blackbox(43);
        let cfg = quick();
        let o1 = SparseRlAttacker::new(cfg).attack(&mut bb1, &v, &vt, &mut Rng64::new(7)).unwrap();
        let o2 = SparseRlAttacker::new(cfg).attack(&mut bb2, &v, &vt, &mut Rng64::new(7)).unwrap();
        assert_eq!(o1.perturbation, o2.perturbation);
        assert_eq!(o1.loss_trajectory, o2.loss_trajectory);
    }

    #[test]
    fn respects_a_hard_budget() {
        let (bb, v, vt) = blackbox(44);
        let sys = bb.into_inner();
        let mut bb = duo_retrieval::BlackBox::with_budget(sys, 4);
        let cfg = quick();
        let outcome =
            SparseRlAttacker::new(cfg).attack(&mut bb, &v, &vt, &mut Rng64::new(8)).unwrap();
        assert!(outcome.queries <= 4);
    }
}
