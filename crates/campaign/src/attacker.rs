//! The unified [`Attacker`] trait and adapters for the existing attack
//! families (DUO, Vanilla, TIMI, HEU-Nes, HEU-Sim).

use duo_attack::{AttackOutcome, DuoAttack, DuoConfig, Result};
use duo_baselines::{HeuConfig, HeuNesAttack, HeuSimAttack, TimiAttack, TimiConfig, VanillaAttack, VanillaConfig};
use duo_models::Backbone;
use duo_retrieval::QueryOracle;
use duo_tensor::Rng64;
use duo_video::Video;

/// One attack family, behind one seeded black-box interface.
///
/// Every attack in the workspace — query-driven or pure transfer — runs
/// the same way: given oracle access to the victim, an attack pair
/// `(v, v_t)` and a private RNG stream, produce an
/// [`AttackOutcome`]. The contract the fleet runner depends on:
///
/// * **Seeded.** All randomness comes from the passed `rng`; two calls
///   with equal inputs and equal RNG state produce identical outcomes.
/// * **Budget-honest.** `outcome.queries` equals the number of oracle
///   queries *charged* during the call (zero for transfer-only
///   families). Attacks must survive budget exhaustion gracefully —
///   return the best adversarial video found so far rather than erroring
///   — whenever they can detect it via
///   [`QueryOracle::budget_remaining`].
/// * **Owned state.** An attacker owns whatever model state it needs
///   (e.g. a surrogate clone), so a fleet of attackers can run on
///   concurrent threads without sharing mutable state.
pub trait Attacker: Send {
    /// Short family name used in leaderboard rows (e.g. `"duo"`).
    fn name(&self) -> &'static str;

    /// Whether the family never queries the service (pure transfer).
    fn is_zero_query(&self) -> bool {
        false
    }

    /// Runs the attack on the pair `(v, v_t)` against `oracle`.
    ///
    /// # Errors
    ///
    /// Propagates surrogate evaluation and retrieval failures.
    fn attack(
        &mut self,
        oracle: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome>;
}

// ---------------------------------------------------------------------
// DUO
// ---------------------------------------------------------------------

/// [`Attacker`] adapter for the full DUO pipeline (frame-pixel dual
/// search on an owned surrogate + SimBA-style query rectification).
pub struct DuoAttacker {
    attack: DuoAttack,
}

impl DuoAttacker {
    /// Binds DUO to an owned surrogate copy.
    pub fn new(surrogate: Backbone, config: DuoConfig) -> Self {
        DuoAttacker { attack: DuoAttack::new(surrogate, config) }
    }
}

impl Attacker for DuoAttacker {
    fn name(&self) -> &'static str {
        "duo"
    }

    fn attack(
        &mut self,
        oracle: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        self.attack.run(oracle, v, v_t, rng)
    }
}

// ---------------------------------------------------------------------
// Vanilla
// ---------------------------------------------------------------------

/// [`Attacker`] adapter for the Vanilla baseline (random sparse support
/// + SimBA rectification).
#[derive(Debug, Clone, Copy)]
pub struct VanillaAttacker {
    attack: VanillaAttack,
}

impl VanillaAttacker {
    /// Creates the adapter.
    pub fn new(config: VanillaConfig) -> Self {
        VanillaAttacker { attack: VanillaAttack::new(config) }
    }
}

impl Attacker for VanillaAttacker {
    fn name(&self) -> &'static str {
        "vanilla"
    }

    fn attack(
        &mut self,
        oracle: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        self.attack.run(oracle, v, v_t, rng)
    }
}

// ---------------------------------------------------------------------
// TIMI
// ---------------------------------------------------------------------

/// [`Attacker`] adapter for TIMI: dense momentum-iterative transfer on
/// an owned surrogate. Never touches the oracle.
pub struct TimiAttacker {
    surrogate: Backbone,
    config: TimiConfig,
}

impl TimiAttacker {
    /// Binds TIMI to an owned surrogate copy.
    pub fn new(surrogate: Backbone, config: TimiConfig) -> Self {
        TimiAttacker { surrogate, config }
    }
}

impl Attacker for TimiAttacker {
    fn name(&self) -> &'static str {
        "timi"
    }

    fn is_zero_query(&self) -> bool {
        true
    }

    fn attack(
        &mut self,
        _oracle: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        _rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        TimiAttack::new(&mut self.surrogate, self.config).run(v, v_t)
    }
}

// ---------------------------------------------------------------------
// HEU-Nes / HEU-Sim
// ---------------------------------------------------------------------

/// [`Attacker`] adapter for HEU-Nes (motion-saliency support + NES
/// gradient estimation on the black box).
#[derive(Debug, Clone, Copy)]
pub struct HeuNesAttacker {
    attack: HeuNesAttack,
}

impl HeuNesAttacker {
    /// Creates the adapter.
    pub fn new(config: HeuConfig) -> Self {
        HeuNesAttacker { attack: HeuNesAttack::new(config) }
    }
}

impl Attacker for HeuNesAttacker {
    fn name(&self) -> &'static str {
        "heu_nes"
    }

    fn attack(
        &mut self,
        oracle: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        self.attack.run(oracle, v, v_t, rng)
    }
}

/// [`Attacker`] adapter for HEU-Sim (motion-saliency support + SimBA
/// coordinate descent).
#[derive(Debug, Clone, Copy)]
pub struct HeuSimAttacker {
    attack: HeuSimAttack,
}

impl HeuSimAttacker {
    /// Creates the adapter.
    pub fn new(config: HeuConfig) -> Self {
        HeuSimAttacker { attack: HeuSimAttack::new(config) }
    }
}

impl Attacker for HeuSimAttacker {
    fn name(&self) -> &'static str {
        "heu_sim"
    }

    fn attack(
        &mut self,
        oracle: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        self.attack.run(oracle, v, v_t, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{attack_pair, blackbox};
    use duo_tensor::Rng64;

    #[test]
    fn vanilla_adapter_matches_direct_run() {
        let (mut bb1, v, vt) = blackbox(31);
        let (mut bb2, _, _) = blackbox(31);
        let cfg = VanillaConfig { k: 100, n: 2, tau: 30.0, iter_num_q: 5 };
        let direct = VanillaAttack::new(cfg).run(&mut bb1, &v, &vt, &mut Rng64::new(3)).unwrap();
        let adapted = VanillaAttacker::new(cfg)
            .attack(&mut bb2, &v, &vt, &mut Rng64::new(3))
            .unwrap();
        assert_eq!(direct.perturbation, adapted.perturbation);
        assert_eq!(direct.queries, adapted.queries);
    }

    #[test]
    fn timi_adapter_never_queries_the_oracle() {
        let (mut bb, v, vt) = blackbox(32);
        let mut rng = Rng64::new(4);
        let surrogate = crate::test_support::surrogate(33);
        let cfg = TimiConfig { iters: 2, ..TimiConfig::default() };
        let mut attacker = TimiAttacker::new(surrogate, cfg);
        assert!(attacker.is_zero_query());
        let outcome = attacker.attack(&mut bb, &v, &vt, &mut rng).unwrap();
        assert_eq!(outcome.queries, 0);
        assert_eq!(bb.queries_used(), 0, "TIMI must not touch the service");
    }

    #[test]
    fn adapters_report_distinct_family_names() {
        let (v, _vt) = attack_pair(35);
        let _ = v;
        let names = [
            VanillaAttacker::new(VanillaConfig::default()).name(),
            HeuNesAttacker::new(HeuConfig::default()).name(),
            HeuSimAttacker::new(HeuConfig::default()).name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
