//! duo-campaign: the attacker zoo behind one trait, and the fleet runner
//! that drives it through a live `duo-serve` service.
//!
//! The paper's threat model is *many independent black-box clients*
//! probing a shared retrieval service. This crate makes that scenario a
//! subsystem:
//!
//! * [`Attacker`] — one seeded interface over every attack family in the
//!   workspace. Adapters wrap DUO, Vanilla, TIMI and the HEU pair;
//!   [`SparseRlAttacker`] (RL-style sparse key-frame/patch agent, after
//!   arXiv 2001.03754) and [`FeatureMapAttacker`] (zero-query
//!   feature-map transfer in the FeatureFool style, arXiv 2510.18362)
//!   are implemented here.
//! * [`run_campaign`] — spawns N concurrent attack clients (std
//!   threads), each with its own forked [`duo_tensor::Rng64`] stream,
//!   its own query-budget ledger on the service, and its own surrogate
//!   clone, then aggregates a deterministic [`Leaderboard`].
//! * [`Leaderboard::to_bench_json`] — emits the per-family metric
//!   distributions in the exact `BENCH_*.json` schema `bench_check`
//!   validates, so campaign regressions trip thresholds like GEMM ones.
//!
//! Determinism contract: with the same seed, service gallery, pairs and
//! client count, two campaign runs produce **byte-identical**
//! leaderboard JSON — thread interleaving never leaks into the artifact
//! because every client's query stream is independent and the service's
//! retrieval lists are bit-identical regardless of batching.
//!
//! # Example
//!
//! ```no_run
//! use duo_campaign::{run_campaign, CampaignConfig, VanillaAttacker};
//! use duo_baselines::VanillaConfig;
//! # fn f(service: &duo_serve::RetrievalService,
//! #      pairs: Vec<(duo_video::Video, duo_video::Video)>)
//! #      -> Result<(), duo_campaign::CampaignError> {
//! let config = CampaignConfig { clients: 8, per_client_budget: 200, seed: 7, max_retries: 16 };
//! let report = run_campaign(
//!     service,
//!     |_client| Box::new(VanillaAttacker::new(VanillaConfig::default())),
//!     &pairs,
//!     &config,
//! )?;
//! println!("{}", report.leaderboard.to_bench_json());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attacker;
mod feature_map;
mod fleet;
mod sparse_rl;
#[cfg(test)]
mod test_support;

pub use attacker::{
    Attacker, DuoAttacker, HeuNesAttacker, HeuSimAttacker, TimiAttacker, VanillaAttacker,
};
pub use feature_map::{FeatureMapAttacker, FeatureMapConfig};
pub use fleet::{
    run_campaign, CampaignConfig, CampaignError, CampaignReport, ClientOutcome, FamilyRow,
    Leaderboard, MetricDist,
};
pub use sparse_rl::{SparseRlAttacker, SparseRlConfig};
