//! Zero-query feature-map attack in the FeatureFool style (arXiv
//! 2510.18362): drive the *surrogate's* feature map toward the target's,
//! never touching the victim service.
//!
//! Where TIMI perturbs every scalar of the clip, this attack first reads
//! the surrogate's input-gradient saliency to pick a sparse support
//! (top-`n` frames by gradient mass, top-`k` positions inside them),
//! then runs momentum-iterative signed descent on the feature-space
//! distance restricted to that support. The result is a *stealthy*
//! transfer attack: sparse like DUO, query-free like TIMI.

use crate::Attacker;
use duo_attack::{AttackOutcome, Result};
use duo_models::Backbone;
use duo_retrieval::QueryOracle;
use duo_tensor::{Rng64, Tensor};
use duo_video::Video;

/// Configuration of the feature-map attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureMapConfig {
    /// Pixels perturbed per selected frame.
    pub k: usize,
    /// Number of selected frames.
    pub n: usize,
    /// Per-pixel perturbation bound τ.
    pub tau: f32,
    /// Momentum-descent iterations on the surrogate.
    pub iters: usize,
    /// Momentum decay μ.
    pub mu: f32,
}
duo_tensor::impl_to_json!(struct FeatureMapConfig { k, n, tau, iters, mu });

impl Default for FeatureMapConfig {
    fn default() -> Self {
        FeatureMapConfig { k: 3_000, n: 4, tau: 30.0, iters: 8, mu: 1.0 }
    }
}

/// The zero-query feature-map attack, bound to an owned surrogate.
pub struct FeatureMapAttacker {
    surrogate: Backbone,
    config: FeatureMapConfig,
}

impl FeatureMapAttacker {
    /// Binds the attack to an owned surrogate copy.
    pub fn new(surrogate: Backbone, config: FeatureMapConfig) -> Self {
        FeatureMapAttacker { surrogate, config }
    }

    /// Consumes the attacker, returning the surrogate.
    pub fn into_surrogate(self) -> Backbone {
        self.surrogate
    }
}

/// Flat support indices: top-`n` frames by per-frame absolute gradient
/// mass, then the top-`k` positions by |gradient| inside each selected
/// frame. Ties break toward the lower index, so selection is fully
/// deterministic.
fn saliency_support(grad: &Tensor, k: usize, n: usize) -> Vec<usize> {
    let dims = grad.dims();
    let frames = dims[0];
    let per_frame: usize = dims[1..].iter().product();
    let gv = grad.as_slice();

    let mut frame_mass: Vec<(f32, usize)> = (0..frames)
        .map(|f| (gv[f * per_frame..(f + 1) * per_frame].iter().map(|g| g.abs()).sum(), f))
        .collect();
    frame_mass.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut support = Vec::with_capacity(k.min(per_frame) * n.min(frames));
    for &(_, f) in frame_mass.iter().take(n.min(frames).max(1)) {
        let base = f * per_frame;
        let mut pos: Vec<(f32, usize)> =
            (0..per_frame).map(|p| (gv[base + p].abs(), p)).collect();
        pos.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, p) in pos.iter().take(k.min(per_frame).max(1)) {
            support.push(base + p);
        }
    }
    support.sort_unstable();
    support
}

impl Attacker for FeatureMapAttacker {
    fn name(&self) -> &'static str {
        "feature_map"
    }

    fn is_zero_query(&self) -> bool {
        true
    }

    fn attack(
        &mut self,
        _oracle: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        _rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        let cfg = self.config;
        let target_feat = self.surrogate.extract(v_t)?;

        // Saliency pass: the input gradient of the feature-space distance
        // at the clean video picks the sparse support.
        let feat = self.surrogate.extract_training(v)?;
        let diff = feat.sub(&target_feat)?;
        let grad = self.surrogate.input_gradient(v, &diff.scale(2.0))?;
        let support = saliency_support(&grad, cfg.k, cfg.n);

        // Momentum-iterative signed descent restricted to the support,
        // projected into the τ-ball around v intersected with [0, 255].
        let alpha = cfg.tau / cfg.iters.max(1) as f32 * 1.5;
        let mut v_adv = v.clone();
        let mut momentum = vec![0.0f32; support.len()];
        let mut trajectory = Vec::with_capacity(cfg.iters);
        let original = v.tensor().as_slice().to_vec();
        for _ in 0..cfg.iters {
            let feat = self.surrogate.extract_training(&v_adv)?;
            let diff = feat.sub(&target_feat)?;
            trajectory.push(diff.dot(&diff)?);
            let grad = self.surrogate.input_gradient(&v_adv, &diff.scale(2.0))?;
            let gv = grad.as_slice();
            let l1: f32 = support.iter().map(|&i| gv[i].abs()).sum::<f32>().max(1e-12);
            let av = v_adv.tensor_mut().as_mut_slice();
            for (m, &idx) in momentum.iter_mut().zip(&support) {
                *m = cfg.mu * *m + gv[idx] / l1;
                let lo = (original[idx] - cfg.tau).max(0.0);
                let hi = (original[idx] + cfg.tau).min(255.0);
                av[idx] = (av[idx] - alpha * m.signum()).clamp(lo, hi);
            }
        }

        let perturbation = v_adv.perturbation_from(v)?;
        Ok(AttackOutcome { adversarial: v_adv, perturbation, queries: 0, loss_trajectory: trajectory })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{attack_pair, surrogate, PanickingOracle};

    fn quick() -> FeatureMapConfig {
        FeatureMapConfig { k: 60, n: 2, tau: 30.0, iters: 3, mu: 1.0 }
    }

    #[test]
    fn never_touches_the_oracle() {
        // The oracle panics on *any* call — the attack must complete
        // without one.
        let (v, vt) = attack_pair(51);
        let mut attacker = FeatureMapAttacker::new(surrogate(52), quick());
        assert!(attacker.is_zero_query());
        let outcome =
            attacker.attack(&mut PanickingOracle, &v, &vt, &mut Rng64::new(9)).unwrap();
        assert_eq!(outcome.queries, 0);
    }

    #[test]
    fn support_is_sparse_and_bounded() {
        let (v, vt) = attack_pair(53);
        let cfg = quick();
        let outcome = FeatureMapAttacker::new(surrogate(54), cfg)
            .attack(&mut PanickingOracle, &v, &vt, &mut Rng64::new(10))
            .unwrap();
        assert!(outcome.spa() <= cfg.k * cfg.n, "Spa {} > k*n", outcome.spa());
        assert!(outcome.spa() > 0, "attack must actually perturb something");
        assert!(outcome.perturbation.linf_norm() <= cfg.tau + 1e-3);
    }

    #[test]
    fn is_deterministic_for_a_fixed_surrogate() {
        let (v, vt) = attack_pair(55);
        let o1 = FeatureMapAttacker::new(surrogate(56), quick())
            .attack(&mut PanickingOracle, &v, &vt, &mut Rng64::new(11))
            .unwrap();
        let o2 = FeatureMapAttacker::new(surrogate(56), quick())
            .attack(&mut PanickingOracle, &v, &vt, &mut Rng64::new(99))
            .unwrap();
        assert_eq!(o1.perturbation, o2.perturbation, "RNG must not influence the attack");
        assert_eq!(o1.loss_trajectory, o2.loss_trajectory);
    }

    #[test]
    fn cloned_surrogates_do_not_share_gradient_state() {
        // Two attackers cloned from one backbone, run interleaved, must
        // match two attackers run back-to-back.
        let (v, vt) = attack_pair(57);
        let base = surrogate(58);
        let mut a = FeatureMapAttacker::new(base.clone(), quick());
        let mut b = FeatureMapAttacker::new(base.clone(), quick());
        let oa = a.attack(&mut PanickingOracle, &v, &vt, &mut Rng64::new(12)).unwrap();
        let ob = b.attack(&mut PanickingOracle, &v, &vt, &mut Rng64::new(12)).unwrap();
        assert_eq!(oa.perturbation, ob.perturbation);
    }
}
