//! Shared fixtures for the crate's unit tests: a tiny black-box world,
//! tiny surrogates, attack pairs, and an oracle that panics on contact.

use duo_models::{Architecture, Backbone, BackboneConfig};
use duo_retrieval::{
    BlackBox, QueryOracle, Result, RetrievalConfig, RetrievalSystem,
};
use duo_tensor::Rng64;
use duo_video::{ClipSpec, DatasetKind, SyntheticDataset, SyntheticVideoGenerator, Video, VideoId};

/// A tiny in-process black box plus a cross-class attack pair.
pub(crate) fn blackbox(seed: u64) -> (BlackBox, Video, Video) {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 8, 1, 0);
    let victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let sys = RetrievalSystem::build(
        victim,
        &ds,
        ds.train(),
        RetrievalConfig { m: 4, nodes: 2, threaded: false, ..Default::default() },
    )
    .unwrap();
    let (v, vt) = attack_pair(seed ^ 0x5eed);
    (BlackBox::new(sys), v, vt)
}

/// A tiny surrogate backbone for transfer attacks.
pub(crate) fn surrogate(seed: u64) -> Backbone {
    let mut rng = Rng64::new(seed);
    Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap()
}

/// A deterministic cross-class attack pair `(v, v_t)`.
pub(crate) fn attack_pair(seed: u64) -> (Video, Video) {
    let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), seed);
    (gen.generate(0, 0), gen.generate(4, 0))
}

/// A [`QueryOracle`] that panics on *any* call — handed to zero-query
/// attackers to prove they really never touch the service.
pub(crate) struct PanickingOracle;

impl QueryOracle for PanickingOracle {
    fn retrieve(&mut self, _video: &Video) -> Result<Vec<VideoId>> {
        panic!("zero-query attacker called retrieve()");
    }

    fn queries_used(&self) -> u64 {
        panic!("zero-query attacker called queries_used()");
    }

    fn budget_remaining(&self) -> Option<u64> {
        panic!("zero-query attacker called budget_remaining()");
    }

    fn m(&self) -> usize {
        panic!("zero-query attacker called m()");
    }
}
