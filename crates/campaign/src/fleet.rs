//! The fleet runner: N concurrent attack clients against one live
//! service, aggregated into a deterministic leaderboard.
//!
//! Each client gets its own [`Rng64`] stream (forked from the campaign
//! seed on the spawning thread, so forking order never races), its own
//! budgeted service client for attack queries, and its own unbudgeted
//! *grader* client for the before/after retrieval lists the AP-drop
//! metric needs — grading must never eat into the attack budget the
//! paper's threat model meters.
//!
//! Determinism: every value that reaches the [`Leaderboard`] (queries
//! charged, AP drop, Spa, PScore, budget rejections, deadline misses) is
//! a function of the client's own seeded query stream and the service's
//! bit-identical retrieval lists. Wall-clock-dependent counters (rate and
//! overload rejections, latencies) stay out of the artifact by
//! construction.

use crate::Attacker;
use duo_attack::AttackError;
use duo_retrieval::{ap_at_m, QueryOracle, RetrievalError};
use duo_serve::{ClientStats, RetrievalService, ServiceOracle};
use duo_tensor::{Json, Rng64};
use duo_video::Video;

/// Fleet-level configuration of one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Concurrent attack clients to spawn.
    pub clients: usize,
    /// Hard query budget per attack client ([`duo_retrieval::QueryLedger`]).
    pub per_client_budget: u64,
    /// Campaign seed; client `i` runs on `Rng64::new(seed).fork(i)`.
    pub seed: u64,
    /// Transient-rejection retries per query ([`ServiceOracle`]).
    pub max_retries: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { clients: 8, per_client_budget: 200, seed: 7, max_retries: 16 }
    }
}

/// Campaign-level failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// `clients == 0`.
    NoClients,
    /// An empty attack-pair set.
    NoPairs,
    /// A client failed on something other than budget exhaustion
    /// (model error, service shutdown, node failure).
    Client {
        /// Fleet slot of the failing client.
        client: usize,
        /// Attack family the client was running.
        family: String,
        /// The underlying attack failure, rendered.
        message: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::NoClients => write!(f, "campaign needs at least one client"),
            CampaignError::NoPairs => write!(f, "campaign needs at least one attack pair"),
            CampaignError::Client { client, family, message } => {
                write!(f, "client {client} ({family}) failed: {message}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// One client's end-of-campaign record.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutcome {
    /// Fleet slot (also the RNG fork salt and pair index modulus).
    pub client: usize,
    /// Attack family name ([`Attacker::name`]).
    pub family: String,
    /// Queries charged to the client's attack budget.
    pub queries: u64,
    /// AP drop `100 - AP(R(v_adv), R(v))`, clamped at 0.
    pub ap_drop: f32,
    /// Perturbed scalars (the paper's Spa).
    pub spa: usize,
    /// Mean absolute perturbation (the paper's PScore).
    pub pscore: f32,
    /// Whether the attack ran out of budget before finishing (the
    /// degenerate outcome keeps `ap_drop`/`spa`/`pscore` at 0).
    pub exhausted: bool,
    /// Whether the service's streaming defense quarantined the account
    /// mid-attack ([`duo_retrieval::RetrievalError::Quarantined`]) — the
    /// blue team cut the lane off. Like `exhausted`, a recorded outcome
    /// (metrics stay 0), never a campaign failure.
    pub quarantined: bool,
    /// The attack client's serving counters at campaign end.
    pub stats: ClientStats,
    /// Queries issued by the unbudgeted grader client (not part of the
    /// attack budget, but still served traffic).
    pub grader_queries: u64,
}

/// Distribution summary of one metric over a family's clients, with the
/// same statistics (and the same trimming and quantile rules) as
/// `duo-bench`'s `BenchResult`, so the rows slot straight into the
/// `BENCH_*.json` schema.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDist {
    /// Metric name (e.g. `"ap_drop"`).
    pub metric: &'static str,
    /// Number of clients contributing samples.
    pub samples: usize,
    /// Smallest sample.
    pub min: f64,
    /// Ceil-rank median.
    pub median: f64,
    /// Ceil-rank 95th percentile.
    pub p95: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Mean of the middle 60% (20% trimmed from each tail).
    pub trimmed_mean: f64,
    /// Largest sample.
    pub max: f64,
}

/// Ceil-rank quantile over a sorted slice — the `duo-bench` rule.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn dist_of(metric: &'static str, mut xs: Vec<f64>) -> MetricDist {
    assert!(!xs.is_empty(), "metric {metric} needs at least one sample");
    xs.sort_by(f64::total_cmp);
    let samples = xs.len();
    let trim = samples / 5;
    let mid = &xs[trim..samples - trim];
    MetricDist {
        metric,
        samples,
        min: xs[0],
        median: quantile(&xs, 0.5),
        p95: quantile(&xs, 0.95),
        mean: xs.iter().sum::<f64>() / samples as f64,
        trimmed_mean: mid.iter().sum::<f64>() / mid.len() as f64,
        max: xs[samples - 1],
    }
}

impl MetricDist {
    /// Summarizes raw samples under the `duo-bench` trimming and quantile
    /// rules — public so experiment binaries (e.g. `red_vs_blue`) can
    /// emit custom metrics in the same `BENCH_*.json` schema the
    /// leaderboard uses.
    ///
    /// # Panics
    ///
    /// On an empty sample set.
    pub fn of(metric: &'static str, xs: Vec<f64>) -> MetricDist {
        dist_of(metric, xs)
    }
}

/// One attack family's aggregated leaderboard row.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyRow {
    /// Attack family name.
    pub family: String,
    /// Clients that ran this family.
    pub clients: usize,
    /// Clients that completed without exhausting their budget.
    pub completed: usize,
    /// Clients the streaming defense caught: flagged at least once or
    /// quarantined outright. 0 against an undefended service.
    pub detected: usize,
    /// Clients the defense never flagged (`clients - detected`) — for a
    /// zero-query family this is every client, by construction.
    pub evaded: usize,
    /// Per-metric distributions, in fixed emission order.
    pub metrics: Vec<MetricDist>,
}

/// The campaign leaderboard: one row per attack family, families sorted
/// by name, metrics in fixed order — so equal inputs render to
/// byte-identical JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaderboard {
    /// Aggregated family rows, sorted by family name.
    pub rows: Vec<FamilyRow>,
}

impl Leaderboard {
    /// Aggregates client outcomes into family rows.
    pub fn from_outcomes(outcomes: &[ClientOutcome]) -> Leaderboard {
        let mut families: Vec<String> =
            outcomes.iter().map(|o| o.family.clone()).collect();
        families.sort_unstable();
        families.dedup();
        let rows = families
            .into_iter()
            .map(|family| {
                // Client order within a family is slot order, which is
                // deterministic; dist_of sorts anyway.
                let of: Vec<&ClientOutcome> =
                    outcomes.iter().filter(|o| o.family == family).collect();
                let pull = |f: &dyn Fn(&ClientOutcome) -> f64| -> Vec<f64> {
                    of.iter().map(|o| f(o)).collect()
                };
                let metrics = vec![
                    dist_of("queries", pull(&|o| o.queries as f64)),
                    dist_of("ap_drop", pull(&|o| f64::from(o.ap_drop))),
                    dist_of(
                        "ap_drop_per_query",
                        pull(&|o| f64::from(o.ap_drop) / o.queries.max(1) as f64),
                    ),
                    dist_of("spa", pull(&|o| o.spa as f64)),
                    dist_of("pscore", pull(&|o| f64::from(o.pscore))),
                    dist_of("rejected_budget", pull(&|o| o.stats.rejected_budget as f64)),
                    dist_of("deadline_misses", pull(&|o| o.stats.deadline_misses as f64)),
                    dist_of(
                        "detection_rate",
                        pull(&|o| {
                            o.stats.defense_flagged as f64 / o.stats.defense_observed.max(1) as f64
                        }),
                    ),
                ];
                let detected = of
                    .iter()
                    .filter(|o| o.quarantined || o.stats.defense_flagged > 0)
                    .count();
                FamilyRow {
                    family,
                    clients: of.len(),
                    completed: of.iter().filter(|o| !o.exhausted).count(),
                    detected,
                    evaded: of.len() - detected,
                    metrics,
                }
            })
            .collect();
        Leaderboard { rows }
    }

    /// Renders the leaderboard in the `BENCH_*.json` schema `bench_check`
    /// validates: a JSON array of result objects named
    /// `campaign/<family>/<metric>`, each carrying the six distribution
    /// statistics under the bench field names.
    pub fn to_bench_json(&self) -> String {
        let results: Vec<Json> = self
            .rows
            .iter()
            .flat_map(|row| {
                row.metrics.iter().map(|d| {
                    Json::Object(vec![
                        (
                            "name".into(),
                            Json::Str(format!("campaign/{}/{}", row.family, d.metric)),
                        ),
                        ("samples".into(), Json::Int(d.samples as i128)),
                        ("min_s".into(), Json::F64(d.min)),
                        ("median_s".into(), Json::F64(d.median)),
                        ("p95_s".into(), Json::F64(d.p95)),
                        ("mean_s".into(), Json::F64(d.mean)),
                        ("trimmed_mean_s".into(), Json::F64(d.trimmed_mean)),
                        ("max_s".into(), Json::F64(d.max)),
                    ])
                })
            })
            .collect();
        format!("{}\n", Json::Array(results))
    }
}

/// The full campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Every client's record, in fleet-slot order.
    pub outcomes: Vec<ClientOutcome>,
    /// The aggregated, deterministic leaderboard.
    pub leaderboard: Leaderboard,
    /// Total queries charged across all campaign clients (attack ledgers
    /// plus grader traffic) — the number that must equal the service's
    /// `served + failed` delta once the fleet has drained.
    pub charged: u64,
}

/// Runs one campaign: spawns `config.clients` concurrent attack clients
/// against `service`, client `i` running `make_attacker(i)` on attack
/// pair `pairs[i % pairs.len()]` with RNG stream `fork(i)`.
///
/// Budget exhaustion mid-attack is a *recorded outcome* (the client's
/// row shows `exhausted`), not a campaign failure; anything else a
/// client hits is.
///
/// # Errors
///
/// [`CampaignError::NoClients`] / [`CampaignError::NoPairs`] on empty
/// input, [`CampaignError::Client`] when a client fails hard.
pub fn run_campaign(
    service: &RetrievalService,
    mut make_attacker: impl FnMut(usize) -> Box<dyn Attacker>,
    pairs: &[(Video, Video)],
    config: &CampaignConfig,
) -> Result<CampaignReport, CampaignError> {
    if config.clients == 0 {
        return Err(CampaignError::NoClients);
    }
    if pairs.is_empty() {
        return Err(CampaignError::NoPairs);
    }
    // Fork RNGs, build attackers, and register service clients on this
    // thread: registration order (and thus slot numbering) must not
    // depend on spawn timing.
    let mut master = Rng64::new(config.seed);
    let lanes: Vec<_> = (0..config.clients)
        .map(|i| {
            let rng = master.fork(i as u64);
            let attacker = make_attacker(i);
            let attack_client = service.client(Some(config.per_client_budget), None);
            let grader_client = service.client(None, None);
            (i, rng, attacker, attack_client, grader_client)
        })
        .collect();

    let results: Vec<Result<ClientOutcome, CampaignError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|(i, mut rng, mut attacker, attack_client, grader_client)| {
                let (v, v_t) = &pairs[i % pairs.len()];
                scope.spawn(move || {
                    let family = attacker.name().to_string();
                    let mut oracle = ServiceOracle::new(attack_client.clone())
                        .with_max_retries(config.max_retries);
                    let mut grader = ServiceOracle::new(grader_client.clone())
                        .with_max_retries(config.max_retries);
                    let fail = |message: String| CampaignError::Client {
                        client: i,
                        family: family.clone(),
                        message,
                    };
                    let r_v = grader.retrieve(v).map_err(|e| fail(e.to_string()))?;
                    let attacked = attacker.attack(&mut oracle, v, v_t, &mut rng);
                    let (ap_drop, spa, pscore, exhausted, quarantined) = match attacked {
                        Ok(outcome) => {
                            let r_adv = grader
                                .retrieve(&outcome.adversarial)
                                .map_err(|e| fail(e.to_string()))?;
                            let ap_drop = (100.0 - ap_at_m(&r_adv, &r_v)).max(0.0);
                            (ap_drop, outcome.spa(), outcome.pscore(), false, false)
                        }
                        Err(AttackError::Retrieval(RetrievalError::BudgetExhausted {
                            ..
                        })) => (0.0, 0, 0.0, true, false),
                        // The blue team cut this lane off: a recorded
                        // outcome, like budget exhaustion.
                        Err(AttackError::Retrieval(RetrievalError::Quarantined { .. })) => {
                            (0.0, 0, 0.0, false, true)
                        }
                        Err(e) => return Err(fail(e.to_string())),
                    };
                    Ok(ClientOutcome {
                        client: i,
                        family,
                        queries: attack_client.queries_used(),
                        ap_drop,
                        spa,
                        pscore,
                        exhausted,
                        quarantined,
                        stats: attack_client.stats().unwrap_or_default(),
                        grader_queries: grader_client.queries_used(),
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign client thread panicked"))
            .collect()
    });

    let outcomes: Vec<ClientOutcome> = results.into_iter().collect::<Result<_, _>>()?;
    let charged = outcomes.iter().map(|o| o.stats.charged + o.grader_queries).sum();
    let leaderboard = Leaderboard::from_outcomes(&outcomes);
    Ok(CampaignReport { outcomes, leaderboard, charged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::attack_pair;
    use crate::{SparseRlAttacker, SparseRlConfig, VanillaAttacker};
    use duo_baselines::VanillaConfig;
    use duo_models::{Architecture, Backbone, BackboneConfig};
    use duo_retrieval::{RetrievalConfig, RetrievalSystem};
    use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};

    fn service(seed: u64) -> duo_serve::RetrievalService {
        let mut rng = Rng64::new(seed);
        let ds =
            SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 8, 1, 0);
        let victim =
            Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            victim,
            &ds,
            ds.train(),
            RetrievalConfig { m: 4, nodes: 2, threaded: false, ..Default::default() },
        )
        .unwrap();
        duo_serve::RetrievalService::start(sys, duo_serve::ServeConfig::default()).unwrap()
    }

    fn zoo(client: usize) -> Box<dyn crate::Attacker> {
        let quick = SparseRlConfig { k: 40, n: 2, tau: 30.0, episodes: 3, lr: 0.8, eta: 1.0 };
        if client % 2 == 0 {
            Box::new(SparseRlAttacker::new(quick))
        } else {
            Box::new(VanillaAttacker::new(VanillaConfig {
                k: 60,
                n: 2,
                tau: 30.0,
                iter_num_q: 3,
            }))
        }
    }

    #[test]
    fn same_seed_same_fleet_is_byte_identical() {
        let config =
            CampaignConfig { clients: 4, per_client_budget: 100, seed: 11, max_retries: 16 };
        let pairs = vec![attack_pair(61), attack_pair(62)];
        let svc = service(60);
        let a = run_campaign(&svc, zoo, &pairs, &config).unwrap();
        let b = run_campaign(&svc, zoo, &pairs, &config).unwrap();
        svc.shutdown();
        assert_eq!(
            a.leaderboard.to_bench_json(),
            b.leaderboard.to_bench_json(),
            "same-seed campaigns must replay byte-identically"
        );
    }

    #[test]
    fn charged_matches_service_accounting() {
        let config =
            CampaignConfig { clients: 3, per_client_budget: 100, seed: 12, max_retries: 16 };
        let pairs = vec![attack_pair(63)];
        let svc = service(64);
        let report = run_campaign(&svc, zoo, &pairs, &config).unwrap();
        let stats = svc.shutdown();
        assert_eq!(
            report.charged,
            stats.served + stats.failed,
            "every charged query must be served or failed, none lost"
        );
    }

    #[test]
    fn budget_exhaustion_is_an_outcome_not_an_error() {
        // A 3-query budget cannot even cover sparse-RL's two setup
        // queries plus an episode round-trip for every client.
        let config =
            CampaignConfig { clients: 2, per_client_budget: 3, seed: 13, max_retries: 16 };
        let pairs = vec![attack_pair(65)];
        let svc = service(66);
        let report = run_campaign(
            &svc,
            |_| {
                Box::new(SparseRlAttacker::new(SparseRlConfig {
                    k: 40,
                    n: 2,
                    tau: 30.0,
                    episodes: 50,
                    lr: 0.8,
                    eta: 1.0,
                }))
            },
            &pairs,
            &config,
        )
        .unwrap();
        svc.shutdown();
        for outcome in &report.outcomes {
            assert!(outcome.queries <= 3, "budget must cap charges: {outcome:?}");
        }
    }

    #[test]
    fn empty_fleet_and_empty_pairs_are_rejected() {
        let pairs = vec![attack_pair(67)];
        let svc = service(68);
        let none = CampaignConfig { clients: 0, ..CampaignConfig::default() };
        assert_eq!(run_campaign(&svc, zoo, &pairs, &none), Err(CampaignError::NoClients));
        let some = CampaignConfig { clients: 1, ..CampaignConfig::default() };
        assert_eq!(run_campaign(&svc, zoo, &[], &some), Err(CampaignError::NoPairs));
        svc.shutdown();
    }

    #[test]
    fn bench_json_round_trips_the_schema() {
        let outcomes = vec![
            ClientOutcome {
                client: 0,
                family: "vanilla".into(),
                queries: 10,
                ap_drop: 50.0,
                spa: 120,
                pscore: 3.0,
                exhausted: false,
                quarantined: false,
                stats: ClientStats::default(),
                grader_queries: 2,
            },
            ClientOutcome {
                client: 1,
                family: "vanilla".into(),
                queries: 12,
                ap_drop: 75.0,
                spa: 120,
                pscore: 4.0,
                exhausted: false,
                quarantined: false,
                stats: ClientStats::default(),
                grader_queries: 2,
            },
        ];
        let board = Leaderboard::from_outcomes(&outcomes);
        assert_eq!(board.rows.len(), 1);
        let json = board.to_bench_json();
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"name\":\"campaign/vanilla/ap_drop\""), "{json}");
        assert!(json.contains("\"trimmed_mean_s\":62.5"), "{json}");
        assert!(json.ends_with("]\n"), "{json}");
    }
}
