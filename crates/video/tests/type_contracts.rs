//! Contract tests on the data-bearing types a downstream user relies on:
//! hashability of ids, deep-clone semantics, display names, and the
//! determinism guarantees the dataset makes.

use duo_video::{
    sample_snippet, ClipSpec, DatasetKind, SyntheticDataset, SyntheticVideoGenerator, Video,
    VideoId,
};

#[test]
fn video_id_works_as_hash_key() {
    let a = VideoId { class: 1, instance: 2 };
    let b = VideoId { class: 1, instance: 2 };
    assert_eq!(a, b);
    let mut set = std::collections::HashSet::new();
    set.insert(a);
    assert!(set.contains(&b));
    assert!(!set.contains(&VideoId { class: 2, instance: 1 }));
}

#[test]
fn clip_spec_works_as_map_key() {
    let a = ClipSpec::tiny();
    let b = ClipSpec { frames: 8, height: 16, width: 16, channels: 3 };
    assert_eq!(a, b);
    let mut map = std::collections::HashMap::new();
    map.insert(a, "tiny");
    assert_eq!(map.get(&b), Some(&"tiny"));
}

#[test]
fn video_clone_is_deep() {
    let g = SyntheticVideoGenerator::new(ClipSpec::tiny(), 5);
    let v = g.generate(0, 0);
    let mut c = v.clone();
    c.tensor_mut().as_mut_slice()[0] += 1.0;
    assert_ne!(v, c, "mutating a clone must not affect the original");
}

#[test]
fn dataset_kind_display_names_match_paper() {
    assert_eq!(DatasetKind::Ucf101Like.to_string(), "UCF101");
    assert_eq!(DatasetKind::Hmdb51Like.to_string(), "HMDB51");
}

#[test]
fn video_debug_is_nonempty() {
    let v = Video::zeros(ClipSpec::tiny());
    assert!(!format!("{v:?}").is_empty());
}

#[test]
fn dataset_generation_is_deterministic_across_instances() {
    // Two datasets with the same seed are interchangeable — the property
    // every experiment's reproducibility rests on.
    let a = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 9, 2, 1);
    let b = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 9, 2, 1);
    for &id in a.train().iter().take(10) {
        assert_eq!(a.video(id), b.video(id));
    }
    assert_eq!(a.train(), b.train());
    assert_eq!(a.test(), b.test());
}

#[test]
fn snippet_sampling_composes_with_dataset_pipeline() {
    // Long source → 16-frame snippet → model-ready clip, end to end.
    let long_spec = ClipSpec { frames: 48, height: 16, width: 16, channels: 3 };
    let long = SyntheticVideoGenerator::new(long_spec, 7).generate(3, 0);
    let snip = sample_snippet(&long, 16, 0).unwrap();
    assert_eq!(snip.frames(), 16);
    let input = snip.to_model_input();
    assert_eq!(input.dims(), &[3, 16, 16, 16]);
    assert!(input.max() <= 1.0 && input.min() >= 0.0);
}
