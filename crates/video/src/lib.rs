//! Video data substrate for the DUO reproduction.
//!
//! Provides the [`Video`] clip type in the paper's `N × H × W × C` layout
//! with pixel values in `[0, 255]`, uniform snippet sampling, and —
//! because the real UCF101/HMDB51 corpora are not available in this
//! environment — procedural, class-structured synthetic datasets
//! ([`SyntheticDataset`]) that preserve the two properties DUO exploits:
//!
//! 1. **Class structure**: videos of the same class share a motion/texture
//!    signature, so trained feature extractors cluster them (retrieval
//!    works, mAP is meaningful).
//! 2. **Frame/pixel saliency concentration**: each class's discriminative
//!    content is carried by a few moving blobs that "flash" during a
//!    class-specific burst of frames — exactly the "key frames / key
//!    pixels" structure that motivates the frame-pixel dual search.
//!
//! # Example
//!
//! ```
//! use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};
//!
//! let spec = ClipSpec::tiny();
//! let ds = SyntheticDataset::subsampled(DatasetKind::Ucf101Like, spec, 7, 2, 1);
//! let id = ds.train()[0];
//! let v = ds.video(id);
//! assert_eq!(v.frames(), spec.frames);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clip;
mod dataset;
mod export;
mod snippet;
mod synth;
mod video;

pub use clip::ClipSpec;
pub use dataset::{DatasetKind, SyntheticDataset, VideoId};
pub use export::{export_video_frames, write_frame_ppm, write_perturbation_pgm};
pub use snippet::{sample_snippet, snippet_indices};
pub use synth::{ClassSignature, SyntheticVideoGenerator};
pub use video::Video;
