//! Frame export for visual inspection.
//!
//! Writes individual frames (or perturbation heat maps) as binary PPM/PGM
//! images — the zero-dependency formats every image viewer understands.
//! Used to eyeball the stealthiness claims: a DUO perturbation rendered as
//! a heat map shows a handful of bright pixels on a few frames, while a
//! TIMI perturbation lights up everything.

use crate::Video;
use duo_tensor::{Tensor, TensorError};
use std::io::Write;
use std::path::Path;

/// Writes one RGB frame of a video as a binary PPM (P6) image.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for an out-of-range frame, a
/// non-3-channel video, or wrapped I/O failures.
pub fn write_frame_ppm<W: Write>(video: &Video, frame: usize, mut w: W) -> Result<(), TensorError> {
    let spec = video.spec();
    if frame >= spec.frames {
        return Err(TensorError::InvalidArgument(format!(
            "frame {frame} out of range ({} frames)",
            spec.frames
        )));
    }
    if spec.channels != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "PPM export needs 3 channels, video has {}",
            spec.channels
        )));
    }
    let io = |e: std::io::Error| TensorError::InvalidArgument(format!("ppm write: {e}"));
    write!(w, "P6\n{} {}\n255\n", spec.width, spec.height).map_err(io)?;
    let per_frame = spec.frame_elements();
    let data = &video.tensor().as_slice()[frame * per_frame..(frame + 1) * per_frame];
    let bytes: Vec<u8> = data.iter().map(|&x| x.clamp(0.0, 255.0).round() as u8).collect();
    w.write_all(&bytes).map_err(io)
}

/// Writes a per-pixel magnitude map of one frame of a perturbation tensor
/// as a binary PGM (P5) image, normalized so the largest magnitude in the
/// whole tensor maps to white.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for shape problems or wrapped
/// I/O failures.
pub fn write_perturbation_pgm<W: Write>(
    perturbation: &Tensor,
    frame: usize,
    mut w: W,
) -> Result<(), TensorError> {
    if perturbation.rank() != 4 {
        return Err(TensorError::InvalidArgument(format!(
            "perturbation must be [N,H,W,C], got rank {}",
            perturbation.rank()
        )));
    }
    let dims = perturbation.dims();
    let (n, h, width, c) = (dims[0], dims[1], dims[2], dims[3]);
    if frame >= n {
        return Err(TensorError::InvalidArgument(format!("frame {frame} out of range ({n})")));
    }
    let io = |e: std::io::Error| TensorError::InvalidArgument(format!("pgm write: {e}"));
    let max = perturbation.linf_norm().max(1e-12);
    write!(w, "P5\n{width} {h}\n255\n").map_err(io)?;
    let per_frame = h * width * c;
    let data = &perturbation.as_slice()[frame * per_frame..(frame + 1) * per_frame];
    let mut bytes = Vec::with_capacity(h * width);
    for px in data.chunks(c) {
        // Max channel magnitude per pixel, scaled to 0..255.
        let m = px.iter().map(|x| x.abs()).fold(0.0f32, f32::max);
        bytes.push((255.0 * m / max).round().clamp(0.0, 255.0) as u8);
    }
    w.write_all(&bytes).map_err(io)
}

/// Dumps every frame of a video as `frame_000.ppm`, `frame_001.ppm`, …
/// in `dir` (created if missing).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] wrapping I/O failures.
pub fn export_video_frames<P: AsRef<Path>>(video: &Video, dir: P) -> Result<(), TensorError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)
        .map_err(|e| TensorError::InvalidArgument(format!("create {dir:?}: {e}")))?;
    for f in 0..video.frames() {
        let path = dir.join(format!("frame_{f:03}.ppm"));
        let file = std::fs::File::create(&path)
            .map_err(|e| TensorError::InvalidArgument(format!("create {path:?}: {e}")))?;
        write_frame_ppm(video, f, std::io::BufWriter::new(file))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClipSpec, SyntheticVideoGenerator};

    #[test]
    fn ppm_header_and_size_are_correct() {
        let v = SyntheticVideoGenerator::new(ClipSpec::tiny(), 3).generate(0, 0);
        let mut buf = Vec::new();
        write_frame_ppm(&v, 0, &mut buf).unwrap();
        let header = b"P6\n16 16\n255\n";
        assert_eq!(&buf[..header.len()], header);
        assert_eq!(buf.len(), header.len() + 16 * 16 * 3);
    }

    #[test]
    fn ppm_rejects_out_of_range_frame() {
        let v = SyntheticVideoGenerator::new(ClipSpec::tiny(), 3).generate(0, 0);
        assert!(write_frame_ppm(&v, 99, Vec::new()).is_err());
    }

    #[test]
    fn pgm_normalizes_to_peak_magnitude() {
        let mut phi = Tensor::zeros(&[2, 4, 4, 3]);
        phi.as_mut_slice()[0] = -30.0; // frame 0, pixel 0: peak
        phi.as_mut_slice()[5] = 15.0; // frame 0, pixel 1, channel 2: half
        let mut buf = Vec::new();
        write_perturbation_pgm(&phi, 0, &mut buf).unwrap();
        let header_len = b"P5\n4 4\n255\n".len();
        assert_eq!(buf[header_len], 255, "peak magnitude maps to white");
        assert_eq!(buf[header_len + 1], 128, "half magnitude maps to mid-grey");
        assert_eq!(buf[header_len + 2], 0, "untouched pixel stays black");
    }

    #[test]
    fn export_writes_one_file_per_frame() {
        let v = SyntheticVideoGenerator::new(ClipSpec::tiny(), 4).generate(1, 0);
        let dir = std::env::temp_dir().join("duo_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        export_video_frames(&v, &dir).unwrap();
        let count = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(count, v.frames());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
