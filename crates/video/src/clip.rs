
/// Geometry of a video clip: frames × height × width × channels.
///
/// The paper samples 16-frame snippets at 112×112×3 (602,112 scalars per
/// clip). The reproduction keeps that shape expressible but defaults
/// experiments to a reduced resolution so a single CPU core remains viable;
/// see `DESIGN.md` for the parameter mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClipSpec {
    /// Number of frames `N`.
    pub frames: usize,
    /// Frame height `H`.
    pub height: usize,
    /// Frame width `W`.
    pub width: usize,
    /// Channels per pixel `C` (3 for RGB).
    pub channels: usize,
}
duo_tensor::impl_to_json!(struct ClipSpec { frames, height, width, channels });

impl ClipSpec {
    /// The paper's clip geometry: 16 × 112 × 112 × 3.
    pub fn paper() -> Self {
        ClipSpec { frames: 16, height: 112, width: 112, channels: 3 }
    }

    /// Default experiment geometry for this reproduction: 16 × 32 × 32 × 3.
    pub fn experiment() -> Self {
        ClipSpec { frames: 16, height: 32, width: 32, channels: 3 }
    }

    /// Tiny geometry for unit tests: 8 × 16 × 16 × 3.
    pub fn tiny() -> Self {
        ClipSpec { frames: 8, height: 16, width: 16, channels: 3 }
    }

    /// Total number of scalars in a clip (`N·H·W·C`).
    pub fn elements(&self) -> usize {
        self.frames * self.height * self.width * self.channels
    }

    /// Number of pixel scalars per frame (`H·W·C`), the paper's `B·C`.
    pub fn frame_elements(&self) -> usize {
        self.height * self.width * self.channels
    }

    /// Scales a paper-resolution pixel budget to this geometry.
    ///
    /// The paper reports absolute pixel counts (e.g. `k = 40K` of 602,112);
    /// this maps the same *fraction* onto a different clip size, which is
    /// the comparison EXPERIMENTS.md uses.
    pub fn scale_budget(&self, paper_budget: usize) -> usize {
        let paper = ClipSpec::paper().elements() as f64;
        let frac = paper_budget as f64 / paper;
        ((frac * self.elements() as f64).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_published_element_count() {
        // TIMI's dense perturbation in Table II covers 602,112 scalars:
        // exactly the element count of a 16x112x112x3 clip.
        assert_eq!(ClipSpec::paper().elements(), 602_112);
    }

    #[test]
    fn scale_budget_preserves_fraction() {
        let spec = ClipSpec::experiment();
        let scaled = spec.scale_budget(40_000);
        let frac_paper = 40_000.0 / 602_112.0;
        let frac_scaled = scaled as f64 / spec.elements() as f64;
        assert!((frac_paper - frac_scaled).abs() < 0.001);
    }

    #[test]
    fn frame_elements_is_hwc() {
        let spec = ClipSpec::tiny();
        assert_eq!(spec.frame_elements(), 16 * 16 * 3);
        assert_eq!(spec.elements(), 8 * spec.frame_elements());
    }

    #[test]
    fn scale_budget_never_returns_zero() {
        assert_eq!(ClipSpec::tiny().scale_budget(1), 1);
    }
}
