//! Uniform snippet sampling (paper §V-A: "we follow [1] to uniformly
//! sample a 16-frame snippet from each video").
//!
//! Retrieval models consume fixed-length clips; source videos are longer.
//! [`sample_snippet`] picks `n` frame indices spread uniformly across the
//! source and assembles the snippet, exactly like the preprocessing in the
//! paper's pipeline.

use crate::{ClipSpec, Video};
use duo_tensor::TensorError;

/// Uniformly samples an `n`-frame snippet from a (typically longer) video.
///
/// Frame `i` of the snippet is source frame `⌊i·N/n⌋ + offset` where `N`
/// is the source length and `offset` shifts the whole comb (clamped so
/// every index stays in range) — `offset = 0` reproduces the deterministic
/// sampling used for gallery indexing; nonzero offsets give the temporal
/// jitter used in training pipelines.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `n` is zero or exceeds the
/// source frame count.
pub fn sample_snippet(source: &Video, n: usize, offset: usize) -> Result<Video, TensorError> {
    let src_spec = source.spec();
    if n == 0 || n > src_spec.frames {
        return Err(TensorError::InvalidArgument(format!(
            "cannot sample {n} frames from a {}-frame video",
            src_spec.frames
        )));
    }
    let out_spec = ClipSpec { frames: n, ..src_spec };
    let mut out = Video::zeros(out_spec);
    let per_frame = src_spec.frame_elements();
    let src = source.tensor().as_slice();
    let dst = out.tensor_mut().as_mut_slice();
    let stride = src_spec.frames as f64 / n as f64;
    for i in 0..n {
        let base = (i as f64 * stride) as usize;
        let idx = (base + offset).min(src_spec.frames - 1);
        dst[i * per_frame..(i + 1) * per_frame]
            .copy_from_slice(&src[idx * per_frame..(idx + 1) * per_frame]);
    }
    Ok(out)
}

/// The frame indices [`sample_snippet`] selects, for inspection/tests.
pub fn snippet_indices(source_frames: usize, n: usize, offset: usize) -> Vec<usize> {
    let stride = source_frames as f64 / n as f64;
    (0..n).map(|i| ((i as f64 * stride) as usize + offset).min(source_frames - 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticVideoGenerator;

    fn long_video(frames: usize) -> Video {
        let spec = ClipSpec { frames, height: 8, width: 8, channels: 3 };
        SyntheticVideoGenerator::new(spec, 42).generate(1, 0)
    }

    #[test]
    fn snippet_has_requested_length_and_geometry() {
        let src = long_video(64);
        let snip = sample_snippet(&src, 16, 0).unwrap();
        assert_eq!(snip.frames(), 16);
        assert_eq!(snip.spec().height, 8);
    }

    #[test]
    fn indices_are_uniformly_spread_and_monotonic() {
        let idx = snippet_indices(64, 16, 0);
        assert_eq!(idx.len(), 16);
        assert_eq!(idx[0], 0);
        assert_eq!(idx[15], 60);
        for w in idx.windows(2) {
            assert!(w[1] > w[0], "indices must be strictly increasing");
            assert_eq!(w[1] - w[0], 4, "uniform stride for 64 -> 16");
        }
    }

    #[test]
    fn snippet_frames_match_source_frames() {
        let src = long_video(32);
        let snip = sample_snippet(&src, 8, 0).unwrap();
        let per = src.spec().frame_elements();
        for (i, &src_idx) in snippet_indices(32, 8, 0).iter().enumerate() {
            assert_eq!(
                &snip.tensor().as_slice()[i * per..(i + 1) * per],
                &src.tensor().as_slice()[src_idx * per..(src_idx + 1) * per],
                "snippet frame {i} must equal source frame {src_idx}"
            );
        }
    }

    #[test]
    fn offset_shifts_the_comb_within_bounds() {
        let idx = snippet_indices(64, 16, 2);
        assert_eq!(idx[0], 2);
        assert!(idx.iter().all(|&i| i < 64));
        // Large offsets clamp to the final frame instead of overflowing.
        let clamped = snippet_indices(10, 5, 100);
        assert!(clamped.iter().all(|&i| i == 9));
    }

    #[test]
    fn identity_when_n_equals_source_length() {
        let src = long_video(16);
        let snip = sample_snippet(&src, 16, 0).unwrap();
        assert_eq!(snip, src);
    }

    #[test]
    fn rejects_invalid_lengths() {
        let src = long_video(8);
        assert!(sample_snippet(&src, 0, 0).is_err());
        assert!(sample_snippet(&src, 9, 0).is_err());
    }
}
