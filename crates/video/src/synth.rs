use crate::{ClipSpec, Video};
use duo_tensor::Rng64;

/// The procedural "action signature" shared by all videos of one class.
///
/// A class is defined by a small set of moving blobs (color, size, velocity)
/// over a textured background, with a class-specific *temporal burst*: the
/// blobs brighten around a characteristic frame index. Same-class videos
/// differ only in phase, start position and noise — the structure a metric
/// learner needs to cluster classes, plus the concentrated frame/pixel
/// saliency that DUO's dual search exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSignature {
    /// Class identifier this signature belongs to.
    pub class: u32,
    /// Blob descriptors: (relative x0, relative y0, vx, vy, radius, per-channel color).
    pub blobs: Vec<BlobSignature>,
    /// Background base brightness per channel.
    pub background: [f32; 3],
    /// Texture spatial frequencies (fx, fy) and temporal drift.
    pub texture: (f32, f32, f32),
    /// Texture amplitude.
    pub texture_amp: f32,
    /// Center of the temporal burst as a fraction of the clip length.
    pub burst_center: f32,
    /// Width of the temporal burst as a fraction of the clip length.
    pub burst_width: f32,
}
duo_tensor::impl_to_json!(struct ClassSignature { class, blobs, background, texture, texture_amp, burst_center, burst_width });

/// One moving blob of a class signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlobSignature {
    /// Initial relative position (0..1) along x.
    pub x0: f32,
    /// Initial relative position (0..1) along y.
    pub y0: f32,
    /// Velocity along x in relative units per frame.
    pub vx: f32,
    /// Velocity along y in relative units per frame.
    pub vy: f32,
    /// Blob radius in relative units.
    pub radius: f32,
    /// Peak per-channel brightness contribution.
    pub color: [f32; 3],
}
duo_tensor::impl_to_json!(struct BlobSignature { x0, y0, vx, vy, radius, color });

impl ClassSignature {
    /// Derives the deterministic signature for `class` under `seed`.
    pub fn derive(class: u32, seed: u64) -> Self {
        let mut rng = Rng64::new(seed ^ (0xC1A5_5000 + class as u64).wrapping_mul(0x9E37_79B9));
        // Class parameters are drawn from deliberately *narrow* ranges:
        // real action classes overlap heavily in appearance (the paper's
        // victims reach only 20–60% mAP), and the attack surface requires
        // retrieval lists whose tail entries sit near decision boundaries.
        let blob_count = 1 + rng.below(3);
        let blobs = (0..blob_count)
            .map(|_| BlobSignature {
                x0: 0.2 + 0.6 * rng.uniform(),
                y0: 0.2 + 0.6 * rng.uniform(),
                vx: 0.08 * (rng.uniform() - 0.5),
                vy: 0.08 * (rng.uniform() - 0.5),
                radius: 0.10 + 0.08 * rng.uniform(),
                color: [
                    110.0 + 60.0 * rng.uniform(),
                    110.0 + 60.0 * rng.uniform(),
                    110.0 + 60.0 * rng.uniform(),
                ],
            })
            .collect();
        ClassSignature {
            class,
            blobs,
            background: [
                70.0 + 20.0 * rng.uniform(),
                70.0 + 20.0 * rng.uniform(),
                70.0 + 20.0 * rng.uniform(),
            ],
            texture: (
                3.0 + 4.0 * rng.uniform(),
                3.0 + 4.0 * rng.uniform(),
                0.5 + 1.5 * rng.uniform(),
            ),
            texture_amp: 10.0 + 6.0 * rng.uniform(),
            burst_center: 0.25 + 0.5 * rng.uniform(),
            burst_width: 0.10 + 0.15 * rng.uniform(),
        }
    }
}

/// Deterministic generator of class-structured synthetic videos.
///
/// Generation is a pure function of `(seed, class, instance)`, so datasets
/// can describe millions of videos without materializing them.
#[derive(Debug, Clone)]
pub struct SyntheticVideoGenerator {
    spec: ClipSpec,
    seed: u64,
    noise_sigma: f32,
}

impl SyntheticVideoGenerator {
    /// Creates a generator with the default per-pixel noise σ of 10.
    pub fn new(spec: ClipSpec, seed: u64) -> Self {
        SyntheticVideoGenerator { spec, seed, noise_sigma: 10.0 }
    }

    /// Overrides the per-pixel Gaussian noise level.
    pub fn with_noise_sigma(mut self, sigma: f32) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// The clip geometry produced by this generator.
    pub fn spec(&self) -> ClipSpec {
        self.spec
    }

    /// Generates the video for `(class, instance)`.
    ///
    /// Calling this twice with the same arguments yields identical videos.
    pub fn generate(&self, class: u32, instance: u32) -> Video {
        let sig = ClassSignature::derive(class, self.seed);
        let mut rng = Rng64::new(
            self.seed
                ^ (class as u64).wrapping_mul(0x0100_0000_01B3)
                ^ (instance as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Instance variation: phase offsets, burst jitter, speed scale,
        // and per-instance photometric jitter (lighting/camera variation).
        let phase_x = rng.uniform();
        let phase_y = rng.uniform();
        let t_phase = rng.uniform() * std::f32::consts::TAU;
        let burst_jitter = 0.05 * (rng.uniform() - 0.5);
        let speed_scale = 0.8 + 0.4 * rng.uniform();
        let brightness = 20.0 * (rng.uniform() - 0.5);
        let color_jitter = [
            15.0 * (rng.uniform() - 0.5),
            15.0 * (rng.uniform() - 0.5),
            15.0 * (rng.uniform() - 0.5),
        ];

        let (n, h, w, c) = (self.spec.frames, self.spec.height, self.spec.width, self.spec.channels);
        let mut video = Video::zeros(self.spec);
        let data = video.tensor_mut().as_mut_slice();
        let burst_c = (sig.burst_center + burst_jitter).clamp(0.1, 0.9);
        for f in 0..n {
            let tf = f as f32;
            let t_rel = tf / n as f32;
            // Temporal burst: blobs brighten around the class's key frames.
            let burst = {
                let d = (t_rel - burst_c) / sig.burst_width;
                0.35 + 0.65 * (-0.5 * d * d).exp()
            };
            for y in 0..h {
                let ry = y as f32 / h as f32;
                for x in 0..w {
                    let rx = x as f32 / w as f32;
                    let tex = sig.texture_amp
                        * ((sig.texture.0 * (rx + phase_x)
                            + sig.texture.1 * (ry + phase_y))
                            * std::f32::consts::TAU
                            + sig.texture.2 * tf
                            + t_phase)
                            .sin();
                    let mut px = [0.0f32; 3];
                    for (ch, p) in px.iter_mut().enumerate().take(c.min(3)) {
                        *p = sig.background[ch] + tex;
                    }
                    for blob in &sig.blobs {
                        // Wrap blob centers around the frame torus.
                        let bx = (blob.x0 + phase_x * 0.3 + blob.vx * speed_scale * tf)
                            .rem_euclid(1.0);
                        let by = (blob.y0 + phase_y * 0.3 + blob.vy * speed_scale * tf)
                            .rem_euclid(1.0);
                        let mut dx = (rx - bx).abs();
                        if dx > 0.5 {
                            dx = 1.0 - dx;
                        }
                        let mut dy = (ry - by).abs();
                        if dy > 0.5 {
                            dy = 1.0 - dy;
                        }
                        let d2 = (dx * dx + dy * dy) / (blob.radius * blob.radius);
                        if d2 < 9.0 {
                            let g = (-0.5 * d2).exp() * burst;
                            for (ch, p) in px.iter_mut().enumerate().take(c.min(3)) {
                                *p += blob.color[ch] * g;
                            }
                        }
                    }
                    let base = ((f * h + y) * w + x) * c;
                    for ch in 0..c {
                        let noise = self.noise_sigma * rng.normal();
                        let jitter = brightness + color_jitter[ch.min(2)];
                        data[base + ch] = (px[ch.min(2)] + jitter + noise).clamp(0.0, 255.0);
                    }
                }
            }
        }
        video
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = SyntheticVideoGenerator::new(ClipSpec::tiny(), 5);
        assert_eq!(g.generate(3, 7), g.generate(3, 7));
    }

    #[test]
    fn instances_of_a_class_differ() {
        let g = SyntheticVideoGenerator::new(ClipSpec::tiny(), 5);
        assert_ne!(g.generate(3, 7), g.generate(3, 8));
    }

    #[test]
    fn signatures_differ_across_classes() {
        let a = ClassSignature::derive(0, 9);
        let b = ClassSignature::derive(1, 9);
        assert_ne!(a, b);
    }

    #[test]
    fn pixels_stay_in_range() {
        let g = SyntheticVideoGenerator::new(ClipSpec::tiny(), 6);
        let v = g.generate(10, 0);
        assert!(v.tensor().min() >= 0.0 && v.tensor().max() <= 255.0);
    }

    #[test]
    fn same_class_videos_are_closer_than_cross_class() {
        // Raw-pixel distance already shows class structure (the feature
        // extractors only need to sharpen it).
        let g = SyntheticVideoGenerator::new(ClipSpec::tiny(), 8).with_noise_sigma(3.0);
        let a0 = g.generate(0, 0);
        let a1 = g.generate(0, 1);
        let b0 = g.generate(1, 0);
        let intra = a0.tensor().sq_distance(a1.tensor()).unwrap();
        let inter = a0.tensor().sq_distance(b0.tensor()).unwrap();
        assert!(
            intra < inter,
            "intra-class distance {intra} should be below inter-class {inter}"
        );
    }

    #[test]
    fn burst_concentrates_energy_in_key_frames() {
        // The frame closest to the burst center must carry more blob energy
        // than the clip's first frame (far from the burst): this is the
        // "key frames" property DUO's frame search exploits.
        let spec = ClipSpec::tiny();
        let g = SyntheticVideoGenerator::new(spec, 8).with_noise_sigma(0.0);
        let sig = ClassSignature::derive(2, 8);
        let v = g.generate(2, 0);
        let frame_energy = |f: usize| -> f32 {
            let fe = spec.frame_elements();
            v.tensor().as_slice()[f * fe..(f + 1) * fe].iter().sum::<f32>()
        };
        let burst_frame =
            ((sig.burst_center * spec.frames as f32) as usize).min(spec.frames - 1);
        let far_frame = if sig.burst_center > 0.5 { 0 } else { spec.frames - 1 };
        assert!(
            frame_energy(burst_frame) > frame_energy(far_frame),
            "burst frame should be brighter"
        );
    }
}

