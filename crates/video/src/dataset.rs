use crate::{ClipSpec, SyntheticVideoGenerator, Video};

/// Identifier of one synthetic video: generation is a pure function of the
/// id (plus the dataset seed), so datasets never materialize their corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VideoId {
    /// Class (action category) index.
    pub class: u32,
    /// Instance index within the class.
    pub instance: u32,
}
duo_tensor::impl_to_json!(struct VideoId { class, instance });

/// Which benchmark corpus the synthetic dataset mirrors.
///
/// Class and split counts follow Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// UCF101: 101 action classes, 9,324 train / 3,996 test videos.
    Ucf101Like,
    /// HMDB51: 51 action classes, 4,900 train / 2,100 test videos.
    Hmdb51Like,
}
duo_tensor::impl_to_json!(enum DatasetKind { Ucf101Like, Hmdb51Like });

impl DatasetKind {
    /// Number of action classes.
    pub fn num_classes(self) -> u32 {
        match self {
            DatasetKind::Ucf101Like => 101,
            DatasetKind::Hmdb51Like => 51,
        }
    }

    /// Paper Table I train/test video counts.
    pub fn paper_split(self) -> (usize, usize) {
        match self {
            DatasetKind::Ucf101Like => (9_324, 3_996),
            DatasetKind::Hmdb51Like => (4_900, 2_100),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Ucf101Like => "UCF101",
            DatasetKind::Hmdb51Like => "HMDB51",
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A class-structured synthetic video dataset with train/test splits.
///
/// Videos are generated lazily and deterministically from their
/// [`VideoId`]; holding the full UCF101-scale catalog costs only the id
/// list.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    kind: DatasetKind,
    generator: SyntheticVideoGenerator,
    train: Vec<VideoId>,
    test: Vec<VideoId>,
}

impl SyntheticDataset {
    /// Builds the full paper-scale catalog (Table I counts).
    pub fn full(kind: DatasetKind, spec: ClipSpec, seed: u64) -> Self {
        let (train_n, test_n) = kind.paper_split();
        Self::with_counts(kind, spec, seed, train_n, test_n)
    }

    /// Builds a subsampled catalog with `train_per_class` / `test_per_class`
    /// videos per class — the tractable scale used by tests and the default
    /// experiment harness.
    pub fn subsampled(
        kind: DatasetKind,
        spec: ClipSpec,
        seed: u64,
        train_per_class: u32,
        test_per_class: u32,
    ) -> Self {
        let classes = kind.num_classes();
        let mut train = Vec::with_capacity((classes * train_per_class) as usize);
        let mut test = Vec::with_capacity((classes * test_per_class) as usize);
        for class in 0..classes {
            for i in 0..train_per_class {
                train.push(VideoId { class, instance: i });
            }
            for i in 0..test_per_class {
                test.push(VideoId { class, instance: train_per_class + i });
            }
        }
        SyntheticDataset { kind, generator: SyntheticVideoGenerator::new(spec, seed), train, test }
    }

    fn with_counts(kind: DatasetKind, spec: ClipSpec, seed: u64, train_n: usize, test_n: usize) -> Self {
        let classes = kind.num_classes() as usize;
        // Round-robin classes so every class appears in both splits; the
        // instance counter continues from train into test so ids stay unique.
        let mut per_class_counter = vec![0u32; classes];
        let make = |count: usize, counter: &mut Vec<u32>| -> Vec<VideoId> {
            (0..count)
                .map(|i| {
                    let class = (i % classes) as u32;
                    let instance = counter[class as usize];
                    counter[class as usize] += 1;
                    VideoId { class, instance }
                })
                .collect()
        };
        let train = make(train_n, &mut per_class_counter);
        let test = make(test_n, &mut per_class_counter);
        SyntheticDataset { kind, generator: SyntheticVideoGenerator::new(spec, seed), train, test }
    }

    /// The corpus this dataset mirrors.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The clip geometry.
    pub fn spec(&self) -> ClipSpec {
        self.generator.spec()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> u32 {
        self.kind.num_classes()
    }

    /// Training split ids.
    pub fn train(&self) -> &[VideoId] {
        &self.train
    }

    /// Test split ids.
    pub fn test(&self) -> &[VideoId] {
        &self.test
    }

    /// Materializes the video for `id`.
    pub fn video(&self, id: VideoId) -> Video {
        self.generator.generate(id.class, id.instance)
    }

    /// The underlying generator (e.g. for creating off-catalog probes).
    pub fn generator(&self) -> &SyntheticVideoGenerator {
        &self.generator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_catalog_matches_table1_counts() {
        let ds = SyntheticDataset::full(DatasetKind::Ucf101Like, ClipSpec::tiny(), 1);
        assert_eq!(ds.train().len(), 9_324);
        assert_eq!(ds.test().len(), 3_996);
        assert_eq!(ds.num_classes(), 101);
        let hm = SyntheticDataset::full(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 1);
        assert_eq!(hm.train().len(), 4_900);
        assert_eq!(hm.test().len(), 2_100);
        assert_eq!(hm.num_classes(), 51);
    }

    #[test]
    fn ids_are_unique_across_splits() {
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 1, 3, 2);
        let mut all: Vec<VideoId> = ds.train().iter().chain(ds.test()).copied().collect();
        let before = all.len();
        all.sort_by_key(|id| (id.class, id.instance));
        all.dedup();
        assert_eq!(all.len(), before, "train/test ids must not collide");
    }

    #[test]
    fn subsampled_covers_every_class() {
        let ds = SyntheticDataset::subsampled(DatasetKind::Ucf101Like, ClipSpec::tiny(), 1, 2, 1);
        for class in 0..101 {
            assert!(ds.train().iter().any(|id| id.class == class));
            assert!(ds.test().iter().any(|id| id.class == class));
        }
    }

    #[test]
    fn video_generation_is_stable() {
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 2, 1, 1);
        let id = ds.train()[5];
        assert_eq!(ds.video(id), ds.video(id));
    }

    #[test]
    fn full_catalog_spreads_instances_across_classes() {
        let ds = SyntheticDataset::full(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 1);
        // 4900 train / 51 classes ≈ 96 per class.
        let count = ds.train().iter().filter(|id| id.class == 0).count();
        assert!((90..=100).contains(&count), "got {count}");
    }
}
