use crate::ClipSpec;
use duo_tensor::{Tensor, TensorError};

/// A video clip in the paper's `N × H × W × C` layout with values in
/// `[0, 255]`.
///
/// `Video` is the boundary type between the data/attack world (which
/// thinks in frames and pixels, like the paper's `v ∈ R^{N×W×H×C}`) and
/// the model world (which consumes channel-first `[C, T, H, W]` tensors;
/// see [`Video::to_model_input`]).
///
/// # Example
///
/// ```
/// use duo_video::{ClipSpec, Video};
///
/// let mut v = Video::zeros(ClipSpec::tiny());
/// v.set_pixel(0, 3, 4, 1, 200.0)?;
/// assert_eq!(v.pixel(0, 3, 4, 1)?, 200.0);
/// # Ok::<(), duo_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Video {
    spec: ClipSpec,
    data: Tensor,
}
duo_tensor::impl_to_json!(struct Video { spec, data });

impl Video {
    /// Creates an all-black clip.
    pub fn zeros(spec: ClipSpec) -> Self {
        Video { spec, data: Tensor::zeros(&[spec.frames, spec.height, spec.width, spec.channels]) }
    }

    /// Wraps an existing `[N, H, W, C]` tensor as a video.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the tensor shape does not
    /// match `spec`.
    pub fn from_tensor(spec: ClipSpec, data: Tensor) -> Result<Self, TensorError> {
        let expected = [spec.frames, spec.height, spec.width, spec.channels];
        if data.dims() != expected {
            return Err(TensorError::ShapeMismatch {
                lhs: data.dims().to_vec(),
                rhs: expected.to_vec(),
                op: "Video::from_tensor",
            });
        }
        Ok(Video { spec, data })
    }

    /// The clip geometry.
    pub fn spec(&self) -> ClipSpec {
        self.spec
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.spec.frames
    }

    /// The underlying `[N, H, W, C]` tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.data
    }

    /// Mutable access to the underlying tensor.
    pub fn tensor_mut(&mut self) -> &mut Tensor {
        &mut self.data
    }

    /// Consumes the video and returns the underlying tensor.
    pub fn into_tensor(self) -> Tensor {
        self.data
    }

    /// Pixel value at `(frame, y, x, channel)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid coordinates.
    pub fn pixel(&self, frame: usize, y: usize, x: usize, c: usize) -> Result<f32, TensorError> {
        self.data.at(&[frame, y, x, c])
    }

    /// Sets the pixel value at `(frame, y, x, channel)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid coordinates.
    pub fn set_pixel(
        &mut self,
        frame: usize,
        y: usize,
        x: usize,
        c: usize,
        value: f32,
    ) -> Result<(), TensorError> {
        self.data.set(&[frame, y, x, c], value)
    }

    /// Clamps all pixels into the valid `[0, 255]` range in place.
    pub fn clip_to_range(&mut self) {
        self.data.map_inplace(|x| x.clamp(0.0, 255.0));
    }

    /// Rounds all pixels to integers (8-bit quantization) in place.
    ///
    /// Query-based attacks submit videos to the victim service, which only
    /// accepts 8-bit content; this is the lossy step they must survive.
    pub fn quantize(&mut self) {
        self.data.map_inplace(|x| x.round().clamp(0.0, 255.0));
    }

    /// Adds a perturbation tensor (same `[N, H, W, C]` shape), then clips
    /// to the valid range.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_perturbation(&self, phi: &Tensor) -> Result<Video, TensorError> {
        let mut out = Video { spec: self.spec, data: self.data.add(phi)? };
        out.clip_to_range();
        Ok(out)
    }

    /// The actually-applied perturbation between `self` and an original
    /// video (`self - original`), e.g. after range clipping.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn perturbation_from(&self, original: &Video) -> Result<Tensor, TensorError> {
        self.data.sub(&original.data)
    }

    /// Converts to the channel-first `[C, T, H, W]` layout models consume,
    /// scaled to roughly unit range (divided by 255).
    pub fn to_model_input(&self) -> Tensor {
        let (n, h, w, c) =
            (self.spec.frames, self.spec.height, self.spec.width, self.spec.channels);
        let mut out = Tensor::zeros(&[c, n, h, w]);
        let iv = self.data.as_slice();
        let ov = out.as_mut_slice();
        for f in 0..n {
            for y in 0..h {
                for x in 0..w {
                    let base = ((f * h + y) * w + x) * c;
                    for ch in 0..c {
                        ov[((ch * n + f) * h + y) * w + x] = iv[base + ch] / 255.0;
                    }
                }
            }
        }
        out
    }

    /// Converts a channel-first `[C, T, H, W]` gradient (as produced by
    /// model backward passes on [`Video::to_model_input`]) back to the
    /// video's `[N, H, W, C]` layout, including the 1/255 input scaling.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the gradient shape does
    /// not match the clip geometry.
    pub fn gradient_to_video_layout(&self, grad: &Tensor) -> Result<Tensor, TensorError> {
        let (n, h, w, c) =
            (self.spec.frames, self.spec.height, self.spec.width, self.spec.channels);
        if grad.dims() != [c, n, h, w] {
            return Err(TensorError::ShapeMismatch {
                lhs: grad.dims().to_vec(),
                rhs: vec![c, n, h, w],
                op: "gradient_to_video_layout",
            });
        }
        let mut out = Tensor::zeros(&[n, h, w, c]);
        let gv = grad.as_slice();
        let ov = out.as_mut_slice();
        for f in 0..n {
            for y in 0..h {
                for x in 0..w {
                    let base = ((f * h + y) * w + x) * c;
                    for ch in 0..c {
                        // Chain rule through the x/255 scaling.
                        ov[base + ch] = gv[((ch * n + f) * h + y) * w + x] / 255.0;
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_tensor::Rng64;

    #[test]
    fn pixel_round_trip() {
        let mut v = Video::zeros(ClipSpec::tiny());
        v.set_pixel(2, 5, 6, 1, 123.0).unwrap();
        assert_eq!(v.pixel(2, 5, 6, 1).unwrap(), 123.0);
        assert!(v.pixel(99, 0, 0, 0).is_err());
    }

    #[test]
    fn from_tensor_validates_shape() {
        let spec = ClipSpec::tiny();
        assert!(Video::from_tensor(spec, Tensor::zeros(&[1, 2, 3])).is_err());
        let good = Tensor::zeros(&[spec.frames, spec.height, spec.width, spec.channels]);
        assert!(Video::from_tensor(spec, good).is_ok());
    }

    #[test]
    fn clip_to_range_bounds_pixels() {
        let spec = ClipSpec::tiny();
        let mut rng = Rng64::new(81);
        let t = Tensor::rand_uniform(
            &[spec.frames, spec.height, spec.width, spec.channels],
            -100.0,
            400.0,
            rng.as_rng(),
        );
        let mut v = Video::from_tensor(spec, t).unwrap();
        v.clip_to_range();
        assert!(v.tensor().min() >= 0.0 && v.tensor().max() <= 255.0);
    }

    #[test]
    fn quantize_rounds_to_integers() {
        let mut v = Video::zeros(ClipSpec::tiny());
        v.set_pixel(0, 0, 0, 0, 10.6).unwrap();
        v.quantize();
        assert_eq!(v.pixel(0, 0, 0, 0).unwrap(), 11.0);
    }

    #[test]
    fn model_input_layout_round_trips_gradient() {
        // <to_model_input(v), g> must equal <v, gradient_to_video_layout(g)>
        // up to the 255^2 scaling — i.e. the layout conversion is the exact
        // adjoint used by SparseTransfer's input gradients.
        let spec = ClipSpec::tiny();
        let mut rng = Rng64::new(82);
        let t = Tensor::rand_uniform(
            &[spec.frames, spec.height, spec.width, spec.channels],
            0.0,
            255.0,
            rng.as_rng(),
        );
        let v = Video::from_tensor(spec, t).unwrap();
        let x = v.to_model_input();
        let g = Tensor::randn(x.dims(), 1.0, rng.as_rng());
        let lhs = x.dot(&g).unwrap();
        let gv = v.gradient_to_video_layout(&g).unwrap();
        let rhs = v.tensor().dot(&gv).unwrap();
        assert!((lhs - rhs / 1.0).abs() / lhs.abs().max(1.0) < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn add_perturbation_clips() {
        let spec = ClipSpec::tiny();
        let v = Video::zeros(spec);
        let phi = Tensor::full(
            &[spec.frames, spec.height, spec.width, spec.channels],
            -30.0,
        );
        let adv = v.add_perturbation(&phi).unwrap();
        assert_eq!(adv.tensor().min(), 0.0, "clipping must prevent negative pixels");
    }

    #[test]
    fn perturbation_from_recovers_applied_delta() {
        let spec = ClipSpec::tiny();
        let mut v = Video::zeros(spec);
        v.set_pixel(0, 0, 0, 0, 100.0).unwrap();
        let mut phi = Tensor::zeros(&[spec.frames, spec.height, spec.width, spec.channels]);
        phi.as_mut_slice()[0] = 25.0;
        let adv = v.add_perturbation(&phi).unwrap();
        let applied = adv.perturbation_from(&v).unwrap();
        assert_eq!(applied.as_slice()[0], 25.0);
        assert_eq!(applied.l0_norm(), 1);
    }
}
