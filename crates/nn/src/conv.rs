use crate::{Layer, NnError, Param, Result};
use duo_tensor::{
    col2im3d, gemm_packed, im2col3d, im2col3d_into, matmul_into, Conv3dSpec, PackedA, Rng64,
    Tensor,
};

/// 3-D convolution over `[C, T, H, W]` inputs.
///
/// A `Conv3d` with `kt = 1` and `st = 1` degenerates to a per-frame 2-D
/// convolution, which is how the per-frame ResNet backbones in
/// `duo-models` are expressed without a separate 2-D code path.
///
/// Forward lowers to `W · im2col(x)`; backward uses the transpose of the
/// same lowering (`col2im(Wᵀ · g)`), so the correctness of both reduces to
/// the adjoint identity tested in `duo-tensor`.
pub struct Conv3d {
    weight: Param,
    bias: Param,
    spec: Conv3dSpec,
    out_channels: usize,
    cache: Option<ConvCache>,
}

struct ConvCache {
    cols: Tensor,
    in_dims: Vec<usize>,
    out_thw: (usize, usize, usize),
}

impl Conv3d {
    /// Creates a 3-D convolution with He-normal weight init and zero bias.
    pub fn new(spec: Conv3dSpec, out_channels: usize, rng: &mut Rng64) -> Self {
        let fan_in = (spec.in_channels * spec.kt * spec.kh * spec.kw) as f32;
        let std = (2.0 / fan_in).sqrt();
        let weight = Param::new(Tensor::randn(
            &[out_channels, spec.in_channels, spec.kt, spec.kh, spec.kw],
            std,
            rng.as_rng(),
        ));
        let bias = Param::new(Tensor::zeros(&[out_channels]));
        Conv3d { weight, bias, spec, out_channels, cache: None }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv3dSpec {
        &self.spec
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The lowered forward pass. Returns the output plus the `im2col`
    /// buffer and geometry so the training path can cache them; the
    /// inference path drops them on the floor.
    fn run_forward(
        &self,
        input: &Tensor,
    ) -> Result<(Tensor, Tensor, (usize, usize, usize))> {
        if input.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "Conv3d",
                reason: format!("needs rank-4 [C,T,H,W], got {:?}", input.dims()),
            });
        }
        let (t, h, w) = (input.dims()[1], input.dims()[2], input.dims()[3]);
        let out_thw = self.spec.output_thw(t, h, w)?;
        let cols = im2col3d(input, &self.spec)?;
        let k = self.spec.in_channels * self.spec.kt * self.spec.kh * self.spec.kw;
        let wm = self.weight.value.reshape(&[self.out_channels, k])?;
        let positions = out_thw.0 * out_thw.1 * out_thw.2;
        let mut out = Tensor::zeros(&[self.out_channels, positions]);
        matmul_into(&wm, &cols, &mut out)?;
        // Add per-channel bias.
        let bv = self.bias.value.as_slice().to_vec();
        let ov = out.as_mut_slice();
        for (o, &b) in bv.iter().enumerate() {
            for x in &mut ov[o * positions..(o + 1) * positions] {
                *x += b;
            }
        }
        let out = out.reshape(&[self.out_channels, out_thw.0, out_thw.1, out_thw.2])?;
        Ok((out, cols, out_thw))
    }
}

impl std::fmt::Debug for Conv3d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conv3d")
            .field("in", &self.spec.in_channels)
            .field("out", &self.out_channels)
            .field("kernel", &(self.spec.kt, self.spec.kh, self.spec.kw))
            .field("stride", &(self.spec.st, self.spec.sh, self.spec.sw))
            .finish()
    }
}

impl Layer for Conv3d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (out, cols, out_thw) = self.run_forward(input)?;
        self.cache = Some(ConvCache { cols, in_dims: input.dims().to_vec(), out_thw });
        Ok(out)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        let (out, _cols, _out_thw) = self.run_forward(input)?;
        Ok(out)
    }

    fn infer_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        // The per-call setup — reshaping the weight to a matrix (a full
        // copy of the weight data) and allocating the im2col buffer (the
        // largest allocation in the whole forward pass) — is identical
        // for every same-shaped input, so hoist it out of the loop. The
        // per-item arithmetic and its order are unchanged, keeping each
        // output bit-identical to `infer`.
        let Some((first, _)) = inputs.split_first() else {
            return Ok(Vec::new());
        };
        if inputs.iter().any(|x| x.dims() != first.dims()) {
            return inputs.iter().map(|x| self.infer(x)).collect();
        }
        if first.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "Conv3d",
                reason: format!("needs rank-4 [C,T,H,W], got {:?}", first.dims()),
            });
        }
        let (t, h, w) = (first.dims()[1], first.dims()[2], first.dims()[3]);
        let out_thw = self.spec.output_thw(t, h, w)?;
        let positions = out_thw.0 * out_thw.1 * out_thw.2;
        let k = self.spec.in_channels * self.spec.kt * self.spec.kh * self.spec.kw;
        let wm = self.weight.value.reshape(&[self.out_channels, k])?;
        // The weight matrix is the left GEMM operand of every item, so
        // pack it once and reuse the packed panels across the whole
        // batch (and across the output stripes of each threaded GEMM)
        // instead of re-packing per item.
        let packed_w = PackedA::pack(&wm)?;
        let bv = self.bias.value.as_slice().to_vec();
        let mut cols = Tensor::zeros(&[k, positions]);
        // Scratch output reused across items: the GEMM overwrites every
        // element, so stale values never leak between items.
        let mut out = Tensor::zeros(&[self.out_channels, positions]);
        let mut outs = Vec::with_capacity(inputs.len());
        for input in inputs {
            im2col3d_into(input, &self.spec, &mut cols)?;
            gemm_packed(&packed_w, &cols, &mut out)?;
            let ov = out.as_mut_slice();
            for (o, &b) in bv.iter().enumerate() {
                for x in &mut ov[o * positions..(o + 1) * positions] {
                    *x += b;
                }
            }
            outs.push(out.reshape(&[self.out_channels, out_thw.0, out_thw.1, out_thw.2])?);
        }
        Ok(outs)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::MissingForwardCache { layer: "Conv3d" })?;
        let (ot, oh, ow) = cache.out_thw;
        let positions = ot * oh * ow;
        if grad_out.dims() != [self.out_channels, ot, oh, ow] {
            return Err(NnError::BadInput {
                layer: "Conv3d",
                reason: format!(
                    "grad dims {:?} != expected [{},{ot},{oh},{ow}]",
                    grad_out.dims(),
                    self.out_channels
                ),
            });
        }
        let g = grad_out.reshape(&[self.out_channels, positions])?;
        let k = self.spec.in_channels * self.spec.kt * self.spec.kh * self.spec.kw;

        // Parameter gradients: dW = g · colsᵀ, db = row sums of g.
        let cols_t = cache.cols.transpose()?;
        let mut wgrad = Tensor::zeros(&[self.out_channels, k]);
        matmul_into(&g, &cols_t, &mut wgrad)?;
        self.weight.grad.axpy(1.0, &wgrad.reshape(self.weight.value.dims())?)?;
        let gv = g.as_slice();
        let bg = self.bias.grad.as_mut_slice();
        for o in 0..self.out_channels {
            bg[o] += gv[o * positions..(o + 1) * positions].iter().sum::<f32>();
        }

        // Input gradient: col2im(Wᵀ · g).
        let wm = self.weight.value.reshape(&[self.out_channels, k])?;
        let wt = wm.transpose()?;
        let mut gcols = Tensor::zeros(&[k, positions]);
        matmul_into(&wt, &g, &mut gcols)?;
        let (t, h, w) = (cache.in_dims[1], cache.in_dims[2], cache.in_dims[3]);
        Ok(col2im3d(&gcols, &self.spec, t, h, w)?)
    }

    fn name(&self) -> &'static str {
        "Conv3d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Conv3d {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            spec: self.spec,
            out_channels: self.out_channels,
            cache: None,
        })
    }
}

impl crate::Parameterized for Conv3d {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_matches_spec() {
        let mut rng = Rng64::new(41);
        let spec = Conv3dSpec::cubic(3, 3, (1, 2, 2), 1);
        let mut conv = Conv3d::new(spec, 8, &mut rng);
        let x = Tensor::randn(&[3, 4, 8, 8], 1.0, rng.as_rng());
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.dims(), &[8, 4, 4, 4]);
    }

    #[test]
    fn kt1_behaves_per_frame() {
        // A kt=1 convolution must treat frames independently: permuting
        // frames of the input permutes frames of the output identically.
        let mut rng = Rng64::new(42);
        let spec = Conv3dSpec { in_channels: 1, kt: 1, kh: 3, kw: 3, st: 1, sh: 1, sw: 1, pt: 0, ph: 1, pw: 1 };
        let mut conv = Conv3d::new(spec, 2, &mut rng);
        let f0 = Tensor::randn(&[1, 1, 4, 4], 1.0, rng.as_rng());
        let f1 = Tensor::randn(&[1, 1, 4, 4], 1.0, rng.as_rng());
        let mut both = Tensor::zeros(&[1, 2, 4, 4]);
        both.as_mut_slice()[..16].copy_from_slice(f0.as_slice());
        both.as_mut_slice()[16..].copy_from_slice(f1.as_slice());
        let y_both = conv.forward(&both).unwrap();
        let y0 = conv.forward(&f0).unwrap();
        let y1 = conv.forward(&f1).unwrap();
        for ch in 0..2 {
            for (i, (&a, &b)) in y0.as_slice()[ch * 16..(ch + 1) * 16]
                .iter()
                .zip(&y_both.as_slice()[ch * 32..ch * 32 + 16])
                .enumerate()
            {
                assert!((a - b).abs() < 1e-5, "frame0 ch{ch} pos{i}: {a} vs {b}");
            }
            for (i, (&a, &b)) in y1.as_slice()[ch * 16..(ch + 1) * 16]
                .iter()
                .zip(&y_both.as_slice()[ch * 32 + 16..(ch + 1) * 32])
                .enumerate()
            {
                assert!((a - b).abs() < 1e-5, "frame1 ch{ch} pos{i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn bias_shifts_all_positions() {
        let mut rng = Rng64::new(43);
        let spec = Conv3dSpec::cubic(1, 1, (1, 1, 1), 0);
        let mut conv = Conv3d::new(spec, 1, &mut rng);
        conv.weight.value = Tensor::zeros(&[1, 1, 1, 1, 1]);
        conv.bias.value = Tensor::from_vec(vec![2.5], &[1]).unwrap();
        let y = conv.forward(&Tensor::zeros(&[1, 2, 2, 2])).unwrap();
        assert!(y.as_slice().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = Rng64::new(44);
        let mut conv = Conv3d::new(Conv3dSpec::cubic(1, 1, (1, 1, 1), 0), 1, &mut rng);
        assert!(conv.backward(&Tensor::ones(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = Rng64::new(45);
        let spec = Conv3dSpec::cubic(2, 2, (1, 1, 1), 0);
        let mut conv = Conv3d::new(spec, 3, &mut rng);
        let x = Tensor::randn(&[2, 3, 4, 4], 0.5, rng.as_rng());
        // Scalar loss: sum of outputs.
        let y = conv.forward(&x).unwrap();
        let gx = conv.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2;
        for &probe in &[0usize, 7, 31, 95] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let yp = conv.forward(&xp).unwrap();
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let ym = conv.forward(&xm).unwrap();
            let num = (yp.sum() - ym.sum()) / (2.0 * eps);
            let ana = gx.as_slice()[probe];
            assert!((num - ana).abs() < 1e-2 * (1.0 + ana.abs()), "probe {probe}: {num} vs {ana}");
        }
    }
}
