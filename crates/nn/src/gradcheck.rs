//! Finite-difference gradient checking.
//!
//! Every hand-derived backward pass in the workspace is validated against
//! these helpers, because a silently wrong gradient would not crash — it
//! would just make SparseTransfer quietly ineffective and invalidate the
//! reproduction.

use crate::{Layer, Result};
use duo_tensor::Tensor;

/// Numerically estimates `d(sum ∘ layer)/d(input)` by central differences.
///
/// # Errors
///
/// Propagates any error from the layer's `forward`.
pub fn numeric_input_gradient(
    layer: &mut dyn Layer,
    input: &Tensor,
    eps: f32,
) -> Result<Tensor> {
    let mut grad = Tensor::zeros(input.dims());
    for i in 0..input.len() {
        let mut xp = input.clone();
        xp.as_mut_slice()[i] += eps;
        let fp = layer.forward(&xp)?.sum();
        let mut xm = input.clone();
        xm.as_mut_slice()[i] -= eps;
        let fm = layer.forward(&xm)?.sum();
        grad.as_mut_slice()[i] = (fp - fm) / (2.0 * eps);
    }
    Ok(grad)
}

/// Verifies the analytic input gradient of `layer` against finite
/// differences for the scalar loss `sum(layer(x))`.
///
/// Returns the maximum relative error over all coordinates.
///
/// # Errors
///
/// Propagates any error from the layer's forward/backward passes.
pub fn check_input_gradient(layer: &mut dyn Layer, input: &Tensor, eps: f32) -> Result<f32> {
    let numeric = numeric_input_gradient(layer, input, eps)?;
    let out = layer.forward(input)?;
    let analytic = layer.backward(&Tensor::ones(out.dims()))?;
    let mut worst = 0.0f32;
    for (&n, &a) in numeric.as_slice().iter().zip(analytic.as_slice()) {
        let rel = (n - a).abs() / (1.0f32).max(n.abs().max(a.abs()));
        worst = worst.max(rel);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv3d, GlobalAvgPool, L2Normalize, Linear, MaxPool3d, Relu, Sequential};
    use duo_tensor::{Conv3dSpec, Pool3dSpec, Rng64, Tensor};

    #[test]
    fn linear_gradient_checks() {
        let mut rng = Rng64::new(71);
        let mut layer = Linear::new(5, 3, &mut rng);
        let x = Tensor::randn(&[5], 1.0, rng.as_rng());
        let err = check_input_gradient(&mut layer, &x, 1e-2).unwrap();
        assert!(err < 1e-2, "relative error {err}");
    }

    #[test]
    fn conv3d_gradient_checks() {
        let mut rng = Rng64::new(72);
        let mut layer = Conv3d::new(Conv3dSpec::cubic(2, 2, (1, 1, 1), 1), 3, &mut rng);
        let x = Tensor::randn(&[2, 3, 4, 4], 0.5, rng.as_rng());
        let err = check_input_gradient(&mut layer, &x, 1e-2).unwrap();
        assert!(err < 2e-2, "relative error {err}");
    }

    #[test]
    fn conv3d_gradient_checks_past_tile_remainders() {
        // Large enough that the backward GEMMs (dW = g·colsᵀ and
        // col2im(Wᵀ·g)) exercise the blocked kernel's partial NR/MR
        // tiles: 81 im2col rows and 144 positions are not multiples of
        // the 4×16 micro-tile.
        let mut rng = Rng64::new(75);
        let mut layer = Conv3d::new(Conv3dSpec::cubic(3, 3, (1, 1, 1), 1), 5, &mut rng);
        let x = Tensor::randn(&[3, 4, 6, 6], 0.5, rng.as_rng());
        let err = check_input_gradient(&mut layer, &x, 1e-2).unwrap();
        assert!(err < 2e-2, "relative error {err}");
    }

    #[test]
    fn infer_batch_is_bitwise_eval_forward_after_kernel_swap() {
        // The Layer contract: `infer_batch` equals per-sample eval-mode
        // `forward` at f32::to_bits granularity. The batched path runs the
        // blocked (possibly threaded) GEMM with hoisted workspaces, the
        // per-sample path runs the same kernels one item at a time.
        let mut rng = Rng64::new(76);
        let mut net = Sequential::new(vec![
            Box::new(Conv3d::new(Conv3dSpec::cubic(2, 3, (1, 1, 1), 1), 4, &mut rng))
                as Box<dyn Layer>,
            Box::new(Relu::new()),
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new(4, 3, &mut rng)),
        ]);
        let inputs: Vec<Tensor> =
            (0..4).map(|_| Tensor::randn(&[2, 3, 7, 7], 1.0, rng.as_rng())).collect();
        let batched = net.infer_batch(&inputs).unwrap();
        for (x, y) in inputs.iter().zip(&batched) {
            let single = net.forward(x).unwrap();
            let sb: Vec<u32> = single.as_slice().iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u32> = y.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, yb, "batched inference drifted from eval-mode forward");
        }
    }

    #[test]
    fn l2_normalize_gradient_checks() {
        let mut rng = Rng64::new(73);
        let mut layer = L2Normalize::new();
        let x = Tensor::randn(&[6], 1.0, rng.as_rng());
        let err = check_input_gradient(&mut layer, &x, 1e-3).unwrap();
        assert!(err < 1e-2, "relative error {err}");
    }

    #[test]
    fn deep_stack_gradient_checks() {
        let mut rng = Rng64::new(74);
        let mut net = Sequential::new(vec![
            Box::new(Conv3d::new(Conv3dSpec::cubic(1, 2, (1, 2, 2), 0), 4, &mut rng))
                as Box<dyn Layer>,
            Box::new(Relu::new()),
            Box::new(MaxPool3d::new(Pool3dSpec::spatial(2))),
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new(4, 2, &mut rng)),
        ]);
        // Offset the input away from ReLU/max kinks so finite differences
        // are valid.
        let x = Tensor::rand_uniform(&[1, 3, 9, 9], 0.5, 2.0, rng.as_rng());
        let err = check_input_gradient(&mut net, &x, 1e-2).unwrap();
        assert!(err < 5e-2, "relative error {err}");
    }
}
