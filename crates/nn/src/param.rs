use duo_tensor::Tensor;

/// A trainable parameter: a value tensor paired with its gradient
/// accumulator.
///
/// Gradients accumulate across `backward` calls (mini-batch accumulation is
/// "sum then step"); call [`Param::zero_grad`] between optimizer steps.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient, same shape as `value`.
    pub grad: Tensor,
}
duo_tensor::impl_to_json!(struct Param { value, grad });

impl Param {
    /// Wraps an initial value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_of_same_shape() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert!(p.grad.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn zero_grad_clears_accumulator() {
        let mut p = Param::new(Tensor::ones(&[4]));
        p.grad.as_mut_slice().fill(3.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&x| x == 0.0));
    }
}
