use crate::{NnError, Param, Result};
use duo_tensor::Tensor;

/// Anything that owns trainable parameters.
///
/// Optimizers step over `Parameterized` values, which lets composite
/// training targets (e.g. a backbone plus a metric-loss head with class
/// prototypes) be stepped jointly even when the composite itself is not a
/// [`Layer`]. Every `Layer` is `Parameterized` via a blanket impl.
pub trait Parameterized {
    /// Visits every trainable parameter in a deterministic order.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param));

    /// Zeroes all parameter gradient accumulators.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

/// Implements an empty [`Parameterized`] for layers without parameters.
#[macro_export]
macro_rules! param_free {
    ($($ty:ty),+ $(,)?) => {
        $(impl $crate::Parameterized for $ty {
            fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut $crate::Param)) {}
        })+
    };
}

/// A differentiable computation node with explicit forward/backward passes.
///
/// Layers are stateful on the *training* path: `forward` caches whatever
/// the matching `backward` needs, and `backward` both *returns the input
/// gradient* and *accumulates parameter gradients* into each
/// [`Param::grad`]. This contract is what lets the attack crates
/// differentiate a whole backbone down to video pixels (for
/// SparseTransfer) with the same code path used for training.
///
/// The *inference* path is [`Layer::infer`]: the identical computation in
/// evaluation mode, without touching any cache. Because it takes `&self`
/// (and the trait requires `Send + Sync`), a built network can be shared
/// across threads — the serving layer runs one model under concurrent
/// query load this way.
///
/// Implementations must tolerate repeated `forward` calls (the latest cache
/// wins), must return an error — not panic — when `backward` is called
/// before any `forward`, and must keep `infer` bit-identical to an
/// evaluation-mode `forward` on the same input.
pub trait Layer: Parameterized + Send + Sync {
    /// Computes the layer output for `input`, caching for `backward`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Computes the layer output without caching backward state
    /// (evaluation mode). Bit-identical to `forward` for deterministic
    /// layers; stochastic layers (dropout) behave as the identity, exactly
    /// like their evaluation mode.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn infer(&self, input: &Tensor) -> Result<Tensor>;

    /// Computes the layer output for a *batch* of inputs in evaluation
    /// mode. Bit-identical to calling [`Layer::infer`] on each input in
    /// order — the default does exactly that — but layers with expensive
    /// per-call setup (im2col workspaces, weight reshapes) override it to
    /// amortize that work across the batch. This is the batched forward
    /// entry point the serving layer's micro-batcher drives.
    ///
    /// # Errors
    ///
    /// Returns the first per-input error, exactly as `infer` would.
    fn infer_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        inputs.iter().map(|x| self.infer(x)).collect()
    }

    /// Propagates `grad_out` back through the layer, returning the gradient
    /// with respect to the input and accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForwardCache`] if called before `forward`,
    /// or a shape error if `grad_out` does not match the cached output.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Short human-readable layer name used in error messages.
    fn name(&self) -> &'static str;

    /// Clones the layer — parameters and configuration — behind a fresh
    /// box. Transient backward caches are *not* carried over: the clone
    /// behaves as if `forward` has never been called, so two clones can
    /// run training-path gradient sequences concurrently without sharing
    /// state. This is what lets each attack client in a campaign own its
    /// own surrogate copied from one stolen backbone.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ---------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------

/// A chain of layers applied in order.
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential container from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Appends a layer to the end of the chain.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of contained layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential").field("layers", &names).finish()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x)?;
        }
        Ok(x)
    }

    fn infer_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        // Feed the whole batch through layer by layer so each layer's
        // batched override amortizes its setup once per layer, not once
        // per item. The first layer consumes `inputs` directly, so the
        // batch of (large) input clips is never cloned.
        let Some((first, rest)) = self.layers.split_first() else {
            return Ok(inputs.to_vec());
        };
        let mut batch = first.infer_batch(inputs)?;
        for layer in rest {
            batch = layer.infer_batch(&batch)?;
        }
        Ok(batch)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Parameterized for Sequential {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }
}

param_free!(Relu, GlobalAvgPool, L2Normalize, TemporalStride);

// ---------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------

/// Rectified linear activation, `max(x, 0)` elementwise.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        Ok(input.map(|x| x.max(0.0)))
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or(NnError::MissingForwardCache { layer: "Relu" })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BadInput {
                layer: "Relu",
                reason: format!("grad length {} != cached {}", grad_out.len(), mask.len()),
            });
        }
        let mut g = grad_out.clone();
        for (x, &keep) in g.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *x = 0.0;
            }
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "Relu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Relu::new())
    }
}

// ---------------------------------------------------------------------
// GlobalAvgPool
// ---------------------------------------------------------------------

/// Global average pooling: `[C, …]` → `[C]`, averaging over all trailing
/// dimensions.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    in_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { in_dims: None }
    }
}

fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    if input.rank() < 2 {
        return Err(NnError::BadInput {
            layer: "GlobalAvgPool",
            reason: format!("needs rank >= 2, got {}", input.rank()),
        });
    }
    let c = input.dims()[0];
    let per: usize = input.dims()[1..].iter().product();
    let mut out = Tensor::zeros(&[c]);
    let iv = input.as_slice();
    for ch in 0..c {
        let s: f32 = iv[ch * per..(ch + 1) * per].iter().sum();
        out.as_mut_slice()[ch] = s / per as f32;
    }
    Ok(out)
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = global_avg_pool(input)?;
        self.in_dims = Some(input.dims().to_vec());
        Ok(out)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        global_avg_pool(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .in_dims
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "GlobalAvgPool" })?;
        let c = dims[0];
        let per: usize = dims[1..].iter().product();
        if grad_out.len() != c {
            return Err(NnError::BadInput {
                layer: "GlobalAvgPool",
                reason: format!("grad length {} != channels {}", grad_out.len(), c),
            });
        }
        let mut g = Tensor::zeros(dims);
        let gv = g.as_mut_slice();
        for ch in 0..c {
            let val = grad_out.as_slice()[ch] / per as f32;
            gv[ch * per..(ch + 1) * per].fill(val);
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(GlobalAvgPool::new())
    }
}

// ---------------------------------------------------------------------
// L2Normalize
// ---------------------------------------------------------------------

/// Projects a feature vector onto the unit sphere: `x / max(‖x‖₂, ε)`.
///
/// Metric-learning heads in the DUO models normalize embeddings so that
/// the losses (ArcFace especially) operate on angles.
#[derive(Debug)]
pub struct L2Normalize {
    eps: f32,
    cache: Option<(Tensor, f32)>,
}

impl L2Normalize {
    /// Creates a normalization layer with the default ε of `1e-8`.
    pub fn new() -> Self {
        L2Normalize { eps: 1e-8, cache: None }
    }
}

impl Default for L2Normalize {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for L2Normalize {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let norm = input.l2_norm().max(self.eps);
        self.cache = Some((input.clone(), norm));
        Ok(input.scale(1.0 / norm))
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        let norm = input.l2_norm().max(self.eps);
        Ok(input.scale(1.0 / norm))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (x, norm) = self
            .cache
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "L2Normalize" })?;
        // d(x/‖x‖)/dx = I/‖x‖ − x xᵀ/‖x‖³
        let dot = x.dot(grad_out)?;
        let mut g = grad_out.scale(1.0 / norm);
        g.axpy(-dot / (norm * norm * norm), x)?;
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "L2Normalize"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(L2Normalize { eps: self.eps, cache: None })
    }
}

// ---------------------------------------------------------------------
// Residual
// ---------------------------------------------------------------------

/// A residual block: `output = main(x) + shortcut(x)`, with an identity
/// shortcut when none is given.
///
/// The shortcut path (usually a strided 1×1×1 convolution) must produce the
/// same shape as the main path.
pub struct Residual {
    main: Sequential,
    shortcut: Option<Sequential>,
    forwarded: bool,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn identity(main: Sequential) -> Self {
        Residual { main, shortcut: None, forwarded: false }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_shortcut(main: Sequential, shortcut: Sequential) -> Self {
        Residual { main, shortcut: Some(shortcut), forwarded: false }
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field("main", &self.main)
            .field("has_shortcut", &self.shortcut.is_some())
            .finish()
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let main_out = self.main.forward(input)?;
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(input)?,
            None => input.clone(),
        };
        self.forwarded = true;
        main_out.add(&skip).map_err(|e| {
            NnError::BadInput {
                layer: "Residual",
                reason: format!("main/shortcut shape mismatch: {e}"),
            }
        })
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        let main_out = self.main.infer(input)?;
        let skip = match &self.shortcut {
            Some(s) => s.infer(input)?,
            None => input.clone(),
        };
        main_out.add(&skip).map_err(|e| {
            NnError::BadInput {
                layer: "Residual",
                reason: format!("main/shortcut shape mismatch: {e}"),
            }
        })
    }

    fn infer_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let main_outs = self.main.infer_batch(inputs)?;
        let skips = match &self.shortcut {
            Some(s) => s.infer_batch(inputs)?,
            None => inputs.to_vec(),
        };
        main_outs
            .iter()
            .zip(&skips)
            .map(|(m, s)| {
                m.add(s).map_err(|e| NnError::BadInput {
                    layer: "Residual",
                    reason: format!("main/shortcut shape mismatch: {e}"),
                })
            })
            .collect()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if !self.forwarded {
            return Err(NnError::MissingForwardCache { layer: "Residual" });
        }
        let g_main = self.main.backward(grad_out)?;
        let g_skip = match &mut self.shortcut {
            Some(s) => s.backward(grad_out)?,
            None => grad_out.clone(),
        };
        Ok(g_main.add(&g_skip)?)
    }

    fn name(&self) -> &'static str {
        "Residual"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Residual {
            main: self.main.clone(),
            shortcut: self.shortcut.clone(),
            forwarded: false,
        })
    }
}

impl Parameterized for Residual {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(visitor);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(visitor);
        }
    }
}

// ---------------------------------------------------------------------
// TemporalStride
// ---------------------------------------------------------------------

/// Subsamples a `[C, T, H, W]` clip along time, keeping every `stride`-th
/// frame. Used by the SlowFast backbone's slow pathway.
#[derive(Debug)]
pub struct TemporalStride {
    stride: usize,
    in_dims: Option<Vec<usize>>,
}

impl TemporalStride {
    /// Creates a temporal subsampling layer.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "TemporalStride requires stride > 0");
        TemporalStride { stride, in_dims: None }
    }
}

fn temporal_subsample(input: &Tensor, stride: usize) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(NnError::BadInput {
            layer: "TemporalStride",
            reason: format!("needs rank-4 [C,T,H,W], got rank {}", input.rank()),
        });
    }
    let (c, t, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let ot = t.div_ceil(stride);
    let mut out = Tensor::zeros(&[c, ot, h, w]);
    let iv = input.as_slice();
    let ov = out.as_mut_slice();
    let frame = h * w;
    for ch in 0..c {
        for (oz, z) in (0..t).step_by(stride).enumerate() {
            let src = (ch * t + z) * frame;
            let dst = (ch * ot + oz) * frame;
            ov[dst..dst + frame].copy_from_slice(&iv[src..src + frame]);
        }
    }
    Ok(out)
}

impl Layer for TemporalStride {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = temporal_subsample(input, self.stride)?;
        self.in_dims = Some(input.dims().to_vec());
        Ok(out)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        temporal_subsample(input, self.stride)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .in_dims
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "TemporalStride" })?;
        let (c, t, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let ot = t.div_ceil(self.stride);
        if grad_out.dims() != [c, ot, h, w] {
            return Err(NnError::BadInput {
                layer: "TemporalStride",
                reason: format!("grad dims {:?} != expected [{c},{ot},{h},{w}]", grad_out.dims()),
            });
        }
        let mut g = Tensor::zeros(dims);
        let gv = g.as_mut_slice();
        let ov = grad_out.as_slice();
        let frame = h * w;
        for ch in 0..c {
            for (oz, z) in (0..t).step_by(self.stride).enumerate() {
                let dst = (ch * t + z) * frame;
                let src = (ch * ot + oz) * frame;
                gv[dst..dst + frame].copy_from_slice(&ov[src..src + frame]);
            }
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "TemporalStride"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(TemporalStride { stride: self.stride, in_dims: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use duo_tensor::Rng64;

    #[test]
    fn relu_clamps_and_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[4]).unwrap();
        let y = relu.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let g = relu.backward(&Tensor::ones(&[4])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_backward_without_forward_errors() {
        let mut relu = Relu::new();
        assert!(matches!(
            relu.backward(&Tensor::ones(&[1])),
            Err(NnError::MissingForwardCache { .. })
        ));
    }

    #[test]
    fn global_avg_pool_reduces_trailing_dims() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 10.0, 20.0], &[2, 2]).unwrap();
        let y = gap.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 15.0]);
        let g = gap.backward(&Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap()).unwrap();
        assert_eq!(g.as_slice(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn l2_normalize_produces_unit_vectors() {
        let mut l2 = L2Normalize::new();
        let x = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let y = l2.forward(&x).unwrap();
        assert!((y.l2_norm() - 1.0).abs() < 1e-6);
        assert!((y.as_slice()[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_gradient_is_tangent() {
        // The gradient through normalization must be orthogonal to the
        // normalized output when grad_out == output (norm is constant on rays).
        let mut l2 = L2Normalize::new();
        let x = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let y = l2.forward(&x).unwrap();
        let g = l2.backward(&y).unwrap();
        assert!(g.l2_norm() < 1e-6, "gradient along the ray must vanish, got {g}");
    }

    #[test]
    fn sequential_composes_and_reverses() {
        let mut rng = Rng64::new(1);
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(3, 5, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(5, 2, &mut rng)),
        ]);
        let x = Tensor::ones(&[3]);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2]);
        let gx = net.backward(&Tensor::ones(&[2])).unwrap();
        assert_eq!(gx.dims(), &[3]);
        assert!(net.param_count() > 0);
    }

    #[test]
    fn residual_identity_adds_input() {
        let main = Sequential::new(vec![Box::new(Relu::new()) as Box<dyn Layer>]);
        let mut res = Residual::identity(main);
        let x = Tensor::from_vec(vec![-2.0, 3.0], &[2]).unwrap();
        let y = res.forward(&x).unwrap();
        // relu(-2) + (-2) = -2 ; relu(3) + 3 = 6
        assert_eq!(y.as_slice(), &[-2.0, 6.0]);
        let g = res.backward(&Tensor::ones(&[2])).unwrap();
        // d/dx (relu(x)+x) = [0+1, 1+1]
        assert_eq!(g.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn temporal_stride_keeps_every_kth_frame() {
        let mut ts = TemporalStride::new(2);
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 4, 1, 2]).unwrap();
        let y = ts.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2, 1, 2]);
        assert_eq!(y.as_slice(), &[0.0, 1.0, 4.0, 5.0]);
        let g = ts.backward(&Tensor::ones(&[1, 2, 1, 2])).unwrap();
        assert_eq!(g.as_slice(), &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_grad_clears_all_params() {
        let mut rng = Rng64::new(2);
        let mut net = Sequential::new(vec![Box::new(Linear::new(2, 2, &mut rng)) as Box<dyn Layer>]);
        let x = Tensor::ones(&[2]);
        net.forward(&x).unwrap();
        net.backward(&Tensor::ones(&[2])).unwrap();
        let mut nonzero = 0;
        net.visit_params(&mut |p| nonzero += p.grad.l0_norm());
        assert!(nonzero > 0);
        net.zero_grad();
        let mut after = 0;
        net.visit_params(&mut |p| after += p.grad.l0_norm());
        assert_eq!(after, 0);
    }
}
