//! Instance normalization over `[C, …]` activations.
//!
//! Normalizes each channel by its own mean/variance over all trailing
//! dimensions, with a learned per-channel affine (γ, β). With batch size 1
//! — the regime this workspace trains in — this is the batch-norm
//! equivalent that actually works, and it is available to downstream
//! users building their own backbones on `duo-nn`.

use crate::{Layer, NnError, Param, Parameterized, Result};
use duo_tensor::Tensor;

/// Per-channel instance normalization with learned affine parameters.
pub struct InstanceNorm {
    gamma: Param,
    beta: Param,
    channels: usize,
    eps: f32,
    cache: Option<NormCache>,
}

struct NormCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
    in_dims: Vec<usize>,
}

impl InstanceNorm {
    /// Creates a normalization layer for `channels`-channel inputs
    /// (γ = 1, β = 0).
    pub fn new(channels: usize) -> Self {
        InstanceNorm {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            channels,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels this layer normalizes.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl std::fmt::Debug for InstanceNorm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceNorm").field("channels", &self.channels).finish()
    }
}

impl Layer for InstanceNorm {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() < 2 || input.dims()[0] != self.channels {
            return Err(NnError::BadInput {
                layer: "InstanceNorm",
                reason: format!(
                    "needs [C={}, …] with rank ≥ 2, got {:?}",
                    self.channels,
                    input.dims()
                ),
            });
        }
        let per: usize = input.dims()[1..].iter().product();
        if per == 0 {
            return Err(NnError::BadInput {
                layer: "InstanceNorm",
                reason: "empty spatial extent".into(),
            });
        }
        let mut normalized = Tensor::zeros(input.dims());
        let mut inv_std = Vec::with_capacity(self.channels);
        let iv = input.as_slice();
        let nv = normalized.as_mut_slice();
        let gv = self.gamma.value.as_slice();
        let bv = self.beta.value.as_slice();
        let mut out = Tensor::zeros(input.dims());
        let ov = out.as_mut_slice();
        for c in 0..self.channels {
            let slice = &iv[c * per..(c + 1) * per];
            let mean = slice.iter().sum::<f32>() / per as f32;
            let var = slice.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / per as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std.push(is);
            for (i, &x) in slice.iter().enumerate() {
                let xhat = (x - mean) * is;
                nv[c * per + i] = xhat;
                ov[c * per + i] = gv[c] * xhat + bv[c];
            }
        }
        self.cache = Some(NormCache { normalized, inv_std, in_dims: input.dims().to_vec() });
        Ok(out)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() < 2 || input.dims()[0] != self.channels {
            return Err(NnError::BadInput {
                layer: "InstanceNorm",
                reason: format!(
                    "needs [C={}, …] with rank ≥ 2, got {:?}",
                    self.channels,
                    input.dims()
                ),
            });
        }
        let per: usize = input.dims()[1..].iter().product();
        if per == 0 {
            return Err(NnError::BadInput {
                layer: "InstanceNorm",
                reason: "empty spatial extent".into(),
            });
        }
        let iv = input.as_slice();
        let gv = self.gamma.value.as_slice();
        let bv = self.beta.value.as_slice();
        let mut out = Tensor::zeros(input.dims());
        let ov = out.as_mut_slice();
        for c in 0..self.channels {
            let slice = &iv[c * per..(c + 1) * per];
            let mean = slice.iter().sum::<f32>() / per as f32;
            let var = slice.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / per as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            for (i, &x) in slice.iter().enumerate() {
                ov[c * per + i] = gv[c] * ((x - mean) * is) + bv[c];
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache =
            self.cache.as_ref().ok_or(NnError::MissingForwardCache { layer: "InstanceNorm" })?;
        if grad_out.dims() != cache.in_dims.as_slice() {
            return Err(NnError::BadInput {
                layer: "InstanceNorm",
                reason: format!(
                    "grad dims {:?} != cached {:?}",
                    grad_out.dims(),
                    cache.in_dims
                ),
            });
        }
        let per: usize = cache.in_dims[1..].iter().product();
        let gv = grad_out.as_slice();
        let xhat = cache.normalized.as_slice();
        let gamma = self.gamma.value.as_slice();
        let mut grad_in = Tensor::zeros(&cache.in_dims);
        let giv = grad_in.as_mut_slice();
        let ggrad = self.gamma.grad.as_mut_slice();
        let bgrad = self.beta.grad.as_mut_slice();
        for c in 0..self.channels {
            let g = &gv[c * per..(c + 1) * per];
            let xh = &xhat[c * per..(c + 1) * per];
            let sum_g: f32 = g.iter().sum();
            let sum_gx: f32 = g.iter().zip(xh).map(|(a, b)| a * b).sum();
            ggrad[c] += sum_gx;
            bgrad[c] += sum_g;
            let n = per as f32;
            let scale = gamma[c] * cache.inv_std[c];
            for i in 0..per {
                // dL/dx = γ/σ · (g − mean(g) − x̂·mean(g·x̂))
                giv[c * per + i] = scale * (g[i] - sum_g / n - xh[i] * sum_gx / n);
            }
        }
        Ok(grad_in)
    }

    fn name(&self) -> &'static str {
        "InstanceNorm"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(InstanceNorm {
            gamma: self.gamma.clone(),
            beta: self.beta.clone(),
            channels: self.channels,
            eps: self.eps,
            cache: None,
        })
    }
}

impl Parameterized for InstanceNorm {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_tensor::Rng64;

    #[test]
    fn output_is_normalized_per_channel() {
        let mut layer = InstanceNorm::new(2);
        let mut rng = Rng64::new(291);
        let x = Tensor::rand_uniform(&[2, 4, 4], 5.0, 50.0, rng.as_rng());
        let y = layer.forward(&x).unwrap();
        for c in 0..2 {
            let slice = &y.as_slice()[c * 16..(c + 1) * 16];
            let mean = slice.iter().sum::<f32>() / 16.0;
            let var = slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn affine_parameters_shift_and_scale() {
        let mut layer = InstanceNorm::new(1);
        layer.gamma.value = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        layer.beta.value = Tensor::from_vec(vec![5.0], &[1]).unwrap();
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[1, 4]).unwrap();
        let y = layer.forward(&x).unwrap();
        let mean = y.mean();
        assert!((mean - 5.0).abs() < 1e-4, "β shifts the mean, got {mean}");
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut layer = InstanceNorm::new(2);
        let mut rng = Rng64::new(292);
        let x = Tensor::randn(&[2, 3, 3], 1.0, rng.as_rng());
        let err = crate::check_input_gradient(&mut layer, &x, 1e-3).unwrap();
        assert!(err < 1e-2, "relative error {err}");
    }

    #[test]
    fn parameter_gradients_accumulate() {
        let mut layer = InstanceNorm::new(1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        layer.forward(&x).unwrap();
        layer.backward(&Tensor::ones(&[1, 4])).unwrap();
        assert_eq!(layer.beta.grad.as_slice(), &[4.0], "dβ = Σ g");
        // dγ = Σ g·x̂ = 0 for symmetric x̂ under constant g.
        assert!(layer.gamma.grad.as_slice()[0].abs() < 1e-5);
    }

    #[test]
    fn rejects_wrong_channel_count_and_missing_forward() {
        let mut layer = InstanceNorm::new(3);
        assert!(layer.forward(&Tensor::ones(&[2, 4])).is_err());
        assert!(layer.backward(&Tensor::ones(&[3, 4])).is_err());
    }
}
