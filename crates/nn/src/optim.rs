use crate::layer::Parameterized;
use crate::Param;

/// A first-order optimizer stepping the parameters of any [`Parameterized`]
/// value (a layer, a whole network, or a backbone-plus-loss-head bundle).
///
/// This trait is sealed in spirit: the workspace uses [`Sgd`] and [`Adam`].
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// the network's parameters, then zeroes the gradients.
    fn step(&mut self, network: &mut dyn Parameterized);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, network: &mut dyn Parameterized) {
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        let mut i = 0usize;
        network.visit_params(&mut |p: &mut Param| {
            if velocity.len() <= i {
                velocity.push(vec![0.0; p.len()]);
            }
            let v = &mut velocity[i];
            debug_assert_eq!(v.len(), p.len(), "parameter order must be stable across steps");
            for ((vi, val), g) in
                v.iter_mut().zip(p.value.as_mut_slice()).zip(p.grad.as_slice())
            {
                *vi = momentum * *vi + g;
                *val -= lr * *vi;
            }
            p.zero_grad();
            i += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba, ICLR'15) — the paper trains its surrogate
/// with Adam, so this is the default across the workspace.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, network: &mut dyn Parameterized) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut i = 0usize;
        network.visit_params(&mut |p: &mut Param| {
            if m.len() <= i {
                m.push(vec![0.0; p.len()]);
                v.push(vec![0.0; p.len()]);
            }
            let (mi, vi) = (&mut m[i], &mut v[i]);
            debug_assert_eq!(mi.len(), p.len(), "parameter order must be stable across steps");
            for (((mm, vv), val), g) in mi
                .iter_mut()
                .zip(vi.iter_mut())
                .zip(p.value.as_mut_slice())
                .zip(p.grad.as_slice())
            {
                *mm = b1 * *mm + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let mhat = *mm / bc1;
                let vhat = *vv / bc2;
                *val -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.zero_grad();
            i += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Linear, Sequential};
    use duo_tensor::{Rng64, Tensor};

    /// Trains y = 2x on a 1-d linear model and checks convergence.
    fn converges_with(opt: &mut dyn Optimizer) -> f32 {
        let mut rng = Rng64::new(61);
        let mut net =
            Sequential::new(vec![Box::new(Linear::new(1, 1, &mut rng)) as Box<dyn crate::Layer>]);
        for _ in 0..300 {
            let x = Tensor::from_vec(vec![1.0], &[1]).unwrap();
            let y = net.forward(&x).unwrap();
            let err = y.as_slice()[0] - 2.0;
            net.backward(&Tensor::from_vec(vec![2.0 * err], &[1]).unwrap()).unwrap();
            opt.step(&mut net);
        }
        let y = net.forward(&Tensor::from_vec(vec![1.0], &[1]).unwrap()).unwrap();
        (y.as_slice()[0] - 2.0).abs()
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let mut opt = Sgd::new(0.05, 0.9);
        assert!(converges_with(&mut opt) < 1e-2);
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let mut opt = Adam::new(0.05);
        assert!(converges_with(&mut opt) < 1e-2);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = Rng64::new(62);
        let mut net =
            Sequential::new(vec![Box::new(Linear::new(2, 2, &mut rng)) as Box<dyn crate::Layer>]);
        net.forward(&Tensor::ones(&[2])).unwrap();
        net.backward(&Tensor::ones(&[2])).unwrap();
        let mut opt = Adam::new(0.001);
        opt.step(&mut net);
        let mut remaining = 0usize;
        net.visit_params(&mut |p| remaining += p.grad.l0_norm());
        assert_eq!(remaining, 0);
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Sgd::new(0.1, 0.0);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
