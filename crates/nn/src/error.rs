use duo_tensor::TensorError;
use std::fmt;

/// Error type for neural-network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// `backward` was called before `forward` populated the layer cache.
    MissingForwardCache {
        /// Name of the offending layer.
        layer: &'static str,
    },
    /// A layer received an input it cannot process.
    BadInput {
        /// Name of the offending layer.
        layer: &'static str,
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::MissingForwardCache { layer } => {
                write!(f, "backward called on `{layer}` before forward")
            }
            NnError::BadInput { layer, reason } => write!(f, "bad input to `{layer}`: {reason}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}
