//! Inverted dropout.
//!
//! Surrogate stealing fits a model to a handful of harvested triplets;
//! dropout is the standard regularizer for that few-shot regime and is
//! provided as a first-class layer. Uses "inverted" scaling (kept units
//! multiplied by `1/(1−p)`) so evaluation mode is the identity.

use crate::{Layer, NnError, Param, Parameterized, Result};
use duo_tensor::{Rng64, Tensor};

/// Inverted dropout with an internal deterministic RNG.
pub struct Dropout {
    p: f32,
    rng: Rng64,
    training: bool,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a seed for
    /// its internal mask stream.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1), got {p}");
        Dropout { p, rng: Rng64::new(seed), training: true, mask: None }
    }

    /// Switches between training (masking) and evaluation (identity).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the layer currently masks activations.
    pub fn is_training(&self) -> bool {
        self.training
    }
}

impl std::fmt::Debug for Dropout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dropout").field("p", &self.p).field("training", &self.training).finish()
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if !self.training || self.p == 0.0 {
            self.mask = Some(vec![1.0; input.len()]);
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| if self.rng.uniform() < keep { scale } else { 0.0 })
            .collect();
        let mut out = input.clone();
        for (x, &m) in out.as_mut_slice().iter_mut().zip(&mask) {
            *x *= m;
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        // Inference is always evaluation mode: deterministic identity,
        // regardless of the training flag or internal RNG position.
        Ok(input.clone())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or(NnError::MissingForwardCache { layer: "Dropout" })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BadInput {
                layer: "Dropout",
                reason: format!("grad length {} != cached {}", grad_out.len(), mask.len()),
            });
        }
        let mut g = grad_out.clone();
        for (x, &m) in g.as_mut_slice().iter_mut().zip(mask) {
            *x *= m;
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        // The mask RNG is cloned at its current position, so a clone and
        // its source produce identical mask streams from here on.
        Box::new(Dropout {
            p: self.p,
            rng: self.rng.clone(),
            training: self.training,
            mask: None,
        })
    }
}

impl Parameterized for Dropout {
    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.set_training(false);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert_eq!(d.forward(&x).unwrap(), x);
        assert_eq!(d.backward(&x).unwrap(), x);
    }

    #[test]
    fn training_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x).unwrap();
        assert!((y.mean() - 1.0).abs() < 0.05, "inverted scaling keeps E[y] = E[x], got {}", y.mean());
        let dropped = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let rate = dropped as f32 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x).unwrap();
        let g = d.backward(&Tensor::ones(&[64])).unwrap();
        for (a, b) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(a, b, "forward and backward masks must agree");
        }
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut d = Dropout::new(0.5, 4);
        assert!(d.backward(&Tensor::ones(&[4])).is_err());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_invalid_probability() {
        Dropout::new(1.0, 5);
    }
}
