//! Layer-based neural-network substrate with hand-written backpropagation.
//!
//! The DUO reproduction needs three capabilities from its "deep learning
//! framework": forward feature extraction, gradients with respect to the
//! *input* (SparseTransfer's perturbation updates differentiate through the
//! surrogate model down to the video pixels), and gradients with respect to
//! the *parameters* (training victim and surrogate models with metric
//! losses). This crate provides exactly that via a [`Layer`] trait whose
//! implementations carry explicit forward caches and hand-derived backward
//! passes, each validated against finite differences by the test suite.
//!
//! # Example
//!
//! ```
//! use duo_nn::{Layer, Linear, Relu, Sequential};
//! use duo_tensor::{Rng64, Tensor};
//!
//! let mut rng = Rng64::new(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(8, 2, &mut rng)),
//! ]);
//! let x = duo_tensor::Tensor::ones(&[4]);
//! let y = net.forward(&x)?;
//! assert_eq!(y.dims(), &[2]);
//! let grad_x = net.backward(&duo_tensor::Tensor::ones(&[2]))?;
//! assert_eq!(grad_x.dims(), &[4]);
//! # Ok::<(), duo_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod dropout;
mod error;
mod gradcheck;
mod layer;
mod linear;
mod norm;
mod optim;
mod param;
mod pool;

pub use conv::Conv3d;
pub use dropout::Dropout;
pub use error::NnError;
pub use gradcheck::{check_input_gradient, numeric_input_gradient};
pub use layer::{
    GlobalAvgPool, L2Normalize, Layer, Parameterized, Relu, Residual, Sequential, TemporalStride,
};
pub use linear::{Flatten, Linear};
pub use norm::InstanceNorm;
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use pool::{AvgPool3d, MaxPool3d};

/// Convenient result alias used across the NN crate.
pub type Result<T> = std::result::Result<T, NnError>;
