use crate::{Layer, NnError, Result};
use duo_tensor::{avg_pool3d, avg_pool3d_backward, max_pool3d, max_pool3d_backward, Pool3dSpec, Tensor};

/// Max-pooling layer over `[C, T, H, W]` inputs.
#[derive(Debug)]
pub struct MaxPool3d {
    spec: Pool3dSpec,
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool3d {
    /// Creates a max-pooling layer with the given window geometry.
    pub fn new(spec: Pool3dSpec) -> Self {
        MaxPool3d { spec, cache: None }
    }
}

impl Layer for MaxPool3d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (out, argmax) = max_pool3d(input, &self.spec)?;
        self.cache = Some((input.dims().to_vec(), argmax));
        Ok(out)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        let (out, _argmax) = max_pool3d(input, &self.spec)?;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (in_dims, argmax) =
            self.cache.as_ref().ok_or(NnError::MissingForwardCache { layer: "MaxPool3d" })?;
        Ok(max_pool3d_backward(grad_out, argmax, in_dims)?)
    }

    fn name(&self) -> &'static str {
        "MaxPool3d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(MaxPool3d::new(self.spec))
    }
}

/// Average-pooling layer over `[C, T, H, W]` inputs.
#[derive(Debug)]
pub struct AvgPool3d {
    spec: Pool3dSpec,
    in_dims: Option<Vec<usize>>,
}

impl AvgPool3d {
    /// Creates an average-pooling layer with the given window geometry.
    pub fn new(spec: Pool3dSpec) -> Self {
        AvgPool3d { spec, in_dims: None }
    }
}

impl Layer for AvgPool3d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = avg_pool3d(input, &self.spec)?;
        self.in_dims = Some(input.dims().to_vec());
        Ok(out)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        Ok(avg_pool3d(input, &self.spec)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let in_dims =
            self.in_dims.as_ref().ok_or(NnError::MissingForwardCache { layer: "AvgPool3d" })?;
        Ok(avg_pool3d_backward(grad_out, &self.spec, in_dims)?)
    }

    fn name(&self) -> &'static str {
        "AvgPool3d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(AvgPool3d::new(self.spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_tensor::Rng64;

    #[test]
    fn max_pool_layer_round_trip() {
        let mut layer = MaxPool3d::new(Pool3dSpec::spatial(2));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[4.0]);
        let g = layer.backward(&Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn avg_pool_layer_distributes_gradient() {
        let mut layer = AvgPool3d::new(Pool3dSpec::spatial(2));
        let x = Tensor::ones(&[1, 1, 2, 2]);
        layer.forward(&x).unwrap();
        let g = layer.backward(&Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(g.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut mp = MaxPool3d::new(Pool3dSpec::cubic(2));
        assert!(mp.backward(&Tensor::ones(&[1, 1, 1, 1])).is_err());
        let mut ap = AvgPool3d::new(Pool3dSpec::cubic(2));
        assert!(ap.backward(&Tensor::ones(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn pooled_values_bounded_by_input_extremes() {
        let mut rng = Rng64::new(51);
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, rng.as_rng());
        let mut mp = MaxPool3d::new(Pool3dSpec::spatial(2));
        let y = mp.forward(&x).unwrap();
        assert!(y.max() <= x.max() && y.min() >= x.min());
        let mut ap = AvgPool3d::new(Pool3dSpec::spatial(2));
        let z = ap.forward(&x).unwrap();
        assert!(z.max() <= x.max() + 1e-6 && z.min() >= x.min() - 1e-6);
    }
}

crate::param_free!(MaxPool3d, AvgPool3d);
