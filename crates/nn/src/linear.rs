use crate::{Layer, NnError, Param, Result};
use duo_tensor::{gemm_bias, Rng64, Tensor};

/// Fully-connected layer: `y = W x + b` over rank-1 inputs.
///
/// The batched inference path ([`Layer::infer_batch`]) stacks the batch
/// into one `[batch, in] × [in, out]` product on the blocked (and, for
/// large batches, multi-threaded) GEMM kernel. Each output element still
/// accumulates `w·x` in the same index order as the per-sample path and
/// adds the bias last, so the batched result is bit-identical to calling
/// [`Layer::infer`] per sample.
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with He-normal initialized weights.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng64) -> Self {
        let std = (2.0 / in_features as f32).sqrt();
        let weight = Param::new(Tensor::randn(&[out_features, in_features], std, rng.as_rng()));
        let bias = Param::new(Tensor::zeros(&[out_features]));
        Linear { weight, bias, in_features, out_features, cache: None }
    }

    /// Input dimensionality.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    fn compute(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 1 || input.len() != self.in_features {
            return Err(NnError::BadInput {
                layer: "Linear",
                reason: format!(
                    "expected rank-1 input of length {}, got {:?}",
                    self.in_features,
                    input.dims()
                ),
            });
        }
        // Products fold with fused multiply-add from 0.0 in index order,
        // bias lands last — the same per-element float program as the
        // fused-bias GEMM ([`duo_tensor::gemm_bias`]) that `infer_batch`
        // rides, so the batched path is bit-identical to this one.
        let mut out = Tensor::zeros(&[self.out_features]);
        let wv = self.weight.value.as_slice();
        let bv = self.bias.value.as_slice();
        let xv = input.as_slice();
        for (o, out_val) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &wv[o * self.in_features..(o + 1) * self.in_features];
            *out_val = row.iter().zip(xv).fold(0.0f32, |s, (w, &x)| w.mul_add(x, s)) + bv[o];
        }
        Ok(out)
    }
}

impl std::fmt::Debug for Linear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Linear")
            .field("in", &self.in_features)
            .field("out", &self.out_features)
            .finish()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = self.compute(input)?;
        self.cache = Some(input.clone());
        Ok(out)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        self.compute(input)
    }

    fn infer_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        if inputs.len() < 2 {
            return inputs.iter().map(|x| self.infer(x)).collect();
        }
        for input in inputs {
            if input.rank() != 1 || input.len() != self.in_features {
                return Err(NnError::BadInput {
                    layer: "Linear",
                    reason: format!(
                        "expected rank-1 input of length {}, got {:?}",
                        self.in_features,
                        input.dims()
                    ),
                });
            }
        }
        let (batch, nin, nout) = (inputs.len(), self.in_features, self.out_features);
        let mut xmat = Tensor::zeros(&[batch, nin]);
        let xv = xmat.as_mut_slice();
        for (s, input) in inputs.iter().enumerate() {
            xv[s * nin..(s + 1) * nin].copy_from_slice(input.as_slice());
        }
        // The GEMM streams rows of B, so multiply against Wᵀ [in, out]
        // rather than W [out, in]; the p-order of the accumulation (over
        // `in`) matches the per-sample dot product exactly.
        let wv = self.weight.value.as_slice();
        let mut wt = Tensor::zeros(&[nin, nout]);
        let wtv = wt.as_mut_slice();
        for o in 0..nout {
            for i in 0..nin {
                wtv[i * nout + o] = wv[o * nin + i];
            }
        }
        // Fused-bias GEMM: one pass writes `x·Wᵀ + b` directly instead of
        // a matmul followed by a bias sweep over the whole output. Each
        // element accumulates products in the same order as `compute` and
        // adds the bias last, hence the same bits.
        let mut ymat = Tensor::zeros(&[batch, nout]);
        gemm_bias(&xmat, &wt, &self.bias.value, &mut ymat)?;
        let yv = ymat.as_slice();
        (0..batch)
            .map(|s| {
                Tensor::from_vec(yv[s * nout..(s + 1) * nout].to_vec(), &[nout])
                    .map_err(NnError::from)
            })
            .collect()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self.cache.as_ref().ok_or(NnError::MissingForwardCache { layer: "Linear" })?;
        if grad_out.len() != self.out_features {
            return Err(NnError::BadInput {
                layer: "Linear",
                reason: format!("grad length {} != out {}", grad_out.len(), self.out_features),
            });
        }
        let gv = grad_out.as_slice();
        let xv = x.as_slice();
        // dL/dW[o][i] += g[o] * x[i] ; dL/db[o] += g[o]
        let wg = self.weight.grad.as_mut_slice();
        for (o, &g) in gv.iter().enumerate() {
            let row = &mut wg[o * self.in_features..(o + 1) * self.in_features];
            for (wgi, &xi) in row.iter_mut().zip(xv) {
                *wgi += g * xi;
            }
        }
        self.bias.grad.axpy(1.0, grad_out)?;
        // dL/dx[i] = Σ_o g[o] * W[o][i]
        let wv = self.weight.value.as_slice();
        let mut gx = Tensor::zeros(&[self.in_features]);
        let gxv = gx.as_mut_slice();
        for (o, &g) in gv.iter().enumerate() {
            let row = &wv[o * self.in_features..(o + 1) * self.in_features];
            for (gxi, &w) in gxv.iter_mut().zip(row) {
                *gxi += g * w;
            }
        }
        Ok(gx)
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Linear {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            in_features: self.in_features,
            out_features: self.out_features,
            cache: None,
        })
    }
}

impl crate::Parameterized for Linear {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

crate::param_free!(Flatten);

/// Reshapes any input to a rank-1 vector (and restores the shape on the
/// way back).
#[derive(Debug, Default)]
pub struct Flatten {
    in_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flattening layer.
    pub fn new() -> Self {
        Flatten { in_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.in_dims = Some(input.dims().to_vec());
        Ok(input.reshape(&[input.len()])?)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.reshape(&[input.len()])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims =
            self.in_dims.as_ref().ok_or(NnError::MissingForwardCache { layer: "Flatten" })?;
        Ok(grad_out.reshape(dims)?)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Flatten::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_computes_wx_plus_b() {
        let mut rng = Rng64::new(3);
        let mut lin = Linear::new(2, 2, &mut rng);
        // Overwrite weights deterministically.
        lin.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        lin.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let y = lin.forward(&Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap()).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn linear_backward_accumulates_param_grads() {
        let mut rng = Rng64::new(4);
        let mut lin = Linear::new(2, 1, &mut rng);
        lin.weight.value = Tensor::from_vec(vec![2.0, -1.0], &[1, 2]).unwrap();
        let x = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        lin.forward(&x).unwrap();
        let gx = lin.backward(&Tensor::from_vec(vec![2.0], &[1]).unwrap()).unwrap();
        assert_eq!(gx.as_slice(), &[4.0, -2.0]);
        assert_eq!(lin.weight.grad.as_slice(), &[6.0, 10.0]);
        assert_eq!(lin.bias.grad.as_slice(), &[2.0]);
        // Accumulation: a second backward doubles the gradients.
        lin.backward(&Tensor::from_vec(vec![2.0], &[1]).unwrap()).unwrap();
        assert_eq!(lin.weight.grad.as_slice(), &[12.0, 20.0]);
    }

    #[test]
    fn linear_infer_batch_is_bitwise_per_sample() {
        let mut rng = Rng64::new(6);
        let lin = Linear::new(13, 7, &mut rng);
        let inputs: Vec<Tensor> =
            (0..5).map(|_| Tensor::randn(&[13], 1.0, rng.as_rng())).collect();
        let batched = lin.infer_batch(&inputs).unwrap();
        for (x, y) in inputs.iter().zip(&batched) {
            let single = lin.infer(x).unwrap();
            assert_eq!(single.as_slice(), y.as_slice(), "batched GEMM path must not drift");
        }
    }

    #[test]
    fn linear_infer_batch_rejects_bad_item() {
        let mut rng = Rng64::new(7);
        let lin = Linear::new(3, 2, &mut rng);
        let inputs = vec![Tensor::ones(&[3]), Tensor::ones(&[4])];
        assert!(lin.infer_batch(&inputs).is_err());
    }

    #[test]
    fn linear_rejects_bad_input() {
        let mut rng = Rng64::new(5);
        let mut lin = Linear::new(3, 2, &mut rng);
        assert!(lin.forward(&Tensor::ones(&[4])).is_err());
        assert!(lin.forward(&Tensor::ones(&[3, 1])).is_err());
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut fl = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4]);
        let y = fl.forward(&x).unwrap();
        assert_eq!(y.dims(), &[24]);
        let g = fl.backward(&Tensor::ones(&[24])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4]);
    }
}
