//! End-to-end training tests across the layer zoo: every layer type
//! composes into a network that actually learns.

use duo_nn::{
    Adam, Conv3d, Dropout, Flatten, InstanceNorm, L2Normalize, Layer, Linear, MaxPool3d,
    Optimizer, Relu, Residual, Sequential, Sgd,
};
use duo_tensor::{Conv3dSpec, Pool3dSpec, Rng64, Tensor};

/// Two separable "video" classes: bright-top vs bright-bottom clips.
fn make_sample(class: usize, rng: &mut Rng64) -> (Tensor, usize) {
    let mut x = Tensor::rand_uniform(&[1, 2, 8, 8], 0.0, 0.2, rng.as_rng());
    let rows = if class == 0 { 0..4 } else { 4..8 };
    for t in 0..2 {
        for y in rows.clone() {
            for xx in 0..8 {
                let idx = (t * 8 + y) * 8 + xx;
                x.as_mut_slice()[idx] += 0.8;
            }
        }
    }
    (x, class)
}

fn build_net(rng: &mut Rng64, with_extras: bool) -> Sequential {
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv3d::new(Conv3dSpec::cubic(1, 2, (1, 2, 2), 0), 4, rng)),
        Box::new(Relu::new()),
    ];
    if with_extras {
        layers.push(Box::new(InstanceNorm::new(4)));
        let main = Sequential::new(vec![
            Box::new(Conv3d::new(Conv3dSpec::cubic(4, 1, (1, 1, 1), 0), 4, rng)) as Box<dyn Layer>,
            Box::new(Relu::new()),
        ]);
        layers.push(Box::new(Residual::identity(main)));
        layers.push(Box::new(Dropout::new(0.1, 7)));
    }
    layers.push(Box::new(MaxPool3d::new(Pool3dSpec::spatial(2))));
    layers.push(Box::new(Flatten::new()));
    // Conv output: [4, 1, 4, 4] → pool → [4, 1, 2, 2] → flatten 16.
    layers.push(Box::new(Linear::new(16, 2, rng)));
    Sequential::new(layers)
}

/// Softmax cross-entropy loss + gradient for a 2-way logit vector.
fn ce_loss(logits: &Tensor, label: usize) -> (f32, Tensor) {
    let max = logits.max();
    let exps: Vec<f32> = logits.as_slice().iter().map(|z| (z - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|e| e / sum).collect();
    let loss = -(probs[label].max(1e-9)).ln();
    let mut grad = Tensor::zeros(logits.dims());
    for (i, g) in grad.as_mut_slice().iter_mut().enumerate() {
        *g = probs[i] - if i == label { 1.0 } else { 0.0 };
    }
    (loss, grad)
}

fn train_and_eval(opt: &mut dyn Optimizer, with_extras: bool, seed: u64) -> f32 {
    let mut rng = Rng64::new(seed);
    let mut net = build_net(&mut rng, with_extras);
    for _epoch in 0..30 {
        for class in 0..2 {
            let (x, label) = make_sample(class, &mut rng);
            let logits = net.forward(&x).unwrap();
            let (_, grad) = ce_loss(&logits, label);
            net.backward(&grad).unwrap();
        }
        opt.step(&mut net);
    }
    // Accuracy over fresh samples.
    let mut correct = 0;
    for trial in 0..20 {
        let (x, label) = make_sample(trial % 2, &mut rng);
        let logits = net.forward(&x).unwrap();
        if logits.argmax() == Some(label) {
            correct += 1;
        }
    }
    correct as f32 / 20.0
}

#[test]
fn plain_conv_net_learns_with_adam() {
    let mut opt = Adam::new(0.01);
    let acc = train_and_eval(&mut opt, false, 801);
    assert!(acc >= 0.9, "accuracy {acc}");
}

#[test]
fn full_layer_zoo_learns_with_adam() {
    let mut opt = Adam::new(0.01);
    let acc = train_and_eval(&mut opt, true, 805);
    assert!(acc >= 0.9, "accuracy {acc} (with InstanceNorm, Residual, Dropout)");
}

#[test]
fn full_layer_zoo_learns_with_sgd() {
    let mut opt = Sgd::new(0.05, 0.9);
    let acc = train_and_eval(&mut opt, true, 803);
    assert!(acc >= 0.9, "accuracy {acc}");
}

#[test]
fn normalize_head_trains_metrically() {
    // L2Normalize composes with training: pull same-class embeddings
    // together with a cosine objective.
    let mut rng = Rng64::new(804);
    let mut net = Sequential::new(vec![
        Box::new(Conv3d::new(Conv3dSpec::cubic(1, 2, (1, 2, 2), 0), 2, &mut rng))
            as Box<dyn Layer>,
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(32, 8, &mut rng)),
        Box::new(L2Normalize::new()),
    ]);
    let mut opt = Adam::new(0.01);
    let anchor_dir = {
        let mut t = Tensor::zeros(&[8]);
        t.as_mut_slice()[0] = 1.0;
        t
    };
    let mut last_cos = -1.0;
    for _ in 0..60 {
        let (x, _) = make_sample(0, &mut rng);
        let emb = net.forward(&x).unwrap();
        last_cos = emb.dot(&anchor_dir).unwrap();
        // Maximize cosine to the anchor: gradient = −anchor.
        net.backward(&anchor_dir.scale(-1.0)).unwrap();
        opt.step(&mut net);
    }
    assert!(last_cos > 0.8, "embedding should align with the anchor, cos {last_cos}");
}
