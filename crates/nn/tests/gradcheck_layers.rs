//! Finite-difference gradient checks for every layer in `duo-nn`.
//!
//! `gradcheck::check_input_gradient` compares each hand-derived backward
//! pass against central differences of `sum(layer(x))`. A silently wrong
//! gradient would not crash anything — it would just make SparseTransfer
//! quietly ineffective — so every layer type gets its own check here.
//!
//! Inputs for kinked layers (ReLU, max pooling) are offset away from the
//! non-differentiable points so finite differences are valid.

use duo_nn::{
    check_input_gradient, AvgPool3d, Conv3d, Dropout, Flatten, GlobalAvgPool, InstanceNorm,
    L2Normalize, Layer, Linear, MaxPool3d, Relu, Residual, Sequential, TemporalStride,
};
use duo_tensor::{Conv3dSpec, Pool3dSpec, Rng64, Tensor};

const EPS: f32 = 1e-2;

fn assert_gradcheck(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
    let err = check_input_gradient(layer, x, EPS).unwrap();
    assert!(err < tol, "max relative gradient error {err} exceeds {tol}");
}

#[test]
fn conv3d_input_gradient() {
    let mut rng = Rng64::new(81);
    let mut layer = Conv3d::new(Conv3dSpec::cubic(2, 2, (1, 1, 1), 1), 3, &mut rng);
    let x = Tensor::randn(&[2, 3, 4, 4], 0.5, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 2e-2);
}

#[test]
fn conv3d_strided_input_gradient() {
    let mut rng = Rng64::new(82);
    let mut layer = Conv3d::new(Conv3dSpec::cubic(1, 3, (1, 2, 2), 1), 2, &mut rng);
    let x = Tensor::randn(&[1, 3, 7, 7], 0.5, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 2e-2);
}

#[test]
fn linear_input_gradient() {
    let mut rng = Rng64::new(83);
    let mut layer = Linear::new(6, 4, &mut rng);
    let x = Tensor::randn(&[6], 1.0, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 1e-2);
}

#[test]
fn flatten_input_gradient() {
    let mut rng = Rng64::new(84);
    let mut layer = Flatten::new();
    let x = Tensor::randn(&[2, 3, 2], 1.0, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 1e-4);
}

#[test]
fn relu_input_gradient_away_from_kink() {
    let mut rng = Rng64::new(85);
    let mut layer = Relu::new();
    // Magnitudes well above EPS on both sides of zero.
    let x = Tensor::rand_uniform(&[24], 0.5, 2.0, rng.as_rng())
        .map(|v| if v > 1.25 { v } else { -v });
    assert_gradcheck(&mut layer, &x, 1e-3);
}

#[test]
fn max_pool3d_input_gradient() {
    let mut rng = Rng64::new(86);
    let mut layer = MaxPool3d::new(Pool3dSpec::spatial(2));
    // Well-separated values keep the argmax stable under the EPS probes.
    let mut x = Tensor::zeros(&[1, 2, 4, 4]);
    for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
        *v = (i as f32) * 0.37 + rng.uniform() * 0.05;
    }
    assert_gradcheck(&mut layer, &x, 1e-3);
}

#[test]
fn avg_pool3d_input_gradient() {
    let mut rng = Rng64::new(87);
    let mut layer = AvgPool3d::new(Pool3dSpec::cubic(2));
    let x = Tensor::randn(&[2, 4, 4, 4], 1.0, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 1e-3);
}

#[test]
fn instance_norm_input_gradient() {
    let mut rng = Rng64::new(88);
    let mut layer = InstanceNorm::new(2);
    let x = Tensor::randn(&[2, 3, 3], 1.0, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 2e-2);
}

#[test]
fn dropout_in_eval_mode_is_identity_gradient() {
    let mut rng = Rng64::new(89);
    let mut layer = Dropout::new(0.5, 17);
    layer.set_training(false);
    let x = Tensor::randn(&[16], 1.0, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 1e-4);
}

#[test]
fn global_avg_pool_input_gradient() {
    let mut rng = Rng64::new(90);
    let mut layer = GlobalAvgPool::new();
    let x = Tensor::randn(&[3, 2, 2, 2], 1.0, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 1e-3);
}

#[test]
fn l2_normalize_input_gradient() {
    let mut rng = Rng64::new(91);
    let mut layer = L2Normalize::new();
    let x = Tensor::randn(&[8], 1.0, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 1e-2);
}

#[test]
fn temporal_stride_input_gradient() {
    let mut rng = Rng64::new(92);
    let mut layer = TemporalStride::new(2);
    let x = Tensor::randn(&[2, 4, 3, 3], 1.0, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 1e-4);
}

#[test]
fn residual_identity_input_gradient() {
    let mut rng = Rng64::new(93);
    let main = Sequential::new(vec![
        Box::new(InstanceNorm::new(2)) as Box<dyn Layer>,
        Box::new(Conv3d::new(Conv3dSpec::cubic(2, 1, (1, 1, 1), 0), 2, &mut rng)),
    ]);
    let mut layer = Residual::identity(main);
    let x = Tensor::randn(&[2, 3, 3, 3], 0.5, rng.as_rng());
    assert_gradcheck(&mut layer, &x, 2e-2);
}

#[test]
fn sequential_stack_input_gradient() {
    let mut rng = Rng64::new(94);
    let mut net = Sequential::new(vec![
        Box::new(Conv3d::new(Conv3dSpec::cubic(1, 2, (1, 2, 2), 0), 4, &mut rng))
            as Box<dyn Layer>,
        Box::new(InstanceNorm::new(4)),
        Box::new(Relu::new()),
        Box::new(MaxPool3d::new(Pool3dSpec::spatial(2))),
        Box::new(GlobalAvgPool::new()),
        Box::new(Linear::new(4, 2, &mut rng)),
    ]);
    // Offset the input away from ReLU/max kinks so finite differences
    // are valid.
    let x = Tensor::rand_uniform(&[1, 3, 9, 9], 0.5, 2.0, rng.as_rng());
    assert_gradcheck(&mut net, &x, 5e-2);
}
