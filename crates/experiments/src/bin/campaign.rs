//! Drives the full attacker zoo — DUO, Vanilla, TIMI, HEU-Nes, HEU-Sim,
//! the sparse RL agent, and the zero-query feature-map attack — as a
//! fleet of concurrent metered clients against duo-serve, asserts exact
//! fleet-wide budget accounting and bit-identical seeded replay, and
//! writes the leaderboard to BENCH_campaign.json (set DUO_SCALE=smoke
//! for a fast pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::campaign::run(scale) {
        eprintln!("campaign failed: {e}");
        std::process::exit(1);
    }
}
