//! Runs the DUO pipeline against the duo-serve service surface, with
//! benign tenant traffic, printing attack metrics plus ServiceStats JSON
//! (set DUO_SCALE=smoke for a fast pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::serve::run(scale) {
        eprintln!("serve_attack failed: {e}");
        std::process::exit(1);
    }
}
