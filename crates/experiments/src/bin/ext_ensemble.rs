//! Regenerates the ensemble-defense extension experiment (set DUO_SCALE=smoke for a fast pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::ext_ensemble::run(scale) {
        eprintln!("ext_ensemble failed: {e}");
        std::process::exit(1);
    }
}
