//! Runs the attacker zoo against duo-serve with the streaming blue-team
//! stage armed: an undefended baseline fleet, two byte-identical
//! defended runs with a benign control lane (written to
//! BENCH_defense.json), and a fault-injected accounting phase (set
//! DUO_SCALE=smoke for a fast pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::red_vs_blue::run(scale) {
        eprintln!("red_vs_blue failed: {e}");
        std::process::exit(1);
    }
}
