//! Exact-vs-IVF index sweep: latency/recall rows plus an end-to-end
//! retrieval-system pass exercising the recall audit counters.

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::index_sweep::run(scale) {
        eprintln!("index_sweep failed: {e}");
        std::process::exit(1);
    }
}
