//! Regenerates the paper's table7 from the reproduction (set DUO_SCALE=smoke for a fast pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::table7::run(scale) {
        eprintln!("table7 failed: {e}");
        std::process::exit(1);
    }
}
