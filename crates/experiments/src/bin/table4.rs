//! Regenerates the paper's table4 from the reproduction (set DUO_SCALE=smoke for a fast pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::table4::run(scale) {
        eprintln!("table4 failed: {e}");
        std::process::exit(1);
    }
}
