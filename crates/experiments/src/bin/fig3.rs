//! Regenerates the paper's fig3 from the reproduction (set DUO_SCALE=smoke for a fast pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::fig3::run(scale) {
        eprintln!("fig3 failed: {e}");
        std::process::exit(1);
    }
}
