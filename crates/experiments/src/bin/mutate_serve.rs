//! Runs the mutate-under-serve experiment: a live service absorbing
//! inserts, deletes, and a mid-flap rebalance while a seeded fault
//! schedule rages, then asserts same-seed bit-identical replay of the
//! whole trace and zero budget drift (set DUO_SCALE=smoke for a fast
//! pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::mutate_serve::run(scale) {
        eprintln!("mutate_serve failed: {e}");
        std::process::exit(1);
    }
}
