//! Regenerates the design-choice quality ablations (set DUO_SCALE=smoke for a fast pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::ablations::run(scale) {
        eprintln!("ablations failed: {e}");
        std::process::exit(1);
    }
}
