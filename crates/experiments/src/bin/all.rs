//! Regenerates every table and figure of the paper in sequence.

use duo_experiments::runs;

type Step = (&'static str, fn(duo_experiments::Scale) -> runs::RunResult);

fn main() {
    let scale = duo_experiments::Scale::from_env();
    let steps: Vec<Step> = vec![
        ("fig3", runs::fig3::run),
        ("fig4", runs::fig4::run),
        ("table2", runs::table2::run),
        ("table3", runs::table3::run),
        ("table4", runs::table4::run),
        ("table5", runs::table5::run),
        ("table6", runs::table6::run),
        ("table7", runs::table7::run),
        ("fig5", runs::fig5::run),
        ("table8", runs::table8::run),
        ("table9", runs::table9::run),
        ("table10", runs::table10::run),
        ("ext_ensemble", runs::ext_ensemble::run),
        ("ablations", runs::ablations::run),
    ];
    for (name, f) in steps {
        let start = std::time::Instant::now();
        if let Err(e) = f(scale) {
            eprintln!("{name} failed: {e}");
            std::process::exit(1);
        }
        eprintln!("[{name} done in {:.1}s]", start.elapsed().as_secs_f32());
    }
}
