//! Runs the DUO pipeline against duo-serve while a seeded fault schedule
//! (transients + flaps + latency spikes) rages on every data node, then
//! asserts exact query-budget accounting and prints ServiceStats JSON
//! (set DUO_SCALE=smoke for a fast pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::chaos::run(scale) {
        eprintln!("chaos_serve failed: {e}");
        std::process::exit(1);
    }
}
