//! Regenerates the paper's fig4 from the reproduction (set DUO_SCALE=smoke for a fast pass).

fn main() {
    let scale = duo_experiments::Scale::from_env();
    if let Err(e) = duo_experiments::runs::fig4::run(scale) {
        eprintln!("fig4 failed: {e}");
        std::process::exit(1);
    }
}
