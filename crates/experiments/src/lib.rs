//! Experiment harness reproducing every table and figure of the DUO paper.
//!
//! Each `src/bin/<id>.rs` binary regenerates one table or figure;
//! this library carries the shared machinery: scaled experiment
//! configurations ([`Scale`]), victim-world construction ([`build_world`]),
//! surrogate stealing, the unified attack runner ([`run_attack`]), and
//! paper-style row printing.
//!
//! Scales: set `DUO_SCALE=smoke` (seconds, used by tests/benches),
//! `standard` (default, minutes per binary) to trade fidelity for time;
//! all sparsity budgets are mapped from the paper's 112×112×16 clips onto
//! the scaled geometry (see `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runs;

use duo_attack::{
    steal_surrogate, AttackReport, DuoAttack, DuoConfig, StealConfig,
};
use duo_baselines::{
    HeuConfig, HeuNesAttack, HeuSimAttack, TimiAttack, TimiConfig, VanillaAttack, VanillaConfig,
};
use duo_models::{
    train_embedding_model, Architecture, Backbone, BackboneConfig, LossKind, TrainConfig,
};
use duo_retrieval::{ap_at_m, mean_average_precision, BlackBox, RetrievalConfig, RetrievalSystem};
use duo_tensor::Rng64;
use duo_video::{ClipSpec, DatasetKind, SyntheticDataset, Video, VideoId};

/// Sizing knobs for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Human-readable scale name.
    pub name: &'static str,
    /// Clip geometry.
    pub clip: ClipSpec,
    /// Number of classes actually exercised per dataset (the synthetic
    /// catalogs keep the full 101/51 classes; worlds use the first few so
    /// a single CPU core finishes in minutes).
    pub classes: u32,
    /// Labeled training videos per class for victim training.
    pub train_per_class: u32,
    /// Gallery videos per class indexed by the retrieval service.
    pub gallery_per_class: u32,
    /// Test probes per class for mAP evaluation.
    pub test_per_class: u32,
    /// Victim training config.
    pub victim_train: TrainConfig,
    /// Backbone width/feature configuration.
    pub backbone: BackboneConfig,
    /// Attack pairs (v, v_t) per configuration cell.
    pub pairs: usize,
    /// SparseQuery iteration budget.
    pub iter_num_q: usize,
    /// SparseTransfer alternation rounds.
    pub transfer_iters: usize,
    /// θ gradient steps per round.
    pub theta_steps: usize,
    /// Retrieval list length m.
    pub m: usize,
    /// Data-node shard count.
    pub nodes: usize,
}

impl Scale {
    /// Seconds-scale configuration for tests and benches.
    pub fn smoke() -> Self {
        Scale {
            name: "smoke",
            clip: ClipSpec::tiny(),
            classes: 6,
            train_per_class: 2,
            gallery_per_class: 3,
            test_per_class: 1,
            victim_train: TrainConfig { epochs: 1, lr: 5e-3, batch: 4 },
            backbone: BackboneConfig::tiny(),
            pairs: 1,
            iter_num_q: 10,
            transfer_iters: 1,
            theta_steps: 3,
            m: 8,
            nodes: 2,
        }
    }

    /// Default scale: minutes per binary on one CPU core.
    pub fn standard() -> Self {
        Scale {
            name: "standard",
            clip: ClipSpec::experiment(),
            classes: 10,
            train_per_class: 3,
            gallery_per_class: 4,
            test_per_class: 2,
            victim_train: TrainConfig { epochs: 2, lr: 3e-3, batch: 6 },
            backbone: BackboneConfig::experiment(),
            pairs: 2,
            iter_num_q: 120,
            transfer_iters: 2,
            theta_steps: 8,
            m: 14,
            nodes: 4,
        }
    }

    /// Reads `DUO_SCALE` from the environment (default `standard`).
    pub fn from_env() -> Self {
        match std::env::var("DUO_SCALE").as_deref() {
            Ok("smoke") => Scale::smoke(),
            _ => Scale::standard(),
        }
    }

    /// The paper's pixel budget `k = 40K` mapped onto this scale.
    pub fn default_k(&self) -> usize {
        self.clip.scale_budget(40_000)
    }

    /// Maps any paper-resolution pixel budget onto this scale.
    pub fn scale_k(&self, paper_k: usize) -> usize {
        self.clip.scale_budget(paper_k)
    }

    /// The DUO configuration at this scale with paper defaults.
    pub fn duo_config(&self) -> DuoConfig {
        let mut cfg = DuoConfig::for_spec(self.clip);
        cfg.transfer.k = self.default_k();
        cfg.transfer.outer_iters = self.transfer_iters;
        cfg.transfer.theta_steps = self.theta_steps;
        cfg.query.iter_num_q = self.iter_num_q;
        cfg
    }

    /// The surrogate-stealing configuration at this scale.
    pub fn steal_config(&self, arch: Architecture) -> StealConfig {
        StealConfig {
            arch,
            backbone: self.backbone,
            rounds: 3,
            fanout: 2,
            target_dataset_size: (self.classes as usize) * 4,
            max_triplets: if self.name == "smoke" { 80 } else { 120 },
            epochs: 2,
            lr: 3e-3,
            batch: 4,
        }
    }
}

/// A fully built victim world: dataset, trained victim, sharded index.
pub struct World {
    /// The synthetic corpus.
    pub dataset: SyntheticDataset,
    /// The victim service (trained backbone + gallery shards).
    pub system: RetrievalSystem,
    /// Victim architecture.
    pub arch: Architecture,
    /// Victim training loss.
    pub loss: LossKind,
    /// Scale the world was built at.
    pub scale: Scale,
}

impl World {
    /// Wraps the system in the attacker-facing black box.
    pub fn into_blackbox(self) -> (BlackBox, SyntheticDataset) {
        (BlackBox::new(self.system), self.dataset)
    }
}

fn ids_upto(ids: &[VideoId], classes: u32) -> Vec<VideoId> {
    ids.iter().filter(|id| id.class < classes).copied().collect()
}

/// Builds a victim world: trains `arch` with `loss` on the synthetic
/// corpus and indexes a gallery over sharded data nodes.
///
/// # Errors
///
/// Propagates model and retrieval construction failures.
pub fn build_world(
    kind: DatasetKind,
    arch: Architecture,
    loss: LossKind,
    scale: Scale,
    seed: u64,
) -> Result<World, Box<dyn std::error::Error>> {
    let mut rng = Rng64::new(seed);
    let dataset = SyntheticDataset::subsampled(
        kind,
        scale.clip,
        seed ^ 0xD5EA5E,
        scale.train_per_class + scale.gallery_per_class,
        scale.test_per_class,
    );
    let mut backbone = Backbone::new(arch, scale.backbone, &mut rng)?;
    let mut head = loss.build_head(dataset.num_classes(), scale.backbone.feature_dim, &mut rng);
    let train_items: Vec<VideoId> = ids_upto(dataset.train(), scale.classes)
        .into_iter()
        .filter(|id| id.instance < scale.train_per_class)
        .collect();
    train_embedding_model(
        &mut backbone,
        head.as_mut(),
        &dataset,
        &train_items,
        scale.victim_train,
        &mut rng,
    )?;
    let gallery: Vec<VideoId> = ids_upto(dataset.train(), scale.classes)
        .into_iter()
        .filter(|id| id.instance >= scale.train_per_class)
        .collect();
    // Parallel gallery indexing and threaded node fan-out are both
    // bit-identical to their serial counterparts (asserted by tier-1
    // tests), so experiments default to the fast path.
    let workers = std::thread::available_parallelism().map_or(2, |n| n.get()).min(8);
    let system = RetrievalSystem::build_parallel(
        backbone,
        &dataset,
        &gallery,
        RetrievalConfig { m: scale.m, nodes: scale.nodes, threaded: true, ..Default::default() },
        workers,
    )?;
    Ok(World { dataset, system, arch, loss, scale })
}

/// Victim retrieval quality: mAP (%) over the test probes (Figure 3's
/// quantity).
///
/// # Errors
///
/// Propagates retrieval failures.
pub fn victim_map(world: &mut World) -> Result<f32, Box<dyn std::error::Error>> {
    let probes = ids_upto(world.dataset.test(), world.scale.classes);
    let mut results = Vec::with_capacity(probes.len());
    for id in probes {
        let list = world.system.retrieve(&world.dataset.video(id))?;
        results.push((id.class, list));
    }
    Ok(mean_average_precision(&results))
}

/// mAP (%) of an arbitrary backbone (e.g. a stolen surrogate) measured on
/// the world's gallery/test split — Figure 4's quantity.
///
/// # Errors
///
/// Propagates model and retrieval failures.
pub fn backbone_map(
    backbone: &mut Backbone,
    dataset: &SyntheticDataset,
    scale: Scale,
) -> Result<f32, Box<dyn std::error::Error>> {
    let gallery: Vec<VideoId> = ids_upto(dataset.train(), scale.classes)
        .into_iter()
        .filter(|id| id.instance >= scale.train_per_class)
        .collect();
    let mut entries = Vec::with_capacity(gallery.len());
    for id in &gallery {
        entries.push((*id, backbone.extract(&dataset.video(*id))?));
    }
    let probes = ids_upto(dataset.test(), scale.classes);
    let mut results = Vec::with_capacity(probes.len());
    for id in probes {
        let q = backbone.extract(&dataset.video(id))?;
        let mut scored: Vec<(VideoId, f32)> = entries
            .iter()
            .map(|(gid, feat)| (*gid, feat.sq_distance(&q).expect("dims match")))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored.truncate(scale.m);
        results.push((id.class, scored.into_iter().map(|(gid, _)| gid).collect()));
    }
    Ok(mean_average_precision(&results))
}

/// Draws `count` attack pairs `(v, v_t)` with distinct classes from the
/// training catalog (paper §V-A: ten random pairs).
pub fn attack_pairs(
    dataset: &SyntheticDataset,
    classes: u32,
    count: usize,
    rng: &mut Rng64,
) -> Vec<(VideoId, VideoId)> {
    let pool = ids_upto(dataset.train(), classes);
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        if a.class != b.class {
            pairs.push((a, b));
        }
    }
    pairs
}

/// Draws attack pairs whose *pre-attack* retrieval lists already overlap
/// (`AP@m(R(v), R(v_t)) > 0`), mirroring the paper's evaluation regime —
/// its Table II "w/o attack" baselines range from 25% to 68%, i.e. the
/// sampled pairs share retrieval neighbourhoods before any perturbation.
/// Falls back to unconstrained pairs when few overlapping ones exist.
pub fn overlapping_attack_pairs(
    blackbox: &mut BlackBox,
    dataset: &SyntheticDataset,
    classes: u32,
    count: usize,
    rng: &mut Rng64,
) -> Result<Vec<(VideoId, VideoId)>, Box<dyn std::error::Error>> {
    let pool = ids_upto(dataset.train(), classes);
    let mut pairs = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while pairs.len() < count && attempts < count * 25 {
        attempts += 1;
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        if a.class == b.class {
            continue;
        }
        let r_a = blackbox.system_mut().retrieve(&dataset.video(a))?;
        let r_b = blackbox.system_mut().retrieve(&dataset.video(b))?;
        if ap_at_m(&r_a, &r_b) > 0.0 {
            pairs.push((a, b));
        }
    }
    while pairs.len() < count {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        if a.class != b.class {
            pairs.push((a, b));
        }
    }
    Ok(pairs)
}

/// The attack rows of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// No attack: AP@m between `R(v)` and `R(v_t)` directly.
    WithoutAttack,
    /// TIMI with a C3D surrogate (dense transfer).
    TimiC3d,
    /// TIMI with a Resnet18 surrogate.
    TimiRes18,
    /// HEU with NES gradient estimation.
    HeuNes,
    /// HEU with the random-selection (SimBA) strategy.
    HeuSim,
    /// Random selection + SimBA.
    Vanilla,
    /// DUO with a C3D surrogate.
    DuoC3d,
    /// DUO with a Resnet18 surrogate.
    DuoRes18,
}

impl AttackKind {
    /// Table II row order.
    pub fn table2_rows() -> [AttackKind; 8] {
        [
            AttackKind::WithoutAttack,
            AttackKind::TimiC3d,
            AttackKind::TimiRes18,
            AttackKind::HeuNes,
            AttackKind::HeuSim,
            AttackKind::Vanilla,
            AttackKind::DuoC3d,
            AttackKind::DuoRes18,
        ]
    }

    /// Row label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::WithoutAttack => "w/o attack",
            AttackKind::TimiC3d => "TIMI-C3D (n=16)",
            AttackKind::TimiRes18 => "TIMI-Res (n=16)",
            AttackKind::HeuNes => "HEU-Nes (n=4)",
            AttackKind::HeuSim => "HEU-Sim (n=4)",
            AttackKind::Vanilla => "Vanilla (n=4)",
            AttackKind::DuoC3d => "DUO-C3D (n=4)",
            AttackKind::DuoRes18 => "DUO-Res18 (n=4)",
        }
    }

    /// Which surrogate architecture the attack needs, if any.
    pub fn surrogate(self) -> Option<Architecture> {
        match self {
            AttackKind::TimiC3d | AttackKind::DuoC3d => Some(Architecture::C3d),
            AttackKind::TimiRes18 | AttackKind::DuoRes18 => Some(Architecture::Resnet18),
            _ => None,
        }
    }
}

/// Stolen surrogates shared across attack rows for one world.
pub struct Surrogates {
    /// C3D surrogate.
    pub c3d: Backbone,
    /// Resnet18 surrogate.
    pub res18: Backbone,
}

/// Steals both surrogate architectures from the black box.
///
/// # Errors
///
/// Propagates stealing failures.
pub fn steal_surrogates(
    blackbox: &mut BlackBox,
    dataset: &SyntheticDataset,
    scale: Scale,
    rng: &mut Rng64,
) -> Result<Surrogates, Box<dyn std::error::Error>> {
    let probes = ids_upto(dataset.test(), scale.classes);
    let (c3d, _) = steal_surrogate(
        blackbox,
        dataset,
        &probes,
        scale.steal_config(Architecture::C3d),
        rng,
    )?;
    let (res18, _) = steal_surrogate(
        blackbox,
        dataset,
        &probes,
        scale.steal_config(Architecture::Resnet18),
        rng,
    )?;
    Ok(Surrogates { c3d, res18 })
}

/// Evaluates one attack row on one `(v, v_t)` pair; returns the Table II
/// metrics.
///
/// # Errors
///
/// Propagates attack and retrieval failures.
#[allow(clippy::too_many_arguments)]
pub fn run_attack(
    kind: AttackKind,
    blackbox: &mut BlackBox,
    dataset: &SyntheticDataset,
    surrogates: &mut Surrogates,
    pair: (VideoId, VideoId),
    scale: Scale,
    duo_override: Option<DuoConfig>,
    rng: &mut Rng64,
) -> Result<AttackReport, Box<dyn std::error::Error>> {
    let v = dataset.video(pair.0);
    let v_t = dataset.video(pair.1);
    let k = scale.default_k();
    let outcome = match kind {
        AttackKind::WithoutAttack => {
            let r_v = blackbox.system_mut().retrieve(&v)?;
            let r_t = blackbox.system_mut().retrieve(&v_t)?;
            return Ok(AttackReport {
                ap_at_m: ap_at_m(&r_v, &r_t),
                spa: 0,
                pscore: 0.0,
                queries: 0,
            });
        }
        AttackKind::TimiC3d => {
            TimiAttack::new(&mut surrogates.c3d, TimiConfig::default()).run(&v, &v_t)?
        }
        AttackKind::TimiRes18 => {
            TimiAttack::new(&mut surrogates.res18, TimiConfig::default()).run(&v, &v_t)?
        }
        AttackKind::HeuNes => {
            let cfg = HeuConfig { k, n: 4, iters: scale.iter_num_q / 8, ..HeuConfig::default() };
            HeuNesAttack::new(cfg).run(blackbox, &v, &v_t, rng)?
        }
        AttackKind::HeuSim => {
            let cfg = HeuConfig { k, n: 4, iters: scale.iter_num_q, ..HeuConfig::default() };
            HeuSimAttack::new(cfg).run(blackbox, &v, &v_t, rng)?
        }
        AttackKind::Vanilla => {
            let cfg = VanillaConfig { k, n: 4, tau: 30.0, iter_num_q: scale.iter_num_q };
            VanillaAttack::new(cfg).run(blackbox, &v, &v_t, rng)?
        }
        AttackKind::DuoC3d | AttackKind::DuoRes18 => {
            let cfg = duo_override.unwrap_or_else(|| scale.duo_config());
            let surrogate = match kind {
                AttackKind::DuoC3d => &mut surrogates.c3d,
                _ => &mut surrogates.res18,
            };
            run_duo(surrogate, cfg, blackbox, &v, &v_t, rng)?
        }
    };
    Ok(duo_attack::evaluate_outcome(blackbox, &outcome, &v_t)?)
}

/// Runs DUO with a borrowed surrogate (cloning weights into the pipeline
/// is avoided by a temporary swap).
fn run_duo(
    surrogate: &mut Backbone,
    cfg: DuoConfig,
    blackbox: &mut BlackBox,
    v: &Video,
    v_t: &Video,
    rng: &mut Rng64,
) -> Result<duo_attack::AttackOutcome, Box<dyn std::error::Error>> {
    // DuoAttack owns its surrogate; temporarily move the borrowed one in
    // via replace, then restore.
    let placeholder = Backbone::new(surrogate.arch(), surrogate.config(), &mut Rng64::new(0))?;
    let owned = std::mem::replace(surrogate, placeholder);
    let mut attack = DuoAttack::new(owned, cfg);
    let result = attack.run(blackbox, v, v_t, rng);
    *surrogate = attack.into_surrogate();
    Ok(result?)
}

/// Full DUO outcome (with trajectory) for Figure 5; reuses the shared
/// surrogates.
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_duo_outcome(
    surrogate: &mut Backbone,
    cfg: DuoConfig,
    blackbox: &mut BlackBox,
    v: &Video,
    v_t: &Video,
    rng: &mut Rng64,
) -> Result<duo_attack::AttackOutcome, Box<dyn std::error::Error>> {
    run_duo(surrogate, cfg, blackbox, v, v_t, rng)
}

/// Mean of a set of attack reports (the tables report averages over
/// pairs).
pub fn mean_report(reports: &[AttackReport]) -> AttackReport {
    if reports.is_empty() {
        return AttackReport { ap_at_m: 0.0, spa: 0, pscore: 0.0, queries: 0 };
    }
    let n = reports.len() as f32;
    AttackReport {
        ap_at_m: reports.iter().map(|r| r.ap_at_m).sum::<f32>() / n,
        spa: (reports.iter().map(|r| r.spa).sum::<usize>() as f32 / n).round() as usize,
        pscore: reports.iter().map(|r| r.pscore).sum::<f32>() / n,
        queries: (reports.iter().map(|r| r.queries).sum::<u64>() as f32 / n).round() as u64,
    }
}

/// Prints a table header in the paper's `AP@m / Spa / PScore` layout.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    print!("{:<22}", "");
    for c in columns {
        print!("{c:>26}");
    }
    println!();
    print!("{:<22}", "row");
    for _ in columns {
        print!("{:>10}{:>9}{:>7}", "AP@m", "Spa", "PScr");
    }
    println!();
}

/// Prints one table row of reports.
pub fn print_row(label: &str, reports: &[AttackReport]) {
    print!("{label:<22}");
    for r in reports {
        print!("{:>9.2}%{:>9}{:>7.3}", r.ap_at_m, r.spa, r.pscore);
    }
    println!();
}

/// Config cell for DUO sweeps (Tables V–VIII).
pub fn duo_config_with(
    scale: Scale,
    k: Option<usize>,
    n: Option<usize>,
    tau: Option<f32>,
    iter_num_h: Option<usize>,
) -> DuoConfig {
    let mut cfg = scale.duo_config();
    if let Some(k) = k {
        cfg.transfer.k = k;
    }
    if let Some(n) = n {
        cfg.transfer.n = n;
    }
    if let Some(tau) = tau {
        cfg = cfg.with_tau(tau);
    }
    if let Some(h) = iter_num_h {
        cfg.iter_num_h = h;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_world_builds_and_retrieves() {
        let mut world = build_world(
            DatasetKind::Hmdb51Like,
            Architecture::C3d,
            LossKind::ArcFace,
            Scale::smoke(),
            42,
        )
        .unwrap();
        let map = victim_map(&mut world).unwrap();
        assert!((0.0..=100.0).contains(&map));
        assert!(map > 0.0, "a trained victim should beat zero mAP");
    }

    #[test]
    fn attack_pairs_have_distinct_classes() {
        let scale = Scale::smoke();
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, scale.clip, 1, 2, 1);
        let mut rng = Rng64::new(261);
        for (a, b) in attack_pairs(&ds, scale.classes, 8, &mut rng) {
            assert_ne!(a.class, b.class);
        }
    }

    #[test]
    fn without_attack_row_reports_zero_perturbation() {
        let world = build_world(
            DatasetKind::Hmdb51Like,
            Architecture::C3d,
            LossKind::ArcFace,
            Scale::smoke(),
            43,
        )
        .unwrap();
        let scale = world.scale;
        let (mut bb, ds) = world.into_blackbox();
        let mut rng = Rng64::new(262);
        let mut surrogates = steal_surrogates(&mut bb, &ds, scale, &mut rng).unwrap();
        let pair = attack_pairs(&ds, scale.classes, 1, &mut rng)[0];
        let report = run_attack(
            AttackKind::WithoutAttack,
            &mut bb,
            &ds,
            &mut surrogates,
            pair,
            scale,
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.spa, 0);
        assert_eq!(report.queries, 0);
    }

    #[test]
    fn mean_report_averages_fields() {
        let a = AttackReport { ap_at_m: 50.0, spa: 100, pscore: 0.2, queries: 10 };
        let b = AttackReport { ap_at_m: 70.0, spa: 300, pscore: 0.4, queries: 30 };
        let m = mean_report(&[a, b]);
        assert_eq!(m.ap_at_m, 60.0);
        assert_eq!(m.spa, 200);
        assert!((m.pscore - 0.3).abs() < 1e-6);
        assert_eq!(m.queries, 20);
    }

    #[test]
    fn scale_env_parsing_defaults_to_standard() {
        // Note: avoids mutating the process env; just checks the default.
        assert_eq!(Scale::from_env().name, "standard");
    }

    #[test]
    fn duo_config_with_overrides_only_requested_fields() {
        let scale = Scale::smoke();
        let base = scale.duo_config();
        let cfg = duo_config_with(scale, Some(123), None, None, None);
        assert_eq!(cfg.transfer.k, 123);
        assert_eq!(cfg.transfer.n, base.transfer.n);
        assert_eq!(cfg.query.tau, base.query.tau);
        let cfg = duo_config_with(scale, None, Some(7), Some(15.0), Some(3));
        assert_eq!(cfg.transfer.n, 7);
        assert_eq!(cfg.transfer.tau, 15.0);
        assert_eq!(cfg.query.tau, 15.0);
        assert_eq!(cfg.iter_num_h, 3);
    }

    #[test]
    fn scale_k_maps_paper_budgets_proportionally() {
        let scale = Scale::smoke();
        let k20 = scale.scale_k(20_000);
        let k40 = scale.scale_k(40_000);
        assert!(k40 > k20);
        // 40K of 602,112 ≈ 6.64% of the tiny clip's 6,144 elements.
        assert!((k40 as f32 - 6144.0 * 40_000.0 / 602_112.0).abs() <= 1.0);
        assert_eq!(scale.default_k(), k40);
    }

    #[test]
    fn table2_rows_cover_every_attack_once() {
        let rows = AttackKind::table2_rows();
        assert_eq!(rows.len(), 8);
        let labels: std::collections::HashSet<&str> = rows.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), 8, "labels must be distinct");
        assert_eq!(rows[0], AttackKind::WithoutAttack);
    }

    #[test]
    fn surrogate_mapping_matches_paper_architectures() {
        assert_eq!(AttackKind::DuoC3d.surrogate(), Some(Architecture::C3d));
        assert_eq!(AttackKind::TimiRes18.surrogate(), Some(Architecture::Resnet18));
        assert_eq!(AttackKind::Vanilla.surrogate(), None);
        assert_eq!(AttackKind::WithoutAttack.surrogate(), None);
    }

    #[test]
    fn overlapping_pairs_have_positive_baseline_when_possible() {
        let world = build_world(
            DatasetKind::Hmdb51Like,
            Architecture::C3d,
            LossKind::ArcFace,
            Scale::smoke(),
            44,
        )
        .unwrap();
        let scale = world.scale;
        let (mut bb, ds) = world.into_blackbox();
        let mut rng = Rng64::new(263);
        let pairs = overlapping_attack_pairs(&mut bb, &ds, scale.classes, 3, &mut rng).unwrap();
        assert_eq!(pairs.len(), 3);
        for (a, b) in pairs {
            assert_ne!(a.class, b.class);
        }
    }
}
