//! Red-vs-blue experiment: the PR 7 attacker zoo against `duo-serve`
//! with the streaming blue-team stage armed, measured as a
//! detection-rate vs AP-drop tradeoff.
//!
//! Three phases over one victim world:
//!
//! 1. **Red baseline.** The fleet attacks an *undefended* service,
//!    giving the `ap_drop_undefended` reference per family.
//! 2. **Blue deployed.** The same fleet (same seeds, same pairs) attacks
//!    a service armed with [`duo_serve::DefenseConfig`] — per-account
//!    streaming detection with the flag → throttle → reject ladder plus
//!    feature-squeezing purification — while a *benign control lane* of
//!    clean replay clients runs concurrently. Run twice; the emitted
//!    `BENCH_defense.json` must be byte-identical across the runs.
//! 3. **Chaos accounting.** A defended fleet runs with 20% transient
//!    node faults injected; the budget-drift invariant
//!    `charged == served + failed` must hold exactly — the defense
//!    stage's uncharged rejections and purification must not perturb
//!    refund-correct accounting even under faults.
//!
//! Machine-checked: byte-identical replay of the artifact, DUO-family
//! detection, zero benign flags, zero-query families evading by
//! construction, and exact accounting in every phase.

use super::campaign::{zoo, FAMILIES};
use super::RunResult;
use crate::{build_world, overlapping_attack_pairs, Scale};
use duo_attack::steal_surrogate;
use duo_campaign::{run_campaign, CampaignConfig, CampaignReport, ClientOutcome, MetricDist};
use duo_defenses::FeatureSqueezing;
use duo_models::{Architecture, Backbone, LossKind};
use duo_retrieval::{FaultPlan, ResilienceConfig, RetrievalSystem};
use duo_serve::{
    ClientStats, DefenseConfig, Purify, RetrievalService, ServeConfig,
};
use duo_tensor::{Json, Rng64};
use duo_video::{DatasetKind, Video};

/// Clean replay clients running concurrently with the defended fleet.
const BENIGN_LANES: usize = 4;
/// Distinct clips each benign lane replays.
const BENIGN_QUERIES: usize = 12;

/// The blue team's deployment: default streaming calibration plus
/// feature-squeezing purification on the inference path.
fn blue_config() -> ServeConfig {
    ServeConfig {
        defense: Some(DefenseConfig {
            stream: duo_defenses::StreamConfig::default(),
            purify: Purify::Squeeze(FeatureSqueezing::default()),
        }),
        ..ServeConfig::default()
    }
}

/// Transient-fault schedule for the chaos phase: 20% failures per node,
/// no injected latency (phase 3 asserts accounting, not tail behavior).
fn arm_faults(system: &mut RetrievalSystem, seed: u64) {
    for (i, node) in system.nodes().iter().enumerate() {
        node.set_fault_plan(Some(FaultPlan::transient(seed ^ (0xC4A0_5000 + i as u64), 0.20)));
    }
    system.set_resilience(ResilienceConfig {
        node_timeout_us: None,
        max_retries: 4,
        backoff_base_us: 50,
        backoff_jitter_us: 25,
        hedge_after_us: None,
        breaker: None,
        seed: seed ^ 0xB10E,
        require_full_coverage: false,
    });
}

/// One defended fleet run with the benign control lane interleaved.
/// Benign clients are registered on the calling thread *before*
/// `run_campaign` registers the attack lanes, so slot numbering is
/// deterministic; their traffic races the fleet's in wall-clock but the
/// per-account detectors see only their own streams.
fn defended_run(
    service: &RetrievalService,
    surrogate: &Backbone,
    scale: Scale,
    pairs: &[(Video, Video)],
    config: &CampaignConfig,
    benign_clips: &[Video],
) -> Result<(CampaignReport, Vec<ClientStats>, u64), Box<dyn std::error::Error>> {
    let benign: Vec<_> = (0..BENIGN_LANES).map(|_| service.client(None, None)).collect();
    let report = std::thread::scope(|scope| {
        let lanes: Vec<_> = benign
            .iter()
            .map(|client| {
                scope.spawn(move || {
                    for clip in benign_clips {
                        client.retrieve(clip).expect("benign retrieval must serve");
                    }
                })
            })
            .collect();
        let report = run_campaign(service, |i| zoo(i, surrogate, scale), pairs, config);
        for lane in lanes {
            lane.join().expect("benign lane panicked");
        }
        report
    })?;
    let stats: Vec<ClientStats> =
        benign.iter().map(|c| c.stats().expect("service is live")).collect();
    let benign_charged: u64 = benign.iter().map(|c| c.queries_used()).sum();
    Ok((report, stats, benign_charged))
}

/// Renders one metric distribution in the `BENCH_*.json` result schema.
fn bench_row(name: String, d: &MetricDist) -> Json {
    Json::Object(vec![
        ("name".into(), Json::Str(name)),
        ("samples".into(), Json::Int(d.samples as i128)),
        ("min_s".into(), Json::F64(d.min)),
        ("median_s".into(), Json::F64(d.median)),
        ("p95_s".into(), Json::F64(d.p95)),
        ("mean_s".into(), Json::F64(d.mean)),
        ("trimmed_mean_s".into(), Json::F64(d.trimmed_mean)),
        ("max_s".into(), Json::F64(d.max)),
    ])
}

/// Per-lane detection rate: flagged observations over all observations
/// (0 for a lane the detector never saw, i.e. a zero-query family).
fn lane_detection_rate(o: &ClientOutcome) -> f64 {
    o.stats.defense_flagged as f64 / o.stats.defense_observed.max(1) as f64
}

/// Assembles the `BENCH_defense.json` artifact: per-family
/// detection-rate vs AP-drop rows (defended and undefended), the benign
/// control lane's false-positive rate, and the `defense/unit`
/// pseudo-entry the threshold rules divide against.
fn defense_artifact(
    undefended: &CampaignReport,
    defended: &CampaignReport,
    benign: &[ClientStats],
) -> String {
    let mut families: Vec<&str> =
        defended.outcomes.iter().map(|o| o.family.as_str()).collect();
    families.sort_unstable();
    families.dedup();
    let mut rows: Vec<Json> = Vec::new();
    for family in families {
        let of = |report: &CampaignReport| -> Vec<ClientOutcome> {
            report.outcomes.iter().filter(|o| o.family == family).cloned().collect()
        };
        let def = of(defended);
        let und = of(undefended);
        let detection = MetricDist::of(
            "detection_rate",
            def.iter().map(lane_detection_rate).collect(),
        );
        let ap_drop =
            MetricDist::of("ap_drop", def.iter().map(|o| f64::from(o.ap_drop)).collect());
        let ap_und = MetricDist::of(
            "ap_drop_undefended",
            und.iter().map(|o| f64::from(o.ap_drop)).collect(),
        );
        rows.push(bench_row(format!("defense/{family}/detection_rate"), &detection));
        rows.push(bench_row(format!("defense/{family}/ap_drop"), &ap_drop));
        rows.push(bench_row(format!("defense/{family}/ap_drop_undefended"), &ap_und));
    }
    let fp = MetricDist::of(
        "fp_rate",
        benign
            .iter()
            .map(|s| s.defense_flagged as f64 / s.defense_observed.max(1) as f64)
            .collect(),
    );
    rows.push(bench_row("defense/benign/fp_rate".into(), &fp));
    rows.push(bench_row("defense/unit".into(), &MetricDist::of("unit", vec![1.0])));
    format!("{}\n", Json::Array(rows))
}

/// Reproduces the red-vs-blue experiment end to end; see the module docs
/// for the three phases and the checked invariants.
pub fn run(scale: Scale) -> RunResult {
    println!("\n=== Red vs blue: attacker zoo vs defended duo-serve (scale: {}) ===", scale.name);
    let seed = 0xB1_0E5EEDu64;

    // One victim world for every phase; surrogate and pairs are prepared
    // against a pre-service black box, as in the campaign experiment.
    let world =
        build_world(DatasetKind::Hmdb51Like, Architecture::I3d, LossKind::ArcFace, scale, seed)?;
    let world_scale = world.scale;
    let (mut bb, dataset) = world.into_blackbox();
    let mut rng = Rng64::new(seed ^ 0x5EED);
    let probes: Vec<_> = dataset
        .test()
        .iter()
        .filter(|id| id.class < world_scale.classes)
        .copied()
        .collect();
    let (surrogate, steal) = steal_surrogate(
        &mut bb,
        &dataset,
        &probes,
        world_scale.steal_config(Architecture::C3d),
        &mut rng,
    )
    .map_err(|e| e.to_string())?;
    println!("surrogate stolen offline: {} queries, {} triplets", steal.queries, steal.triplets_used);
    let id_pairs = overlapping_attack_pairs(
        &mut bb,
        &dataset,
        world_scale.classes,
        world_scale.pairs.max(2),
        &mut rng,
    )?;
    let pairs: Vec<(Video, Video)> =
        id_pairs.iter().map(|&(a, b)| (dataset.video(a), dataset.video(b))).collect();
    // The benign playlist: distinct gallery clips, no two alike, so a
    // correctly calibrated detector must never reach two votes on them.
    let benign_clips: Vec<Video> = dataset
        .train()
        .iter()
        .filter(|id| id.class < world_scale.classes)
        .take(BENIGN_QUERIES)
        .map(|&id| dataset.video(id))
        .collect();
    assert!(benign_clips.len() >= 2, "benign control lane needs clips");
    let system = bb.into_inner();

    let clients = if world_scale.name == "smoke" { 8 } else { 14 };
    assert!(clients >= FAMILIES.len(), "every family needs at least one lane");
    let config = CampaignConfig {
        clients,
        per_client_budget: 20 * world_scale.iter_num_q as u64 + 400,
        seed: seed ^ 0xF1EE7,
        max_retries: 16,
    };

    // Phase 1 — red baseline: the fleet against the undefended service.
    println!("\n[phase 1] red baseline: {} clients, undefended", config.clients);
    let undefended_service = RetrievalService::start(system, ServeConfig::default())?;
    let undefended = run_campaign(
        &undefended_service,
        |i| zoo(i, &surrogate, world_scale),
        &pairs,
        &config,
    )?;
    let (system, red_stats) = undefended_service.shutdown_into();
    let system = system.expect("no outstanding service refs");
    assert_eq!(
        undefended.charged,
        red_stats.served + red_stats.failed,
        "undefended accounting must be exact"
    );

    // Phase 2 — blue deployed: same fleet + benign control lane, twice.
    println!(
        "[phase 2] blue deployed: streaming detector + squeeze purify, {} benign lanes",
        BENIGN_LANES
    );
    let defended_service = RetrievalService::start(system, blue_config())?;
    let (defended_a, benign_a, benign_charged_a) = defended_run(
        &defended_service,
        &surrogate,
        world_scale,
        &pairs,
        &config,
        &benign_clips,
    )?;
    let (defended_b, benign_b, benign_charged_b) = defended_run(
        &defended_service,
        &surrogate,
        world_scale,
        &pairs,
        &config,
        &benign_clips,
    )?;

    // Detection-vs-AP-drop table, one row per family.
    println!(
        "\n{:<14}{:>9}{:>11}{:>13}{:>11}{:>9}",
        "family", "lanes", "det_rate", "ap_drop(def)", "ap_drop(un)", "quarant"
    );
    for row in &defended_a.leaderboard.rows {
        let lanes: Vec<&ClientOutcome> =
            defended_a.outcomes.iter().filter(|o| o.family == row.family).collect();
        let det = lanes.iter().map(|o| lane_detection_rate(o)).sum::<f64>()
            / lanes.len() as f64;
        let apd =
            lanes.iter().map(|o| f64::from(o.ap_drop)).sum::<f64>() / lanes.len() as f64;
        let und: Vec<f64> = undefended
            .outcomes
            .iter()
            .filter(|o| o.family == row.family)
            .map(|o| f64::from(o.ap_drop))
            .collect();
        let apu = und.iter().sum::<f64>() / und.len().max(1) as f64;
        println!(
            "{:<14}{:>9}{:>11.3}{:>13.2}{:>11.2}{:>9}",
            row.family,
            row.clients,
            det,
            apd,
            apu,
            lanes.iter().filter(|o| o.quarantined).count(),
        );
    }

    // The artifact must replay byte-identically across the two runs.
    let artifact = defense_artifact(&undefended, &defended_a, &benign_a);
    let replay = defense_artifact(&undefended, &defended_b, &benign_b);
    assert_eq!(
        artifact, replay,
        "same-seed defended runs must emit byte-identical BENCH_defense.json"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_defense.json");
    std::fs::write(&path, &artifact)?;
    println!("\ndefense artifact replayed byte-identically; written to {}", path.display());

    // Blue-team contracts on the first defended run.
    for stats in benign_a.iter().chain(&benign_b) {
        assert_eq!(
            stats.defense_flagged, 0,
            "benign control lane must never be flagged: {stats:?}"
        );
        assert_eq!(stats.defense_observed, BENIGN_QUERIES as u64, "benign lane observed");
    }
    for outcome in defended_a.outcomes.iter().chain(&defended_b.outcomes) {
        if matches!(outcome.family.as_str(), "timi" | "feature_map") {
            assert_eq!(
                outcome.stats.defense_observed, 0,
                "zero-query family {} must evade by construction",
                outcome.family
            );
        }
    }
    let duo_rate: Vec<f64> = defended_a
        .outcomes
        .iter()
        .filter(|o| o.family == "duo")
        .map(lane_detection_rate)
        .collect();
    let duo_mean = duo_rate.iter().sum::<f64>() / duo_rate.len() as f64;
    assert!(
        duo_mean >= 0.5,
        "streaming defense must catch DUO query streams, got mean rate {duo_mean:.3}"
    );

    // Phase-2 accounting: fleet + benign, across both runs.
    let (system, blue_stats) = defended_service.shutdown_into();
    let system = system.expect("no outstanding service refs");
    println!("\n[defended service] {blue_stats}");
    let charged =
        defended_a.charged + defended_b.charged + benign_charged_a + benign_charged_b;
    assert_eq!(
        charged,
        blue_stats.served + blue_stats.failed,
        "defended accounting must be exact: detector rejections are uncharged"
    );
    assert!(
        blue_stats.defense_rejected > 0,
        "the escalation ladder must reach quarantine against the zoo"
    );
    assert_eq!(blue_stats.purified, blue_stats.served + blue_stats.failed,
        "every query that reached the model went through purification");

    // Phase 3 — chaos: defended fleet under 20% transient node faults.
    println!("\n[phase 3] chaos: defended fleet under 20% transient faults");
    let mut system = system;
    arm_faults(&mut system, seed);
    let chaos_service = RetrievalService::start(system, blue_config())?;
    let chaos_config = CampaignConfig {
        clients: FAMILIES.len(),
        per_client_budget: 10 * world_scale.iter_num_q as u64 + 200,
        seed: seed ^ 0xC4A05,
        max_retries: 16,
    };
    let chaos = run_campaign(
        &chaos_service,
        |i| zoo(i, &surrogate, world_scale),
        &pairs,
        &chaos_config,
    )?;
    let chaos_stats = chaos_service.shutdown();
    println!("{chaos_stats}");
    assert!(chaos_stats.transient_faults > 0, "fault schedule must actually fire");
    assert_eq!(
        chaos.charged,
        chaos_stats.served + chaos_stats.failed,
        "accounting must stay exact with the defense stage under faults"
    );
    println!(
        "accounting exact in all phases: red {} == {}, blue {} == {}, chaos {} == {}",
        undefended.charged,
        red_stats.served + red_stats.failed,
        charged,
        blue_stats.served + blue_stats.failed,
        chaos.charged,
        chaos_stats.served + chaos_stats.failed,
    );
    Ok(())
}
