//! Table X: attack detection rate (%) of feature squeezing and Noise2Self
//! against every attack, on both datasets.

use super::RunResult;
use crate::{
    overlapping_attack_pairs, build_world, steal_surrogates, AttackKind, Scale,
};
use duo_attack::DuoAttack;
use duo_baselines::{
    HeuConfig, HeuNesAttack, HeuSimAttack, TimiAttack, TimiConfig, VanillaAttack, VanillaConfig,
};
use duo_defenses::{Defense, DetectionHarness, FeatureSqueezing, Noise2Self};
use duo_models::{Architecture, LossKind};
use duo_tensor::Rng64;
use duo_video::{DatasetKind, Video};

const ROWS: [AttackKind; 7] = [
    AttackKind::Vanilla,
    AttackKind::TimiC3d,
    AttackKind::TimiRes18,
    AttackKind::HeuNes,
    AttackKind::HeuSim,
    AttackKind::DuoC3d,
    AttackKind::DuoRes18,
];

/// Reproduces Table X.
pub fn run(scale: Scale) -> RunResult {
    println!("\n=== Table X — attack detection rate (%) of two defenses (scale: {}) ===", scale.name);
    // detection[attack][defense×dataset]
    let mut detection: Vec<Vec<f32>> = vec![Vec::new(); ROWS.len()];
    let datasets = [DatasetKind::Ucf101Like, DatasetKind::Hmdb51Like];
    for (di, &kind) in datasets.iter().enumerate() {
        let world = build_world(kind, Architecture::I3d, LossKind::ArcFace, scale, 0x7AA0 + di as u64)?;
        let world_scale = world.scale;
        let (mut bb, ds) = world.into_blackbox();
        let mut rng = Rng64::new(0x7AA1 + di as u64);
        let mut surrogates = steal_surrogates(&mut bb, &ds, world_scale, &mut rng)?;
        let pairs = overlapping_attack_pairs(&mut bb, &ds, world_scale.classes, world_scale.pairs, &mut rng)?;
        let k = world_scale.default_k();

        // Generate adversarial videos for every attack row.
        let mut adversarial: Vec<Vec<Video>> = vec![Vec::new(); ROWS.len()];
        for &(v_id, t_id) in &pairs {
            let v = ds.video(v_id);
            let v_t = ds.video(t_id);
            for (ri, &attack) in ROWS.iter().enumerate() {
                let adv = match attack {
                    AttackKind::Vanilla => {
                        let cfg = VanillaConfig { k, n: 4, tau: 30.0, iter_num_q: world_scale.iter_num_q };
                        VanillaAttack::new(cfg).run(&mut bb, &v, &v_t, &mut rng)?.adversarial
                    }
                    AttackKind::TimiC3d => {
                        TimiAttack::new(&mut surrogates.c3d, TimiConfig::default())
                            .run(&v, &v_t)?
                            .adversarial
                    }
                    AttackKind::TimiRes18 => {
                        TimiAttack::new(&mut surrogates.res18, TimiConfig::default())
                            .run(&v, &v_t)?
                            .adversarial
                    }
                    AttackKind::HeuNes => {
                        let cfg = HeuConfig { k, n: 4, iters: world_scale.iter_num_q / 8, ..HeuConfig::default() };
                        HeuNesAttack::new(cfg).run(&mut bb, &v, &v_t, &mut rng)?.adversarial
                    }
                    AttackKind::HeuSim => {
                        let cfg = HeuConfig { k, n: 4, iters: world_scale.iter_num_q, ..HeuConfig::default() };
                        HeuSimAttack::new(cfg).run(&mut bb, &v, &v_t, &mut rng)?.adversarial
                    }
                    AttackKind::DuoC3d | AttackKind::DuoRes18 => {
                        let cfg = world_scale.duo_config();
                        let arch = if attack == AttackKind::DuoC3d {
                            Architecture::C3d
                        } else {
                            Architecture::Resnet18
                        };
                        let surrogate = match arch {
                            Architecture::C3d => &mut surrogates.c3d,
                            _ => &mut surrogates.res18,
                        };
                        let placeholder = duo_models::Backbone::new(
                            surrogate.arch(),
                            surrogate.config(),
                            &mut Rng64::new(0),
                        )?;
                        let owned = std::mem::replace(surrogate, placeholder);
                        let mut duo = DuoAttack::new(owned, cfg);
                        let out = duo.run(&mut bb, &v, &v_t, &mut rng);
                        *surrogate = duo.into_surrogate();
                        out?.adversarial
                    }
                    AttackKind::WithoutAttack => unreachable!("not a Table X row"),
                };
                adversarial[ri].push(adv);
            }
        }

        // Calibrate each defense on clean videos, then score detections.
        let clean: Vec<Video> = (0..world_scale.classes)
            .map(|c| ds.video(duo_video::VideoId { class: c, instance: 0 }))
            .collect();
        let defenses: [Box<dyn Defense>; 2] =
            [Box::new(FeatureSqueezing::default()), Box::new(Noise2Self::default())];
        for defense in &defenses {
            let system = bb.system_mut();
            let mut harness =
                DetectionHarness::calibrate(system, defense.as_ref(), &clean, 0.1)?;
            for (ri, advs) in adversarial.iter().enumerate() {
                let rate = harness.detection_rate(system, defense.as_ref(), advs)?;
                detection[ri].push(rate);
            }
        }
    }

    // Column order: FS-UCF, N2S-UCF, FS-HMDB, N2S-HMDB → print as paper:
    // FS (UCF, HMDB) then N2S (UCF, HMDB).
    println!(
        "{:<14}{:>18}{:>12}{:>18}{:>12}",
        "attack", "squeeze UCF101", "HMDB51", "Noise2Self UCF", "HMDB51"
    );
    for (ri, attack) in ROWS.iter().enumerate() {
        let d = &detection[ri];
        // Per dataset we pushed [FS, N2S]; datasets in order UCF, HMDB.
        println!(
            "{:<14}{:>17.2}%{:>11.2}%{:>17.2}%{:>11.2}%",
            attack.label(),
            d[0],
            d[2],
            d[1],
            d[3]
        );
    }
    Ok(())
}
