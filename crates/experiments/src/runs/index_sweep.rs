//! Index-layer experiment: the exact-vs-IVF-vs-compressed latency/recall
//! trade-off on a clustered feature gallery, plus an end-to-end pass
//! through [`duo_retrieval::RetrievalSystem`] in IVF and PQ modes
//! exercising the recall audit counters that `duo-serve` surfaces in its
//! `ServiceStats` (now split per-mode via `IndexBreakdown`).
//!
//! Unlike `benches/index.rs` (which times the shard kernel in isolation
//! with the in-tree bench runner), this run measures wall-clock medians
//! over a probe batch at experiment scale and emits one JSON row per
//! `(gallery, nlist, nprobe)` point, paper-style. The compressed sweep
//! adds PQ/SQ8 points at several probe depths with their hot-path
//! bytes-per-vector, and asserts the equivalence contract at experiment
//! scale: full probe + full-depth exact rerank must reproduce the exact
//! scan answer for answer (distance bits included).

use super::RunResult;
use crate::Scale;
use duo_models::{Architecture, Backbone, BackboneConfig};
use duo_retrieval::{recall_at_m, IndexMode, RetrievalConfig, RetrievalSystem, ShardIndex};
use duo_tensor::{Rng64, Tensor, ToJson};
use duo_video::{ClipSpec, DatasetKind, SyntheticDataset, VideoId};
use std::time::Instant;

/// A clustered gallery in embedding space: points = center + noise.
fn clustered(n: usize, dim: usize, seed: u64) -> Vec<(VideoId, Tensor)> {
    let mut rng = Rng64::new(seed);
    let clusters = (n / 50).max(4);
    let centers: Vec<Vec<f32>> =
        (0..clusters).map(|_| (0..dim).map(|_| 4.0 * rng.normal()).collect()).collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % clusters];
            let data: Vec<f32> = c.iter().map(|&x| x + 0.1 * rng.normal()).collect();
            let id = VideoId { class: (i % clusters) as u32, instance: (i / clusters) as u32 };
            (id, Tensor::from_vec(data, &[dim]).unwrap())
        })
        .collect()
}

/// Median wall-clock microseconds per query over `reps` passes.
fn median_us(mut f: impl FnMut(), reps: usize, queries: usize) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            (t.elapsed().as_micros() as u64) / queries.max(1) as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs the index sweep at the given scale.
pub fn run(scale: Scale) -> RunResult {
    println!("\n=== Index layer: exact vs IVF latency/recall (scale: {}) ===", scale.name);
    let smoke = scale.name == "smoke";
    let (n, dim, reps) = if smoke { (2_000, 32, 5) } else { (20_000, 64, 9) };
    let m = 10usize;
    let entries = clustered(n, dim, 0x1D_5EED);
    let mut rng = Rng64::new(0x1D_5EED ^ 0x0FF5E7);
    let queries: Vec<Vec<f32>> = (0..24)
        .map(|_| {
            let (_, feat) = &entries[rng.below(entries.len())];
            feat.as_slice().iter().map(|&x| x + 0.05 * rng.normal()).collect()
        })
        .collect();

    let exact = ShardIndex::build(&entries, IndexMode::Exact, 0)?;
    let exact_ids: Vec<Vec<VideoId>> = queries
        .iter()
        .map(|q| exact.search(q, m).into_iter().map(|s| s.id).collect())
        .collect();
    let exact_us = median_us(
        || {
            for q in &queries {
                std::hint::black_box(exact.search(q, m));
            }
        },
        reps,
        queries.len(),
    );
    println!("{:<34}{:>12}{:>12}", "point", "us/query", "recall@10");
    println!("{:<34}{:>12}{:>12}", format!("exact n={n}"), exact_us, "1.0000");

    let nlist = (n / 100).clamp(4, 128);
    let mut probes: Vec<usize> =
        [1, nlist / 16, nlist / 8, nlist / 4, nlist].into_iter().filter(|&p| p >= 1).collect();
    probes.dedup();
    for nprobe in probes {
        let ivf = ShardIndex::build(&entries, IndexMode::ivf(nlist, nprobe), 7)?;
        let recall: f32 = queries
            .iter()
            .zip(&exact_ids)
            .map(|(q, want)| {
                let got: Vec<VideoId> = ivf.search(q, m).into_iter().map(|s| s.id).collect();
                recall_at_m(&got, want)
            })
            .sum::<f32>()
            / queries.len() as f32;
        let us = median_us(
            || {
                for q in &queries {
                    std::hint::black_box(ivf.search(q, m));
                }
            },
            reps,
            queries.len(),
        );
        println!("{:<34}{:>12}{:>12.4}", format!("ivf n={n} {nlist}/{nprobe}"), us, recall);
        println!(
            "row JSON: {{\"gallery\":{n},\"dim\":{dim},\"nlist\":{nlist},\"nprobe\":{nprobe},\
             \"exact_us\":{exact_us},\"ivf_us\":{us},\"recall_at_{m}\":{recall:.4}}}"
        );
        if nprobe == nlist {
            // The equivalence contract, asserted at experiment scale: a
            // full probe is an exhaustive scan.
            assert!(
                (recall - 1.0).abs() < f32::EPSILON,
                "nprobe == nlist must equal exact (got recall {recall})"
            );
        }
    }

    // Compressed residual codes: PQ (dim/8 subspaces, 8-bit codebooks)
    // and SQ8 (per-dimension 8-bit residuals), both with an exact rerank
    // tail of 64 at the partial probe depths.
    let m_sub = (dim / 8).max(1);
    for tag in ["pq", "sq8"] {
        for nprobe in [(nlist / 16).max(1), (nlist / 8).max(1), nlist] {
            let full = nprobe == nlist;
            let rerank = if full { n } else { 64 };
            let mode = match tag {
                "pq" => IndexMode::pq(nlist, nprobe, m_sub, 8, rerank),
                _ => IndexMode::sq8(nlist, nprobe, rerank),
            };
            let idx = ShardIndex::build(&entries, mode, 7)?;
            let recall: f32 = queries
                .iter()
                .zip(&exact_ids)
                .map(|(q, want)| {
                    let got: Vec<VideoId> = idx.search(q, m).into_iter().map(|s| s.id).collect();
                    recall_at_m(&got, want)
                })
                .sum::<f32>()
                / queries.len() as f32;
            let us = median_us(
                || {
                    for q in &queries {
                        std::hint::black_box(idx.search(q, m));
                    }
                },
                reps,
                queries.len(),
            );
            let bytes = idx.scan_bytes_per_row();
            println!(
                "{:<34}{:>12}{:>12.4}   {bytes:.1} B/vec",
                format!("{tag} n={n} {nlist}/{nprobe}"),
                us,
                recall
            );
            println!(
                "row JSON: {{\"gallery\":{n},\"dim\":{dim},\"mode\":\"{tag}\",\"nlist\":{nlist},\
                 \"nprobe\":{nprobe},\"exact_us\":{exact_us},\"{tag}_us\":{us},\
                 \"recall_at_{m}\":{recall:.4},\"scan_bytes_per_vec\":{bytes:.2}}}"
            );
            if full {
                // The equivalence contract at experiment scale: full
                // probe + full-depth exact rerank is an exhaustive exact
                // scan, answer for answer.
                for (q, want) in queries.iter().zip(&exact_ids) {
                    let got = idx.search(q, m);
                    assert_eq!(
                        got.len(),
                        want.len(),
                        "{tag} full probe + full rerank must match exact"
                    );
                    assert_eq!(
                        got.iter().map(|s| s.id).collect::<Vec<_>>(),
                        *want,
                        "{tag} full probe + full rerank must match exact ids"
                    );
                }
                assert_eq!(
                    queries
                        .iter()
                        .map(|q| idx.search(q, m).iter().map(|s| s.distance.to_bits()).collect())
                        .collect::<Vec<Vec<u32>>>(),
                    queries
                        .iter()
                        .map(|q| exact.search(q, m).iter().map(|s| s.distance.to_bits()).collect())
                        .collect::<Vec<Vec<u32>>>(),
                    "{tag} full-rerank distances must be bit-identical to exact"
                );
            }
        }
    }

    // End to end: a real retrieval system in IVF mode over embedded
    // videos, exercising the per-shard recall audits the serving layer
    // reports. Tiny world — the point is the counters, not the mAP.
    let mut wrng = Rng64::new(0x1D_5EED ^ 7);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 9, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
    let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut wrng)?;
    let config = RetrievalConfig {
        m: 5,
        nodes: 3,
        index: IndexMode::ivf(4, 2),
        ..RetrievalConfig::default()
    };
    let system = RetrievalSystem::build(backbone, &ds, &gallery, config)?;
    for &id in ds.test().iter().filter(|id| id.class < 10) {
        system.retrieve(&ds.video(id))?;
    }
    let stats = system.index_stats();
    println!(
        "system IVF pass: {} shard searches, {} rows through the kernel, \
         {:.2} mean probes, recall@m {} over {} audits",
        stats.queries,
        stats.scanned_rows,
        stats.mean_probes(),
        stats.recall_at_m().map_or("n/a".to_string(), |r| format!("{r:.4}")),
        stats.audit_queries
    );
    println!("index stats JSON: {}", stats.to_json());
    assert!(stats.audit_queries > 0, "audits must fire on IVF traffic");

    // Same world in PQ mode: the audits must attribute to the pq bucket
    // of the per-mode breakdown the serving layer now reports, and the
    // compressed footprint counters must be live.
    let mut prng = Rng64::new(0x1D_5EED ^ 7);
    let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut prng)?;
    let pq_config = RetrievalConfig {
        m: 5,
        nodes: 3,
        index: IndexMode::pq(4, 2, 4, 8, 16),
        ..RetrievalConfig::default()
    };
    let pq_system = RetrievalSystem::build(backbone, &ds, &gallery, pq_config)?;
    for &id in ds.test().iter().filter(|id| id.class < 10) {
        pq_system.retrieve(&ds.video(id))?;
    }
    let breakdown = pq_system.index_breakdown();
    println!(
        "system PQ pass: {} shard searches, recall@m {} over {} pq audits, \
         {} feature bytes vs {} code bytes, {} reranked rows",
        breakdown.total.queries,
        breakdown.pq.recall_at_m().map_or("n/a".to_string(), |r| format!("{r:.4}")),
        breakdown.pq.audit_queries,
        breakdown.feature_bytes,
        breakdown.code_bytes,
        breakdown.total.reranked_rows,
    );
    println!("index breakdown JSON: {}", breakdown.to_json());
    assert!(breakdown.pq.audit_queries > 0, "audits must land in the pq bucket");
    assert_eq!(
        breakdown.ivf.audit_queries, 0,
        "a pq-only fleet must not attribute audits to the ivf bucket"
    );
    assert!(breakdown.code_bytes > 0, "compressed shards must report code bytes");
    Ok(())
}
