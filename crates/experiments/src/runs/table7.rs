//! Table VII: DUO performance vs the per-pixel perturbation budget
//! `τ ∈ {15, 30, 40, 50}`.

use super::{duo_sweep, ConfigCell, RunResult};
use crate::{duo_config_with, Scale};

/// Reproduces Table VII.
pub fn run(scale: Scale) -> RunResult {
    let cells: Vec<ConfigCell> =
        [15.0f32, 30.0, 40.0, 50.0]
            .into_iter()
            .map(|tau| {
                let label = format!("tau={tau}");
                let f: Box<dyn Fn(Scale) -> duo_attack::DuoConfig> =
                    Box::new(move |s: Scale| duo_config_with(s, None, None, Some(tau), None));
                (label, f)
            })
            .collect();
    duo_sweep(scale, "Table VII — DUO vs perturbation budget tau", &cells, 0x7A70)
}
