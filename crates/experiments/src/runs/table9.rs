//! Table IX: transferability of SparseTransfer perturbations (ℓ2 and ℓ∞
//! variants) compared against TIMI, evaluated directly on each victim
//! without query rectification (UCF101, as in the paper).

use super::RunResult;
use crate::{
    overlapping_attack_pairs, build_world, mean_report, print_header, print_row, run_attack,
    steal_surrogates, AttackKind, Scale,
};
use duo_attack::{evaluate_outcome, AttackOutcome, AttackReport, SparseTransfer};
use duo_models::{Architecture, LossKind};
use duo_tensor::Rng64;
use duo_video::DatasetKind;

/// Reproduces Table IX.
pub fn run(scale: Scale) -> RunResult {
    let victims = Architecture::victims();
    let labels: Vec<&str> = victims.iter().map(|a| a.name()).collect();
    print_header(
        &format!("Table IX — SparseTransfer transferability, UCF101 (scale: {})", scale.name),
        &labels,
    );
    let rows = [
        ("TIMI-C3D (n=16)", Row::Timi(AttackKind::TimiC3d)),
        ("TIMI-Res (n=16)", Row::Timi(AttackKind::TimiRes18)),
        ("DUO-C3D (l2)", Row::Transfer(Architecture::C3d, duo_attack::PerturbNorm::L2)),
        ("DUO-Res18 (l2)", Row::Transfer(Architecture::Resnet18, duo_attack::PerturbNorm::L2)),
        ("DUO-C3D (linf)", Row::Transfer(Architecture::C3d, duo_attack::PerturbNorm::Linf)),
        ("DUO-Res18 (linf)", Row::Transfer(Architecture::Resnet18, duo_attack::PerturbNorm::Linf)),
    ];
    let mut table: Vec<(&str, Vec<AttackReport>)> =
        rows.iter().map(|(l, _)| (*l, Vec::new())).collect();

    for (vi, &arch) in victims.iter().enumerate() {
        let world =
            build_world(DatasetKind::Ucf101Like, arch, LossKind::ArcFace, scale, 0x7A90 + vi as u64)?;
        let world_scale = world.scale;
        let (mut bb, ds) = world.into_blackbox();
        let mut rng = Rng64::new(0x7A91 + vi as u64);
        let mut surrogates = steal_surrogates(&mut bb, &ds, world_scale, &mut rng)?;
        let pairs = overlapping_attack_pairs(&mut bb, &ds, world_scale.classes, world_scale.pairs, &mut rng)?;
        for ((_, row_kind), (_, column)) in rows.iter().zip(table.iter_mut()) {
            let mut reports = Vec::new();
            for &pair in &pairs {
                let report = match row_kind {
                    Row::Timi(kind) => run_attack(
                        *kind,
                        &mut bb,
                        &ds,
                        &mut surrogates,
                        pair,
                        world_scale,
                        None,
                        &mut rng,
                    )?,
                    Row::Transfer(surrogate_arch, norm) => {
                        let v = ds.video(pair.0);
                        let v_t = ds.video(pair.1);
                        let mut cfg = world_scale.duo_config().transfer;
                        cfg.norm = *norm;
                        let surrogate = match surrogate_arch {
                            Architecture::C3d => &mut surrogates.c3d,
                            _ => &mut surrogates.res18,
                        };
                        let masks = SparseTransfer::new(surrogate, cfg).run(&v, &v_t)?;
                        let adversarial = v.add_perturbation(&masks.phi())?;
                        let perturbation = adversarial.perturbation_from(&v)?;
                        let outcome = AttackOutcome {
                            adversarial,
                            perturbation,
                            queries: 0,
                            loss_trajectory: Vec::new(),
                        };
                        evaluate_outcome(&mut bb, &outcome, &v_t)?
                    }
                };
                reports.push(report);
            }
            column.push(mean_report(&reports));
        }
    }
    for (label, column) in &table {
        print_row(label, column);
    }
    Ok(())
}

enum Row {
    Timi(AttackKind),
    Transfer(Architecture, duo_attack::PerturbNorm),
}
