//! Table V: DUO performance vs the pixel budget
//! `k ∈ {20K, 30K, 40K, 50K}` (paper-resolution budgets, scaled onto the
//! experiment clip geometry).

use super::{duo_sweep, ConfigCell, RunResult};
use crate::{duo_config_with, Scale};

/// Reproduces Table V.
pub fn run(scale: Scale) -> RunResult {
    let cells: Vec<ConfigCell> =
        [20_000usize, 30_000, 40_000, 50_000]
            .into_iter()
            .map(|paper_k| {
                let label = format!("k={}K", paper_k / 1000);
                let f: Box<dyn Fn(Scale) -> duo_attack::DuoConfig> = Box::new(move |s: Scale| {
                    duo_config_with(s, Some(s.scale_k(paper_k)), None, None, None)
                });
                (label, f)
            })
            .collect();
    duo_sweep(scale, "Table V — DUO vs pixel budget k (n=4)", &cells, 0x7A50)
}
