//! Chaos experiment: the full DUO pipeline (steal → attack) executed
//! against the deployed `duo-serve` service while a deterministic fault
//! schedule rages on every data node — 20% transient failures, injected
//! latency spikes, and per-node flap windows.
//!
//! What this proves, machine-checked at the end of the run:
//!
//! 1. **Exact budget accounting under faults.** Every query the attacker
//!    is charged for reached the model (`charged == served + failed`);
//!    deadline-shed requests are refunded, and no client ever observes a
//!    panic.
//! 2. **Determinism.** The same chaos seed replays the same fault
//!    schedule, retrieval lists, and telemetry counters bit for bit
//!    (probed with a pair of identically seeded systems before the
//!    attack run).
//!
//! Prints the attack row plus the final [`duo_serve::ServiceStats`] as
//! JSON, like the serve experiment.

use super::RunResult;
use crate::{build_world, Scale};
use duo_attack::{steal_surrogate, DuoAttack};
use duo_models::{Architecture, Backbone, BackboneConfig, LossKind};
use duo_retrieval::{
    ap_at_m, BreakerConfig, FaultPlan, QueryOracle, ResilienceConfig, RetrievalConfig,
    RetrievalSystem,
};
use duo_serve::{RetrievalService, ServeConfig, ServiceOracle};
use duo_tensor::{Rng64, ToJson};
use duo_video::{ClipSpec, DatasetKind, SyntheticDataset, VideoId};
use std::time::Duration;

/// The fault schedule installed on node `i`: seeded per node, 20%
/// transient failures, latency with spikes past the virtual node
/// deadline, and one flap window per node (staggered so the service is
/// never fully dark).
fn chaos_plan(seed: u64, node: usize) -> FaultPlan {
    let node_u = node as u64;
    FaultPlan::transient(seed ^ (0xC4A0_5000 + node_u), 0.20)
        .with_latency(200, 150, 0.05, 8_000)
        .with_flap(40 + 60 * node_u, 70 + 60 * node_u)
}

/// The resilience policy the service fights back with.
fn chaos_policy(seed: u64) -> ResilienceConfig {
    ResilienceConfig {
        node_timeout_us: Some(5_000),
        max_retries: 4,
        backoff_base_us: 100,
        backoff_jitter_us: 50,
        hedge_after_us: Some(2_000),
        breaker: Some(BreakerConfig { failure_threshold: 3, open_cooldown: 6 }),
        seed,
        require_full_coverage: false,
    }
}

/// Installs the chaos schedule + resilience policy on a built system.
fn arm(system: &mut RetrievalSystem, seed: u64) {
    for (i, node) in system.nodes().iter().enumerate() {
        node.set_fault_plan(Some(chaos_plan(seed, i)));
    }
    system.set_resilience(chaos_policy(seed ^ 0xBACC0FF));
}

/// Builds a small untrained chaotic system (weights seeded, no training)
/// and replays `queries` through it, returning lists plus the summed
/// telemetry counters. Used twice to prove bit-identical replay.
fn determinism_probe(
    seed: u64,
    threaded: bool,
) -> Result<(Vec<Vec<VideoId>>, u64, u64, u64), Box<dyn std::error::Error>> {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), seed, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng)?;
    let mut system = RetrievalSystem::build(
        backbone,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 3, threaded, ..Default::default() },
    )?;
    arm(&mut system, seed);
    let mut lists = Vec::new();
    let (mut retries, mut transients, mut breaker_opens) = (0u64, 0u64, 0u64);
    for &id in ds.test().iter().filter(|id| id.class < 8) {
        let feature = system.embed(&ds.video(id))?;
        let got = system.retrieve_resilient(&feature)?;
        retries += got.telemetry.retries;
        transients += got.telemetry.transient_faults;
        breaker_opens += got.telemetry.breaker_opens;
        lists.push(got.ids);
    }
    Ok((lists, retries, transients, breaker_opens))
}

/// Reproduces the chaos experiment: DUO through the service surface
/// under injected faults, with exact accounting.
pub fn run(scale: Scale) -> RunResult {
    println!("\n=== Chaos layer: DUO vs a faulty service (scale: {}) ===", scale.name);
    let chaos_seed = 0xC4A0_5EED;

    // Determinism probe: identical seeds must replay the identical fault
    // schedule, retrieval lists, and telemetry — threaded or inline.
    let a = determinism_probe(chaos_seed, false)?;
    let b = determinism_probe(chaos_seed, false)?;
    let c = determinism_probe(chaos_seed, true)?;
    assert_eq!(a, b, "same chaos seed must replay bit-identically");
    assert_eq!(a, c, "threaded fan-out must match inline under chaos");
    println!(
        "determinism probe: {} lists bit-identical across runs and fan-out modes \
         ({} retries, {} transients, {} breaker trips)",
        a.0.len(),
        a.1,
        a.2,
        a.3
    );

    // The victim world, with every node armed.
    let world =
        build_world(DatasetKind::Hmdb51Like, Architecture::I3d, LossKind::ArcFace, scale, 0xC4A05)?;
    let (dataset, world_scale) = (world.dataset, world.scale);
    let mut system = world.system;
    arm(&mut system, chaos_seed);

    let config = ServeConfig {
        default_deadline: Some(Duration::from_secs(30)),
        ..ServeConfig::default()
    };
    let service = RetrievalService::start(system, config)?;
    println!(
        "service up under chaos: {} nodes x (20% transient + flaps + latency spikes), \
         policy: 4 retries / 5 ms node deadline / hedge at 2 ms / breaker 3:6",
        service.system().nodes().len()
    );

    // The adversary: one metered client. Single-client traffic keeps the
    // run deterministic — every fault, retry, and breaker transition is
    // scheduled, not raced.
    let probes: Vec<VideoId> =
        dataset.test().iter().filter(|id| id.class < world_scale.classes).copied().collect();
    let mut rng = Rng64::new(0xC4A05 ^ 0x5EED);
    let mut oracle = ServiceOracle::new(service.client(Some(100_000), None));
    let (surrogate, steal) =
        steal_surrogate(&mut oracle, &dataset, &probes, world_scale.steal_config(Architecture::C3d), &mut rng)
            .map_err(|e| e.to_string())?;
    println!(
        "surrogate stolen through the chaotic service: {} queries, {} triplets",
        steal.queries, steal.triplets_used
    );

    // Candidate pair with the strongest overlapping baseline.
    let pool: Vec<VideoId> = dataset
        .train()
        .iter()
        .filter(|id| id.class < world_scale.classes && id.instance == world_scale.train_per_class)
        .copied()
        .collect();
    let mut lists = Vec::with_capacity(pool.len());
    for &id in &pool {
        lists.push(oracle.retrieve(&dataset.video(id)).map_err(|e| e.to_string())?);
    }
    let mut pair = (0, 1, -1.0f32);
    for i in 0..pool.len() {
        for j in 0..pool.len() {
            if pool[i].class != pool[j].class {
                let ap = ap_at_m(&lists[i], &lists[j]);
                if ap > pair.2 {
                    pair = (i, j, ap);
                }
            }
        }
    }
    let (v, v_t) = (dataset.video(pool[pair.0]), dataset.video(pool[pair.1]));
    println!(
        "attack pair: class {} -> class {} (baseline AP@m {:.1}%)",
        pool[pair.0].class, pool[pair.1].class, pair.2
    );

    let mut attack = DuoAttack::new(surrogate, world_scale.duo_config());
    let outcome = attack.run(&mut oracle, &v, &v_t, &mut rng).map_err(|e| e.to_string())?;
    let r_adv = oracle.retrieve(&outcome.adversarial).map_err(|e| e.to_string())?;
    let (ap, spa, charged) = (ap_at_m(&r_adv, &lists[pair.1]), outcome.spa(), oracle.queries_used());

    let stats = service.shutdown();
    println!("\n{:<24}{:>10}{:>8}{:>10}", "attack (via chaos)", "AP@m", "Spa", "queries");
    println!("{:<24}{:>9.2}%{:>8}{:>10}", "DUO-C3D", ap, spa, charged);
    println!("\n{stats}");
    println!("service stats JSON: {}", stats.to_json());

    // The run's whole point: exact accounting while faults rage.
    assert_eq!(
        charged,
        stats.served + stats.failed,
        "budget drift: every charged query must have reached the model \
         (shed queries are refunded)"
    );
    assert!(
        stats.transient_faults > 0 && stats.retries > 0,
        "the chaos schedule must actually have fired (got {} faults, {} retries)",
        stats.transient_faults,
        stats.retries
    );
    println!(
        "accounting exact: {} charged == {} served + {} failed under {} transients / {} retries / {} breaker trips",
        charged, stats.served, stats.failed, stats.transient_faults, stats.retries, stats.breaker_opens
    );
    Ok(())
}
