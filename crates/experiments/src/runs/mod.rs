//! One module per paper table/figure; each exposes `run(scale)` printing
//! the reproduced rows. The binaries in `src/bin/` are thin wrappers, and
//! the bench crate calls the same entry points.

pub mod ablations;
pub mod campaign;
pub mod chaos;
pub mod ext_ensemble;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod index_sweep;
pub mod mutate_serve;
pub mod red_vs_blue;
pub mod serve;
pub mod table10;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;

/// Shared error alias for experiment runs.
pub type RunResult = Result<(), Box<dyn std::error::Error>>;

use crate::{
    overlapping_attack_pairs, build_world, mean_report, run_attack, steal_surrogates, AttackKind, Scale,
};
use duo_attack::DuoConfig;
use duo_models::{Architecture, LossKind};
use duo_tensor::Rng64;
use duo_video::DatasetKind;

/// One labelled DUO configuration cell of a Table V–VIII sweep.
pub(crate) type ConfigCell = (String, Box<dyn Fn(Scale) -> DuoConfig>);

/// Shared sweep harness for Tables V–VIII: one I3D/ArcFace world per
/// dataset, surrogates stolen once, DUO evaluated under each configuration
/// cell for both surrogate architectures.
pub(crate) fn duo_sweep(
    scale: Scale,
    title: &str,
    cells: &[ConfigCell],
    seed: u64,
) -> RunResult {
    println!("\n=== {title} (scale: {}) ===", scale.name);
    for kind in [DatasetKind::Ucf101Like, DatasetKind::Hmdb51Like] {
        println!("\n[{kind}]");
        println!(
            "{:<16}{:>10}{:>9}{:>8}{:>6}{:>10}{:>9}{:>8}",
            "cell", "C3D AP@m", "Spa", "PScr", "", "R18 AP@m", "Spa", "PScr"
        );
        let world = build_world(kind, Architecture::I3d, LossKind::ArcFace, scale, seed)?;
        let world_scale = world.scale;
        let (mut bb, ds) = world.into_blackbox();
        let mut rng = Rng64::new(seed ^ 0x5EED);
        let mut surrogates = steal_surrogates(&mut bb, &ds, world_scale, &mut rng)?;
        let pairs = overlapping_attack_pairs(&mut bb, &ds, world_scale.classes, world_scale.pairs, &mut rng)?;
        for (label, make) in cells {
            let cfg = make(world_scale);
            let mut row = Vec::new();
            for attack in [AttackKind::DuoC3d, AttackKind::DuoRes18] {
                let mut reports = Vec::new();
                for &pair in &pairs {
                    reports.push(run_attack(
                        attack,
                        &mut bb,
                        &ds,
                        &mut surrogates,
                        pair,
                        world_scale,
                        Some(cfg),
                        &mut rng,
                    )?);
                }
                row.push(mean_report(&reports));
            }
            println!(
                "{:<16}{:>9.2}%{:>9}{:>8.3}{:>6}{:>9.2}%{:>9}{:>8.3}",
                label, row[0].ap_at_m, row[0].spa, row[0].pscore, "",
                row[1].ap_at_m, row[1].spa, row[1].pscore
            );
        }
    }
    Ok(())
}
