//! Figure 5: the SparseQuery objective 𝕋 versus the number of queries,
//! for Vanilla, HEU-Sim, DUO-C3D and DUO-Res18.

use super::RunResult;
use crate::{overlapping_attack_pairs, build_world, run_duo_outcome, steal_surrogates, Scale};
use duo_baselines::{HeuConfig, HeuSimAttack, VanillaAttack, VanillaConfig};
use duo_models::{Architecture, LossKind};
use duo_tensor::Rng64;
use duo_video::DatasetKind;

/// Reproduces Figure 5 (printed as one series per attack; each row is
/// `query-index, 𝕋`).
pub fn run(scale: Scale) -> RunResult {
    println!("\n=== Figure 5 — query objective T vs #queries (scale: {}) ===", scale.name);
    for kind in [DatasetKind::Ucf101Like, DatasetKind::Hmdb51Like] {
        // The paper plots TPN on UCF101 and HMDB51.
        let world = build_world(kind, Architecture::Tpn, LossKind::ArcFace, scale, 0x7AF5)?;
        let world_scale = world.scale;
        let (mut bb, ds) = world.into_blackbox();
        let mut rng = Rng64::new(0x7AF6);
        let mut surrogates = steal_surrogates(&mut bb, &ds, world_scale, &mut rng)?;
        let (v_id, t_id) = overlapping_attack_pairs(&mut bb, &ds, world_scale.classes, 1, &mut rng)?[0];
        let v = ds.video(v_id);
        let v_t = ds.video(t_id);
        let k = world_scale.default_k();

        let mut series: Vec<(&str, Vec<f32>)> = Vec::new();
        let vanilla_cfg =
            VanillaConfig { k, n: 4, tau: 30.0, iter_num_q: world_scale.iter_num_q };
        series.push((
            "Vanilla",
            VanillaAttack::new(vanilla_cfg).run(&mut bb, &v, &v_t, &mut rng)?.loss_trajectory,
        ));
        let heu_cfg =
            HeuConfig { k, n: 4, iters: world_scale.iter_num_q, ..HeuConfig::default() };
        series.push((
            "HEU-Sim",
            HeuSimAttack::new(heu_cfg).run(&mut bb, &v, &v_t, &mut rng)?.loss_trajectory,
        ));
        let duo_cfg = world_scale.duo_config();
        series.push((
            "DUO-C3D",
            run_duo_outcome(&mut surrogates.c3d, duo_cfg, &mut bb, &v, &v_t, &mut rng)?
                .loss_trajectory,
        ));
        series.push((
            "DUO-Res18",
            run_duo_outcome(&mut surrogates.res18, duo_cfg, &mut bb, &v, &v_t, &mut rng)?
                .loss_trajectory,
        ));

        println!("\n[{kind}] (victim TPN; series sampled every few iterations)");
        for (name, traj) in &series {
            let step = (traj.len() / 10).max(1);
            let samples: Vec<String> = traj
                .iter()
                .enumerate()
                .filter(|(i, _)| i % step == 0 || *i == traj.len() - 1)
                .map(|(i, t)| format!("({i}, {t:.4})"))
                .collect();
            println!("{name:<10} {}", samples.join(" "));
            if let (Some(first), Some(last)) = (traj.first(), traj.last()) {
                println!(
                    "{:<10} start {:.4} -> end {:.4} (drop {:.4})",
                    "", first, last, first - last
                );
            }
        }
    }
    Ok(())
}
