//! Figure 4: surrogate mAP vs surrogate-dataset size and output feature
//! size.

use super::RunResult;
use crate::{backbone_map, build_world, Scale};
use duo_attack::steal_surrogate;
use duo_models::{Architecture, LossKind};
use duo_tensor::Rng64;
use duo_video::DatasetKind;

/// Paper surrogate dataset sizes and the fraction of the train split they
/// correspond to (UCF101: 9,324 train videos).
const PAPER_SIZES_UCF: [usize; 4] = [165, 1_111, 3_616, 8_421];
const PAPER_SIZES_HMDB: [usize; 4] = [165, 1_111, 1_885, 2_995];
/// Paper output feature sizes.
const PAPER_DIMS: [usize; 4] = [256, 512, 768, 1_024];

/// Reproduces Figure 4.
pub fn run(scale: Scale) -> RunResult {
    println!(
        "\n=== Figure 4: surrogate mAP vs #samples and feature size (scale: {}) ===",
        scale.name
    );
    for kind in [DatasetKind::Ucf101Like, DatasetKind::Hmdb51Like] {
        let world = build_world(kind, Architecture::I3d, LossKind::ArcFace, scale, 0xF4)?;
        let catalog = world.dataset.train().len()
            .min((scale.classes * (scale.train_per_class + scale.gallery_per_class)) as usize);
        let (mut bb, ds) = world.into_blackbox();
        let paper_sizes = match kind {
            DatasetKind::Ucf101Like => PAPER_SIZES_UCF,
            DatasetKind::Hmdb51Like => PAPER_SIZES_HMDB,
        };
        let paper_total = match kind {
            DatasetKind::Ucf101Like => 9_324f64,
            DatasetKind::Hmdb51Like => 4_900f64,
        };
        println!("\n[{kind}] (catalog in use: {catalog} videos)");
        println!("{:<28}{:>12}{:>10}", "sweep", "value", "mAP");

        // Sweep 1: dataset size at the default feature dim.
        let mut rng = Rng64::new(0xF4_01);
        for paper_size in paper_sizes {
            let frac = paper_size as f64 / paper_total;
            let size = ((frac * catalog as f64).ceil() as usize).clamp(4, catalog);
            let mut cfg = scale.steal_config(Architecture::C3d);
            cfg.target_dataset_size = size;
            let probes: Vec<_> =
                ds.test().iter().filter(|id| id.class < scale.classes).copied().collect();
            let (mut surrogate, report) =
                steal_surrogate(&mut bb, &ds, &probes, cfg, &mut rng)?;
            let map = backbone_map(&mut surrogate, &ds, scale)?;
            println!(
                "{:<28}{:>12}{:>9.2}%   (paper size {paper_size}, stolen {})",
                "dataset-size", size, map, report.distinct_videos
            );
        }

        // Sweep 2: output feature size at the default dataset size.
        for paper_dim in PAPER_DIMS {
            // Scale 768 → the configured experiment dim; others proportional.
            let dim = ((paper_dim as f64 / 768.0) * scale.backbone.feature_dim as f64)
                .round()
                .max(8.0) as usize;
            let mut cfg = scale.steal_config(Architecture::C3d);
            cfg.backbone = cfg.backbone.with_feature_dim(dim);
            let probes: Vec<_> =
                ds.test().iter().filter(|id| id.class < scale.classes).copied().collect();
            let (mut surrogate, _) = steal_surrogate(&mut bb, &ds, &probes, cfg, &mut rng)?;
            let map = backbone_map(&mut surrogate, &ds, scale)?;
            println!(
                "{:<28}{:>12}{:>9.2}%   (paper dim {paper_dim})",
                "feature-size", dim, map
            );
        }
    }
    Ok(())
}
