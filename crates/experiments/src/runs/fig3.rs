//! Figure 3: mAP of every victim backbone × loss function × dataset.

use super::RunResult;
use crate::{build_world, victim_map, Scale};
use duo_models::{Architecture, LossKind};
use duo_video::DatasetKind;

/// Reproduces Figure 3.
pub fn run(scale: Scale) -> RunResult {
    println!("\n=== Figure 3: mAP of victim video retrieval systems (scale: {}) ===", scale.name);
    for kind in [DatasetKind::Ucf101Like, DatasetKind::Hmdb51Like] {
        println!("\n[{kind}]");
        print!("{:<14}", "loss \\ arch");
        for arch in Architecture::victims() {
            print!("{:>10}", arch.name());
        }
        println!();
        for loss in LossKind::all() {
            print!("{:<14}", loss.name());
            for arch in Architecture::victims() {
                let mut world = build_world(kind, arch, loss, scale, seed(kind, arch, loss))?;
                let map = victim_map(&mut world)?;
                print!("{map:>9.2}%");
            }
            println!();
        }
    }
    Ok(())
}

fn seed(kind: DatasetKind, arch: Architecture, loss: LossKind) -> u64 {
    let k = match kind {
        DatasetKind::Ucf101Like => 1,
        DatasetKind::Hmdb51Like => 2,
    };
    let a = arch.name().bytes().map(u64::from).sum::<u64>();
    let l = loss.name().bytes().map(u64::from).sum::<u64>();
    0xF1_6300 + k * 1000 + a * 31 + l
}
