//! Serving-layer experiment: the full DUO pipeline (steal → attack)
//! executed against the deployed `duo-serve` service while benign client
//! traffic shares the same worker pool, instead of against a private
//! in-process [`duo_retrieval::BlackBox`].
//!
//! This is the paper's threat model taken literally: the adversary is
//! just one more metered client of the victim service, subject to the
//! same admission control (query budget + rate limit) as everyone else.
//! Prints an attack row plus the final [`duo_serve::ServiceStats`] as
//! JSON (machine-readable, like `DUO_BENCH_JSON`).

use super::RunResult;
use crate::{build_world, Scale};
use duo_attack::{steal_surrogate, DuoAttack};
use duo_models::{Architecture, LossKind};
use duo_retrieval::{ap_at_m, QueryOracle};
use duo_serve::{RateLimit, RetrievalService, ServeConfig, ServiceOracle};
use duo_tensor::{Rng64, ToJson};
use duo_video::{DatasetKind, VideoId};
use std::sync::atomic::{AtomicBool, Ordering};

/// Reproduces the serving experiment: DUO through the service surface.
pub fn run(scale: Scale) -> RunResult {
    println!("\n=== Serving layer: DUO as a metered client (scale: {}) ===", scale.name);
    let world =
        build_world(DatasetKind::Hmdb51Like, Architecture::I3d, LossKind::ArcFace, scale, 0x5E12FE)?;
    let (dataset, world_scale) = (world.dataset, world.scale);
    let service = RetrievalService::start(world.system, ServeConfig::default())?;
    println!(
        "service up: {} workers, batch_max {}, queue_cap {}",
        service.config().workers,
        service.config().batch_max,
        service.config().queue_cap
    );

    // Benign tenants: rate-limited clients replaying test probes while
    // the attack runs, so batches actually mix traffic.
    let stop = AtomicBool::new(false);
    let probes: Vec<VideoId> =
        dataset.test().iter().filter(|id| id.class < world_scale.classes).copied().collect();

    let row: Result<(f32, usize, u64), String> = std::thread::scope(|scope| {
        let mut benign = Vec::new();
        for _ in 0..3 {
            let client = service.client(None, Some(RateLimit::new(4, 200.0)));
            let (dataset, probes, stop) = (&dataset, &probes, &stop);
            benign.push(scope.spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for &id in probes {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if client.retrieve(&dataset.video(id)).is_ok() {
                            served += 1;
                        } else {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                    }
                }
                served
            }));
        }

        let run_attack = || -> Result<(f32, usize, u64), String> {
            // The adversary: a budgeted, rate-limited client like any other.
            let mut rng = Rng64::new(0x5E12FE ^ 0x5EED);
            let mut oracle = ServiceOracle::new(
                service.client(Some(100_000), Some(RateLimit::new(64, 2_000.0))),
            );
            let (surrogate, steal) = steal_surrogate(
                &mut oracle,
                &dataset,
                &probes,
                world_scale.steal_config(Architecture::C3d),
                &mut rng,
            )
            .map_err(|e| e.to_string())?;
            println!(
                "surrogate stolen through the service: {} queries, {} triplets",
                steal.queries, steal.triplets_used
            );

            // Pick the candidate pair with the strongest overlapping baseline.
            let pool: Vec<VideoId> = dataset
                .train()
                .iter()
                .filter(|id| {
                    id.class < world_scale.classes && id.instance == world_scale.train_per_class
                })
                .copied()
                .collect();
            let mut lists = Vec::with_capacity(pool.len());
            for &id in &pool {
                lists.push(oracle.retrieve(&dataset.video(id)).map_err(|e| e.to_string())?);
            }
            let mut pair = (0, 1, -1.0f32);
            for i in 0..pool.len() {
                for j in 0..pool.len() {
                    if pool[i].class != pool[j].class {
                        let ap = ap_at_m(&lists[i], &lists[j]);
                        if ap > pair.2 {
                            pair = (i, j, ap);
                        }
                    }
                }
            }
            let (v, v_t) = (dataset.video(pool[pair.0]), dataset.video(pool[pair.1]));
            println!(
                "attack pair: class {} -> class {} (baseline AP@m {:.1}%)",
                pool[pair.0].class, pool[pair.1].class, pair.2
            );

            let mut attack = DuoAttack::new(surrogate, world_scale.duo_config());
            let outcome =
                attack.run(&mut oracle, &v, &v_t, &mut rng).map_err(|e| e.to_string())?;

            // Final AP@m, measured through the same service surface.
            let r_adv =
                oracle.retrieve(&outcome.adversarial).map_err(|e| e.to_string())?;
            Ok((ap_at_m(&r_adv, &lists[pair.1]), outcome.spa(), oracle.queries_used()))
        };
        let row = run_attack();

        stop.store(true, Ordering::Relaxed);
        let benign_served: u64 = benign.into_iter().map(|h| h.join().unwrap()).sum();
        println!("benign tenants served {benign_served} queries alongside the attack");
        row
    });
    let (ap, spa, queries) = row?;

    let stats = service.shutdown();
    println!("\n{:<24}{:>10}{:>8}{:>10}", "attack (via serve)", "AP@m", "Spa", "queries");
    println!("{:<24}{:>9.2}%{:>8}{:>10}", "DUO-C3D", ap, spa, queries);
    println!(
        "\nserved {} ({} batches, mean batch {:.2}, p95 latency {} us)",
        stats.served, stats.batches, stats.mean_batch, stats.latency_p95_us
    );
    println!("service stats JSON: {}", stats.to_json());
    Ok(())
}
