//! Table VI: DUO performance vs the frame budget `n ∈ {2, 3, 4, 5}` at
//! the default pixel budget (paper k = 40K).

use super::{duo_sweep, ConfigCell, RunResult};
use crate::{duo_config_with, Scale};

/// Reproduces Table VI.
pub fn run(scale: Scale) -> RunResult {
    let cells: Vec<ConfigCell> = [2usize, 3, 4, 5]
        .into_iter()
        .map(|n| {
            let label = format!("n={n}");
            let f: Box<dyn Fn(Scale) -> duo_attack::DuoConfig> =
                Box::new(move |s: Scale| duo_config_with(s, None, Some(n), None, None));
            (label, f)
        })
        .collect();
    duo_sweep(scale, "Table VI — DUO vs frame budget n (k=40K)", &cells, 0x7A60)
}
