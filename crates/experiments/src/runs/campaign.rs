//! Campaign experiment: the full attacker zoo, fleet-scale, against a
//! live `duo-serve` service.
//!
//! Spawns one concurrent metered client per zoo slot — DUO, Vanilla,
//! TIMI, HEU-Nes, HEU-Sim, the sparse RL agent, and the zero-query
//! feature-map attack, round-robin — drives them all through the serving
//! surface at once, and aggregates the deterministic per-family
//! leaderboard. Machine-checked at the end of the run:
//!
//! 1. **Zero budget drift under concurrency.** Summed over every fleet
//!    client (attackers and graders, many writer threads):
//!    `charged == served + failed` on the service's global counters.
//! 2. **Bit-identical replay.** The same campaign seed against the same
//!    service produces byte-identical leaderboard JSON, which is written
//!    to `BENCH_campaign.json` in the `bench_check`-validated schema.
//! 3. **Family contracts.** Zero-query families really charge zero
//!    queries, and the fleet covers at least three distinct families
//!    including both of the campaign-native ones.

use super::RunResult;
use crate::{build_world, overlapping_attack_pairs, Scale};
use duo_attack::steal_surrogate;
use duo_baselines::{HeuConfig, TimiConfig, VanillaConfig};
use duo_campaign::{
    run_campaign, Attacker, CampaignConfig, DuoAttacker, FeatureMapAttacker, FeatureMapConfig,
    HeuNesAttacker, HeuSimAttacker, SparseRlAttacker, SparseRlConfig, TimiAttacker,
    VanillaAttacker,
};
use duo_models::{Architecture, Backbone, LossKind};
use duo_serve::{RetrievalService, ServeConfig};
use duo_tensor::{Rng64, ToJson};
use duo_video::{DatasetKind, Video};

/// Zoo order; client `i` runs family `i % 7`. Shared with the
/// `red_vs_blue` experiment so the defended and undefended fleets field
/// the identical attacker mix.
pub(crate) const FAMILIES: [&str; 7] =
    ["duo", "vanilla", "timi", "heu_nes", "heu_sim", "sparse_rl", "feature_map"];

/// Builds the attacker for fleet slot `client`, cloning the stolen
/// surrogate for the families that need one.
pub(crate) fn zoo(client: usize, surrogate: &Backbone, scale: Scale) -> Box<dyn Attacker> {
    let k = scale.default_k();
    match FAMILIES[client % FAMILIES.len()] {
        "duo" => Box::new(DuoAttacker::new(surrogate.clone(), scale.duo_config())),
        "vanilla" => Box::new(VanillaAttacker::new(VanillaConfig {
            k,
            n: 4,
            tau: 30.0,
            iter_num_q: scale.iter_num_q,
        })),
        "timi" => Box::new(TimiAttacker::new(surrogate.clone(), TimiConfig::default())),
        "heu_nes" => Box::new(HeuNesAttacker::new(HeuConfig {
            k,
            n: 4,
            iters: (scale.iter_num_q / 8).max(1),
            ..HeuConfig::default()
        })),
        "heu_sim" => Box::new(HeuSimAttacker::new(HeuConfig {
            k,
            n: 4,
            iters: scale.iter_num_q,
            ..HeuConfig::default()
        })),
        "sparse_rl" => Box::new(SparseRlAttacker::new(SparseRlConfig {
            k: scale.scale_k(10_000).max(1),
            n: 4,
            tau: 30.0,
            episodes: scale.iter_num_q.min(30),
            ..SparseRlConfig::default()
        })),
        _ => Box::new(FeatureMapAttacker::new(
            surrogate.clone(),
            FeatureMapConfig { k: scale.scale_k(10_000).max(1), n: 4, ..Default::default() },
        )),
    }
}

/// Reproduces the campaign experiment: the zoo, fleet-scale, against the
/// live service, twice, with exact accounting and bit-identical replay.
pub fn run(scale: Scale) -> RunResult {
    println!("\n=== Campaign: attacker zoo vs duo-serve (scale: {}) ===", scale.name);
    let seed = 0xCA4_FA16u64;

    // Victim world; surrogate and pairs come from a pre-service black
    // box so the service's counters carry campaign traffic only.
    let world =
        build_world(DatasetKind::Hmdb51Like, Architecture::I3d, LossKind::ArcFace, scale, seed)?;
    let world_scale = world.scale;
    let (mut bb, dataset) = world.into_blackbox();
    let mut rng = Rng64::new(seed ^ 0x5EED);
    let probes: Vec<_> = dataset
        .test()
        .iter()
        .filter(|id| id.class < world_scale.classes)
        .copied()
        .collect();
    let (surrogate, steal) = steal_surrogate(
        &mut bb,
        &dataset,
        &probes,
        world_scale.steal_config(Architecture::C3d),
        &mut rng,
    )
    .map_err(|e| e.to_string())?;
    println!("surrogate stolen offline: {} queries, {} triplets", steal.queries, steal.triplets_used);
    let id_pairs = overlapping_attack_pairs(
        &mut bb,
        &dataset,
        world_scale.classes,
        world_scale.pairs.max(2),
        &mut rng,
    )?;
    let pairs: Vec<(Video, Video)> =
        id_pairs.iter().map(|&(a, b)| (dataset.video(a), dataset.video(b))).collect();
    let system = bb.into_inner();

    let service = RetrievalService::start(system, ServeConfig::default())?;
    let clients = if world_scale.name == "smoke" { 8 } else { 14 };
    let config = CampaignConfig {
        clients,
        per_client_budget: 20 * world_scale.iter_num_q as u64 + 400,
        seed: seed ^ 0xF1EE7,
        max_retries: 16,
    };
    println!(
        "fleet: {} concurrent clients over {} families, {} queries budget each, seed {:#x}",
        config.clients,
        FAMILIES.len().min(config.clients),
        config.per_client_budget,
        config.seed
    );

    let make = |i: usize| zoo(i, &surrogate, world_scale);
    let first = run_campaign(&service, make, &pairs, &config)?;
    let replay = run_campaign(&service, make, &pairs, &config)?;

    // Leaderboard, one row per family (trimmed means, bench trimming).
    println!(
        "\n{:<14}{:>8}{:>10}{:>12}{:>10}{:>10}{:>10}",
        "family", "clients", "queries", "ap_drop", "per_query", "spa", "pscore"
    );
    for row in &first.leaderboard.rows {
        let get = |name: &str| {
            row.metrics
                .iter()
                .find(|d| d.metric == name)
                .map_or(0.0, |d| d.trimmed_mean)
        };
        println!(
            "{:<14}{:>8}{:>10.1}{:>12.2}{:>10.3}{:>10.0}{:>10.3}",
            row.family,
            row.clients,
            get("queries"),
            get("ap_drop"),
            get("ap_drop_per_query"),
            get("spa"),
            get("pscore")
        );
    }

    // Bit-identical replay is the artifact's integrity guarantee.
    let json = first.leaderboard.to_bench_json();
    assert_eq!(
        json,
        replay.leaderboard.to_bench_json(),
        "same campaign seed must replay to byte-identical leaderboard JSON"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_campaign.json");
    std::fs::write(&path, &json)?;
    println!("\nleaderboard replayed byte-identically; written to {}", path.display());

    // Family contracts.
    let families: Vec<&str> =
        first.leaderboard.rows.iter().map(|r| r.family.as_str()).collect();
    assert!(
        families.len() >= 3 && families.contains(&"sparse_rl") && families.contains(&"feature_map"),
        "fleet must cover >= 3 families incl. the campaign-native ones, got {families:?}"
    );
    for outcome in first.outcomes.iter().chain(&replay.outcomes) {
        if matches!(outcome.family.as_str(), "timi" | "feature_map") {
            assert_eq!(
                outcome.queries, 0,
                "zero-query family {} charged {} queries",
                outcome.family, outcome.queries
            );
        }
    }

    // The run's whole point: fleet-wide exact accounting. Every query any
    // of the 4x`clients` concurrent writers was charged for reached the
    // model — admission rejections cost nothing, sheds are refunded.
    let stats = service.shutdown();
    println!("\n{stats}");
    println!("service stats JSON: {}", stats.to_json());
    let charged = first.charged + replay.charged;
    assert_eq!(
        charged,
        stats.served + stats.failed,
        "budget drift across the fleet: charged {} vs served {} + failed {}",
        charged,
        stats.served,
        stats.failed
    );
    println!(
        "accounting exact across {} concurrent clients x 2 runs: {} charged == {} served + {} failed",
        2 * config.clients,
        charged,
        stats.served,
        stats.failed
    );
    Ok(())
}
