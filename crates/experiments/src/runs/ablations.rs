//! Quality ablations for the design choices DESIGN.md calls out — the
//! *effectiveness* counterpart of the criterion speed benches:
//!
//! * A1 — SparseTransfer's ADMM/gradient pixel-frame search vs random
//!   selection at identical (k, n, τ) budgets.
//! * A2 — SparseQuery restricted to the sparse support vs running on the
//!   full pixel grid (the sparsity-for-free question).
//! * A3 — the outer SparseTransfer↔SparseQuery loop vs a single pass.

use super::RunResult;
use crate::{build_world, overlapping_attack_pairs, steal_surrogates, Scale};
use duo_attack::{
    evaluate_outcome, AttackOutcome, SparseMasks, SparseQuery, SparseTransfer,
};
use duo_baselines::select_random_masks;
use duo_models::{Architecture, LossKind};
use duo_retrieval::BlackBox;
use duo_tensor::{Rng64, Tensor};
use duo_video::{DatasetKind, SyntheticDataset, VideoId};

/// Runs all three quality ablations on one HMDB51-like world.
pub fn run(scale: Scale) -> RunResult {
    println!("\n=== Ablations — design-choice quality comparisons (scale: {}) ===", scale.name);
    let world =
        build_world(DatasetKind::Hmdb51Like, Architecture::I3d, LossKind::ArcFace, scale, 0x7AB1)?;
    let world_scale = world.scale;
    let (mut bb, ds) = world.into_blackbox();
    let mut rng = Rng64::new(0x7AB2);
    let pairs =
        overlapping_attack_pairs(&mut bb, &ds, world_scale.classes, world_scale.pairs, &mut rng)?;
    let mut surrogates = steal_surrogates(&mut bb, &ds, world_scale, &mut rng)?;
    let cfg = world_scale.duo_config();

    println!(
        "{:<40}{:>10}{:>9}{:>8}{:>9}",
        "variant", "AP@m", "Spa", "PScr", "queries"
    );

    // --- A1: informed vs random masks, transfer start only -------------
    let mut informed = Vec::new();
    let mut random = Vec::new();
    for &(a, b) in &pairs {
        let v = ds.video(a);
        let v_t = ds.video(b);
        let masks =
            SparseTransfer::new(&mut surrogates.c3d, cfg.transfer).run(&v, &v_t)?;
        informed.push(transfer_report(&mut bb, &ds, a, b, &masks)?);
        let rnd =
            select_random_masks(&v, cfg.transfer.k, cfg.transfer.n, cfg.transfer.tau, &mut rng);
        random.push(transfer_report(&mut bb, &ds, a, b, &rnd)?);
    }
    print_mean("A1 transfer: frame-pixel search (DUO)", &informed);
    print_mean("A1 transfer: random selection", &random);

    // --- A2: restricted vs unrestricted query support ------------------
    let mut restricted = Vec::new();
    let mut unrestricted = Vec::new();
    for &(a, b) in &pairs {
        let v = ds.video(a);
        let v_t = ds.video(b);
        let masks =
            SparseTransfer::new(&mut surrogates.c3d, cfg.transfer).run(&v, &v_t)?;
        let start = v.add_perturbation(&masks.phi())?;
        let out = SparseQuery::new(cfg.query)
            .run(&mut bb, &v, &v_t, &masks, start, &mut rng)?;
        restricted.push(evaluate_outcome(&mut bb, &out, &v_t)?);

        // Dense variant: the same θ prior but every pixel/frame eligible.
        let dims = v.tensor().dims().to_vec();
        let dense = SparseMasks {
            pixel_mask: Tensor::ones(&dims),
            frame_mask: vec![true; dims[0]],
            theta: masks.theta.clone(),
        };
        let start = v.add_perturbation(&dense.phi())?;
        let out = SparseQuery::new(cfg.query)
            .run(&mut bb, &v, &v_t, &dense, start, &mut rng)?;
        unrestricted.push(evaluate_outcome(&mut bb, &out, &v_t)?);
    }
    print_mean("A2 query: support-restricted (DUO)", &restricted);
    print_mean("A2 query: unrestricted grid", &unrestricted);

    // --- A3: iter_numH = 1 vs 2 ----------------------------------------
    for h in [1usize, 2] {
        let mut reports = Vec::new();
        for &(a, b) in &pairs {
            let v = ds.video(a);
            let v_t = ds.video(b);
            let mut duo_cfg = cfg;
            duo_cfg.iter_num_h = h;
            let report = crate::run_attack(
                crate::AttackKind::DuoC3d,
                &mut bb,
                &ds,
                &mut surrogates,
                (a, b),
                world_scale,
                Some(duo_cfg),
                &mut rng,
            )?;
            let _ = (v, v_t);
            reports.push(report);
        }
        print_mean(&format!("A3 pipeline: iter_numH = {h}"), &reports);
    }
    Ok(())
}

fn transfer_report(
    bb: &mut BlackBox,
    ds: &SyntheticDataset,
    a: VideoId,
    b: VideoId,
    masks: &SparseMasks,
) -> Result<duo_attack::AttackReport, Box<dyn std::error::Error>> {
    let v = ds.video(a);
    let v_t = ds.video(b);
    let adversarial = v.add_perturbation(&masks.phi())?;
    let perturbation = adversarial.perturbation_from(&v)?;
    let outcome =
        AttackOutcome { adversarial, perturbation, queries: 0, loss_trajectory: Vec::new() };
    Ok(evaluate_outcome(bb, &outcome, &v_t)?)
}

fn print_mean(label: &str, reports: &[duo_attack::AttackReport]) {
    let m = crate::mean_report(reports);
    println!("{label:<40}{:>9.2}%{:>9}{:>8.3}{:>9}", m.ap_at_m, m.spa, m.pscore, m.queries);
}
