//! Table II: attack performance of every AE attack on every victim model
//! and both datasets.

use super::RunResult;
use crate::{
    overlapping_attack_pairs, build_world, mean_report, print_header, print_row, run_attack,
    steal_surrogates, AttackKind, Scale,
};
use duo_attack::AttackReport;
use duo_models::{Architecture, LossKind};
use duo_tensor::Rng64;
use duo_video::DatasetKind;

/// Reproduces Table II.
pub fn run(scale: Scale) -> RunResult {
    for kind in [DatasetKind::Ucf101Like, DatasetKind::Hmdb51Like] {
        let victims = Architecture::victims();
        let labels: Vec<&str> = victims.iter().map(|a| a.name()).collect();
        print_header(
            &format!("Table II — {kind} (scale: {})", scale.name),
            &labels,
        );
        // Collect per-victim columns for each attack row.
        let mut rows: Vec<(AttackKind, Vec<AttackReport>)> = AttackKind::table2_rows()
            .into_iter()
            .map(|k| (k, Vec::new()))
            .collect();
        for (vi, &arch) in victims.iter().enumerate() {
            let world = build_world(kind, arch, LossKind::ArcFace, scale, 0x7A20 + vi as u64)?;
            let world_scale = world.scale;
            let (mut bb, ds) = world.into_blackbox();
            let mut rng = Rng64::new(0x7A21 + vi as u64);
            let mut surrogates = steal_surrogates(&mut bb, &ds, world_scale, &mut rng)?;
            let pairs = overlapping_attack_pairs(&mut bb, &ds, world_scale.classes, world_scale.pairs, &mut rng)?;
            for (attack, column) in rows.iter_mut() {
                let mut reports = Vec::with_capacity(pairs.len());
                for &pair in &pairs {
                    reports.push(run_attack(
                        *attack,
                        &mut bb,
                        &ds,
                        &mut surrogates,
                        pair,
                        world_scale,
                        None,
                        &mut rng,
                    )?);
                }
                column.push(mean_report(&reports));
            }
        }
        for (attack, column) in &rows {
            print_row(attack.label(), column);
        }
    }
    Ok(())
}
