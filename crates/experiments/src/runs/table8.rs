//! Table VIII: DUO performance vs the outer loop count
//! `iter_numH ∈ {1, 2, 3, 4}`.

use super::{duo_sweep, ConfigCell, RunResult};
use crate::{duo_config_with, Scale};

/// Reproduces Table VIII.
pub fn run(scale: Scale) -> RunResult {
    let cells: Vec<ConfigCell> = [1usize, 2, 3, 4]
        .into_iter()
        .map(|h| {
            let label = format!("iter_numH={h}");
            let f: Box<dyn Fn(Scale) -> duo_attack::DuoConfig> =
                Box::new(move |s: Scale| duo_config_with(s, None, None, None, Some(h)));
            (label, f)
        })
        .collect();
    duo_sweep(scale, "Table VIII — DUO vs outer loop count iter_numH", &cells, 0x7A80)
}
