//! Extension experiment (beyond the paper's tables): detection rates of
//! the paper's *proposed* defense — a multi-backbone ensemble (§V-D,
//! "ensemble models built from multiple backbones would be more robust
//! against most AE attacks, DUO included") — implemented as the
//! cross-architecture agreement detector `EnsembleDetector`.

use super::RunResult;
use crate::{build_world, overlapping_attack_pairs, steal_surrogates, Scale};
use duo_attack::DuoAttack;
use duo_baselines::{TimiAttack, TimiConfig, VanillaAttack, VanillaConfig};
use duo_defenses::EnsembleDetector;
use duo_models::{Architecture, Backbone, LossKind};
use duo_tensor::Rng64;
use duo_video::{DatasetKind, Video, VideoId};

/// Runs the ensemble-defense extension experiment.
pub fn run(scale: Scale) -> RunResult {
    println!(
        "\n=== Extension — ensemble (multi-backbone) defense proposed in §V-D (scale: {}) ===",
        scale.name
    );
    println!(
        "{:<12}{:>16}{:>16}{:>16}",
        "dataset", "Vanilla caught", "TIMI caught", "DUO caught"
    );
    for (di, kind) in [DatasetKind::Ucf101Like, DatasetKind::Hmdb51Like].into_iter().enumerate() {
        let world = build_world(kind, Architecture::I3d, LossKind::ArcFace, scale, 0x7AE0 + di as u64)?;
        let world_scale = world.scale;
        let (mut bb, ds) = world.into_blackbox();
        let mut rng = Rng64::new(0x7AE1 + di as u64);
        let pairs =
            overlapping_attack_pairs(&mut bb, &ds, world_scale.classes, world_scale.pairs, &mut rng)?;
        let mut surrogates = steal_surrogates(&mut bb, &ds, world_scale, &mut rng)?;

        // Build the secondary ensemble member over the same gallery.
        let gallery: Vec<VideoId> = ds
            .train()
            .iter()
            .filter(|id| {
                id.class < world_scale.classes && id.instance >= world_scale.train_per_class
            })
            .copied()
            .collect();
        let secondary = Backbone::new(Architecture::SlowFast, world_scale.backbone, &mut rng)?;
        let mut detector = EnsembleDetector::build(secondary, &ds, &gallery, world_scale.m)?;
        let clean: Vec<Video> = (0..world_scale.classes)
            .map(|c| ds.video(VideoId { class: c, instance: 0 }))
            .collect();
        detector.calibrate(bb.system_mut(), &clean, 0.1)?;

        // Adversarial traffic from three representative attacks.
        let k = world_scale.default_k();
        let mut vanilla_advs = Vec::new();
        let mut timi_advs = Vec::new();
        let mut duo_advs = Vec::new();
        for &(a, b) in &pairs {
            let v = ds.video(a);
            let v_t = ds.video(b);
            let vcfg = VanillaConfig { k, n: 4, tau: 30.0, iter_num_q: world_scale.iter_num_q };
            vanilla_advs.push(VanillaAttack::new(vcfg).run(&mut bb, &v, &v_t, &mut rng)?.adversarial);
            timi_advs.push(
                TimiAttack::new(&mut surrogates.c3d, TimiConfig::default())
                    .run(&v, &v_t)?
                    .adversarial,
            );
            let placeholder =
                Backbone::new(surrogates.c3d.arch(), surrogates.c3d.config(), &mut Rng64::new(0))?;
            let owned = std::mem::replace(&mut surrogates.c3d, placeholder);
            let mut duo = DuoAttack::new(owned, world_scale.duo_config());
            let out = duo.run(&mut bb, &v, &v_t, &mut rng);
            surrogates.c3d = duo.into_surrogate();
            duo_advs.push(out?.adversarial);
        }
        let van = detector.detection_rate(bb.system_mut(), &vanilla_advs)?;
        let timi = detector.detection_rate(bb.system_mut(), &timi_advs)?;
        let duo = detector.detection_rate(bb.system_mut(), &duo_advs)?;
        println!("{:<12}{:>15.1}%{:>15.1}%{:>15.1}%", kind.name(), van, timi, duo);
    }
    println!("(cross-architecture disagreement flags transfer-optimized perturbations)");
    Ok(())
}
