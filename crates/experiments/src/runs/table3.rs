//! Table III: DUO attack performance vs surrogate-dataset size.

use super::RunResult;
use crate::{overlapping_attack_pairs, build_world, mean_report, run_attack, AttackKind, Scale, Surrogates};
use duo_attack::steal_surrogate;
use duo_models::{Architecture, LossKind};
use duo_tensor::Rng64;
use duo_video::DatasetKind;

/// Reproduces Table III.
pub fn run(scale: Scale) -> RunResult {
    println!(
        "\n=== Table III — DUO vs surrogate dataset size (scale: {}) ===",
        scale.name
    );
    for kind in [DatasetKind::Ucf101Like, DatasetKind::Hmdb51Like] {
        let paper_sizes: [usize; 4] = match kind {
            DatasetKind::Ucf101Like => [165, 1_111, 3_616, 8_421],
            DatasetKind::Hmdb51Like => [165, 1_111, 1_885, 2_995],
        };
        let paper_total = match kind {
            DatasetKind::Ucf101Like => 9_324f64,
            DatasetKind::Hmdb51Like => 4_900f64,
        };
        println!("\n[{kind}]");
        println!(
            "{:<14}{:>14}{:>10}{:>9}{:>8}{:>12}{:>10}{:>9}{:>8}",
            "paper size", "scaled size", "C3D AP@m", "Spa", "PScr", "", "R18 AP@m", "Spa", "PScr"
        );
        let world = build_world(kind, Architecture::I3d, LossKind::ArcFace, scale, 0x7A30)?;
        let world_scale = world.scale;
        let catalog = (world_scale.classes
            * (world_scale.train_per_class + world_scale.gallery_per_class))
            as usize;
        let (mut bb, ds) = world.into_blackbox();
        let mut rng = Rng64::new(0x7A31);
        let pairs = overlapping_attack_pairs(&mut bb, &ds, world_scale.classes, world_scale.pairs, &mut rng)?;
        let probes: Vec<_> =
            ds.test().iter().filter(|id| id.class < world_scale.classes).copied().collect();
        for paper_size in paper_sizes {
            let frac = paper_size as f64 / paper_total;
            let size = ((frac * catalog as f64).ceil() as usize).clamp(4, catalog);
            let mut c3d_cfg = world_scale.steal_config(Architecture::C3d);
            c3d_cfg.target_dataset_size = size;
            let mut r18_cfg = world_scale.steal_config(Architecture::Resnet18);
            r18_cfg.target_dataset_size = size;
            let (c3d, _) = steal_surrogate(&mut bb, &ds, &probes, c3d_cfg, &mut rng)?;
            let (res18, _) = steal_surrogate(&mut bb, &ds, &probes, r18_cfg, &mut rng)?;
            let mut surrogates = Surrogates { c3d, res18 };
            let mut row = Vec::new();
            for attack in [AttackKind::DuoC3d, AttackKind::DuoRes18] {
                let mut reports = Vec::new();
                for &pair in &pairs {
                    reports.push(run_attack(
                        attack,
                        &mut bb,
                        &ds,
                        &mut surrogates,
                        pair,
                        world_scale,
                        None,
                        &mut rng,
                    )?);
                }
                row.push(mean_report(&reports));
            }
            println!(
                "{:<14}{:>14}{:>9.2}%{:>9}{:>8.3}{:>12}{:>9.2}%{:>9}{:>8.3}",
                paper_size, size, row[0].ap_at_m, row[0].spa, row[0].pscore, "",
                row[1].ap_at_m, row[1].spa, row[1].pscore
            );
        }
    }
    Ok(())
}
