//! Mutate-under-serve experiment: a live service absorbing gallery
//! mutations (inserts, deletes, a mid-flap rebalance) while a seeded
//! fault schedule — ≥20% transient failures, latency spikes, and
//! staggered per-node flap windows — rages on every data node.
//!
//! What this proves, machine-checked at the end of the run:
//!
//! 1. **Bit-identical replay.** The full interleaved mutate + query +
//!    fault trace — every ranked list, every epoch-transition receipt,
//!    and every deterministic telemetry counter — serializes to the
//!    same bytes on a second run with the same seed.
//! 2. **Zero budget drift.** `charged == served + failed` and
//!    `refunded == deadline_misses` hold exactly while epochs swap
//!    under the queries.
//! 3. **Rebalance under flap.** The rebalance transaction is issued
//!    while node 0 is inside its flap window (its breaker opening and
//!    probing), and still moves every row exactly once.

use super::RunResult;
use crate::Scale;
use duo_models::{Architecture, Backbone, BackboneConfig};
use duo_retrieval::{
    BreakerConfig, FaultPlan, MutationBatch, ResilienceConfig, RetrievalConfig, RetrievalSystem,
};
use duo_serve::{RetrievalService, ServeConfig, ServiceStats};
use duo_tensor::{Rng64, ToJson};
use duo_video::{ClipSpec, DatasetKind, SyntheticDataset, VideoId};
use std::fmt::Write as _;
use std::time::Duration;

/// The fault schedule installed on node `i`: 20% transients, latency
/// spikes past the virtual node deadline, and one flap window per node,
/// staggered so the windows never overlap (the service is degraded but
/// never fully dark). Node 0's wide window (fault indices 12..36)
/// brackets the rebalance step so the epoch transaction lands mid-flap.
fn chaos_plan(seed: u64, node: usize) -> FaultPlan {
    let node_u = node as u64;
    FaultPlan::transient(seed ^ (0x0E70_C000 + node_u), 0.20)
        .with_latency(200, 150, 0.05, 8_000)
        .with_flap(12 + 28 * node_u, 36 + 28 * node_u)
}

fn chaos_policy(seed: u64) -> ResilienceConfig {
    ResilienceConfig {
        node_timeout_us: Some(5_000),
        max_retries: 4,
        backoff_base_us: 100,
        backoff_jitter_us: 50,
        hedge_after_us: Some(2_000),
        breaker: Some(BreakerConfig { failure_threshold: 3, open_cooldown: 6 }),
        seed,
        require_full_coverage: false,
    }
}

/// The deterministic counters of a [`ServiceStats`] snapshot — everything
/// except wall-clock latency quantiles and queue-depth high-water marks,
/// which legitimately vary run to run.
fn deterministic_counters(stats: &ServiceStats) -> String {
    format!(
        "served {} failed {} deadline_misses {} refunded {} degraded {} \
         retries {} hedges {} node_timeouts {} transients {} panics {} \
         breaker {}/{}/{}/{} node_failures {:?} \
         epoch {} max_served {} published {} mutations {} rebalances {} rows_moved {} \
         index {}q/{}r",
        stats.served,
        stats.failed,
        stats.deadline_misses,
        stats.refunded,
        stats.degraded,
        stats.retries,
        stats.hedges,
        stats.node_timeouts,
        stats.transient_faults,
        stats.contained_panics,
        stats.breaker_skips,
        stats.breaker_opens,
        stats.breaker_half_opens,
        stats.breaker_closes,
        stats.node_failures,
        stats.current_epoch,
        stats.max_epoch_served,
        stats.epochs_published,
        stats.mutations_applied,
        stats.rebalances,
        stats.rows_rebalanced,
        stats.index_queries,
        stats.index_scanned_rows,
    )
}

/// One full trace: build the chaotic world, serve a fixed interleaving of
/// queries and mutations, and serialize everything observable. Returns
/// the transcript plus the final stats for the accounting asserts.
fn trace(seed: u64, total_queries: usize) -> Result<(String, ServiceStats), String> {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), seed, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 9).copied().collect();
    let backbone =
        Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).map_err(|e| e.to_string())?;
    let mut system = RetrievalSystem::build(
        backbone,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 3, threaded: false, ..Default::default() },
    )
    .map_err(|e| e.to_string())?;
    for (i, node) in system.nodes().iter().enumerate() {
        node.set_fault_plan(Some(chaos_plan(seed, i)));
    }
    system.set_resilience(chaos_policy(seed ^ 0xBACC0FF));

    // Victims for the unbalancing delete, planted insert features, and
    // probe videos — all fixed before the service starts, so the script
    // is a pure function of the seed.
    let victims: Vec<VideoId> =
        system.nodes()[0].snapshot().ids().iter().copied().take(5).collect();
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 9).copied().collect();
    let planted_feature = system.embed(&ds.video(probes[0])).map_err(|e| e.to_string())?;
    let planted = VideoId { class: 200, instance: 0 };
    let extra = VideoId { class: 201, instance: 0 };

    let config =
        ServeConfig { default_deadline: Some(Duration::from_secs(30)), ..ServeConfig::default() };
    let service = RetrievalService::start(system, config).map_err(|e| e.to_string())?;
    let client = service.client(Some(100_000), None);
    let mutator = service.mutator();

    let mut transcript = String::new();
    let record = |line: String, transcript: &mut String| {
        transcript.push_str(&line);
        transcript.push('\n');
    };

    for step in 0..total_queries {
        // The mutation script, keyed to the query step. Step 16 is the
        // rebalance: node 0's fault plan has served >= 16 queries by
        // then, inside its 12..40 flap window.
        let receipt = match step {
            4 => Some(("insert planted", mutator.insert(planted, planted_feature.clone()))),
            8 => {
                let mut batch = MutationBatch::new();
                for &id in &victims {
                    batch.push(duo_retrieval::Mutation::Delete { id });
                }
                batch.push(duo_retrieval::Mutation::Insert {
                    id: extra,
                    feature: planted_feature.clone(),
                });
                Some(("unbalance shard 0", mutator.apply(&batch)))
            }
            16 => Some(("rebalance mid-flap", mutator.rebalance())),
            24 => Some(("delete planted", mutator.delete(planted))),
            30 => Some(("delete miss", mutator.delete(VideoId { class: 250, instance: 0 }))),
            _ => None,
        };
        if let Some((label, receipt)) = receipt {
            let t = receipt.map_err(|e| e.to_string())?;
            record(format!("mutate[{step}] {label}: {}", t.to_json()), &mut transcript);
        }
        // Failed retrievals (e.g. every shard faulting at once) are part
        // of the trace, not an abort: the query reached the model and was
        // charged, so the replay and the accounting both cover it.
        let video = ds.video(probes[step % probes.len()]);
        match client.retrieve(&video) {
            Ok(ids) => {
                if step > 16 {
                    for id in &ids {
                        if victims.contains(id) {
                            return Err(format!("deleted row {id:?} resurfaced after rebalance"));
                        }
                    }
                }
                record(format!("query[{step}] {ids:?}"), &mut transcript);
            }
            Err(e) => record(format!("query[{step}] failed: {e}"), &mut transcript),
        }
    }

    let mine = client.stats().ok_or("client stats gone")?;
    record(format!("client {}", mine.to_json()), &mut transcript);
    let stats = service.stats();
    record(format!("service {}", deterministic_counters(&stats)), &mut transcript);
    record(
        format!("mutation {}", service.system().mutation_stats().to_json()),
        &mut transcript,
    );

    // Zero budget drift, asserted inside the trace so both runs check it.
    if mine.charged != mine.served + mine.failed {
        return Err(format!(
            "budget drift: charged {} != served {} + failed {}",
            mine.charged, mine.served, mine.failed
        ));
    }
    if mine.refunded != mine.deadline_misses {
        return Err(format!(
            "refund drift: refunded {} != deadline misses {}",
            mine.refunded, mine.deadline_misses
        ));
    }
    service.shutdown();
    Ok((transcript, stats))
}

/// Reproduces the mutate-under-serve experiment: same-seed bit-identical
/// replay of an interleaved mutate + query + fault trace.
pub fn run(scale: Scale) -> RunResult {
    println!("\n=== Live mutation under serve (scale: {}) ===", scale.name);
    let seed = 0x0E70_C5EED;
    let total_queries = if scale.name == "smoke" { 44 } else { 72 };

    let (a, stats_a) = trace(seed, total_queries)?;
    let (b, _) = trace(seed, total_queries)?;
    assert_eq!(
        a, b,
        "same-seed mutate+query+fault traces must serialize to identical bytes"
    );
    println!(
        "replay exact: {} transcript bytes bit-identical across two runs \
         ({} queries, {} epochs published, {} rows rebalanced)",
        a.len(),
        total_queries,
        stats_a.epochs_published,
        stats_a.rows_rebalanced
    );

    // The chaos schedule and the flap-bracketed rebalance must actually
    // have fired, or the replay proves nothing.
    assert!(stats_a.transient_faults > 0, "20% transient schedule never fired");
    assert!(stats_a.retries > 0, "no retries under a 20% fault schedule");
    assert!(
        stats_a.breaker_opens > 0 && stats_a.breaker_closes > 0,
        "flap windows must trip and recover breakers (got {}/{} opens/closes)",
        stats_a.breaker_opens,
        stats_a.breaker_closes
    );
    assert!(stats_a.degraded > 0, "flapped shards must degrade some coverage");
    assert_eq!(stats_a.rebalances, 1, "exactly one rebalance moved rows");
    assert!(stats_a.rows_rebalanced > 0, "the mid-flap rebalance must move rows");
    assert_eq!(stats_a.current_epoch, 4, "insert + batch + rebalance + delete");
    assert_eq!(stats_a.max_epoch_served, 4, "queries after the last publish see epoch 4");
    assert_eq!(stats_a.deadline_misses, stats_a.refunded);
    assert_eq!(stats_a.served + stats_a.failed, total_queries as u64);

    let mut summary = String::new();
    write!(
        summary,
        "accounting exact under {} transients / {} retries / breaker {}:{} \
         — epoch {} with {} rows rebalanced mid-flap",
        stats_a.transient_faults,
        stats_a.retries,
        stats_a.breaker_opens,
        stats_a.breaker_closes,
        stats_a.current_epoch,
        stats_a.rows_rebalanced
    )?;
    println!("{summary}");
    println!("final stats JSON: {}", stats_a.to_json());
    Ok(())
}
