//! Table IV: DUO attack performance against victims trained with
//! different loss functions.

use super::RunResult;
use crate::{
    overlapping_attack_pairs, build_world, mean_report, print_header, print_row, run_attack,
    steal_surrogates, AttackKind, Scale,
};
use duo_attack::AttackReport;
use duo_models::{Architecture, LossKind};
use duo_tensor::Rng64;
use duo_video::DatasetKind;

/// Reproduces Table IV.
pub fn run(scale: Scale) -> RunResult {
    for kind in [DatasetKind::Ucf101Like, DatasetKind::Hmdb51Like] {
        let losses = LossKind::all();
        let labels: Vec<&str> = losses.iter().map(|l| l.name()).collect();
        print_header(&format!("Table IV — {kind} (scale: {})", scale.name), &labels);
        let mut c3d_row: Vec<AttackReport> = Vec::new();
        let mut r18_row: Vec<AttackReport> = Vec::new();
        for (li, &loss) in losses.iter().enumerate() {
            let world = build_world(kind, Architecture::I3d, loss, scale, 0x7A40 + li as u64)?;
            let world_scale = world.scale;
            let (mut bb, ds) = world.into_blackbox();
            let mut rng = Rng64::new(0x7A41 + li as u64);
            let mut surrogates = steal_surrogates(&mut bb, &ds, world_scale, &mut rng)?;
            let pairs = overlapping_attack_pairs(&mut bb, &ds, world_scale.classes, world_scale.pairs, &mut rng)?;
            for (attack, row) in
                [(AttackKind::DuoC3d, &mut c3d_row), (AttackKind::DuoRes18, &mut r18_row)]
            {
                let mut reports = Vec::new();
                for &pair in &pairs {
                    reports.push(run_attack(
                        attack,
                        &mut bb,
                        &ds,
                        &mut surrogates,
                        pair,
                        world_scale,
                        None,
                        &mut rng,
                    )?);
                }
                row.push(mean_report(&reports));
            }
        }
        print_row("DUO-C3D", &c3d_row);
        print_row("DUO-Res18", &r18_row);
    }
    Ok(())
}
