use crate::select_random_masks;
use duo_attack::{AttackOutcome, QueryConfig, Result, SparseQuery};
use duo_retrieval::QueryOracle;
use duo_tensor::Rng64;
use duo_video::Video;

/// Configuration of the Vanilla baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VanillaConfig {
    /// Number of randomly selected pixels (fixes the attack's Spa).
    pub k: usize,
    /// Number of randomly selected frames.
    pub n: usize,
    /// Per-pixel perturbation bound τ.
    pub tau: f32,
    /// SimBA iteration budget.
    pub iter_num_q: usize,
}
duo_tensor::impl_to_json!(struct VanillaConfig { k, n, tau, iter_num_q });

impl Default for VanillaConfig {
    fn default() -> Self {
        VanillaConfig { k: 3_000, n: 4, tau: 30.0, iter_num_q: 200 }
    }
}

/// The paper's Vanilla baseline: *random* pixel/frame selection, then the
/// same SimBA-style query rectification DUO uses — the ablation isolating
/// the value of DUO's frame-pixel dual search.
#[derive(Debug, Clone, Copy)]
pub struct VanillaAttack {
    config: VanillaConfig,
}

impl VanillaAttack {
    /// Creates the attack.
    pub fn new(config: VanillaConfig) -> Self {
        VanillaAttack { config }
    }

    /// Runs the attack on the pair `(v, v_t)`.
    ///
    /// # Errors
    ///
    /// Propagates retrieval failures.
    pub fn run(
        &self,
        blackbox: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        let cfg = self.config;
        let masks = select_random_masks(v, cfg.k, cfg.n, cfg.tau, rng);
        let start = v.add_perturbation(&masks.phi())?;
        let query_cfg = QueryConfig { iter_num_q: cfg.iter_num_q, tau: cfg.tau, ..QueryConfig::default() };
        SparseQuery::new(query_cfg).run(blackbox, v, v_t, &masks, start, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::{Architecture, Backbone, BackboneConfig};
    use duo_retrieval::{BlackBox, RetrievalConfig, RetrievalSystem};
    use duo_video::{ClipSpec, DatasetKind, SyntheticDataset, VideoId};

    fn setup() -> (BlackBox, SyntheticDataset) {
        let mut rng = Rng64::new(211);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 8, 1, 0);
        let gallery: Vec<_> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
        let victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 4, nodes: 2, threaded: false, ..Default::default() },
        )
        .unwrap();
        (BlackBox::new(sys), ds)
    }

    #[test]
    fn vanilla_produces_sparse_bounded_outcome() {
        let (mut bb, ds) = setup();
        let v = ds.video(VideoId { class: 0, instance: 0 });
        let vt = ds.video(VideoId { class: 5, instance: 0 });
        let cfg = VanillaConfig { k: 200, n: 3, tau: 30.0, iter_num_q: 10 };
        let mut rng = Rng64::new(212);
        let outcome = VanillaAttack::new(cfg).run(&mut bb, &v, &vt, &mut rng).unwrap();
        assert!(outcome.spa() <= 200 + 1, "Spa bounded by k, got {}", outcome.spa());
        assert!(outcome.perturbation.linf_norm() <= 30.0 + 1e-3);
        assert!(outcome.queries > 0);
    }

    #[test]
    fn vanilla_is_seed_sensitive() {
        let (mut bb, ds) = setup();
        let v = ds.video(VideoId { class: 1, instance: 0 });
        let vt = ds.video(VideoId { class: 6, instance: 0 });
        let cfg = VanillaConfig { k: 100, n: 2, tau: 30.0, iter_num_q: 5 };
        let o1 = VanillaAttack::new(cfg).run(&mut bb, &v, &vt, &mut Rng64::new(1)).unwrap();
        let o2 = VanillaAttack::new(cfg).run(&mut bb, &v, &vt, &mut Rng64::new(2)).unwrap();
        assert_ne!(o1.perturbation, o2.perturbation);
    }
}
