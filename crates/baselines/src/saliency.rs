//! Support-selection priors shared by the baseline attacks.

use duo_attack::SparseMasks;
use duo_tensor::{Rng64, Tensor};
use duo_video::Video;

/// Motion-energy saliency: per-scalar absolute temporal difference
/// `|v[t] − v[t−1]|` (frame 0 uses the forward difference).
///
/// This is the "prior knowledge" heuristic attacks use to guess which
/// pixels matter — moving content dominates video-model predictions.
pub fn motion_saliency(video: &Video) -> Tensor {
    let dims = video.tensor().dims().to_vec();
    let frames = dims[0];
    let per_frame: usize = dims[1..].iter().product();
    let v = video.tensor().as_slice();
    let mut out = Tensor::zeros(&dims);
    let ov = out.as_mut_slice();
    for f in 0..frames {
        let (a, b) = if f == 0 { (0usize, 1usize.min(frames - 1)) } else { (f, f - 1) };
        for i in 0..per_frame {
            ov[f * per_frame + i] = (v[a * per_frame + i] - v[b * per_frame + i]).abs();
        }
    }
    out
}

fn top_n_frames(scores: &Tensor, frames: usize, per_frame: usize, n: usize) -> Vec<bool> {
    let sv = scores.as_slice();
    let mut energy: Vec<(usize, f32)> = (0..frames)
        .map(|f| (f, sv[f * per_frame..(f + 1) * per_frame].iter().sum::<f32>()))
        .collect();
    energy.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut mask = vec![false; frames];
    for &(f, _) in energy.iter().take(n.min(frames)) {
        mask[f] = true;
    }
    mask
}

fn masks_from_scores(
    video: &Video,
    scores: &Tensor,
    k: usize,
    n: usize,
    tau: f32,
    rng: &mut Rng64,
) -> SparseMasks {
    let dims = video.tensor().dims().to_vec();
    let frames = dims[0];
    let per_frame: usize = dims[1..].iter().product();
    let elements = frames * per_frame;
    let k = k.min(elements);

    let frame_mask = top_n_frames(scores, frames, per_frame, n);

    // Select the k highest-scoring pixels, preferring active frames by
    // masking scores outside them.
    let sv = scores.as_slice();
    let mut order: Vec<usize> = (0..elements).collect();
    order.sort_by(|&a, &b| {
        let fa = frame_mask[a / per_frame] as u8;
        let fb = frame_mask[b / per_frame] as u8;
        fb.cmp(&fa).then(sv[b].total_cmp(&sv[a])).then(a.cmp(&b))
    });
    let mut pixel_mask = Tensor::zeros(&dims);
    let mut theta = Tensor::zeros(&dims);
    for &i in order.iter().take(k) {
        pixel_mask.as_mut_slice()[i] = 1.0;
        theta.as_mut_slice()[i] = (rng.uniform() * 2.0 - 1.0) * tau;
    }
    SparseMasks { pixel_mask, frame_mask, theta }
}

/// Heuristic masks: motion-salient frames and pixels, random magnitudes in
/// `[−τ, τ]` (the HEU attacks' prior).
pub fn select_heuristic_masks(
    video: &Video,
    k: usize,
    n: usize,
    tau: f32,
    rng: &mut Rng64,
) -> SparseMasks {
    let scores = motion_saliency(video);
    masks_from_scores(video, &scores, k, n, tau, rng)
}

/// Random masks: uniformly random frames and pixels, random magnitudes in
/// `[−τ, τ]` (the Vanilla attack's selection strategy).
pub fn select_random_masks(
    video: &Video,
    k: usize,
    n: usize,
    tau: f32,
    rng: &mut Rng64,
) -> SparseMasks {
    let dims = video.tensor().dims().to_vec();
    let scores = Tensor::rand_uniform(&dims, 0.0, 1.0, rng.as_rng());
    masks_from_scores(video, &scores, k, n, tau, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_video::{ClipSpec, SyntheticVideoGenerator};

    fn video() -> Video {
        SyntheticVideoGenerator::new(ClipSpec::tiny(), 11).generate(2, 0)
    }

    #[test]
    fn motion_saliency_is_nonnegative_and_shaped() {
        let v = video();
        let s = motion_saliency(&v);
        assert_eq!(s.dims(), v.tensor().dims());
        assert!(s.min() >= 0.0);
        assert!(s.max() > 0.0, "a moving synthetic clip has motion energy");
    }

    #[test]
    fn heuristic_masks_satisfy_budgets() {
        let v = video();
        let mut rng = Rng64::new(201);
        let masks = select_heuristic_masks(&v, 200, 3, 30.0, &mut rng);
        assert_eq!(masks.pixel_mask.l0_norm(), 200);
        assert_eq!(masks.active_frames(), 3);
        assert!(masks.theta.linf_norm() <= 30.0);
    }

    #[test]
    fn heuristic_pixels_prefer_active_frames() {
        let v = video();
        let mut rng = Rng64::new(202);
        let per_frame = v.spec().frame_elements();
        let masks = select_heuristic_masks(&v, 100, 2, 30.0, &mut rng);
        let in_active = masks
            .pixel_mask
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(i, &m)| m != 0.0 && masks.frame_mask[i / per_frame])
            .count();
        assert_eq!(in_active, 100, "with small k, all pixels should land on active frames");
    }

    #[test]
    fn random_masks_differ_across_seeds() {
        let v = video();
        let a = select_random_masks(&v, 50, 2, 30.0, &mut Rng64::new(1));
        let b = select_random_masks(&v, 50, 2, 30.0, &mut Rng64::new(2));
        assert_ne!(a.pixel_mask, b.pixel_mask);
    }

    #[test]
    fn oversized_k_is_clamped() {
        let v = video();
        let mut rng = Rng64::new(203);
        let masks = select_random_masks(&v, usize::MAX, 2, 30.0, &mut rng);
        assert_eq!(masks.pixel_mask.l0_norm(), v.tensor().len());
    }
}
