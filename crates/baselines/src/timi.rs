use duo_attack::{AttackOutcome, Result};
use duo_models::Backbone;
use duo_tensor::Tensor;
use duo_video::Video;

/// Configuration of the TIMI transfer attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimiConfig {
    /// ℓ∞ perturbation budget ε. The paper's Table II PScore of 10.00 for
    /// TIMI corresponds to sign steps saturating a dense ε = 10 budget.
    pub epsilon: f32,
    /// Momentum decay μ (Dong et al. use 1.0).
    pub mu: f32,
    /// Iteration count.
    pub iters: usize,
    /// Half-width of the translation-invariant smoothing kernel (the
    /// gradient is averaged over a `(2r+1)²` spatial window per frame).
    pub ti_radius: usize,
}
duo_tensor::impl_to_json!(struct TimiConfig { epsilon, mu, iters, ti_radius });

impl Default for TimiConfig {
    fn default() -> Self {
        TimiConfig { epsilon: 10.0, mu: 1.0, iters: 8, ti_radius: 1 }
    }
}

/// TIMI (Dong et al., CVPR'19): targeted momentum-iterative transfer
/// attack with translation-invariant gradient smoothing. Pure transfer —
/// zero black-box queries — and *dense*: every scalar of the clip is
/// perturbed, the anti-stealth extreme the paper contrasts DUO against.
pub struct TimiAttack<'a> {
    surrogate: &'a mut Backbone,
    config: TimiConfig,
}

impl<'a> TimiAttack<'a> {
    /// Binds the attack to a surrogate model.
    pub fn new(surrogate: &'a mut Backbone, config: TimiConfig) -> Self {
        TimiAttack { surrogate, config }
    }

    /// Runs the attack (no black-box access required).
    ///
    /// # Errors
    ///
    /// Propagates surrogate evaluation failures.
    pub fn run(&mut self, v: &Video, v_t: &Video) -> Result<AttackOutcome> {
        let cfg = self.config;
        let target_feat = self.surrogate.extract(v_t)?;
        let alpha = cfg.epsilon / cfg.iters.max(1) as f32 * 1.5;
        let mut v_adv = v.clone();
        let mut momentum = Tensor::zeros(v.tensor().dims());
        let mut trajectory = Vec::with_capacity(cfg.iters);
        for _ in 0..cfg.iters {
            let feat = self.surrogate.extract_training(&v_adv)?;
            let diff = feat.sub(&target_feat)?;
            trajectory.push(diff.dot(&diff)?);
            let grad_feat = diff.scale(2.0);
            let g = self.surrogate.input_gradient(&v_adv, &grad_feat)?;
            let g = ti_smooth(&g, cfg.ti_radius);
            // Momentum accumulation with ℓ1-normalized gradient.
            let l1 = g.l1_norm().max(1e-12);
            momentum = momentum.scale(cfg.mu).add(&g.scale(1.0 / l1))?;
            // Signed descent step, projected into the ε-ball around v.
            let ov = v.tensor().as_slice();
            let mv = momentum.as_slice();
            for ((x, &o), &m) in v_adv
                .tensor_mut()
                .as_mut_slice()
                .iter_mut()
                .zip(ov)
                .zip(mv)
            {
                let stepped = *x - alpha * m.signum();
                *x = stepped.clamp((o - cfg.epsilon).max(0.0), (o + cfg.epsilon).min(255.0));
            }
        }
        let perturbation = v_adv.perturbation_from(v)?;
        Ok(AttackOutcome { adversarial: v_adv, perturbation, queries: 0, loss_trajectory: trajectory })
    }
}

/// Translation-invariant smoothing: spatial box filter of half-width `r`
/// applied to the gradient independently per frame and channel.
fn ti_smooth(grad: &Tensor, r: usize) -> Tensor {
    if r == 0 {
        return grad.clone();
    }
    let dims = grad.dims();
    let (n, h, w, c) = (dims[0], dims[1], dims[2], dims[3]);
    let gv = grad.as_slice();
    let mut out = Tensor::zeros(dims);
    let ov = out.as_mut_slice();
    let ri = r as isize;
    for f in 0..n {
        for y in 0..h {
            for x in 0..w {
                for ch in 0..c {
                    let mut sum = 0.0f32;
                    let mut count = 0u32;
                    for dy in -ri..=ri {
                        for dx in -ri..=ri {
                            let yy = y as isize + dy;
                            let xx = x as isize + dx;
                            if yy >= 0 && (yy as usize) < h && xx >= 0 && (xx as usize) < w {
                                sum += gv[(((f * h + yy as usize) * w) + xx as usize) * c + ch];
                                count += 1;
                            }
                        }
                    }
                    ov[(((f * h + y) * w) + x) * c + ch] = sum / count as f32;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::{Architecture, BackboneConfig};
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, SyntheticVideoGenerator};

    fn setup() -> (Backbone, Video, Video) {
        let mut rng = Rng64::new(221);
        let surrogate =
            Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), 12);
        (surrogate, gen.generate(0, 0), gen.generate(4, 0))
    }

    #[test]
    fn timi_is_dense_and_query_free() {
        let (mut s, v, vt) = setup();
        let outcome = TimiAttack::new(&mut s, TimiConfig::default()).run(&v, &vt).unwrap();
        assert_eq!(outcome.queries, 0);
        let total = v.tensor().len();
        // Dense: the vast majority of scalars perturbed. Pixels already at
        // the 0/255 rails can absorb the step — the paper's own Table II
        // shows the same effect (TIMI Spa 588,726 of 602,112 on SlowFast).
        assert!(
            outcome.spa() > total * 3 / 4,
            "TIMI must be dense: {} of {total}",
            outcome.spa()
        );
        assert!(outcome.perturbation.linf_norm() <= 10.0 + 1e-3);
    }

    #[test]
    fn timi_reduces_surrogate_feature_distance() {
        let (mut s, v, vt) = setup();
        let outcome = TimiAttack::new(&mut s, TimiConfig::default()).run(&v, &vt).unwrap();
        let target = s.extract(&vt).unwrap();
        let before = s.extract(&v).unwrap().sq_distance(&target).unwrap();
        let after = s.extract(&outcome.adversarial).unwrap().sq_distance(&target).unwrap();
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn timi_pscore_approaches_epsilon() {
        // With saturating sign steps, mean |φ| should approach ε — the
        // mechanism behind the paper's PScore = 10.00 entries.
        let (mut s, v, vt) = setup();
        let cfg = TimiConfig { iters: 12, ..TimiConfig::default() };
        let outcome = TimiAttack::new(&mut s, cfg).run(&v, &vt).unwrap();
        assert!(
            outcome.pscore() > 0.5 * cfg.epsilon,
            "PScore {} should approach ε {}",
            outcome.pscore(),
            cfg.epsilon
        );
    }

    #[test]
    fn ti_smooth_preserves_constant_fields() {
        let g = Tensor::full(&[2, 4, 4, 3], 2.5);
        let s = ti_smooth(&g, 1);
        for &x in s.as_slice() {
            assert!((x - 2.5).abs() < 1e-6);
        }
        // r = 0 is the identity.
        assert_eq!(ti_smooth(&g, 0), g);
    }
}
