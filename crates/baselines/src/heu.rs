use crate::select_heuristic_masks;
use duo_attack::{AttackOutcome, QueryConfig, Result, SparseQuery};
use duo_retrieval::{ndcg_cooccurrence, QueryOracle};
use duo_tensor::{Rng64, Tensor};
use duo_video::{Video, VideoId};

/// Shared configuration of the HEU attacks (Wei et al., AAAI'20).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuConfig {
    /// Pixel budget on the heuristic support.
    pub k: usize,
    /// Frame budget on the heuristic support.
    pub n: usize,
    /// Per-pixel perturbation bound τ.
    pub tau: f32,
    /// Optimization iterations (NES rounds or SimBA steps).
    pub iters: usize,
    /// Antithetic sample pairs per NES round.
    pub nes_samples: usize,
    /// NES exploration standard deviation, in pixel units.
    pub sigma: f32,
    /// Margin constant η of the objective.
    pub eta: f32,
}
duo_tensor::impl_to_json!(struct HeuConfig { k, n, tau, iters, nes_samples, sigma, eta });

impl Default for HeuConfig {
    fn default() -> Self {
        HeuConfig { k: 3_000, n: 4, tau: 30.0, iters: 25, nes_samples: 3, sigma: 4.0, eta: 1.0 }
    }
}

/// HEU-Nes: motion-saliency support selection + NES gradient estimation
/// on the black-box objective, with signed updates on the support.
#[derive(Debug, Clone, Copy)]
pub struct HeuNesAttack {
    config: HeuConfig,
}

impl HeuNesAttack {
    /// Creates the attack.
    pub fn new(config: HeuConfig) -> Self {
        HeuNesAttack { config }
    }

    /// Runs the attack on the pair `(v, v_t)`.
    ///
    /// # Errors
    ///
    /// Propagates retrieval failures.
    pub fn run(
        &self,
        blackbox: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        let cfg = self.config;
        let queries_before = blackbox.queries_used();
        let masks = select_heuristic_masks(v, cfg.k, cfg.n, cfg.tau, rng);
        let support = masks.support_indices();
        let r_v = blackbox.retrieve(v)?;
        let r_t = blackbox.retrieve(v_t)?;
        let objective = |list: &[VideoId]| -> f32 {
            ndcg_cooccurrence(list, &r_v) - ndcg_cooccurrence(list, &r_t) + cfg.eta
        };

        let mut v_adv = v.add_perturbation(&masks.phi())?;
        let mut t_cur = objective(&blackbox.retrieve(&v_adv)?);
        let mut trajectory = vec![t_cur];
        let alpha = cfg.tau / 6.0;
        let original = v.tensor().as_slice().to_vec();

        'outer: for _ in 0..cfg.iters {
            // NES gradient estimate over antithetic pairs on the support.
            let mut grad = vec![0.0f32; support.len()];
            for _ in 0..cfg.nes_samples {
                if blackbox.budget_remaining().is_some_and(|r| r < 2) {
                    break 'outer;
                }
                let noise: Vec<f32> = (0..support.len()).map(|_| rng.normal()).collect();
                let mut plus = v_adv.clone();
                let mut minus = v_adv.clone();
                for (&idx, &u) in support.iter().zip(&noise) {
                    plus.tensor_mut().as_mut_slice()[idx] += cfg.sigma * u;
                    minus.tensor_mut().as_mut_slice()[idx] -= cfg.sigma * u;
                }
                let t_plus = objective(&blackbox.retrieve(&plus)?);
                let t_minus = objective(&blackbox.retrieve(&minus)?);
                let weight = (t_plus - t_minus) / (2.0 * cfg.sigma);
                for (g, &u) in grad.iter_mut().zip(&noise) {
                    *g += weight * u / cfg.nes_samples as f32;
                }
            }
            // Signed descent step on the support, clamped into the τ-ball.
            let mut candidate = v_adv.clone();
            for (&idx, &g) in support.iter().zip(&grad) {
                let cur = candidate.tensor().as_slice()[idx];
                let lo = (original[idx] - cfg.tau).max(0.0);
                let hi = (original[idx] + cfg.tau).min(255.0);
                candidate.tensor_mut().as_mut_slice()[idx] =
                    (cur - alpha * g.signum()).clamp(lo, hi);
            }
            if blackbox.budget_remaining() == Some(0) {
                break;
            }
            let t_new = objective(&blackbox.retrieve(&candidate)?);
            if t_new <= t_cur {
                v_adv = candidate;
                t_cur = t_new;
            }
            trajectory.push(t_cur);
        }

        let perturbation = v_adv.perturbation_from(v)?;
        Ok(AttackOutcome {
            adversarial: v_adv,
            perturbation,
            queries: blackbox.queries_used() - queries_before,
            loss_trajectory: trajectory,
        })
    }
}

/// HEU-Sim: the heuristic motion-saliency support of HEU-Nes with the
/// random coordinate-descent (SimBA) strategy of the Vanilla attack.
#[derive(Debug, Clone, Copy)]
pub struct HeuSimAttack {
    config: HeuConfig,
}

impl HeuSimAttack {
    /// Creates the attack.
    pub fn new(config: HeuConfig) -> Self {
        HeuSimAttack { config }
    }

    /// Runs the attack on the pair `(v, v_t)`.
    ///
    /// # Errors
    ///
    /// Propagates retrieval failures.
    pub fn run(
        &self,
        blackbox: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        let cfg = self.config;
        let masks = select_heuristic_masks(v, cfg.k, cfg.n, cfg.tau, rng);
        let start = v.add_perturbation(&masks.phi())?;
        let query_cfg =
            QueryConfig { iter_num_q: cfg.iters, tau: cfg.tau, eta: cfg.eta, ..QueryConfig::default() };
        SparseQuery::new(query_cfg).run(blackbox, v, v_t, &masks, start, rng)
    }
}

/// Cheap mean used by the NES averaging (kept for clarity in tests).
#[allow(dead_code)]
fn mean(xs: &Tensor) -> f32 {
    xs.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::{Architecture, Backbone, BackboneConfig};
    use duo_retrieval::{BlackBox, RetrievalConfig, RetrievalSystem};
    use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};

    fn setup() -> (BlackBox, SyntheticDataset) {
        let mut rng = Rng64::new(231);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 9, 1, 0);
        let gallery: Vec<_> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
        let victim =
            Backbone::new(Architecture::SlowFast, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 4, nodes: 2, threaded: false, ..Default::default() },
        )
        .unwrap();
        (BlackBox::new(sys), ds)
    }

    fn quick() -> HeuConfig {
        HeuConfig { k: 200, n: 3, iters: 4, nes_samples: 2, ..HeuConfig::default() }
    }

    #[test]
    fn heu_nes_stays_sparse_and_bounded() {
        let (mut bb, ds) = setup();
        let v = ds.video(VideoId { class: 0, instance: 0 });
        let vt = ds.video(VideoId { class: 6, instance: 0 });
        let mut rng = Rng64::new(232);
        let outcome = HeuNesAttack::new(quick()).run(&mut bb, &v, &vt, &mut rng).unwrap();
        assert!(outcome.spa() <= 200, "Spa {} exceeds support", outcome.spa());
        assert!(outcome.perturbation.linf_norm() <= 30.0 + 1e-3);
        assert!(outcome.queries > 0);
    }

    #[test]
    fn heu_nes_objective_is_monotone() {
        let (mut bb, ds) = setup();
        let v = ds.video(VideoId { class: 1, instance: 0 });
        let vt = ds.video(VideoId { class: 7, instance: 0 });
        let mut rng = Rng64::new(233);
        let outcome = HeuNesAttack::new(quick()).run(&mut bb, &v, &vt, &mut rng).unwrap();
        for w in outcome.loss_trajectory.windows(2) {
            assert!(w[1] <= w[0] + 1e-6);
        }
    }

    #[test]
    fn heu_sim_uses_heuristic_support() {
        let (mut bb, ds) = setup();
        let v = ds.video(VideoId { class: 2, instance: 0 });
        let vt = ds.video(VideoId { class: 5, instance: 0 });
        let mut rng = Rng64::new(234);
        let outcome =
            HeuSimAttack::new(quick()).run(&mut bb, &v, &vt, &mut rng).unwrap();
        assert!(outcome.spa() <= 200);
        assert!(outcome.queries > 0);
    }

    #[test]
    fn heu_nes_respects_budget() {
        let (bb, ds) = setup();
        let mut bb = BlackBox::with_budget(bb.into_inner(), 9);
        let v = ds.video(VideoId { class: 3, instance: 0 });
        let vt = ds.video(VideoId { class: 4, instance: 0 });
        let mut rng = Rng64::new(235);
        let outcome = HeuNesAttack::new(quick()).run(&mut bb, &v, &vt, &mut rng).unwrap();
        assert!(outcome.queries <= 9);
    }
}
