//! Baseline adversarial attacks from the DUO evaluation (paper §V-B).
//!
//! * [`VanillaAttack`] — random sparse pixel/frame selection followed by
//!   SimBA-style query rectification (the paper's "Vanilla" baseline).
//! * [`TimiAttack`] — transfer-only, *dense* momentum-iterative attack
//!   with translation-invariant gradient smoothing (Dong et al., CVPR'19);
//!   perturbs every pixel of every frame, which is what makes its Spa
//!   column in Table II equal to the full clip element count.
//! * [`HeuNesAttack`] — heuristic saliency-guided support selection plus
//!   NES gradient estimation on the black box (Wei et al., AAAI'20).
//! * [`HeuSimAttack`] — the same heuristic support with the random
//!   coordinate-descent strategy of Vanilla (the paper's HEU-Sim).
//!
//! All attacks produce a [`duo_attack::AttackOutcome`], so the experiment
//! harness scores every method with identical code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heu;
mod saliency;
mod timi;
mod vanilla;

pub use heu::{HeuConfig, HeuNesAttack, HeuSimAttack};
pub use saliency::{motion_saliency, select_heuristic_masks, select_random_masks};
pub use timi::{TimiAttack, TimiConfig};
pub use vanilla::{VanillaAttack, VanillaConfig};
