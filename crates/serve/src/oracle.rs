//! Adapter exposing a [`ClientHandle`] as a
//! [`duo_retrieval::QueryOracle`], so every attack in the workspace can
//! run unchanged against the concurrent service instead of a private
//! [`duo_retrieval::BlackBox`].

use crate::{ClientHandle, ServeError};
use duo_retrieval::{QueryOracle, Result, RetrievalError};
use duo_video::{Video, VideoId};
use std::time::Duration;

/// A [`QueryOracle`] backed by a serving client.
///
/// Transient admission rejections ([`ServeError::RateLimited`],
/// [`ServeError::Overloaded`]) are retried a bounded number of times with
/// a short sleep; hard failures (budget exhaustion, shutdown, model
/// errors) surface immediately as [`RetrievalError`]s. Budget exhaustion
/// maps to [`RetrievalError::BudgetExhausted`], so attack loops stop
/// gracefully exactly as they do against a local black box.
#[derive(Debug, Clone)]
pub struct ServiceOracle {
    client: ClientHandle,
    max_retries: u32,
}

impl ServiceOracle {
    /// Wraps a client handle with the default retry policy (16 attempts).
    pub fn new(client: ClientHandle) -> Self {
        ServiceOracle { client, max_retries: 16 }
    }

    /// Overrides how many times transient rejections are retried.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// The underlying client handle.
    pub fn client(&self) -> &ClientHandle {
        &self.client
    }
}

fn to_retrieval_error(e: ServeError) -> RetrievalError {
    match e {
        ServeError::BudgetExhausted { budget } => RetrievalError::BudgetExhausted { budget },
        ServeError::Quarantined { flags } => RetrievalError::Quarantined { flags },
        ServeError::Retrieval(inner) => inner,
        other => RetrievalError::BadConfig(format!("serving error: {other}")),
    }
}

impl QueryOracle for ServiceOracle {
    fn retrieve(&mut self, video: &Video) -> Result<Vec<VideoId>> {
        let mut attempt = 0;
        loop {
            match self.client.retrieve(video) {
                Ok(list) => return Ok(list),
                Err(ServeError::RateLimited { retry_after_ms }) if attempt < self.max_retries => {
                    attempt += 1;
                    // Honour the limiter's hint, but stay responsive.
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 50)));
                }
                Err(ServeError::Overloaded { .. }) if attempt < self.max_retries => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                // A deadline-shed request was refunded at the service, so
                // resubmitting costs the attacker nothing extra.
                Err(ServeError::DeadlineExceeded) if attempt < self.max_retries => {
                    attempt += 1;
                }
                // Throttle-band rejections admit 1 in `throttle_stride`
                // attempts, so bounded retries make progress; the stride
                // math is deterministic, the sleep only eases contention.
                Err(ServeError::Throttled { .. }) if attempt < self.max_retries => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(to_retrieval_error(e)),
            }
        }
    }

    fn queries_used(&self) -> u64 {
        self.client.queries_used()
    }

    fn budget_remaining(&self) -> Option<u64> {
        self.client.budget_remaining()
    }

    fn m(&self) -> usize {
        self.client.list_len().unwrap_or(0)
    }
}
