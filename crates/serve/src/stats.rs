//! Service-side observability: counters, batch-size histogram, latency
//! quantiles.

use crate::LatencyHistogram;
use duo_retrieval::{IndexBreakdown, MutationStats, QueryTelemetry};

/// Mutable counters maintained by the service under its stats lock.
#[derive(Debug)]
pub(crate) struct StatsInner {
    pub served: u64,
    pub failed: u64,
    pub rejected_budget: u64,
    pub rejected_rate: u64,
    pub rejected_overload: u64,
    pub batches: u64,
    /// `batch_hist[s]` counts batches of exactly `s` requests
    /// (index 0 is unused).
    pub batch_hist: Vec<u64>,
    pub max_queue_depth: usize,
    pub latency: LatencyHistogram,
    pub deadline_misses: u64,
    pub refunded: u64,
    /// Highest gallery epoch any served query scored against.
    pub max_epoch_served: u64,
    pub degraded: u64,
    pub retries: u64,
    pub hedges: u64,
    pub node_timeouts: u64,
    pub transient_faults: u64,
    pub contained_panics: u64,
    pub breaker_skips: u64,
    pub breaker_opens: u64,
    pub breaker_half_opens: u64,
    pub breaker_closes: u64,
    /// Per-node failed-query counters, indexed like the system's shards.
    pub node_failures: Vec<u64>,
    pub defense_observed: u64,
    pub defense_flagged: u64,
    pub defense_throttled: u64,
    pub defense_rejected: u64,
    pub purified: u64,
}

impl StatsInner {
    pub fn new(batch_max: usize, nodes: usize) -> Self {
        StatsInner {
            served: 0,
            failed: 0,
            rejected_budget: 0,
            rejected_rate: 0,
            rejected_overload: 0,
            batches: 0,
            batch_hist: vec![0; batch_max + 1],
            max_queue_depth: 0,
            latency: LatencyHistogram::new(),
            deadline_misses: 0,
            refunded: 0,
            max_epoch_served: 0,
            degraded: 0,
            retries: 0,
            hedges: 0,
            node_timeouts: 0,
            transient_faults: 0,
            contained_panics: 0,
            breaker_skips: 0,
            breaker_opens: 0,
            breaker_half_opens: 0,
            breaker_closes: 0,
            node_failures: vec![0; nodes],
            defense_observed: 0,
            defense_flagged: 0,
            defense_throttled: 0,
            defense_rejected: 0,
            purified: 0,
        }
    }

    /// Folds one query's resilience telemetry into the service counters.
    pub fn absorb(&mut self, telemetry: &QueryTelemetry) {
        self.retries += telemetry.retries;
        self.hedges += telemetry.hedges;
        self.node_timeouts += telemetry.node_timeouts;
        self.transient_faults += telemetry.transient_faults;
        self.contained_panics += telemetry.panics;
        self.breaker_skips += telemetry.breaker_skips;
        self.breaker_opens += telemetry.breaker_opens;
        self.breaker_half_opens += telemetry.breaker_half_opens;
        self.breaker_closes += telemetry.breaker_closes;
        for (total, &n) in self.node_failures.iter_mut().zip(&telemetry.node_failures) {
            *total += n;
        }
    }

    /// Builds the public snapshot. `index` is the system's per-mode
    /// shard-index breakdown
    /// ([`duo_retrieval::RetrievalSystem::index_breakdown`]),
    /// `epoch`/`mutation` the gallery's epoch counter and mutation totals
    /// ([`duo_retrieval::RetrievalSystem::mutation_stats`]) — all sampled
    /// by the caller at snapshot time; the system maintains them on its
    /// own paths, outside the service stats lock.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        index: IndexBreakdown,
        epoch: u64,
        mutation: MutationStats,
    ) -> ServiceStats {
        let mut weighted = 0u64;
        let mut max_batch = 0usize;
        for (size, &n) in self.batch_hist.iter().enumerate() {
            weighted += size as u64 * n;
            if n > 0 {
                max_batch = size;
            }
        }
        let mean_batch = if self.batches == 0 {
            0.0
        } else {
            weighted as f32 / self.batches as f32
        };
        ServiceStats {
            served: self.served,
            failed: self.failed,
            rejected_budget: self.rejected_budget,
            rejected_rate: self.rejected_rate,
            rejected_overload: self.rejected_overload,
            batches: self.batches,
            batch_hist: self.batch_hist.clone(),
            mean_batch,
            max_batch,
            queue_depth,
            max_queue_depth: self.max_queue_depth,
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p95_us: self.latency.quantile_us(0.95),
            latency_max_us: self.latency.max_us(),
            deadline_misses: self.deadline_misses,
            refunded: self.refunded,
            current_epoch: epoch,
            max_epoch_served: self.max_epoch_served,
            epochs_published: mutation.epochs_published,
            mutations_applied: mutation.mutations_applied,
            rebalances: mutation.rebalances,
            rows_rebalanced: mutation.rows_rebalanced,
            degraded: self.degraded,
            retries: self.retries,
            hedges: self.hedges,
            node_timeouts: self.node_timeouts,
            transient_faults: self.transient_faults,
            contained_panics: self.contained_panics,
            breaker_skips: self.breaker_skips,
            breaker_opens: self.breaker_opens,
            breaker_half_opens: self.breaker_half_opens,
            breaker_closes: self.breaker_closes,
            node_failures: self.node_failures.clone(),
            defense_observed: self.defense_observed,
            defense_flagged: self.defense_flagged,
            defense_throttled: self.defense_throttled,
            defense_rejected: self.defense_rejected,
            purified: self.purified,
            index_queries: index.total.queries,
            index_probed_lists: index.total.probed_lists,
            index_scanned_rows: index.total.scanned_rows,
            index_reranked_rows: index.total.reranked_rows,
            index_mean_probes: index.total.mean_probes(),
            index_feature_bytes: index.feature_bytes,
            index_code_bytes: index.code_bytes,
            recall_audits: index.total.audit_queries,
            recall_at_m: index.total.recall_at_m(),
            recall_audits_ivf: index.ivf.audit_queries,
            recall_at_m_ivf: index.ivf.recall_at_m(),
            recall_audits_pq: index.pq.audit_queries,
            recall_at_m_pq: index.pq.recall_at_m(),
            recall_audits_sq8: index.sq8.audit_queries,
            recall_at_m_sq8: index.sq8.recall_at_m(),
        }
    }
}

/// A point-in-time snapshot of one client's serving counters.
///
/// The service keeps these per [`ClientAccount`] slot, under the same
/// lock that guards the client's budget ledger, so `charged` is always
/// consistent with the rejection/serve counters:
/// `charged == served + failed` once the client's in-flight requests
/// have drained (deadline-shed requests are refunded before the miss is
/// counted).
///
/// Unlike the global [`ServiceStats`], every field here is deterministic
/// for a deterministic client workload — rejections on budget and
/// deadline misses depend only on the client's own request stream, never
/// on cross-client timing. (`rejected_rate` and `rejected_overload` are
/// the exception: they depend on wall-clock arrival order, which is why
/// the campaign leaderboard excludes them.)
///
/// [`ClientAccount`]: crate::RetrievalService::client
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Queries charged to the client's budget ledger (net of refunds).
    pub charged: u64,
    /// Queries answered successfully for this client.
    pub served: u64,
    /// Queries that reached the model for this client but failed.
    pub failed: u64,
    /// Admissions rejected on this client's exhausted budget.
    pub rejected_budget: u64,
    /// Admissions rejected by this client's token-bucket rate limiter.
    pub rejected_rate: u64,
    /// Admissions shed for this client because the ingress queue was full.
    pub rejected_overload: u64,
    /// Admitted requests shed (and refunded) on deadline expiry.
    pub deadline_misses: u64,
    /// Admission-time charges handed back when the request was shed
    /// before reaching the node fan-out. Every shed refunds exactly once,
    /// so `refunded == deadline_misses` once in-flight requests drain —
    /// the budget-drift invariant extended to epoch-swap sheds.
    pub refunded: u64,
    /// Admission attempts observed by this client's streaming detector
    /// (every attempt that passed the budget and rate gates, including
    /// later-throttled/rejected ones). 0 when the service is undefended.
    pub defense_observed: u64,
    /// Observations the detector flagged as adversarial-looking.
    pub defense_flagged: u64,
    /// Admission attempts bounced by the throttle band (not charged).
    pub defense_throttled: u64,
    /// Admission attempts hard-rejected after quarantine (not charged).
    pub defense_rejected: u64,
}
duo_tensor::impl_to_json!(struct ClientStats {
    charged, served, failed, rejected_budget, rejected_rate,
    rejected_overload, deadline_misses, refunded,
    defense_observed, defense_flagged, defense_throttled, defense_rejected
});

/// A point-in-time snapshot of service counters.
///
/// `rejected_*` queries never reached the model and were not charged to
/// any budget; `served + failed` is the number of queries that did.
/// Latency quantiles are measured from admission to retrieval completion
/// (queueing + batching + embedding + node fan-out).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub served: u64,
    /// Queries that reached the model but failed (extraction/node errors).
    pub failed: u64,
    /// Admissions rejected on an exhausted hard budget.
    pub rejected_budget: u64,
    /// Admissions rejected by the token-bucket rate limiter.
    pub rejected_rate: u64,
    /// Admissions shed because the ingress queue was full.
    pub rejected_overload: u64,
    /// Batched backbone forwards executed.
    pub batches: u64,
    /// `batch_hist[s]` counts batches of exactly `s` requests.
    pub batch_hist: Vec<u64>,
    /// Mean requests per batch.
    pub mean_batch: f32,
    /// Largest batch observed.
    pub max_batch: usize,
    /// Requests sitting in the ingress queue at snapshot time.
    pub queue_depth: usize,
    /// High-water mark of the ingress queue.
    pub max_queue_depth: usize,
    /// Median end-to-end latency, microseconds (bucket upper bound).
    pub latency_p50_us: u64,
    /// 95th-percentile end-to-end latency, microseconds.
    pub latency_p95_us: u64,
    /// Worst-case end-to-end latency, microseconds.
    pub latency_max_us: u64,
    /// Admitted requests shed because their end-to-end deadline expired
    /// in the queue; their charges were refunded.
    pub deadline_misses: u64,
    /// Admission charges refunded to clients (one per shed request;
    /// equals `deadline_misses` once in-flight requests have drained).
    pub refunded: u64,
    /// The gallery epoch at snapshot time (bumps once per published
    /// mutation/rebalance transaction; 0 for an immutable gallery).
    pub current_epoch: u64,
    /// Highest epoch any served query scored against. At most
    /// `current_epoch`; queries admitted before a publish may legally
    /// serve from the prior epoch.
    pub max_epoch_served: u64,
    /// Epoch transactions published over the service's lifetime.
    pub epochs_published: u64,
    /// Individual gallery mutations applied (inserts + updates +
    /// deletes; delete misses excluded).
    pub mutations_applied: u64,
    /// Rebalance transactions that moved at least one row.
    pub rebalances: u64,
    /// Rows moved between shards by rebalances.
    pub rows_rebalanced: u64,
    /// Served queries answered from partial shard coverage.
    pub degraded: u64,
    /// Node retry attempts issued by the resilient fan-out.
    pub retries: u64,
    /// Hedged second attempts issued.
    pub hedges: u64,
    /// Node attempts that blew their virtual per-node deadline.
    pub node_timeouts: u64,
    /// Injected transient node failures observed.
    pub transient_faults: u64,
    /// Node panics contained into shard failures.
    pub contained_panics: u64,
    /// Node queries skipped by an open circuit breaker.
    pub breaker_skips: u64,
    /// Circuit-breaker trips to open.
    pub breaker_opens: u64,
    /// Circuit-breaker half-open probe admissions.
    pub breaker_half_opens: u64,
    /// Circuit-breaker recoveries to closed.
    pub breaker_closes: u64,
    /// Failed queries per data node (shard index order).
    pub node_failures: Vec<u64>,
    /// Shard-index searches executed (one per node per retrieval).
    pub index_queries: u64,
    /// Inverted lists probed across all IVF queries (0 for exact shards).
    pub index_probed_lists: u64,
    /// Feature rows pushed through the distance kernel.
    pub index_scanned_rows: u64,
    /// Candidate rows rescored at exact f32 precision by the compressed
    /// modes' rerank tail.
    pub index_reranked_rows: u64,
    /// Mean inverted lists probed per shard search.
    pub index_mean_probes: f32,
    /// Bytes of retained f32 feature matrix across all shards.
    pub index_feature_bytes: u64,
    /// Bytes of compressed codes plus codec tables across all shards
    /// (0 when no shard runs a compressed mode).
    pub index_code_bytes: u64,
    /// Coarse (IVF/PQ/SQ8) searches recall-audited against an exact scan,
    /// summed over all modes.
    pub recall_audits: u64,
    /// Running recall@m estimate from the audited coarse searches; `None`
    /// until the first audit (always `None` for exact-only traffic,
    /// whose recall is 1 by construction).
    pub recall_at_m: Option<f32>,
    /// Audited searches served by uncompressed [`duo_retrieval::IndexMode::Ivf`] shards.
    pub recall_audits_ivf: u64,
    /// Recall@m over the IVF-audited searches only.
    pub recall_at_m_ivf: Option<f32>,
    /// Audited searches served by [`duo_retrieval::IndexMode::Pq`] shards.
    pub recall_audits_pq: u64,
    /// Recall@m over the PQ-audited searches only.
    pub recall_at_m_pq: Option<f32>,
    /// Audited searches served by [`duo_retrieval::IndexMode::Sq8`] shards.
    pub recall_audits_sq8: u64,
    /// Recall@m over the SQ8-audited searches only.
    pub recall_at_m_sq8: Option<f32>,
    /// Admission attempts observed by the streaming defense across all
    /// clients (0 when the service runs undefended).
    pub defense_observed: u64,
    /// Observations the streaming defense flagged as adversarial-looking.
    pub defense_flagged: u64,
    /// Admission attempts bounced by the throttle band; never charged.
    pub defense_throttled: u64,
    /// Admission attempts hard-rejected after quarantine; never charged.
    pub defense_rejected: u64,
    /// Admitted queries run through the configured purification transform
    /// before the batched embed.
    pub purified: u64,
}
duo_tensor::impl_to_json!(struct ServiceStats {
    served, failed, rejected_budget, rejected_rate, rejected_overload, batches,
    batch_hist, mean_batch, max_batch, queue_depth, max_queue_depth,
    latency_p50_us, latency_p95_us, latency_max_us,
    deadline_misses, refunded, current_epoch, max_epoch_served,
    epochs_published, mutations_applied, rebalances, rows_rebalanced,
    degraded, retries, hedges, node_timeouts, transient_faults,
    contained_panics, breaker_skips, breaker_opens, breaker_half_opens,
    breaker_closes, node_failures,
    index_queries, index_probed_lists, index_scanned_rows,
    index_reranked_rows, index_mean_probes,
    index_feature_bytes, index_code_bytes,
    recall_audits, recall_at_m,
    recall_audits_ivf, recall_at_m_ivf,
    recall_audits_pq, recall_at_m_pq,
    recall_audits_sq8, recall_at_m_sq8,
    defense_observed, defense_flagged, defense_throttled, defense_rejected,
    purified
});

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "served {} / failed {} (rejected: {} budget, {} rate, {} overload)",
            self.served, self.failed, self.rejected_budget, self.rejected_rate,
            self.rejected_overload
        )?;
        writeln!(
            f,
            "batches {} (mean {:.2}, max {}), queue depth {} (peak {})",
            self.batches, self.mean_batch, self.max_batch, self.queue_depth,
            self.max_queue_depth
        )?;
        writeln!(
            f,
            "latency p50 {} us, p95 {} us, max {} us",
            self.latency_p50_us, self.latency_p95_us, self.latency_max_us
        )?;
        writeln!(
            f,
            "resilience: {} retries, {} hedges, {} timeouts, {} transients, \
             {} degraded, {} deadline misses, breaker {}/{}/{} (open/probe/close)",
            self.retries, self.hedges, self.node_timeouts, self.transient_faults,
            self.degraded, self.deadline_misses, self.breaker_opens,
            self.breaker_half_opens, self.breaker_closes
        )?;
        writeln!(
            f,
            "gallery: epoch {} (max served {}), {} epochs published, \
             {} mutations, {} rebalances ({} rows moved), {} refunds",
            self.current_epoch, self.max_epoch_served, self.epochs_published,
            self.mutations_applied, self.rebalances, self.rows_rebalanced,
            self.refunded
        )?;
        writeln!(
            f,
            "defense: {} observed, {} flagged, {} throttled, {} rejected, {} purified",
            self.defense_observed, self.defense_flagged, self.defense_throttled,
            self.defense_rejected, self.purified
        )?;
        let per_mode = |r: Option<f32>, n: u64| match r {
            Some(r) => format!("{r:.3} ({n} audits)"),
            None => "n/a".to_string(),
        };
        write!(
            f,
            "index: {} searches, {} rows scanned ({} reranked), {:.2} mean probes, \
             {} feat B + {} code B, recall@m {} [ivf {}, pq {}, sq8 {}]",
            self.index_queries,
            self.index_scanned_rows,
            self.index_reranked_rows,
            self.index_mean_probes,
            self.index_feature_bytes,
            self.index_code_bytes,
            match self.recall_at_m {
                Some(r) => format!("{r:.3} ({} audits)", self.recall_audits),
                None => "n/a (exact)".to_string(),
            },
            per_mode(self.recall_at_m_ivf, self.recall_audits_ivf),
            per_mode(self.recall_at_m_pq, self.recall_audits_pq),
            per_mode(self.recall_at_m_sq8, self.recall_audits_sq8),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_retrieval::{IndexMode, IndexStats};
    use duo_tensor::ToJson;

    #[test]
    fn snapshot_computes_batch_statistics() {
        let mut inner = StatsInner::new(4, 2);
        inner.batch_hist[1] = 2;
        inner.batch_hist[3] = 2;
        inner.batches = 4;
        let stats = inner.snapshot(1, IndexBreakdown::default(), 0, MutationStats::default());
        assert_eq!(stats.mean_batch, 2.0);
        assert_eq!(stats.max_batch, 3);
        assert_eq!(stats.queue_depth, 1);
    }

    #[test]
    fn stats_serialize_to_json() {
        let inner = StatsInner::new(2, 3);
        let json = inner.snapshot(0, IndexBreakdown::default(), 0, MutationStats::default()).to_json().to_string();
        assert!(json.contains("\"served\":0"), "{json}");
        assert!(json.contains("\"batch_hist\":[0,0,0]"), "{json}");
        assert!(json.contains("\"latency_p95_us\":0"), "{json}");
        assert!(json.contains("\"node_failures\":[0,0,0]"), "{json}");
        assert!(json.contains("\"deadline_misses\":0"), "{json}");
        assert!(json.contains("\"index_queries\":0"), "{json}");
        assert!(json.contains("\"index_code_bytes\":0"), "{json}");
        assert!(json.contains("\"recall_at_m\":null"), "{json}");
        assert!(json.contains("\"recall_at_m_pq\":null"), "{json}");
        assert!(json.contains("\"defense_observed\":0"), "{json}");
        assert!(json.contains("\"purified\":0"), "{json}");
    }

    #[test]
    fn snapshot_carries_index_counters() {
        let inner = StatsInner::new(2, 2);
        let mut index = IndexBreakdown {
            feature_bytes: 4096,
            code_bytes: 1024,
            ..IndexBreakdown::default()
        };
        index.absorb(
            IndexMode::ivf(8, 2),
            &IndexStats {
                queries: 10,
                probed_lists: 40,
                scanned_rows: 500,
                reranked_rows: 0,
                audit_queries: 2,
                audit_hits: 19,
                audit_expected: 20,
            },
        );
        let stats = inner.snapshot(0, index, 0, MutationStats::default());
        assert_eq!(stats.index_queries, 10);
        assert_eq!(stats.index_mean_probes, 4.0);
        assert_eq!(stats.index_feature_bytes, 4096);
        assert_eq!(stats.index_code_bytes, 1024);
        assert_eq!(stats.recall_audits, 2);
        assert_eq!(stats.recall_at_m, Some(0.95));
        let json = stats.to_json().to_string();
        assert!(json.contains("\"recall_at_m\":0.95"), "{json}");
    }

    #[test]
    fn snapshot_splits_recall_per_mode() {
        let inner = StatsInner::new(2, 2);
        let mut index = IndexBreakdown::default();
        // An IVF shard at perfect audited recall and a PQ shard losing
        // hits must land in separate buckets while the aggregate blends
        // them.
        index.absorb(
            IndexMode::ivf(8, 2),
            &IndexStats {
                queries: 8,
                audit_queries: 2,
                audit_hits: 10,
                audit_expected: 10,
                ..IndexStats::default()
            },
        );
        index.absorb(
            IndexMode::pq(8, 2, 4, 8, 16),
            &IndexStats {
                queries: 8,
                reranked_rows: 64,
                audit_queries: 2,
                audit_hits: 8,
                audit_expected: 10,
                ..IndexStats::default()
            },
        );
        let stats = inner.snapshot(0, index, 0, MutationStats::default());
        assert_eq!(stats.recall_audits, 4);
        assert_eq!(stats.recall_at_m, Some(0.9));
        assert_eq!(stats.recall_audits_ivf, 2);
        assert_eq!(stats.recall_at_m_ivf, Some(1.0));
        assert_eq!(stats.recall_audits_pq, 2);
        assert_eq!(stats.recall_at_m_pq, Some(0.8));
        assert_eq!(stats.recall_audits_sq8, 0);
        assert_eq!(stats.recall_at_m_sq8, None);
        assert_eq!(stats.index_reranked_rows, 64);
        let shown = stats.to_string();
        assert!(shown.contains("pq 0.800"), "{shown}");
        assert!(shown.contains("64 reranked"), "{shown}");
    }

    #[test]
    fn absorb_accumulates_telemetry() {
        let mut inner = StatsInner::new(2, 2);
        let mut t = QueryTelemetry::new(2);
        t.retries = 3;
        t.hedges = 1;
        t.node_timeouts = 2;
        t.breaker_opens = 1;
        t.node_failures[1] = 2;
        inner.absorb(&t);
        inner.absorb(&t);
        let stats = inner.snapshot(0, IndexBreakdown::default(), 0, MutationStats::default());
        assert_eq!(stats.retries, 6);
        assert_eq!(stats.hedges, 2);
        assert_eq!(stats.node_timeouts, 4);
        assert_eq!(stats.breaker_opens, 2);
        assert_eq!(stats.node_failures, vec![0, 4]);
    }
}
