//! Error type of the serving layer.

use duo_retrieval::RetrievalError;
use std::fmt;

/// Errors a service client can observe.
///
/// Admission failures ([`ServeError::BudgetExhausted`],
/// [`ServeError::RateLimited`], [`ServeError::Overloaded`],
/// [`ServeError::Throttled`], [`ServeError::Quarantined`]) mean the query
/// never reached the model and was **not** charged against the client's
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service was started with invalid parameters.
    BadConfig(String),
    /// The client's hard query budget is spent.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The client's token bucket is empty; retry after the hint.
    RateLimited {
        /// Suggested wait before retrying, in milliseconds
        /// (`u64::MAX` when the bucket never refills).
        retry_after_ms: u64,
    },
    /// The ingress queue is full; the service is shedding load.
    Overloaded {
        /// The configured queue capacity that was hit.
        queue_cap: usize,
    },
    /// The request's end-to-end deadline expired before it reached the
    /// model; it was shed from the queue and the admission-time charge
    /// was refunded (deadline-shed queries are never billed).
    DeadlineExceeded,
    /// The streaming defense has this account in its throttle band and
    /// this admission attempt was not a stride slot. Not charged;
    /// retrying is allowed (1 in `throttle_stride` attempts is admitted).
    Throttled {
        /// Accumulated detector flags on the account.
        flags: u64,
    },
    /// The streaming defense escalated this account past its reject
    /// threshold; every further admission attempt is rejected. Not
    /// charged.
    Quarantined {
        /// Accumulated detector flags on the account.
        flags: u64,
    },
    /// The service has been shut down (or dropped).
    Stopped,
    /// The retrieval system itself failed to answer.
    Retrieval(RetrievalError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadConfig(msg) => write!(f, "bad serve config: {msg}"),
            ServeError::BudgetExhausted { budget } => {
                write!(f, "query budget of {budget} exhausted")
            }
            ServeError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited; retry after {retry_after_ms} ms")
            }
            ServeError::Overloaded { queue_cap } => {
                write!(f, "service overloaded (queue capacity {queue_cap})")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired before service; charge refunded")
            }
            ServeError::Throttled { flags } => {
                write!(f, "throttled by streaming defense ({flags} flags); retry later")
            }
            ServeError::Quarantined { flags } => {
                write!(f, "account quarantined by streaming defense ({flags} flags)")
            }
            ServeError::Stopped => write!(f, "service stopped"),
            ServeError::Retrieval(e) => write!(f, "retrieval error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Retrieval(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<RetrievalError> for ServeError {
    fn from(e: RetrievalError) -> Self {
        match e {
            RetrievalError::BudgetExhausted { budget } => ServeError::BudgetExhausted { budget },
            other => ServeError::Retrieval(other),
        }
    }
}
