//! duo-serve: a concurrent, micro-batched retrieval serving layer with
//! per-client query budgets.
//!
//! The paper's threat model bounds the adversary by *queries against the
//! deployed service*, not by calls into an in-process model. This crate
//! supplies that deployment surface: one immutable
//! [`duo_retrieval::RetrievalSystem`] served by a fixed pool of worker
//! threads, with pending embed requests coalesced into batched backbone
//! forwards and every client metered by a hard query budget
//! ([`duo_retrieval::QueryLedger`]) plus an optional token-bucket rate
//! limit.
//!
//! ```text
//! ClientHandle ─► admission (budget + rate) ─► ingress queue ─► batcher
//!                                                                  │
//!                              batched embed (shared &RetrievalSystem)
//!                                                                  │
//!                              worker pool ─► retrieve_by_feature ─► reply
//! ```
//!
//! Guarantees:
//!
//! * **Bit-identical results.** Batching and worker parallelism never
//!   change a retrieval list: the batched forward is bit-identical to a
//!   lone forward, and ranking happens per request.
//! * **Rejected ≠ charged.** A query rejected by admission (budget,
//!   rate, overload) costs the client nothing and never reaches the
//!   model; `served + failed` in [`ServiceStats`] is exactly the number
//!   of charged queries.
//! * **Attack-compatible.** [`ServiceOracle`] implements
//!   [`duo_retrieval::QueryOracle`], so every attack in the workspace
//!   runs unchanged against the service.
//! * **Optionally defended.** [`ServeConfig::defense`] arms a blue-team
//!   stage: a per-account [`duo_defenses::StreamDetector`] at admission
//!   (flag → throttle → reject escalation, rejections never charged) and
//!   an optional input-purification transform before the batched embed,
//!   whose latency is charged against the request's end-to-end deadline.
//!
//! # Example
//!
//! ```
//! use duo_models::{Architecture, Backbone, BackboneConfig};
//! use duo_retrieval::{RetrievalConfig, RetrievalSystem};
//! use duo_serve::{RetrievalService, ServeConfig};
//! use duo_tensor::Rng64;
//! use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};
//!
//! let mut rng = Rng64::new(7);
//! let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 7, 1, 0);
//! let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng)?;
//! let system = RetrievalSystem::build(backbone, &ds, ds.train(), RetrievalConfig::default())?;
//!
//! let service = RetrievalService::start(system, ServeConfig::default())?;
//! let client = service.client(Some(100), None);
//! let list = client.retrieve(&ds.video(ds.train()[0]))?;
//! assert!(!list.is_empty());
//! let stats = service.shutdown();
//! assert_eq!(stats.served, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod config;
mod error;
mod histogram;
mod oracle;
mod service;
mod stats;

pub use bucket::TokenBucket;
pub use config::{DefenseConfig, Purify, RateLimit, ServeConfig};
pub use error::ServeError;
pub use histogram::LatencyHistogram;
pub use oracle::ServiceOracle;
pub use service::{ClientHandle, MutatorHandle, RetrievalService};
pub use stats::{ClientStats, ServiceStats};

pub(crate) use stats::StatsInner;
