//! Service and client configuration.

use duo_defenses::{Defense, FeatureSqueezing, Noise2Self, StreamConfig};
use duo_video::Video;
use std::time::Duration;

/// Configuration of the serving layer.
///
/// # Example
///
/// Stand a service up over a retrieval system, issue one query, and shut
/// down:
///
/// ```
/// use duo_serve::{RetrievalService, ServeConfig};
/// use duo_retrieval::{RetrievalConfig, RetrievalSystem};
/// use duo_models::{Architecture, Backbone, BackboneConfig};
/// use duo_tensor::Rng64;
/// use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};
/// use std::time::Duration;
///
/// let mut rng = Rng64::new(5);
/// let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 2, 1, 0);
/// let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng)?;
/// let system = RetrievalSystem::build(backbone, &ds, ds.train(), RetrievalConfig::default())?;
///
/// let config = ServeConfig {
///     workers: 2,
///     batch_max: 4,
///     batch_wait: Duration::from_millis(1),
///     ..ServeConfig::default()
/// };
/// let service = RetrievalService::start(system, config)?;
/// let client = service.client(None, None);
/// let top_m = client.retrieve(&ds.video(ds.train()[0]))?;
/// assert_eq!(top_m[0], ds.train()[0]);
///
/// let stats = service.shutdown();
/// assert_eq!(stats.served, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Retrieval worker threads draining the batched work queue.
    pub workers: usize,
    /// Maximum requests coalesced into one batched backbone forward.
    pub batch_max: usize,
    /// How long the batcher waits for more requests once a batch is open.
    pub batch_wait: Duration,
    /// Ingress queue capacity; admission sheds load beyond this.
    pub queue_cap: usize,
    /// End-to-end deadline stamped on every request at admission unless
    /// the client supplies its own
    /// ([`crate::ClientHandle::retrieve_with_deadline`]). Requests whose
    /// deadline expires in the queue are shed and **refunded** — a shed
    /// query is never billed to the client's ledger. `None` disables the
    /// default deadline.
    pub default_deadline: Option<Duration>,
    /// Threads the tensor kernels (GEMM / im2col) may use *inside* one
    /// forward pass, applied process-wide at
    /// [`crate::RetrievalService::start`] via
    /// [`duo_tensor::set_intra_op_threads`]. `0` (the default) resolves
    /// to the machine's available parallelism, capped at
    /// [`duo_tensor::MAX_AUTO_THREADS`]. Results are bit-identical at
    /// every setting — this trades latency only, never numerics — so the
    /// knob composes freely with `workers` (inter-request parallelism):
    /// batch-heavy deployments favour `workers`, latency-sensitive ones
    /// give the spare cores to `intra_op_threads`.
    pub intra_op_threads: usize,
    /// Optional blue-team stage: per-account streaming detection at
    /// admission plus optional input purification on the inference path.
    /// `None` (the default) serves undefended.
    pub defense: Option<DefenseConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            batch_max: 8,
            batch_wait: Duration::from_millis(2),
            queue_cap: 64,
            default_deadline: None,
            intra_op_threads: 0,
            defense: None,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ServeError::BadConfig`] for zero workers, batch
    /// size, or queue capacity.
    pub fn validate(&self) -> Result<(), crate::ServeError> {
        if self.workers == 0 || self.batch_max == 0 || self.queue_cap == 0 {
            return Err(crate::ServeError::BadConfig(format!(
                "workers, batch_max and queue_cap must be positive, got {self:?}"
            )));
        }
        if let Some(defense) = &self.defense {
            defense
                .stream
                .validate()
                .map_err(|e| crate::ServeError::BadConfig(format!("defense stage: {e}")))?;
        }
        Ok(())
    }
}

/// Configuration of the optional serving-side defense stage.
///
/// Two sub-stages, both off the model's hot path:
///
/// * **Streaming detection** (`stream`): a per-account
///   [`duo_defenses::StreamDetector`] observes every admission attempt
///   and drives the flag → throttle → reject escalation ladder. Rejected
///   attempts are never charged, so the budget-drift invariant
///   (`charged == served + failed`) is untouched.
/// * **Input purification** (`purify`): an input transform applied to
///   admitted queries on the inference path, *before* the batched embed.
///   Its latency is charged against the request's end-to-end deadline —
///   a request whose deadline expires during purification is shed and
///   refunded exactly like a queue-expired one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseConfig {
    /// Per-account streaming-detector configuration.
    pub stream: StreamConfig,
    /// Purification transform for admitted queries.
    pub purify: Purify,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig { stream: StreamConfig::default(), purify: Purify::None }
    }
}

/// The purification transform applied to admitted queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Purify {
    /// No purification; detection only.
    None,
    /// Bit-depth squeeze + median smoothing ([`FeatureSqueezing`]).
    Squeeze(FeatureSqueezing),
    /// J-invariant masked denoising ([`Noise2Self`]).
    Noise2Self(Noise2Self),
}

impl Purify {
    /// Applies the transform (identity for [`Purify::None`]).
    pub fn apply(&self, video: &Video) -> Video {
        match self {
            Purify::None => video.clone(),
            Purify::Squeeze(squeeze) => squeeze.transform(video),
            Purify::Noise2Self(denoise) => denoise.transform(video),
        }
    }

    /// Whether the transform is a no-op.
    pub fn is_none(&self) -> bool {
        matches!(self, Purify::None)
    }
}

/// Token-bucket rate limit for one client.
///
/// `burst` queries are available immediately; afterwards tokens refill at
/// `refill_per_sec`. A refill rate of `0.0` makes the limit a one-time
/// allowance of `burst` queries — useful for deterministic tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity (maximum burst size).
    pub burst: u32,
    /// Sustained refill rate in tokens per second.
    pub refill_per_sec: f32,
}

impl RateLimit {
    /// A limit allowing `burst` queries immediately and `refill_per_sec`
    /// sustained.
    pub fn new(burst: u32, refill_per_sec: f32) -> Self {
        RateLimit { burst, refill_per_sec }
    }
}
