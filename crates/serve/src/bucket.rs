//! Token bucket used for per-client rate limiting.

use crate::RateLimit;
use std::time::Instant;

/// A classic token bucket: `capacity` tokens maximum, refilled
/// continuously at `refill_per_sec`.
///
/// Admission is split into [`TokenBucket::ready`] (refill + check) and
/// [`TokenBucket::take`] (commit) so callers can check the limit, attempt
/// a fallible enqueue, and only consume the token when the enqueue
/// succeeded — a rejected request must cost the client nothing.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f32,
    tokens: f32,
    refill_per_sec: f32,
    last: Instant,
}

impl TokenBucket {
    /// Creates a full bucket from a rate limit.
    pub fn new(limit: RateLimit) -> Self {
        let capacity = limit.burst as f32;
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_sec: limit.refill_per_sec.max(0.0),
            last: Instant::now(),
        }
    }

    fn refill(&mut self) {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f32();
        self.last = now;
        self.tokens = (self.tokens + dt * self.refill_per_sec).min(self.capacity);
    }

    /// Refills and checks whether one token is available.
    ///
    /// # Errors
    ///
    /// Returns the suggested wait in milliseconds before a token will be
    /// available (`u64::MAX` when the bucket never refills).
    pub fn ready(&mut self) -> Result<(), u64> {
        self.refill();
        if self.tokens >= 1.0 {
            return Ok(());
        }
        if self.refill_per_sec <= 0.0 {
            return Err(u64::MAX);
        }
        let deficit = 1.0 - self.tokens;
        Err((deficit / self.refill_per_sec * 1000.0).ceil() as u64)
    }

    /// Consumes one token. Call only after [`TokenBucket::ready`]
    /// succeeded.
    pub fn take(&mut self) {
        self.tokens = (self.tokens - 1.0).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_exhaustion_without_refill() {
        let mut bucket = TokenBucket::new(RateLimit::new(3, 0.0));
        for _ in 0..3 {
            bucket.ready().unwrap();
            bucket.take();
        }
        assert_eq!(bucket.ready(), Err(u64::MAX), "zero refill never recovers");
    }

    #[test]
    fn refill_recovers_tokens() {
        // A very fast refill recovers within a bounded wait.
        let mut bucket = TokenBucket::new(RateLimit::new(1, 1000.0));
        bucket.ready().unwrap();
        bucket.take();
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        loop {
            match bucket.ready() {
                Ok(()) => break,
                Err(ms) => {
                    assert!(ms <= 2, "1000/s refill needs at most ~1ms, hinted {ms}");
                    assert!(Instant::now() < deadline, "token never refilled");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }

    #[test]
    fn tokens_cap_at_capacity() {
        let mut bucket = TokenBucket::new(RateLimit::new(2, 1_000_000.0));
        std::thread::sleep(std::time::Duration::from_millis(2));
        // Despite the huge refill rate, only `burst` tokens are available.
        bucket.ready().unwrap();
        bucket.take();
        bucket.ready().unwrap();
        bucket.take();
        bucket.take();
        assert!(bucket.tokens <= 2.0);
    }
}
