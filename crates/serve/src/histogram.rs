//! In-tree latency histogram with logarithmic buckets.
//!
//! The workspace is dependency-free, so quantile estimation is done with
//! a fixed array of power-of-two buckets over microseconds: bucket `i`
//! holds samples in `[2^(i-1), 2^i)` µs. Quantiles are reported as the
//! upper bound of the bucket containing the requested rank — coarse
//! (within 2×), allocation-free, and O(1) to record.

/// Power-of-two-bucketed histogram of microsecond samples.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Number of buckets: covers up to 2^39 µs ≈ 6.4 days.
    const BUCKETS: usize = 40;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { buckets: [0; Self::BUCKETS], count: 0, max_us: 0 }
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(Self::BUCKETS - 1)
        }
    }

    /// Records one sample in microseconds.
    pub fn record(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`). Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == Self::BUCKETS - 1 {
                    // Overflow bucket: its true upper bound is the max.
                    return self.max_us;
                }
                let upper = if i == 0 { 0 } else { 1u64 << i };
                // Never report beyond the true maximum.
                return upper.min(self.max_us);
            }
        }
        self.max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn quantiles_bracket_samples_within_a_bucket() {
        let mut h = LatencyHistogram::new();
        for us in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200] {
            h.record(us);
        }
        let p50 = h.quantile_us(0.5);
        // The 5th sample is 1600 µs; its bucket upper bound is 2048.
        assert!((1600..=2048).contains(&p50), "p50 {p50}");
        let p100 = h.quantile_us(1.0);
        assert_eq!(p100, 51200, "max quantile is clamped to the true max");
    }

    #[test]
    fn zero_and_huge_samples_stay_in_range() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(0.01), 0);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
    }

    #[test]
    fn monotone_in_q() {
        let mut h = LatencyHistogram::new();
        for us in 1..2000u64 {
            h.record(us);
        }
        let mut prev = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile_us(q);
            assert!(v >= prev, "quantiles must be monotone: q={q} gave {v} < {prev}");
            prev = v;
        }
    }
}
