//! The serving core: admission control, micro-batcher, and worker pool.
//!
//! ```text
//! client ──► rate limiter ──► ingress queue ──► batcher ──► worker pool ──► nodes
//!            + budget          (bounded)         (coalesce    (retrieve_by_feature
//!            (QueryLedger)                        + batched     per request)
//!                                                 embed)
//! ```
//!
//! One [`duo_retrieval::RetrievalSystem`] is shared read-only across the
//! batcher and every worker — the whole inference path takes `&self`, so
//! no global lock is needed. All mutability lives in the per-client
//! accounts (budget ledger + token bucket) and the stats counters, each
//! behind its own mutex that is never held across model work.

use crate::{ClientStats, ServeConfig, ServeError, StatsInner, TokenBucket};
use duo_defenses::{ClipSketch, DetectorAction, StreamDetector, StreamVerdict};
use duo_retrieval::{QueryLedger, RetrievalSystem};
use duo_tensor::Tensor;
use duo_video::{Video, VideoId};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-client accounting: the paper's query-budget threat model mapped
/// onto serving-side admission.
#[derive(Debug)]
pub(crate) struct ClientAccount {
    ledger: QueryLedger,
    bucket: Option<TokenBucket>,
    /// Streaming blue-team detector, present when the service was started
    /// with [`crate::DefenseConfig`]. Observes under the clients lock at
    /// admission, so the verdict sequence is a pure function of this
    /// account's own submission order — worker count and cross-client
    /// interleaving never change it.
    detector: Option<StreamDetector>,
    /// Per-client counters, maintained under the clients lock. `charged`
    /// is filled in from the ledger at snapshot time so the two can never
    /// disagree.
    stats: ClientStats,
}

impl ClientAccount {
    fn snapshot(&self) -> ClientStats {
        ClientStats { charged: self.ledger.used(), ..self.stats }
    }
}

pub(crate) struct Shared {
    system: RetrievalSystem,
    stats: Mutex<StatsInner>,
    clients: Mutex<Vec<ClientAccount>>,
    queue_depth: AtomicUsize,
    stopped: AtomicBool,
}

struct Request {
    video: Video,
    enqueued: Instant,
    /// End-to-end deadline; requests that expire in the queue are shed
    /// and their admission-time charge refunded.
    deadline: Option<Instant>,
    /// The client slot charged at admission (for refunds on shed).
    slot: usize,
    reply: SyncSender<Result<Vec<VideoId>, ServeError>>,
}

enum Msg {
    Request(Request),
    Shutdown,
}

struct Work {
    request: Request,
    feature: Tensor,
}

/// A concurrent, micro-batched retrieval service over one shared
/// [`RetrievalSystem`].
///
/// Start with [`RetrievalService::start`], hand out [`ClientHandle`]s via
/// [`RetrievalService::client`], and stop with
/// [`RetrievalService::shutdown`] (which returns the final
/// [`crate::ServiceStats`]).
pub struct RetrievalService {
    shared: Arc<Shared>,
    ingress: SyncSender<Msg>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    config: ServeConfig,
}

impl std::fmt::Debug for RetrievalService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetrievalService")
            .field("config", &self.config)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl RetrievalService {
    /// Starts the service: spawns the batcher and `config.workers`
    /// retrieval workers over the given system.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero workers, batch size, or
    /// queue capacity.
    pub fn start(system: RetrievalSystem, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        // Process-wide by design: the tensor kernels have one intra-op
        // pool, and the service is the deployment-level owner of the
        // threading budget. Bit-identical at any setting.
        duo_tensor::set_intra_op_threads(config.intra_op_threads);
        let nodes = system.nodes().len();
        let shared = Arc::new(Shared {
            system,
            stats: Mutex::new(StatsInner::new(config.batch_max, nodes)),
            clients: Mutex::new(Vec::new()),
            queue_depth: AtomicUsize::new(0),
            stopped: AtomicBool::new(false),
        });
        let (ingress, ingress_rx) = mpsc::sync_channel::<Msg>(config.queue_cap);
        let (work_tx, work_rx) = mpsc::sync_channel::<Work>(config.queue_cap);
        let work_rx = Arc::new(Mutex::new(work_rx));

        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared, &ingress_rx, work_tx, config))
        };
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let work_rx = Arc::clone(&work_rx);
                std::thread::spawn(move || worker_loop(&shared, &work_rx))
            })
            .collect();
        Ok(RetrievalService { shared, ingress, batcher: Some(batcher), workers, config })
    }

    /// The service configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Registers a client with an optional hard query budget and optional
    /// rate limit, returning its handle.
    pub fn client(
        &self,
        budget: Option<u64>,
        rate: Option<crate::RateLimit>,
    ) -> ClientHandle {
        let mut clients = self.shared.clients.lock().expect("clients lock");
        let slot = clients.len();
        clients.push(ClientAccount {
            ledger: QueryLedger::new(budget),
            bucket: rate.map(TokenBucket::new),
            detector: self.config.defense.map(|d| StreamDetector::new(d.stream)),
            stats: ClientStats::default(),
        });
        ClientHandle {
            shared: Arc::downgrade(&self.shared),
            ingress: self.ingress.clone(),
            slot,
            queue_cap: self.config.queue_cap,
            default_deadline: self.config.default_deadline,
            defended: self.config.defense.is_some(),
        }
    }

    /// Per-client counter snapshots, in client registration (slot) order.
    ///
    /// Each row satisfies `charged == served + failed` once the client's
    /// in-flight requests have drained, because admission charges and
    /// deadline sheds refund — this is the budget-drift invariant the
    /// campaign experiment asserts fleet-wide.
    pub fn client_stats(&self) -> Vec<ClientStats> {
        let clients = self.shared.clients.lock().expect("clients lock");
        clients.iter().map(ClientAccount::snapshot).collect()
    }

    /// A live snapshot of the service counters.
    pub fn stats(&self) -> crate::ServiceStats {
        let queue_depth = self.shared.queue_depth.load(Ordering::SeqCst);
        let index = self.shared.system.index_breakdown();
        let epoch = self.shared.system.current_epoch();
        let mutation = self.shared.system.mutation_stats();
        self.shared.stats.lock().expect("stats lock").snapshot(queue_depth, index, epoch, mutation)
    }

    /// Hands out the mutation control plane for the served gallery.
    ///
    /// Like [`ClientHandle`], the returned handle holds only a weak
    /// reference, so it never keeps a shut-down service alive.
    pub fn mutator(&self) -> MutatorHandle {
        MutatorHandle { shared: Arc::downgrade(&self.shared) }
    }

    /// Read access to the served system (evaluation only; clients go
    /// through [`ClientHandle::retrieve`]).
    pub fn system(&self) -> &RetrievalSystem {
        &self.shared.system
    }

    /// Drains in-flight requests, stops every thread, and returns the
    /// final statistics.
    pub fn shutdown(self) -> crate::ServiceStats {
        self.shutdown_into().1
    }

    /// Like [`RetrievalService::shutdown`], additionally returning the
    /// wrapped [`RetrievalSystem`] — `None` if a [`ClientHandle`] upgrade
    /// is concurrently holding the shared state alive.
    pub fn shutdown_into(mut self) -> (Option<RetrievalSystem>, crate::ServiceStats) {
        self.shared.stopped.store(true, Ordering::SeqCst);
        // In-flight requests are ahead of the shutdown message in the
        // FIFO ingress queue, so the batcher serves them before exiting.
        let _ = self.ingress.send(Msg::Shutdown);
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let queue_depth = self.shared.queue_depth.load(Ordering::SeqCst);
        let index = self.shared.system.index_breakdown();
        let epoch = self.shared.system.current_epoch();
        let mutation = self.shared.system.mutation_stats();
        let stats =
            self.shared.stats.lock().expect("stats lock").snapshot(queue_depth, index, epoch, mutation);
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => (Some(shared.system), stats),
            Err(_) => (None, stats),
        }
    }
}

fn batcher_loop(
    shared: &Shared,
    ingress: &Receiver<Msg>,
    work_tx: SyncSender<Work>,
    config: ServeConfig,
) {
    loop {
        let first = match ingress.recv() {
            Ok(Msg::Request(r)) => r,
            Ok(Msg::Shutdown) | Err(_) => break,
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + config.batch_wait;
        let mut shutdown = false;
        while batch.len() < config.batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match ingress.recv_timeout(deadline - now) {
                Ok(Msg::Request(r)) => batch.push(r),
                Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                    shutdown = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => break,
            }
        }
        flush_batch(shared, batch, &work_tx, &config);
        if shutdown {
            break;
        }
    }
    // Dropping `work_tx` disconnects the work queue; workers drain what
    // is left and exit.
}

/// Sheds a request whose end-to-end deadline has expired: refunds the
/// admission-time charge (shed queries are never billed), counts the
/// miss, and replies [`ServeError::DeadlineExceeded`].
fn shed(shared: &Shared, request: Request) {
    {
        let mut clients = shared.clients.lock().expect("clients lock");
        let account = &mut clients[request.slot];
        account.ledger.refund();
        account.stats.deadline_misses += 1;
        account.stats.refunded += 1;
    }
    {
        let mut stats = shared.stats.lock().expect("stats lock");
        stats.deadline_misses += 1;
        stats.refunded += 1;
    }
    let _ = request.reply.send(Err(ServeError::DeadlineExceeded));
}

fn expired(request: &Request, now: Instant) -> bool {
    request.deadline.is_some_and(|d| now >= d)
}

fn flush_batch(shared: &Shared, batch: Vec<Request>, work_tx: &SyncSender<Work>, config: &ServeConfig) {
    shared.queue_depth.fetch_sub(batch.len(), Ordering::SeqCst);
    // Deadline check at dequeue: expired requests never reach the model.
    let now = Instant::now();
    let (mut batch, dead): (Vec<Request>, Vec<Request>) =
        batch.into_iter().partition(|r| !expired(r, now));
    for request in dead {
        shed(shared, request);
    }
    if batch.is_empty() {
        return;
    }
    // Input purification on the inference path, before the batched embed.
    // Its latency is charged against each request's end-to-end deadline:
    // the re-partition below sheds (and refunds) any request whose
    // deadline expired while its batch was being purified, exactly like a
    // queue-expired one.
    if let Some(defense) = &config.defense {
        if !defense.purify.is_none() {
            for request in &mut batch {
                request.video = defense.purify.apply(&request.video);
            }
            shared.stats.lock().expect("stats lock").purified += batch.len() as u64;
            let now = Instant::now();
            let (kept, dead): (Vec<Request>, Vec<Request>) =
                batch.into_iter().partition(|r| !expired(r, now));
            for request in dead {
                shed(shared, request);
            }
            batch = kept;
            if batch.is_empty() {
                return;
            }
        }
    }
    {
        let mut stats = shared.stats.lock().expect("stats lock");
        stats.batches += 1;
        stats.batch_hist[batch.len().min(config.batch_max)] += 1;
    }
    // One batched backbone forward for the whole batch. Per-item work is
    // bit-identical to a lone embed, so batching never changes results.
    // Fan out across at most the machine's real parallelism — extra
    // scoped threads on a saturated core are pure overhead.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let embed_workers = config.workers.min(batch.len()).min(cores);
    let videos: Vec<&Video> = batch.iter().map(|r| &r.video).collect();
    match shared.system.embed_batch(&videos, embed_workers) {
        Ok(features) => {
            for (request, feature) in batch.into_iter().zip(features) {
                if work_tx.send(Work { request, feature }).is_err() {
                    return; // workers gone; replies drop and clients see Stopped
                }
            }
        }
        Err(_) => {
            // Attribute failures per item: retry each embed individually
            // so one malformed video cannot fail its whole batch.
            for request in batch {
                match shared.system.embed(&request.video) {
                    Ok(feature) => {
                        if work_tx.send(Work { request, feature }).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        shared.clients.lock().expect("clients lock")[request.slot]
                            .stats
                            .failed += 1;
                        shared.stats.lock().expect("stats lock").failed += 1;
                        let _ = request.reply.send(Err(ServeError::Retrieval(e)));
                    }
                }
            }
        }
    }
}

fn worker_loop(shared: &Shared, work_rx: &Mutex<Receiver<Work>>) {
    loop {
        // Hold the receiver lock only for the blocking take, never while
        // doing model work.
        let work = match work_rx.lock().expect("work lock").recv() {
            Ok(work) => work,
            Err(_) => break,
        };
        // Last deadline check before node fan-out: embedding happened,
        // but the fan-out (the expensive, fault-exposed stage) has not.
        if expired(&work.request, Instant::now()) {
            shed(shared, work.request);
            continue;
        }
        let outcome = shared.system.retrieve_resilient(&work.feature);
        let latency_us = work.request.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let result = {
            let mut stats = shared.stats.lock().expect("stats lock");
            match outcome {
                Ok(retrieved) => {
                    stats.served += 1;
                    stats.latency.record(latency_us);
                    stats.max_epoch_served = stats.max_epoch_served.max(retrieved.epoch);
                    stats.absorb(&retrieved.telemetry);
                    if !retrieved.coverage.is_full() {
                        stats.degraded += 1;
                    }
                    Ok(retrieved.ids)
                }
                Err(e) => {
                    stats.failed += 1;
                    Err(ServeError::Retrieval(e))
                }
            }
        };
        {
            let mut clients = shared.clients.lock().expect("clients lock");
            let stats = &mut clients[work.request.slot].stats;
            if result.is_ok() {
                stats.served += 1;
            } else {
                stats.failed += 1;
            }
        }
        let _ = work.request.reply.send(result);
    }
}

/// A client of the service: every retrieve is admission-controlled
/// against this client's budget and rate limit.
///
/// Handles hold only a weak reference to the service, so outstanding
/// handles never keep a shut-down service (or its model) alive.
#[derive(Debug, Clone)]
pub struct ClientHandle {
    shared: Weak<Shared>,
    ingress: SyncSender<Msg>,
    slot: usize,
    queue_cap: usize,
    default_deadline: Option<std::time::Duration>,
    /// Whether the service runs a defense stage (so the clip sketch is
    /// computed outside the locks only when someone will consume it).
    defended: bool,
}

impl ClientHandle {
    /// Submits a query video and blocks until its `R^m(v)` arrives.
    ///
    /// The submitted video is 8-bit quantized server-side, exactly like
    /// [`duo_retrieval::BlackBox`] does — the service *is* the black-box
    /// surface when attacks run through it.
    ///
    /// # Errors
    ///
    /// [`ServeError::BudgetExhausted`] / [`ServeError::RateLimited`] /
    /// [`ServeError::Overloaded`] / [`ServeError::Throttled`] /
    /// [`ServeError::Quarantined`] when admission rejects the query
    /// (never charged), [`ServeError::Stopped`] when the service is gone,
    /// and [`ServeError::Retrieval`] for model/node failures (charged:
    /// the query reached the model).
    pub fn retrieve(&self, video: &Video) -> Result<Vec<VideoId>, ServeError> {
        self.retrieve_inner(video, self.default_deadline)
    }

    /// Like [`ClientHandle::retrieve`], with an explicit end-to-end
    /// deadline overriding the service default. If the deadline expires
    /// while the request is still queued, it is shed, the admission-time
    /// charge is refunded, and [`ServeError::DeadlineExceeded`] is
    /// returned — a shed query is never billed.
    ///
    /// # Errors
    ///
    /// As for [`ClientHandle::retrieve`], plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn retrieve_with_deadline(
        &self,
        video: &Video,
        deadline: std::time::Duration,
    ) -> Result<Vec<VideoId>, ServeError> {
        self.retrieve_inner(video, Some(deadline))
    }

    fn retrieve_inner(
        &self,
        video: &Video,
        deadline: Option<std::time::Duration>,
    ) -> Result<Vec<VideoId>, ServeError> {
        let shared = self.shared.upgrade().ok_or(ServeError::Stopped)?;
        if shared.stopped.load(Ordering::SeqCst) {
            return Err(ServeError::Stopped);
        }
        let mut submitted = video.clone();
        submitted.quantize();
        // Sketch the quantized clip outside every lock: the detector sees
        // exactly what the model would, and the O(pixels) pooling pass
        // never serializes other clients.
        let sketch = self.defended.then(|| ClipSketch::of(&submitted));
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        {
            // The admission decision (budget check → rate check → enqueue
            // → charge) is atomic under the clients lock; `try_send` never
            // blocks, so the lock is held only briefly.
            let mut clients = shared.clients.lock().expect("clients lock");
            let account = &mut clients[self.slot];
            if account.ledger.is_exhausted() {
                let budget = account.ledger.budget().expect("exhausted implies budget");
                account.stats.rejected_budget += 1;
                drop(clients);
                shared.stats.lock().expect("stats lock").rejected_budget += 1;
                return Err(ServeError::BudgetExhausted { budget });
            }
            if let Some(bucket) = &mut account.bucket {
                if let Err(retry_after_ms) = bucket.ready() {
                    account.stats.rejected_rate += 1;
                    drop(clients);
                    shared.stats.lock().expect("stats lock").rejected_rate += 1;
                    return Err(ServeError::RateLimited { retry_after_ms });
                }
            }
            // Streaming detection, after the budget/rate gates so only
            // bankable attempts feed the ring, before the charge so a
            // throttled or quarantined attempt is never billed. The
            // observe happens under the clients lock: the per-account
            // verdict sequence depends only on this client's own
            // submission order.
            if let Some(detector) = account.detector.as_mut() {
                let sketch = sketch.as_ref().expect("sketch computed when defended");
                let verdict = detector.observe(sketch);
                account.stats.defense_observed += 1;
                if verdict.flagged {
                    account.stats.defense_flagged += 1;
                }
                {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.defense_observed += 1;
                    if verdict.flagged {
                        stats.defense_flagged += 1;
                    }
                }
                match verdict.action {
                    DetectorAction::Admit => {}
                    DetectorAction::Throttle => {
                        account.stats.defense_throttled += 1;
                        drop(clients);
                        shared.stats.lock().expect("stats lock").defense_throttled += 1;
                        return Err(ServeError::Throttled { flags: verdict.flags_total });
                    }
                    DetectorAction::Reject => {
                        account.stats.defense_rejected += 1;
                        drop(clients);
                        shared.stats.lock().expect("stats lock").defense_rejected += 1;
                        return Err(ServeError::Quarantined { flags: verdict.flags_total });
                    }
                }
            }
            let now = Instant::now();
            let msg = Msg::Request(Request {
                video: submitted,
                enqueued: now,
                deadline: deadline.map(|d| now + d),
                slot: self.slot,
                reply: reply_tx,
            });
            // Count the request before the enqueue (rolling back on
            // failure): the batcher may dequeue-and-decrement the instant
            // `try_send` returns, so incrementing afterwards would race
            // the counter below zero.
            let depth = shared.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
            match self.ingress.try_send(msg) {
                Ok(()) => {
                    account.ledger.charge().expect("budget checked above");
                    if let Some(bucket) = &mut account.bucket {
                        bucket.take();
                    }
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.max_queue_depth = stats.max_queue_depth.max(depth);
                }
                Err(TrySendError::Full(_)) => {
                    shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    account.stats.rejected_overload += 1;
                    drop(clients);
                    shared.stats.lock().expect("stats lock").rejected_overload += 1;
                    return Err(ServeError::Overloaded { queue_cap: self.queue_cap });
                }
                Err(TrySendError::Disconnected(_)) => {
                    shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    return Err(ServeError::Stopped);
                }
            }
        }
        reply_rx.recv().map_err(|_| ServeError::Stopped)?
    }

    /// Number of queries this client has been charged for.
    pub fn queries_used(&self) -> u64 {
        self.shared
            .upgrade()
            .map(|s| s.clients.lock().expect("clients lock")[self.slot].ledger.used())
            .unwrap_or(0)
    }

    /// The client's remaining budget, if one is set.
    pub fn budget_remaining(&self) -> Option<u64> {
        self.shared
            .upgrade()
            .and_then(|s| s.clients.lock().expect("clients lock")[self.slot].ledger.remaining())
    }

    /// This client's counter snapshot, or `None` after shutdown.
    pub fn stats(&self) -> Option<ClientStats> {
        self.shared
            .upgrade()
            .map(|s| s.clients.lock().expect("clients lock")[self.slot].snapshot())
    }

    /// This client's recorded streaming-defense verdicts, in submission
    /// order. `None` when the service is undefended, shut down, or the
    /// detector was configured without
    /// [`duo_defenses::StreamConfig::record_verdicts`].
    pub fn defense_verdicts(&self) -> Option<Vec<StreamVerdict>> {
        let shared = self.shared.upgrade()?;
        let clients = shared.clients.lock().expect("clients lock");
        let detector = clients[self.slot].detector.as_ref()?;
        detector.config().record_verdicts.then(|| detector.verdicts().to_vec())
    }

    /// Accumulated streaming-defense flags on this client's account, or
    /// `None` when the service is undefended or shut down.
    pub fn defense_flags(&self) -> Option<u64> {
        let shared = self.shared.upgrade()?;
        let clients = shared.clients.lock().expect("clients lock");
        clients[self.slot].detector.as_ref().map(StreamDetector::flags)
    }

    /// Length `m` of retrieval lists served by this service, or `None`
    /// after shutdown.
    pub fn list_len(&self) -> Option<usize> {
        self.shared.upgrade().map(|s| s.system.config().m)
    }
}

/// The gallery mutation control plane of a running service.
///
/// Mutations bypass the query path entirely: they do not queue, batch,
/// or charge any budget — they call straight into the served
/// [`duo_retrieval::RetrievalSystem`]'s epoch-transaction writer, which
/// serializes writers on its own mutation lock. Queries in flight keep
/// scoring the epoch they captured at admission; queries admitted after
/// [`MutatorHandle::apply`] returns see the whole batch.
///
/// Obtained from [`RetrievalService::mutator`]. Holds a weak reference,
/// so an outstanding handle never keeps a shut-down service alive.
#[derive(Debug, Clone)]
pub struct MutatorHandle {
    pub(crate) shared: Weak<Shared>,
}

impl MutatorHandle {
    fn upgrade(&self) -> Result<Arc<Shared>, ServeError> {
        let shared = self.shared.upgrade().ok_or(ServeError::Stopped)?;
        if shared.stopped.load(Ordering::SeqCst) {
            return Err(ServeError::Stopped);
        }
        Ok(shared)
    }

    /// Applies one mutation batch as a single epoch transaction.
    ///
    /// # Errors
    ///
    /// [`ServeError::Stopped`] when the service is shut down,
    /// [`ServeError::Retrieval`] for a rejected batch (e.g. a feature
    /// whose dimension does not match the gallery) — the gallery is
    /// untouched in that case.
    pub fn apply(
        &self,
        batch: &duo_retrieval::MutationBatch,
    ) -> Result<duo_retrieval::EpochTransition, ServeError> {
        self.upgrade()?.system.apply(batch).map_err(ServeError::Retrieval)
    }

    /// Upserts one gallery entry (see
    /// [`duo_retrieval::RetrievalSystem::insert`]).
    ///
    /// # Errors
    ///
    /// As for [`MutatorHandle::apply`].
    pub fn insert(
        &self,
        id: VideoId,
        feature: Tensor,
    ) -> Result<duo_retrieval::EpochTransition, ServeError> {
        self.upgrade()?.system.insert(id, feature).map_err(ServeError::Retrieval)
    }

    /// Deletes one gallery entry; deleting an absent id is a counted
    /// no-op.
    ///
    /// # Errors
    ///
    /// As for [`MutatorHandle::apply`].
    pub fn delete(&self, id: VideoId) -> Result<duo_retrieval::EpochTransition, ServeError> {
        self.upgrade()?.system.delete(id).map_err(ServeError::Retrieval)
    }

    /// Rebalances the gallery across shards as one epoch transaction
    /// (see [`duo_retrieval::RetrievalSystem::rebalance`]).
    ///
    /// # Errors
    ///
    /// As for [`MutatorHandle::apply`].
    pub fn rebalance(&self) -> Result<duo_retrieval::EpochTransition, ServeError> {
        self.upgrade()?.system.rebalance().map_err(ServeError::Retrieval)
    }

    /// The served gallery's current epoch, or `None` after shutdown.
    pub fn current_epoch(&self) -> Option<u64> {
        self.shared.upgrade().map(|s| s.system.current_epoch())
    }
}
