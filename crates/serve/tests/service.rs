//! End-to-end tests of the serving layer: concurrency, bit-identical
//! batching, admission control, and node fault tolerance.

use duo_models::{Architecture, Backbone, BackboneConfig};
use duo_retrieval::{QueryOracle, RetrievalConfig, RetrievalError, RetrievalSystem};
use duo_serve::{RateLimit, RetrievalService, ServeConfig, ServeError, ServiceOracle};
use duo_tensor::Rng64;
use duo_video::{ClipSpec, DatasetKind, SyntheticDataset, Video, VideoId};
use std::time::Duration;

fn make_system(seed: u64, threaded: bool) -> (RetrievalSystem, SyntheticDataset) {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), seed, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
    let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let config = RetrievalConfig { m: 5, nodes: 3, threaded, ..Default::default() };
    (RetrievalSystem::build(backbone, &ds, &gallery, config).unwrap(), ds)
}

fn queries(ds: &SyntheticDataset, n: usize) -> Vec<Video> {
    ds.test().iter().take(n).map(|&id| ds.video(id)).collect()
}

/// Reference answers computed directly against the system, through the
/// same 8-bit quantization the service applies at admission.
fn direct_answers(system: &RetrievalSystem, videos: &[Video]) -> Vec<Vec<VideoId>> {
    videos
        .iter()
        .map(|v| {
            let mut q = v.clone();
            q.quantize();
            system.retrieve(&q).unwrap()
        })
        .collect()
}

#[test]
fn four_concurrent_clients_share_one_system() {
    let (system, ds) = make_system(501, false);
    let videos = queries(&ds, 6);
    let expected = direct_answers(&system, &videos);

    let config = ServeConfig { workers: 4, batch_max: 8, ..ServeConfig::default() };
    let service = RetrievalService::start(system, config).unwrap();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let client = service.client(None, None);
                let videos = &videos;
                let expected = &expected;
                scope.spawn(move || {
                    for (video, want) in videos.iter().zip(expected) {
                        let got = client.retrieve(video).unwrap();
                        assert_eq!(&got, want, "served list diverged from direct retrieval");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    let stats = service.shutdown();
    assert_eq!(stats.served, 4 * videos.len() as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queue_depth, 0, "all requests drained");
    assert!(stats.batches >= 1);
    assert!(stats.latency_p95_us >= stats.latency_p50_us);
}

#[test]
fn batched_and_unbatched_serving_are_bit_identical() {
    let videos;
    let batched_lists;
    {
        let (system, ds) = make_system(502, false);
        videos = queries(&ds, 5);
        // Long batch_wait + one worker forces real coalescing.
        let config = ServeConfig {
            workers: 2,
            batch_max: 8,
            batch_wait: Duration::from_millis(20),
            ..ServeConfig::default()
        };
        let service = RetrievalService::start(system, config).unwrap();
        batched_lists = std::thread::scope(|scope| {
            let handles: Vec<_> = videos
                .iter()
                .map(|v| {
                    let client = service.client(None, None);
                    scope.spawn(move || client.retrieve(v).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        let stats = service.shutdown();
        assert!(
            stats.max_batch >= 2,
            "expected at least one coalesced batch, histogram {:?}",
            stats.batch_hist
        );
    }

    // Same seed, batching disabled: every request is its own batch.
    let (system, _ds) = make_system(502, false);
    let config = ServeConfig { workers: 1, batch_max: 1, ..ServeConfig::default() };
    let service = RetrievalService::start(system, config).unwrap();
    let client = service.client(None, None);
    for (video, batched) in videos.iter().zip(&batched_lists) {
        let lone = client.retrieve(video).unwrap();
        assert_eq!(&lone, batched, "micro-batching changed a retrieval list");
    }
    let stats = service.shutdown();
    assert_eq!(stats.max_batch, 1);
}

#[test]
fn budget_is_enforced_server_side_and_rejections_are_free() {
    let (system, ds) = make_system(503, false);
    let video = ds.video(ds.test()[0]);
    let service = RetrievalService::start(system, ServeConfig::default()).unwrap();
    let client = service.client(Some(3), None);

    for _ in 0..3 {
        client.retrieve(&video).unwrap();
    }
    assert_eq!(client.queries_used(), 3);
    assert_eq!(client.budget_remaining(), Some(0));
    for _ in 0..2 {
        match client.retrieve(&video) {
            Err(ServeError::BudgetExhausted { budget: 3 }) => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }
    // Rejected queries are not charged and never reach the model.
    assert_eq!(client.queries_used(), 3);

    // A second client has an independent budget.
    let other = service.client(Some(1), None);
    other.retrieve(&video).unwrap();

    let stats = service.shutdown();
    assert_eq!(stats.served, 4);
    assert_eq!(stats.rejected_budget, 2);
}

#[test]
fn rate_limit_rejects_after_burst() {
    let (system, ds) = make_system(504, false);
    let video = ds.video(ds.test()[0]);
    let service = RetrievalService::start(system, ServeConfig::default()).unwrap();
    // Zero refill: the burst is a one-time allowance, so the test is
    // deterministic regardless of timing.
    let client = service.client(None, Some(RateLimit::new(2, 0.0)));

    client.retrieve(&video).unwrap();
    client.retrieve(&video).unwrap();
    match client.retrieve(&video) {
        Err(ServeError::RateLimited { retry_after_ms: u64::MAX }) => {}
        other => panic!("expected rate limiting, got {other:?}"),
    }
    let stats = service.shutdown();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.rejected_rate, 1);
}

#[test]
fn node_failure_mid_stream_degrades_then_recovers() {
    let (system, ds) = make_system(505, false);
    let videos = queries(&ds, 3);
    let healthy = direct_answers(&system, &videos);

    let service = RetrievalService::start(system, ServeConfig::default()).unwrap();
    let client = service.client(None, None);

    for (video, want) in videos.iter().zip(&healthy) {
        assert_eq!(&client.retrieve(video).unwrap(), want);
    }

    // Take one shard offline mid-stream: queries keep being served from
    // the surviving shards, and lost gallery entries simply drop out.
    service.system().nodes()[1].set_offline();
    let degraded: Vec<_> = videos.iter().map(|v| client.retrieve(v).unwrap()).collect();
    let offline_ids: Vec<VideoId> = service.system().nodes()[1].snapshot().ids().to_vec();
    for list in &degraded {
        assert!(!list.is_empty(), "surviving shards must still answer");
        for id in list {
            assert!(!offline_ids.contains(id), "offline shard leaked {id:?} into results");
        }
    }

    // Recovery: back online, answers return to the healthy baseline.
    service.system().nodes()[1].set_online();
    for (video, want) in videos.iter().zip(&healthy) {
        assert_eq!(&client.retrieve(video).unwrap(), want, "recovery must restore results");
    }

    let stats = service.shutdown();
    assert_eq!(stats.served, 3 * videos.len() as u64);
    assert_eq!(stats.failed, 0);
}

#[test]
fn all_nodes_offline_fails_the_query_but_not_the_service() {
    let (system, ds) = make_system(506, false);
    let video = ds.video(ds.test()[0]);
    let service = RetrievalService::start(system, ServeConfig::default()).unwrap();
    let client = service.client(None, None);

    for node in service.system().nodes() {
        node.set_offline();
    }
    match client.retrieve(&video) {
        Err(ServeError::Retrieval(RetrievalError::AllNodesOffline)) => {}
        other => panic!("expected AllNodesOffline, got {other:?}"),
    }

    for node in service.system().nodes() {
        node.set_online();
    }
    client.retrieve(&video).unwrap();

    let stats = service.shutdown();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.failed, 1);
}

#[test]
fn threaded_and_unthreaded_systems_serve_identical_lists() {
    let (unthreaded, ds) = make_system(507, false);
    let (threaded, _) = make_system(507, true);
    let videos = queries(&ds, 4);

    let serve_all = |system: RetrievalSystem| -> Vec<Vec<VideoId>> {
        let service = RetrievalService::start(system, ServeConfig::default()).unwrap();
        let client = service.client(None, None);
        let lists = videos.iter().map(|v| client.retrieve(v).unwrap()).collect();
        service.shutdown();
        lists
    };
    assert_eq!(
        serve_all(unthreaded),
        serve_all(threaded),
        "node-level threading must not change served results"
    );
}

#[test]
fn service_oracle_runs_attack_style_query_loops() {
    let (system, ds) = make_system(508, false);
    let video = ds.video(ds.test()[0]);
    let m = system.config().m;
    let service = RetrievalService::start(system, ServeConfig::default()).unwrap();
    let mut oracle = ServiceOracle::new(service.client(Some(2), None));

    assert_eq!(oracle.m(), m);
    let list = oracle.retrieve(&video).unwrap();
    assert_eq!(list.len(), m.min(service.system().gallery_len()));
    oracle.retrieve(&video).unwrap();
    assert_eq!(oracle.queries_used(), 2);
    assert_eq!(oracle.budget_remaining(), Some(0));
    // Through the oracle, exhaustion surfaces as the same RetrievalError
    // attacks already match on against a local BlackBox.
    match oracle.retrieve(&video) {
        Err(RetrievalError::BudgetExhausted { budget: 2 }) => {}
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    service.shutdown();
}

#[test]
fn shutdown_returns_the_system_and_stops_clients() {
    let (system, ds) = make_system(509, false);
    let video = ds.video(ds.test()[0]);
    let service = RetrievalService::start(system, ServeConfig::default()).unwrap();
    let client = service.client(None, None);
    let before = client.retrieve(&video).unwrap();

    let (recovered, stats) = service.shutdown_into();
    assert_eq!(stats.served, 1);
    let recovered = recovered.expect("no live upgrades at shutdown");
    // The recovered system answers exactly as it did behind the service.
    let mut q = video.clone();
    q.quantize();
    assert_eq!(recovered.retrieve(&q).unwrap(), before);

    // Outstanding handles observe the shutdown instead of hanging.
    match client.retrieve(&video) {
        Err(ServeError::Stopped) => {}
        other => panic!("expected Stopped, got {other:?}"),
    }
    assert_eq!(client.queries_used(), 0, "account is gone with the service");
}

#[test]
fn overload_sheds_excess_requests() {
    let (system, ds) = make_system(510, false);
    let videos = queries(&ds, 2);
    // A tiny queue and a slow batcher window make overflow reproducible:
    // fill the queue from this thread before the batcher can drain it.
    let config = ServeConfig {
        workers: 1,
        batch_max: 1,
        batch_wait: Duration::from_millis(1),
        queue_cap: 1,
        ..ServeConfig::default()
    };
    let service = RetrievalService::start(system, config).unwrap();
    let client = service.client(None, None);

    let mut overloaded = 0;
    let mut served = 0;
    std::thread::scope(|scope| {
        let results: Vec<_> = (0..6)
            .map(|i| {
                let client = client.clone();
                let video = &videos[i % videos.len()];
                scope.spawn(move || client.retrieve(video))
            })
            .collect();
        for handle in results {
            match handle.join().unwrap() {
                Ok(_) => served += 1,
                Err(ServeError::Overloaded { queue_cap: 1 }) => overloaded += 1,
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
    });
    assert_eq!(served + overloaded, 6);
    assert!(served >= 1, "some requests must get through");

    let stats = service.shutdown();
    assert_eq!(stats.served, served);
    assert_eq!(stats.rejected_overload, overloaded);
}

#[test]
fn expired_deadlines_shed_and_refund_the_charge() {
    let (system, ds) = make_system(512, false);
    let videos = queries(&ds, 3);
    let service = RetrievalService::start(system, ServeConfig::default()).unwrap();
    let client = service.client(Some(10), None);

    // A zero deadline is already expired at admission time, so every
    // request is shed at dequeue and its charge refunded.
    for video in &videos {
        let got = client.retrieve_with_deadline(video, Duration::ZERO);
        assert!(matches!(got, Err(ServeError::DeadlineExceeded)), "expected shed, got {got:?}");
    }
    assert_eq!(client.queries_used(), 0, "shed requests must be refunded");
    assert_eq!(client.budget_remaining(), Some(10));

    // A generous deadline serves normally and is charged.
    let list = client.retrieve_with_deadline(&videos[0], Duration::from_secs(30)).unwrap();
    assert_eq!(list.len(), 5);
    assert_eq!(client.queries_used(), 1);

    // Drift guard: every shed refunded exactly once, and the net charge
    // equals served + failed.
    let mine = client.stats().unwrap();
    assert_eq!(mine.refunded, mine.deadline_misses);
    assert_eq!(mine.charged, mine.served + mine.failed);

    let stats = service.shutdown();
    assert_eq!(stats.deadline_misses, 3);
    assert_eq!(stats.refunded, 3);
    assert_eq!(stats.served, 1);
    assert_eq!(stats.failed, 0);
}

#[test]
fn mutations_swap_epochs_under_live_queries() {
    let (system, ds) = make_system(514, false);
    let video = ds.video(ds.test()[0]);
    let service = RetrievalService::start(system, ServeConfig::default()).unwrap();
    let client = service.client(Some(20), None);
    let mutator = service.mutator();

    let before = client.retrieve(&video).unwrap();
    assert_eq!(mutator.current_epoch(), Some(0));

    // Plant a gallery entry exactly on the query's embedding: after the
    // epoch swap it must rank first, without restarting the service.
    let mut q = video.clone();
    q.quantize();
    let feature = service.system().embed(&q).unwrap();
    let planted = VideoId { class: 77, instance: 0 };
    let t = mutator.insert(planted, feature).unwrap();
    assert_eq!(t.epoch, 1);
    let after = client.retrieve(&video).unwrap();
    assert_eq!(after[0], planted, "planted duplicate embedding must rank first");
    assert_ne!(before[0], planted);

    // Deleting it restores the original ranking.
    mutator.delete(planted).unwrap();
    assert_eq!(client.retrieve(&video).unwrap(), before);

    let stats = service.stats();
    assert_eq!(stats.current_epoch, 2);
    assert_eq!(stats.max_epoch_served, 2);
    assert_eq!(stats.epochs_published, 2);
    assert_eq!(stats.mutations_applied, 2);

    // Drift guard across the swaps: charges stayed consistent.
    let mine = client.stats().unwrap();
    assert_eq!(mine.charged, mine.served + mine.failed);
    assert_eq!(mine.refunded, mine.deadline_misses);

    let (recovered, final_stats) = service.shutdown_into();
    assert_eq!(final_stats.served, 3);
    assert!(recovered.is_some());

    // Outstanding mutator handles observe the shutdown.
    match mutator.insert(planted, duo_tensor::Tensor::from_vec(vec![0.0], &[1]).unwrap()) {
        Err(ServeError::Stopped) => {}
        other => panic!("expected Stopped, got {other:?}"),
    }
}

#[test]
fn default_deadline_applies_to_plain_retrieve() {
    let (system, ds) = make_system(513, false);
    let videos = queries(&ds, 2);
    let config = ServeConfig { default_deadline: Some(Duration::ZERO), ..ServeConfig::default() };
    let service = RetrievalService::start(system, config).unwrap();
    let client = service.client(Some(5), None);
    for video in &videos {
        assert!(matches!(client.retrieve(video), Err(ServeError::DeadlineExceeded)));
    }
    assert_eq!(client.queries_used(), 0);

    // An explicit per-request deadline overrides the service default.
    let list = client.retrieve_with_deadline(&videos[0], Duration::from_secs(30)).unwrap();
    assert_eq!(list.len(), 5);

    let stats = service.shutdown();
    assert_eq!(stats.deadline_misses, 2);
    assert_eq!(stats.served, 1);
}
