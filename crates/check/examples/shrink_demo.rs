//! Deliberately failing property: demonstrates counterexample shrinking.

use duo_check::{run_property, Config, Failed};

fn main() {
    run_property(
        "all_values_below_ten",
        &Config::default(),
        &(0u32..100),
        |&v| if v < 10 { Ok(()) } else { Err(Failed::new(format!("{v} is not < 10"))) },
    );
}
