//! Value generation strategies and their shrinkers.
//!
//! A [`Strategy`] knows how to *generate* a random value from a seeded RNG
//! and how to propose *shrink candidates* — simpler variants of a failing
//! value. The runner adopts any candidate that still fails the property
//! and repeats, so the reported counterexample is (near-)minimal.
//!
//! Plain range expressions double as strategies (`0u32..10`,
//! `-5.0f32..5.0`), mirroring the `proptest` surface the workspace's
//! suites were originally written against; [`vec_of`] and [`bools`] cover
//! the collection and boolean cases, and tuples of strategies generate
//! tuples of values.

use duo_tensor::Rng64;
use std::fmt::Debug;
use std::ops::Range;

/// A generator of random test values with a shrinker for counterexamples.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Generates one value from the seeded RNG.
    fn generate(&self, rng: &mut Rng64) -> Self::Value;

    /// Proposes strictly-simpler variants of `value` to try during
    /// shrinking. An empty vector means the value is fully shrunk.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

// ---------------------------------------------------------------------
// Integer ranges
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut Rng64) -> $ty {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                let v = *value;
                let lo = self.start;
                let mut out = Vec::new();
                // Toward the range minimum: the minimum itself, the
                // midpoint, and one step down — greedy adoption of any of
                // these strictly decreases the value, so shrinking
                // terminates.
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != lo {
                        out.push(v - 1);
                    }
                }
                out
            }
        })+
    };
}
int_range_strategy!(u8, u16, u32, u64, usize);

// ---------------------------------------------------------------------
// Float ranges
// ---------------------------------------------------------------------

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut Rng64) -> f32 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + (self.end - self.start) * rng.uniform()
    }

    fn shrink(&self, value: &f32) -> Vec<f32> {
        let v = *value;
        let mut out = Vec::new();
        let mut push = |c: f32| {
            if c != v && c >= self.start && c < self.end && !out.contains(&c) {
                out.push(c);
            }
        };
        // "Simple" floats first: zero, the bound nearest zero, halved
        // magnitude, then the integer truncation.
        push(0.0);
        push(if self.start.abs() <= self.end.abs() { self.start } else { self.end });
        push(v / 2.0);
        push(v.trunc());
        out
    }
}

// ---------------------------------------------------------------------
// Booleans
// ---------------------------------------------------------------------

/// Strategy over `bool`, uniform between `false` and `true`.
#[derive(Debug, Clone, Copy)]
pub struct Bools;

/// A strategy generating uniformly random booleans (`false` shrinks no
/// further; `true` shrinks to `false`).
pub fn bools() -> Bools {
    Bools
}

impl Strategy for Bools {
    type Value = bool;

    fn generate(&self, rng: &mut Rng64) -> bool {
        rng.below(2) == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// ---------------------------------------------------------------------
// Vectors
// ---------------------------------------------------------------------

/// Strategy over `Vec<T>` with a length drawn from a range; see [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecOf<S> {
    element: S,
    len: Range<usize>,
}

/// A strategy generating vectors whose length is drawn uniformly from
/// `len` and whose elements come from `element`.
///
/// Shrinking first tries shorter vectors (halves, then single-element
/// removals), then simpler elements — so counterexamples are short before
/// they are small.
pub fn vec_of<S: Strategy>(element: S, len: Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "empty length range {len:?}");
    VecOf { element, len }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng64) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        // Shorter vectors first.
        if value.len() > min {
            let half = value.len() / 2;
            if half >= min && half < value.len() {
                out.push(value[..half].to_vec());
                out.push(value[value.len() - half.max(min)..].to_vec());
            }
            if value.len() - 1 >= min {
                for i in 0..value.len() {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
        }
        // Then element-wise simplification, one position at a time.
        for i in 0..value.len() {
            for cand in self.element.shrink(&value[i]) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut Rng64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        })+
    };
}

tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_generates_in_bounds_and_deterministically() {
        let strat = 3u32..17;
        let mut a = Rng64::new(5);
        let mut b = Rng64::new(5);
        for _ in 0..200 {
            let x = strat.generate(&mut a);
            assert!((3..17).contains(&x));
            assert_eq!(x, strat.generate(&mut b), "same seed, same stream");
        }
    }

    #[test]
    fn int_shrink_descends_toward_range_start() {
        let strat = 2u32..100;
        let cands = strat.shrink(&50);
        assert!(cands.contains(&2), "range start is a candidate");
        assert!(cands.iter().all(|&c| c < 50 && c >= 2));
        assert!(strat.shrink(&2).is_empty(), "the minimum is fully shrunk");
    }

    #[test]
    fn float_range_generates_in_bounds() {
        let strat = -4.0f32..4.0;
        let mut rng = Rng64::new(6);
        for _ in 0..200 {
            let x = strat.generate(&mut rng);
            assert!((-4.0..4.0).contains(&x));
        }
    }

    #[test]
    fn float_shrink_prefers_zero() {
        let strat = -4.0f32..4.0;
        assert_eq!(strat.shrink(&3.7)[0], 0.0);
        // Out-of-range zero is never proposed.
        let pos = 5.0f32..9.0;
        assert!(pos.shrink(&8.0).iter().all(|&c| (5.0..9.0).contains(&c)));
    }

    #[test]
    fn vec_of_respects_length_range() {
        let strat = vec_of(0u32..5, 2..6);
        let mut rng = Rng64::new(7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn vec_shrink_never_goes_below_min_len() {
        let strat = vec_of(0u32..5, 2..6);
        let v = vec![1, 2, 3, 4];
        for cand in strat.shrink(&v) {
            assert!(cand.len() >= 2, "candidate {cand:?} under min length");
        }
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let strat = (0u32..10, 0u32..10);
        for (a, b) in strat.shrink(&(4, 7)) {
            assert!((a, b) != (4, 7));
            assert!(a == 4 || b == 7, "only one side may move per candidate");
        }
    }

    #[test]
    fn bools_shrink_to_false() {
        assert_eq!(bools().shrink(&true), vec![false]);
        assert!(bools().shrink(&false).is_empty());
    }
}
