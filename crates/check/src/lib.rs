//! `duo-check`: the in-tree property-testing harness for the DUO workspace.
//!
//! The workspace builds fully offline, so this crate supplies the small
//! slice of `proptest` the test suites actually use: seeded case
//! generation, strategy combinators, greedy counterexample shrinking, and
//! a persisted-regression-seed file so past failures replay first.
//!
//! # Writing a property
//!
//! ```
//! use duo_check::{check, prop_assert, Config};
//!
//! check! {
//!     #![config(Config::default().with_cases(64))]
//!
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert!(a + b == b + a, "{a} + {b}");
//!     }
//! }
//! ```
//!
//! Each property becomes a normal `#[test]`. Cases are generated from a
//! per-property seed (derived from the config seed and the property name),
//! so runs are deterministic; `DUO_CHECK_SEED` and `DUO_CHECK_CASES`
//! override the config from the environment for soak runs.
//!
//! # Shrinking
//!
//! When a case fails, the runner repeatedly asks the strategy for simpler
//! variants and keeps any that still fail, reporting the final minimal
//! counterexample along with the case seed.
//!
//! # Regression seeds
//!
//! With [`Config::with_regressions`], failing case seeds are appended to a
//! text file (one `cc <property> <seed-hex>` line per failure, `#`
//! comments ignored) and replayed before fresh generation on later runs —
//! the same role `proptest-regressions` files played before.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub use strategy::{bools, vec_of, Bools, Strategy, VecOf};

use duo_tensor::{RandomSource, Rng64};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// A property failure raised by the `prop_assert*` macros.
///
/// Plain `assert!`/`panic!` also work inside properties (the runner
/// catches unwinds), but `Failed` keeps the message out of the panic
/// machinery until the counterexample is fully shrunk.
#[derive(Debug, Clone)]
pub struct Failed {
    msg: String,
}

impl Failed {
    /// Creates a failure with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Failed { msg: msg.into() }
    }
}

impl fmt::Display for Failed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Runner configuration: case count, master seed, shrink budget, and the
/// optional regression-seed file.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to generate per property.
    pub cases: u32,
    /// Master seed; each property derives its own stream from this and its
    /// name, so adding a property does not perturb the others.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking one failure.
    pub max_shrink_steps: u32,
    /// If set, failing seeds are appended here and replayed before fresh
    /// generation on subsequent runs.
    pub regressions: Option<PathBuf>,
}

impl Default for Config {
    /// 256 cases, fixed seed, 4096-step shrink budget, no regression file.
    /// `DUO_CHECK_CASES` / `DUO_CHECK_SEED` environment variables override
    /// the corresponding fields when they parse.
    fn default() -> Self {
        let mut cfg = Config {
            cases: 256,
            seed: 0xD00_C8EC,
            max_shrink_steps: 4096,
            regressions: None,
        };
        if let Some(n) = env_parse::<u32>("DUO_CHECK_CASES") {
            cfg.cases = n;
        }
        if let Some(s) = env_parse::<u64>("DUO_CHECK_SEED") {
            cfg.seed = s;
        }
        cfg
    }
}

fn env_parse<T: std::str::FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok()?.parse().ok()
}

impl Config {
    /// Sets the number of cases per property.
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the shrink budget (property evaluations per failure).
    pub fn with_max_shrink_steps(mut self, steps: u32) -> Self {
        self.max_shrink_steps = steps;
        self
    }

    /// Enables the persisted-regression-seed file at `path`.
    pub fn with_regressions(mut self, path: impl Into<PathBuf>) -> Self {
        self.regressions = Some(path.into());
        self
    }
}

/// A fully-shrunk counterexample, as returned by [`run_property_result`].
#[derive(Debug, Clone)]
pub struct CounterExample<V> {
    /// Seed of the failing case (replayable via the regression file).
    pub seed: u64,
    /// The value as originally generated.
    pub original: V,
    /// The value after shrinking (equals `original` if nothing simpler
    /// still failed).
    pub shrunk: V,
    /// Failure message from the shrunk value's evaluation.
    pub msg: String,
    /// Property evaluations spent shrinking.
    pub shrink_evals: u32,
    /// True if the seed came from the regression file rather than fresh
    /// generation.
    pub from_regression: bool,
}

impl<V: fmt::Debug> fmt::Display for CounterExample<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "minimal counterexample: {:?}", self.shrunk)?;
        writeln!(f, "  originally generated: {:?}", self.original)?;
        writeln!(f, "  failure: {}", self.msg)?;
        writeln!(
            f,
            "  case seed: {:#018x}{} ({} shrink evals)",
            self.seed,
            if self.from_regression { " [regression replay]" } else { "" },
            self.shrink_evals
        )
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn eval_property<V>(prop: &dyn Fn(&V) -> Result<(), Failed>, value: &V) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(Ok(())) => None,
        Ok(Err(failed)) => Some(failed.msg),
        Err(payload) => Some(panic_message(&*payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "property panicked".to_string()
    }
}

/// Runs one seeded case: generates a value, evaluates the property, and on
/// failure shrinks greedily within the config's budget.
fn run_case<S: Strategy>(
    strategy: &S,
    prop: &dyn Fn(&S::Value) -> Result<(), Failed>,
    config: &Config,
    seed: u64,
    from_regression: bool,
) -> Option<CounterExample<S::Value>> {
    let mut rng = Rng64::new(seed);
    let original = strategy.generate(&mut rng);
    let msg = eval_property(prop, &original)?;

    let mut shrunk = original.clone();
    let mut msg = msg;
    let mut evals = 0u32;
    'outer: while evals < config.max_shrink_steps {
        for cand in strategy.shrink(&shrunk) {
            evals += 1;
            if let Some(m) = eval_property(prop, &cand) {
                shrunk = cand;
                msg = m;
                continue 'outer;
            }
            if evals >= config.max_shrink_steps {
                break 'outer;
            }
        }
        break;
    }

    Some(CounterExample { seed, original, shrunk, msg, shrink_evals: evals, from_regression })
}

/// Parses a regression file into `(property, seed)` pairs.
///
/// Format: one `cc <property> <seed-hex>` entry per line; blank lines and
/// lines starting with `#` are ignored. Unparseable lines are skipped
/// rather than failing the run.
pub fn parse_regressions(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("cc") {
            continue;
        }
        let (Some(name), Some(seed)) = (parts.next(), parts.next()) else { continue };
        let seed = seed.strip_prefix("0x").unwrap_or(seed);
        if let Ok(seed) = u64::from_str_radix(seed, 16) {
            out.push((name.to_string(), seed));
        }
    }
    out
}

/// Formats one regression entry; `note` becomes a trailing comment.
pub fn format_regression(name: &str, seed: u64, note: &str) -> String {
    format!("cc {name} {seed:#018x} # {note}\n")
}

fn replay_seeds(path: &Path, name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    parse_regressions(&text)
        .into_iter()
        .filter(|(n, _)| n == name)
        .map(|(_, s)| s)
        .collect()
}

fn persist_regression<V: fmt::Debug>(path: &Path, name: &str, cex: &CounterExample<V>) {
    // Never duplicate a seed already on file (e.g. a replayed regression
    // that still fails).
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    if parse_regressions(&existing).iter().any(|(n, s)| n == name && *s == cex.seed) {
        return;
    }
    let mut text = existing;
    if text.is_empty() {
        text.push_str(
            "# duo-check regression seeds. Each `cc <property> <seed>` line is\n\
             # replayed before fresh generation; edit or delete lines freely.\n",
        );
    }
    text.push_str(&format_regression(name, cex.seed, &format!("shrinks to {:?}", cex.shrunk)));
    // Best-effort: a read-only checkout shouldn't fail the test run beyond
    // the failure already being reported.
    let _ = std::fs::write(path, text);
}

/// Runs a property and returns the first counterexample, if any.
///
/// Regression seeds for `name` replay first, then `config.cases` fresh
/// cases generated from the per-property stream. New failures are appended
/// to the regression file when one is configured. Most callers want the
/// [`check!`] macro (which panics with a report) rather than this.
pub fn run_property_result<S: Strategy>(
    name: &str,
    config: &Config,
    strategy: &S,
    prop: impl Fn(&S::Value) -> Result<(), Failed>,
) -> Result<(), CounterExample<S::Value>> {
    if let Some(path) = &config.regressions {
        for seed in replay_seeds(path, name) {
            if let Some(cex) = run_case(strategy, &prop, config, seed, true) {
                return Err(cex);
            }
        }
    }
    let mut master = Rng64::new(config.seed ^ fnv1a64(name.as_bytes()));
    for _ in 0..config.cases {
        let seed = master.next_u64();
        if let Some(cex) = run_case(strategy, &prop, config, seed, false) {
            if let Some(path) = &config.regressions {
                persist_regression(path, name, &cex);
            }
            return Err(cex);
        }
    }
    Ok(())
}

/// Runs a property and panics with a shrunk-counterexample report on
/// failure. This is what [`check!`]-generated tests call.
pub fn run_property<S: Strategy>(
    name: &str,
    config: &Config,
    strategy: &S,
    prop: impl Fn(&S::Value) -> Result<(), Failed>,
) {
    if let Err(cex) = run_property_result(name, config, strategy, &prop) {
        panic!(
            "property `{name}` failed after {} shrink evals\n{cex}\
             replay: add `cc {name} {:#018x}` to the regression file or set DUO_CHECK_SEED",
            cex.shrink_evals, cex.seed
        );
    }
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that generates seeded cases, shrinks failures, and
/// reports minimal counterexamples.
///
/// An optional leading `#![config(expr)]` sets the [`Config`] for every
/// property in the block (default: [`Config::default()`]).
#[macro_export]
macro_rules! check {
    (#![config($cfg:expr)] $($rest:tt)*) => {
        $crate::__check_props! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__check_props! { ($crate::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __check_props {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        $(#[$attr])*
        fn $name() {
            let config: $crate::Config = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_property(
                stringify!($name),
                &config,
                &strategy,
                |__value| {
                    let ($($pat,)+) = __value.clone();
                    $body
                    Ok(())
                },
            );
        }
        $crate::__check_props! { ($cfg) $($rest)* }
    };
}

/// Fails the surrounding property when the condition is false, recording
/// the condition (and optional formatted message) in the counterexample
/// report. Use inside [`check!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::Failed::new(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::Failed::new(format!(
                "assertion failed at {}:{}: {}: {}",
                file!(), line!(), stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Equality form of [`prop_assert!`]; the report shows both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(, $($fmt:tt)+)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l != r {
            return Err($crate::Failed::new(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n right: {:?}",
                file!(), line!(), stringify!($lhs), stringify!($rhs), l, r
            )));
        }
    }};
}

/// Inequality form of [`prop_assert!`]; the report shows the shared value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(, $($fmt:tt)+)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l == r {
            return Err($crate::Failed::new(format!(
                "assertion failed at {}:{}: {} != {}\n  both: {:?}",
                file!(), line!(), stringify!($lhs), stringify!($rhs), l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Config {
        Config { cases: 64, seed: 99, max_shrink_steps: 4096, regressions: None }
    }

    #[test]
    fn passing_property_returns_ok() {
        let r = run_property_result("commutes", &quiet(), &(0u32..100, 0u32..100), |&(a, b)| {
            prop_assert_eq!(a + b, b + a);
            Ok(())
        });
        assert!(r.is_ok());
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        // "All generated values are < 10" is false; the minimal
        // counterexample in 0..100 is exactly 10.
        let cex = run_property_result("all_below_ten", &quiet(), &(0u32..100,), |&(v,)| {
            prop_assert!(v < 10, "saw {v}");
            Ok(())
        })
        .expect_err("property must fail");
        assert_eq!(cex.shrunk, (10,), "greedy shrink should land on the boundary");
        assert!(cex.msg.contains("saw 10"));
        assert!(cex.shrink_evals > 0, "some shrinking must have happened");
    }

    #[test]
    fn vec_counterexample_shrinks_to_single_offending_element() {
        // "No element is >= 50": minimal failing vector is one element of
        // exactly 50.
        let cex = run_property_result(
            "no_large_elements",
            &quiet(),
            &(vec_of(0u32..100, 1..20),),
            |(v,)| {
                prop_assert!(v.iter().all(|&x| x < 50));
                Ok(())
            },
        )
        .expect_err("property must fail");
        assert_eq!(cex.shrunk.0, vec![50]);
    }

    #[test]
    fn plain_panics_are_caught_and_shrunk() {
        let cex = run_property_result("panics_at_seven", &quiet(), &(0u32..100,), |&(v,)| {
            assert!(v < 7, "boom at {v}");
            Ok(())
        })
        .expect_err("property must fail");
        assert_eq!(cex.shrunk, (7,));
        assert!(cex.msg.contains("boom at 7"));
    }

    #[test]
    fn same_config_reproduces_the_same_counterexample_seed() {
        let run = || {
            run_property_result("det", &quiet(), &(0u32..1000,), |&(v,)| {
                prop_assert!(v < 500);
                Ok(())
            })
            .expect_err("fails")
        };
        assert_eq!(run().seed, run().seed);
    }

    #[test]
    fn regression_file_round_trips() {
        let text = "# comment\n\ncc my_prop 0x00000000000000ff # shrinks to 3\ncc other 10\n";
        let parsed = parse_regressions(text);
        assert_eq!(parsed, vec![("my_prop".into(), 0xff), ("other".into(), 0x10)]);
        let line = format_regression("my_prop", 0xff, "shrinks to 3");
        assert_eq!(parse_regressions(&line), vec![("my_prop".into(), 0xff)]);
    }

    #[test]
    fn regression_seeds_replay_and_persist() {
        let dir = std::env::temp_dir().join(format!("duo-check-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("regressions.txt");
        let _ = std::fs::remove_file(&path);

        let cfg = quiet().with_regressions(&path);
        let fails = |&(v,): &(u32,)| {
            prop_assert!(v < 500);
            Ok(())
        };
        let first = run_property_result("persisted", &cfg, &(0u32..1000,), fails)
            .expect_err("fails and records the seed");
        assert!(!first.from_regression);

        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_regressions(&text), vec![("persisted".into(), first.seed)]);

        // Second run replays the recorded seed before fresh generation and
        // does not duplicate it on file.
        let second = run_property_result("persisted", &cfg, &(0u32..1000,), fails)
            .expect_err("still fails");
        assert!(second.from_regression);
        assert_eq!(second.seed, first.seed);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_regressions(&text).len(), 1);

        let _ = std::fs::remove_file(&path);
    }

    // The macro surface itself, exercised as real tests.
    crate::check! {
        #![config(crate::Config::default().with_cases(64))]

        fn macro_tuple_destructuring((a, b) in (0u32..10, 0u32..10), flip in crate::bools()) {
            let (x, y) = if flip { (b, a) } else { (a, b) };
            prop_assert!(x < 10 && y < 10);
        }

        fn macro_single_arg(v in crate::vec_of(0u32..5, 1..8)) {
            prop_assert!(!v.is_empty());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
