//! Retrieval-quality and list-similarity metrics from the paper's §V-A.

use duo_video::VideoId;

/// Average precision between two retrieval lists (the paper's `AP@m`).
///
/// `prec_i = |top-i(a) ∩ top-i(b)| / i`, averaged over `i = 1..=m` where
/// `m` is the longer list's length. Lists shorter than `m` are treated as
/// padded with non-matching entries.
///
/// Returns a percentage in `[0, 100]` to match the paper's tables.
pub fn ap_at_m(a: &[VideoId], b: &[VideoId]) -> f32 {
    let m = a.len().max(b.len());
    if m == 0 {
        return 0.0;
    }
    let mut total = 0.0f32;
    for i in 1..=m {
        let top_a = &a[..i.min(a.len())];
        let top_b = &b[..i.min(b.len())];
        let inter = top_a.iter().filter(|id| top_b.contains(id)).count();
        total += inter as f32 / i as f32;
    }
    100.0 * total / m as f32
}

/// Mean average precision of a retrieval system against class labels
/// (the paper's `mAP`), as a percentage.
///
/// For each `(query class, retrieved list)` pair, computes
/// `(1/m) Σ_i ctop(i)/i` where `ctop(i)` counts retrieved videos of the
/// query's class within the top `i`; averages over queries.
pub fn mean_average_precision(results: &[(u32, Vec<VideoId>)]) -> f32 {
    if results.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f32;
    for (class, list) in results {
        if list.is_empty() {
            continue;
        }
        let mut correct_so_far = 0usize;
        let mut ap = 0.0f32;
        for (i, id) in list.iter().enumerate() {
            if id.class == *class {
                correct_so_far += 1;
            }
            ap += correct_so_far as f32 / (i + 1) as f32;
        }
        total += ap / list.len() as f32;
    }
    100.0 * total / results.len() as f32
}

/// NDCG-style co-occurrence similarity `ℍ(R^m(v), R^m(v'))` between two
/// retrieval lists (the probability-weighted overlap the SparseQuery
/// objective of Eq. 2 is built on, following the QAIR formulation).
///
/// Each prefix depth `i` contributes its overlap precision
/// `|top-i(a) ∩ top-i(b)|/i` with the NDCG rank discount `1/log2(i+2)`,
/// normalized so the value lies in `[0, 1]` (1 ⇔ identical prefix sets at
/// every depth, i.e. the same ranking up to ties). Unlike a pure
/// membership overlap, this responds to *rank reshuffles* — the only
/// signal a black-box attacker gets while perturbations are still too
/// weak to evict list entries.
pub fn ndcg_cooccurrence(a: &[VideoId], b: &[VideoId]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    let depth = a.len().max(b.len());
    let mut gain = 0.0f64;
    let mut ideal = 0.0f64;
    for i in 1..=depth {
        let w = 1.0 / ((i as f64) + 1.0).log2();
        ideal += w;
        let top_a = &a[..i.min(a.len())];
        let top_b = &b[..i.min(b.len())];
        let inter = top_a.iter().filter(|id| top_b.contains(id)).count();
        gain += w * inter as f64 / i as f64;
    }
    (gain / ideal) as f32
}

/// Recall@m of an approximate retrieval list against the exact answer:
/// the fraction of `exact`'s members that `approx` also returned.
///
/// Order-insensitive (recall measures membership, not ranking). An empty
/// exact answer has nothing to miss and scores 1. This is the offline
/// counterpart of the running estimate in
/// [`crate::IndexStats::recall_at_m`].
pub fn recall_at_m(approx: &[VideoId], exact: &[VideoId]) -> f32 {
    if exact.is_empty() {
        return 1.0;
    }
    let hits = exact.iter().filter(|id| approx.contains(id)).count();
    hits as f32 / exact.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(pairs: &[(u32, u32)]) -> Vec<VideoId> {
        pairs.iter().map(|&(class, instance)| VideoId { class, instance }).collect()
    }

    #[test]
    fn ap_at_m_identical_lists_is_100() {
        let a = ids(&[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(ap_at_m(&a, &a), 100.0);
    }

    #[test]
    fn ap_at_m_disjoint_lists_is_0() {
        let a = ids(&[(0, 0), (1, 0)]);
        let b = ids(&[(2, 0), (3, 0)]);
        assert_eq!(ap_at_m(&a, &b), 0.0);
    }

    #[test]
    fn ap_at_m_matches_hand_computation() {
        // a = [x, y], b = [x, z]: prec_1 = 1/1, prec_2 = 1/2 → AP = 75%.
        let a = ids(&[(0, 0), (1, 0)]);
        let b = ids(&[(0, 0), (2, 0)]);
        assert!((ap_at_m(&a, &b) - 75.0).abs() < 1e-4);
    }

    #[test]
    fn ap_at_m_is_symmetric() {
        let a = ids(&[(0, 0), (1, 0), (2, 0)]);
        let b = ids(&[(1, 0), (0, 0), (5, 0)]);
        assert!((ap_at_m(&a, &b) - ap_at_m(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn map_perfect_retrieval_is_100() {
        let results = vec![(3u32, ids(&[(3, 0), (3, 1), (3, 2)]))];
        assert_eq!(mean_average_precision(&results), 100.0);
    }

    #[test]
    fn map_matches_hand_computation() {
        // list: [correct, wrong, correct] → (1/1 + 1/2 + 2/3)/3 = 72.2%.
        let results = vec![(1u32, ids(&[(1, 0), (2, 0), (1, 1)]))];
        let expected = 100.0 * (1.0 + 0.5 + 2.0 / 3.0) / 3.0;
        assert!((mean_average_precision(&results) - expected).abs() < 1e-3);
    }

    #[test]
    fn map_empty_inputs_are_zero() {
        assert_eq!(mean_average_precision(&[]), 0.0);
        assert_eq!(ap_at_m(&[], &[]), 0.0);
    }

    #[test]
    fn ndcg_identical_lists_are_one() {
        let a = ids(&[(0, 0), (1, 0), (2, 0)]);
        assert!((ndcg_cooccurrence(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ndcg_is_order_sensitive() {
        // Same membership, different ranking: similarity must drop below 1
        // (this is the signal SparseQuery climbs before it can evict
        // entries outright).
        let a = ids(&[(0, 0), (1, 0), (2, 0)]);
        let permuted = ids(&[(2, 0), (0, 0), (1, 0)]);
        let s = ndcg_cooccurrence(&a, &permuted);
        assert!(s < 1.0 - 1e-4, "permutation must score below identity, got {s}");
        assert!(s > 0.3, "shared membership keeps similarity well above zero, got {s}");
    }

    #[test]
    fn ndcg_weights_early_ranks_higher() {
        let a = ids(&[(0, 0), (1, 0)]);
        let hit_first = ids(&[(0, 0), (9, 9)]);
        let hit_second = ids(&[(9, 9), (1, 0)]);
        // Both overlap on exactly one element of `a`, but the element at
        // rank 1 of `a` carries more gain.
        let s_first = ndcg_cooccurrence(&a, &hit_first);
        let s_second = ndcg_cooccurrence(&a, &hit_second);
        assert!(s_first > 0.0 && s_second > 0.0);
        assert!(
            s_first > s_second,
            "rank-1 overlap ({s_first}) must outweigh rank-2 overlap ({s_second})"
        );
    }

    #[test]
    fn ap_at_m_handles_unequal_lengths() {
        // A degraded node can shorten one list; the metric treats missing
        // tail entries as non-matches rather than panicking.
        let long = ids(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let short = ids(&[(0, 0)]);
        let ap = ap_at_m(&long, &short);
        assert!(ap > 0.0 && ap < 100.0);
        assert!((ap - ap_at_m(&short, &long)).abs() < 1e-4);
    }

    #[test]
    fn map_ignores_empty_lists_gracefully() {
        let results = vec![(0u32, Vec::new()), (1u32, ids(&[(1, 0)]))];
        let map = mean_average_precision(&results);
        // One perfect query, one empty: average = 50%.
        assert!((map - 50.0).abs() < 1e-4);
    }

    #[test]
    fn ndcg_prefix_weighting_decays_with_depth() {
        // A mismatch at depth 1 costs more than the same mismatch at the
        // tail of a longer prefix.
        let a = ids(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let wrong_head = ids(&[(9, 9), (1, 0), (2, 0), (3, 0)]);
        let wrong_tail = ids(&[(0, 0), (1, 0), (2, 0), (9, 9)]);
        assert!(ndcg_cooccurrence(&a, &wrong_tail) > ndcg_cooccurrence(&a, &wrong_head));
    }

    #[test]
    fn recall_counts_membership_not_order() {
        let exact = ids(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let reversed: Vec<VideoId> = exact.iter().rev().copied().collect();
        assert_eq!(recall_at_m(&reversed, &exact), 1.0);
        let half = ids(&[(0, 0), (2, 0)]);
        assert_eq!(recall_at_m(&half, &exact), 0.5);
        assert_eq!(recall_at_m(&[], &exact), 0.0);
        assert_eq!(recall_at_m(&half, &[]), 1.0);
    }

    #[test]
    fn ndcg_bounded_in_unit_interval() {
        let a = ids(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let b = ids(&[(1, 0), (7, 0)]);
        let s = ndcg_cooccurrence(&a, &b);
        assert!((0.0..=1.0).contains(&s));
    }
}
