//! Gallery-index persistence.
//!
//! A production retrieval service re-indexes its gallery only when the
//! embedding model changes; across restarts the feature index is loaded
//! from disk. The format is the same minimal self-describing binary style
//! used for model checkpoints: magic, index mode, entry count, then
//! `(class, instance, dim, f32-LE features…)` per entry.
//!
//! Two on-disk versions exist. `DUOINDX2` (current) stores the
//! [`IndexMode`] after the magic — a mode byte, then `nlist`/`nprobe` as
//! u64 for IVF. `DUOINDX1` (legacy, features only) still loads and maps
//! to [`IndexMode::Exact`]. Only the *mode* is persisted, never the
//! trained IVF structure: k-means is seeded and deterministic
//! ([`crate::shard_seed`] per shard), so retraining at load reproduces
//! the index from the features alone and the snapshot stays
//! layout-independent.

use crate::{shard_seed, DataNode, IndexMode, RetrievalConfig, RetrievalError, Result, RetrievalSystem};
use duo_models::Backbone;
use duo_tensor::Tensor;
use duo_video::VideoId;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC_V2: &[u8; 8] = b"DUOINDX2";
const MAGIC_V1: &[u8; 8] = b"DUOINDX1";

const MODE_EXACT: u8 = 0;
const MODE_IVF: u8 = 1;

/// A serializable snapshot of an indexed gallery: the `(id, feature)`
/// entries plus the [`IndexMode`] the system served them in.
#[derive(Debug, Clone, PartialEq)]
pub struct GalleryIndex {
    entries: Vec<(VideoId, Tensor)>,
    mode: IndexMode,
}

impl GalleryIndex {
    /// Snapshots the given `(id, feature)` entries in exact mode.
    pub fn new(entries: Vec<(VideoId, Tensor)>) -> Self {
        GalleryIndex { entries, mode: IndexMode::Exact }
    }

    /// Snapshots entries together with an index mode.
    pub fn with_mode(entries: Vec<(VideoId, Tensor)>, mode: IndexMode) -> Self {
        GalleryIndex { entries, mode }
    }

    /// Extracts the index currently served by a retrieval system,
    /// including its index mode.
    ///
    /// The capture happens under the system's epoch gate — one
    /// consistent cross-shard cut — so a snapshot taken while a
    /// mutation batch or rebalance is publishing always equals exactly
    /// one published epoch, never a half-applied batch or a row caught
    /// mid-move. (To persist without materializing a tensor per row,
    /// use [`GalleryIndex::save_system`].)
    pub fn from_system(system: &RetrievalSystem) -> Self {
        let (_epoch, snaps) = system.snapshot_with_epoch();
        let mut entries = Vec::with_capacity(system.gallery_len());
        for snap in &snaps {
            entries.extend(snap.entries());
        }
        // Deterministic order regardless of shard layout.
        entries.sort_by_key(|(id, _)| (id.class, id.instance));
        GalleryIndex { entries, mode: system.config().index }
    }

    /// Streams a system's gallery straight to `w` in the `DUOINDX2`
    /// format, byte-identical to
    /// `GalleryIndex::from_system(system).write(w)` but writing feature
    /// rows from the shard snapshots' borrowed storage — no per-row
    /// tensor materialization, no gallery copy. Returns the epoch the
    /// snapshot was captured from (under the epoch gate, so the stream
    /// is always one published epoch).
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn write_system<W: Write>(system: &RetrievalSystem, mut w: W) -> Result<u64> {
        let io = |e: std::io::Error| RetrievalError::BadConfig(format!("index write: {e}"));
        let (epoch, snaps) = system.snapshot_with_epoch();
        // Global id order over borrowed rows: sort an (id, shard, row)
        // directory instead of copying features.
        let mut directory: Vec<(VideoId, usize, usize)> = Vec::new();
        for (s, snap) in snaps.iter().enumerate() {
            directory.extend(snap.ids().iter().enumerate().map(|(r, &id)| (id, s, r)));
        }
        directory.sort_by_key(|(id, _, _)| (id.class, id.instance));
        w.write_all(MAGIC_V2).map_err(io)?;
        match system.config().index {
            IndexMode::Exact => w.write_all(&[MODE_EXACT]).map_err(io)?,
            IndexMode::Ivf { nlist, nprobe } => {
                w.write_all(&[MODE_IVF]).map_err(io)?;
                w.write_all(&(nlist as u64).to_le_bytes()).map_err(io)?;
                w.write_all(&(nprobe as u64).to_le_bytes()).map_err(io)?;
            }
        }
        w.write_all(&(directory.len() as u64).to_le_bytes()).map_err(io)?;
        for (id, shard, row) in directory {
            let feat = snaps[shard].feature(row);
            w.write_all(&id.class.to_le_bytes()).map_err(io)?;
            w.write_all(&id.instance.to_le_bytes()).map_err(io)?;
            w.write_all(&(feat.len() as u64).to_le_bytes()).map_err(io)?;
            for &x in feat {
                w.write_all(&x.to_le_bytes()).map_err(io)?;
            }
        }
        Ok(epoch)
    }

    /// Streams a system's gallery to a file (see
    /// [`GalleryIndex::write_system`]); returns the captured epoch.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn save_system<P: AsRef<Path>>(system: &RetrievalSystem, path: P) -> Result<u64> {
        let file = std::fs::File::create(path)
            .map_err(|e| RetrievalError::BadConfig(format!("index create: {e}")))?;
        Self::write_system(system, std::io::BufWriter::new(file))
    }

    /// Number of indexed videos.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The indexed entries, sorted by id.
    pub fn entries(&self) -> &[(VideoId, Tensor)] {
        &self.entries
    }

    /// The index mode captured in this snapshot.
    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    /// Writes the index in the `DUOINDX2` format.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn write<W: Write>(&self, mut w: W) -> Result<()> {
        let io = |e: std::io::Error| RetrievalError::BadConfig(format!("index write: {e}"));
        w.write_all(MAGIC_V2).map_err(io)?;
        match self.mode {
            IndexMode::Exact => w.write_all(&[MODE_EXACT]).map_err(io)?,
            IndexMode::Ivf { nlist, nprobe } => {
                w.write_all(&[MODE_IVF]).map_err(io)?;
                w.write_all(&(nlist as u64).to_le_bytes()).map_err(io)?;
                w.write_all(&(nprobe as u64).to_le_bytes()).map_err(io)?;
            }
        }
        w.write_all(&(self.entries.len() as u64).to_le_bytes()).map_err(io)?;
        for (id, feat) in &self.entries {
            w.write_all(&id.class.to_le_bytes()).map_err(io)?;
            w.write_all(&id.instance.to_le_bytes()).map_err(io)?;
            w.write_all(&(feat.len() as u64).to_le_bytes()).map_err(io)?;
            for &x in feat.as_slice() {
                w.write_all(&x.to_le_bytes()).map_err(io)?;
            }
        }
        Ok(())
    }

    /// Reads an index written by [`GalleryIndex::write`]. Legacy
    /// `DUOINDX1` snapshots (no mode header) load as
    /// [`IndexMode::Exact`].
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for I/O failures, bad magic,
    /// or malformed entries.
    pub fn read<R: Read>(mut r: R) -> Result<Self> {
        let io = |e: std::io::Error| RetrievalError::BadConfig(format!("index read: {e}"));
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(io)?;
        let mut u64buf = [0u8; 8];
        let mode = match &magic {
            m if m == MAGIC_V1 => IndexMode::Exact,
            m if m == MAGIC_V2 => {
                let mut tag = [0u8; 1];
                r.read_exact(&mut tag).map_err(io)?;
                match tag[0] {
                    MODE_EXACT => IndexMode::Exact,
                    MODE_IVF => {
                        r.read_exact(&mut u64buf).map_err(io)?;
                        let nlist = u64::from_le_bytes(u64buf) as usize;
                        r.read_exact(&mut u64buf).map_err(io)?;
                        let nprobe = u64::from_le_bytes(u64buf) as usize;
                        let mode = IndexMode::Ivf { nlist, nprobe };
                        mode.validate()?;
                        mode
                    }
                    other => {
                        return Err(RetrievalError::BadConfig(format!(
                            "unknown index mode tag {other}"
                        )))
                    }
                }
            }
            _ => return Err(RetrievalError::BadConfig("not a DUOINDX1/DUOINDX2 index".into())),
        };
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u64buf).map_err(io)?;
        let count = u64::from_le_bytes(u64buf) as usize;
        if count > 100_000_000 {
            return Err(RetrievalError::BadConfig(format!("implausible entry count {count}")));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            r.read_exact(&mut u32buf).map_err(io)?;
            let class = u32::from_le_bytes(u32buf);
            r.read_exact(&mut u32buf).map_err(io)?;
            let instance = u32::from_le_bytes(u32buf);
            r.read_exact(&mut u64buf).map_err(io)?;
            let dim = u64::from_le_bytes(u64buf) as usize;
            if dim > 1_000_000 {
                return Err(RetrievalError::BadConfig(format!("implausible feature dim {dim}")));
            }
            let mut data = Vec::with_capacity(dim);
            let mut f32buf = [0u8; 4];
            for _ in 0..dim {
                r.read_exact(&mut f32buf).map_err(io)?;
                data.push(f32::from_le_bytes(f32buf));
            }
            let feat = Tensor::from_vec(data, &[dim])
                .map_err(|e| RetrievalError::BadConfig(format!("index feature: {e}")))?;
            entries.push((VideoId { class, instance }, feat));
        }
        Ok(GalleryIndex { entries, mode })
    }

    /// Saves the index to a file.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let file = std::fs::File::create(path)
            .map_err(|e| RetrievalError::BadConfig(format!("index create: {e}")))?;
        self.write(std::io::BufWriter::new(file))
    }

    /// Loads an index from a file.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = std::fs::File::open(path)
            .map_err(|e| RetrievalError::BadConfig(format!("index open: {e}")))?;
        Self::read(std::io::BufReader::new(file))
    }
}

impl RetrievalSystem {
    /// Rebuilds a retrieval service from a persisted index and a backbone
    /// (restart-without-reindexing: the backbone is only used for *query*
    /// embeddings; gallery features come from the snapshot).
    ///
    /// The serving index mode is taken from `config.index` — the caller
    /// decides, typically forwarding [`GalleryIndex::mode`]. IVF shards
    /// are retrained at load from the snapshot's features with the same
    /// per-shard seeds a fresh build uses. Exact-mode rankings are
    /// bit-identical to the snapshotted system regardless of node count;
    /// IVF rankings can differ from the original when the snapshot's
    /// entries re-shard into different k-means problems (see the
    /// equivalence contract in DESIGN.md §6d).
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for invalid configuration.
    pub fn from_index(
        backbone: Backbone,
        index: &GalleryIndex,
        config: RetrievalConfig,
    ) -> Result<Self> {
        if config.m == 0 || config.nodes == 0 {
            return Err(RetrievalError::BadConfig(format!(
                "m and nodes must be positive, got {config:?}"
            )));
        }
        let mut shards: Vec<Vec<(VideoId, Tensor)>> =
            (0..config.nodes).map(|_| Vec::new()).collect();
        for (i, entry) in index.entries().iter().enumerate() {
            shards[i % config.nodes].push(entry.clone());
        }
        let nodes = shards
            .into_iter()
            .enumerate()
            .map(|(i, entries)| {
                DataNode::with_index_mode(format!("node-{i}"), entries, config.index, shard_seed(i))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(RetrievalSystem::assemble(backbone, nodes, config, index.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::{Architecture, BackboneConfig};
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};

    fn system() -> (RetrievalSystem, SyntheticDataset) {
        let mut rng = Rng64::new(281);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 281, 2, 0);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 8).copied().collect();
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            backbone,
            &ds,
            &gallery,
            RetrievalConfig { m: 5, nodes: 3, threaded: false, ..Default::default() },
        )
        .unwrap();
        (sys, ds)
    }

    #[test]
    fn binary_round_trip_preserves_index() {
        let (sys, _) = system();
        let index = GalleryIndex::from_system(&sys);
        assert_eq!(index.len(), sys.gallery_len());
        let mut buf = Vec::new();
        index.write(&mut buf).unwrap();
        let back = GalleryIndex::read(buf.as_slice()).unwrap();
        assert_eq!(index, back);
    }

    #[test]
    fn round_trip_preserves_ivf_mode() {
        let entries = vec![(
            VideoId { class: 0, instance: 0 },
            Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(),
        )];
        let index = GalleryIndex::with_mode(entries, IndexMode::ivf(16, 4));
        let mut buf = Vec::new();
        index.write(&mut buf).unwrap();
        let back = GalleryIndex::read(buf.as_slice()).unwrap();
        assert_eq!(back.mode(), IndexMode::ivf(16, 4));
        assert_eq!(index, back);
    }

    #[test]
    fn legacy_v1_snapshot_loads_as_exact() {
        // Hand-assemble a DUOINDX1 stream: magic, count, one 2-d entry.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DUOINDX1");
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&0.5f32.to_le_bytes());
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        let index = GalleryIndex::read(buf.as_slice()).unwrap();
        assert_eq!(index.mode(), IndexMode::Exact);
        assert_eq!(index.len(), 1);
        assert_eq!(index.entries()[0].0, VideoId { class: 3, instance: 7 });
    }

    #[test]
    fn restored_service_ranks_identically() {
        let (mut sys, ds) = system();
        let index = GalleryIndex::from_system(&sys);
        // Clone the backbone weights into a fresh system via checkpointing.
        let mut rng = Rng64::new(282);
        let mut restored_backbone =
            Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let params = duo_models::export_params(sys.backbone_mut());
        duo_models::import_params(&mut restored_backbone, &params).unwrap();
        let restored = RetrievalSystem::from_index(
            restored_backbone,
            &index,
            RetrievalConfig { m: 5, nodes: 5, threaded: false, index: index.mode() },
        )
        .unwrap();
        for c in 0..8 {
            let q = ds.video(VideoId { class: c, instance: 1 });
            assert_eq!(sys.retrieve(&q).unwrap(), restored.retrieve(&q).unwrap());
        }
    }

    #[test]
    fn restored_ivf_service_with_full_probe_matches_exact_restore() {
        let (mut sys, ds) = system();
        let snapshot = GalleryIndex::from_system(&sys);
        let params = duo_models::export_params(sys.backbone_mut());
        let make_backbone = || {
            let mut rng = Rng64::new(283);
            let mut b =
                Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
            duo_models::import_params(&mut b, &params).unwrap();
            b
        };
        let exact = RetrievalSystem::from_index(
            make_backbone(),
            &snapshot,
            RetrievalConfig { m: 5, nodes: 4, threaded: false, index: IndexMode::Exact },
        )
        .unwrap();
        // nprobe == nlist: IVF is exhaustive, so the restored services
        // must agree ranking-for-ranking.
        let ivf = RetrievalSystem::from_index(
            make_backbone(),
            &snapshot,
            RetrievalConfig { m: 5, nodes: 4, threaded: false, index: IndexMode::ivf(3, 3) },
        )
        .unwrap();
        for c in 0..8 {
            let q = ds.video(VideoId { class: c, instance: 1 });
            assert_eq!(exact.retrieve(&q).unwrap(), ivf.retrieve(&q).unwrap());
        }
    }

    #[test]
    fn write_system_matches_materialized_snapshot_bytes() {
        let (sys, _) = system();
        // Publish one epoch first so the stream covers mutated state too.
        sys.insert(
            VideoId { class: 200, instance: 0 },
            sys.nodes()[0].snapshot().entries().remove(0).1,
        )
        .unwrap();
        let mut streamed = Vec::new();
        let epoch = GalleryIndex::write_system(&sys, &mut streamed).unwrap();
        assert_eq!(epoch, sys.current_epoch());
        let mut materialized = Vec::new();
        GalleryIndex::from_system(&sys).write(&mut materialized).unwrap();
        assert_eq!(streamed, materialized, "streaming writer must be byte-identical");
    }

    #[test]
    fn snapshot_under_concurrent_mutation_is_one_published_epoch() {
        let (sys, _) = system();
        let base = sys.gallery_len();
        let dim = sys.nodes()[0].snapshot().dim();
        let marker = |k: u32| VideoId { class: 200 + k, instance: 0 };
        let feature = |k: u32| {
            Tensor::from_vec(vec![k as f32 + 1.0; dim], &[dim]).unwrap()
        };

        // Writer: five epoch transactions, each inserting TWO markers in
        // one batch. A torn capture would show an odd marker count.
        const EPOCHS: u32 = 5;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for k in 0..EPOCHS {
                    let batch = crate::MutationBatch::new()
                        .insert(marker(2 * k), feature(2 * k))
                        .insert(marker(2 * k + 1), feature(2 * k + 1));
                    sys.apply(&batch).unwrap();
                }
            });
            // Reader: repeatedly persist mid-mutation and reload. Every
            // capture must equal exactly the published epoch it reports —
            // all of batch `e` and nothing of batch `e + 1`.
            for _ in 0..40 {
                let mut buf = Vec::new();
                let epoch = GalleryIndex::write_system(&sys, &mut buf).unwrap();
                let back = GalleryIndex::read(buf.as_slice()).unwrap();
                let markers: Vec<u32> = back
                    .entries()
                    .iter()
                    .filter(|(id, _)| id.class >= 200)
                    .map(|(id, _)| id.class - 200)
                    .collect();
                assert_eq!(
                    markers.len() as u64,
                    2 * epoch,
                    "epoch {epoch} snapshot shows a half-applied batch: {markers:?}"
                );
                assert_eq!(markers, (0..2 * epoch as u32).collect::<Vec<_>>());
                assert_eq!(back.len(), base + markers.len());
            }
        });

        // After the writer drains, a final capture holds every batch.
        let mut buf = Vec::new();
        let epoch = GalleryIndex::write_system(&sys, &mut buf).unwrap();
        assert_eq!(epoch, u64::from(EPOCHS));
        assert_eq!(GalleryIndex::read(buf.as_slice()).unwrap().len(), base + 10);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(GalleryIndex::read(&b"BADMAGIC"[..]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let (sys, _) = system();
        let index = GalleryIndex::from_system(&sys);
        let dir = std::env::temp_dir().join("duo_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gallery.duoindx");
        index.save(&path).unwrap();
        assert_eq!(GalleryIndex::load(&path).unwrap(), index);
        let _ = std::fs::remove_file(path);
    }
}
