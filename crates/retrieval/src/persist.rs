//! Gallery-index persistence.
//!
//! A production retrieval service re-indexes its gallery only when the
//! embedding model changes; across restarts the feature index is loaded
//! from disk. The format is the same minimal self-describing binary style
//! used for model checkpoints: magic, index mode, entry count, then
//! `(class, instance, dim, f32-LE features…)` per entry.
//!
//! Three on-disk versions exist:
//!
//! * `DUOINDX1` (legacy, features only) still loads and maps to
//!   [`IndexMode::Exact`].
//! * `DUOINDX2` (portable) stores the [`IndexMode`] after the magic — a
//!   mode byte, then the mode's parameters as u64 — followed by the
//!   entries in global id order. Only the *mode* is persisted, never the
//!   trained IVF/PQ structure: k-means is seeded and deterministic
//!   ([`crate::shard_seed`] per shard, [`crate::pq_subspace_seed`] per
//!   codebook), so retraining at load reproduces the index from the
//!   features alone and the snapshot stays layout-independent.
//! * `DUOINDX3` (current, whole-system image) is a sectioned,
//!   64-byte-aligned layout that *does* persist the trained structures —
//!   centroids, coarse assignment, codebooks/quantizer tables, packed
//!   residual codes — per shard, exactly as served. A system loads from
//!   it in a single `read` with no retraining and no re-sharding, so the
//!   restored service replays a mutate+query trace bit-identically,
//!   epoch counter included. The byte-level format table lives in
//!   DESIGN.md §6h. Storing trained structures does not create a second
//!   source of truth: they are the deterministic function of
//!   `(features, seed)` that retraining would recompute, which the
//!   save→load→save byte-identity property pins down.

use crate::{shard_seed, DataNode, IndexMode, RetrievalConfig, RetrievalError, Result, RetrievalSystem};
use duo_models::Backbone;
use duo_tensor::Tensor;
use duo_video::VideoId;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC_V3: &[u8; 8] = b"DUOINDX3";
const MAGIC_V2: &[u8; 8] = b"DUOINDX2";
const MAGIC_V1: &[u8; 8] = b"DUOINDX1";

const MODE_EXACT: u8 = 0;
const MODE_IVF: u8 = 1;
const MODE_PQ: u8 = 2;
const MODE_SQ8: u8 = 3;

/// `DUOINDX3` sections start on 64-byte boundaries (cache-line aligned,
/// and f32/u32 views of the mapped buffer stay aligned with headroom).
const V3_ALIGN: usize = 64;

/// Sections per shard in a `DUOINDX3` image, in layout order: ids,
/// features, centroids, coarse assignment, codec tables, codes.
const V3_SECTIONS: usize = 6;

/// Serializes an [`IndexMode`] as the V2/V3 shared tag + u64 parameter
/// run: `exact` has no parameters, `ivf` carries `nlist, nprobe`, `pq`
/// carries `nlist, nprobe, m_sub, nbits, rerank`, `sq8` carries
/// `nlist, nprobe, rerank`.
fn mode_params(mode: IndexMode) -> (u8, Vec<u64>) {
    match mode {
        IndexMode::Exact => (MODE_EXACT, Vec::new()),
        IndexMode::Ivf { nlist, nprobe } => (MODE_IVF, vec![nlist as u64, nprobe as u64]),
        IndexMode::Pq { nlist, nprobe, m_sub, nbits, rerank } => (
            MODE_PQ,
            vec![nlist as u64, nprobe as u64, m_sub as u64, u64::from(nbits), rerank as u64],
        ),
        IndexMode::Sq8 { nlist, nprobe, rerank } => {
            (MODE_SQ8, vec![nlist as u64, nprobe as u64, rerank as u64])
        }
    }
}

/// Inverse of [`mode_params`]; validates the reconstructed mode.
fn mode_from_params(tag: u8, params: &[u64]) -> Result<IndexMode> {
    let need = |n: usize| {
        if params.len() < n {
            Err(RetrievalError::BadConfig(format!(
                "index mode tag {tag} needs {n} parameters, got {}",
                params.len()
            )))
        } else {
            Ok(())
        }
    };
    let mode = match tag {
        MODE_EXACT => IndexMode::Exact,
        MODE_IVF => {
            need(2)?;
            IndexMode::Ivf { nlist: params[0] as usize, nprobe: params[1] as usize }
        }
        MODE_PQ => {
            need(5)?;
            IndexMode::Pq {
                nlist: params[0] as usize,
                nprobe: params[1] as usize,
                m_sub: params[2] as usize,
                nbits: params[3] as u32,
                rerank: params[4] as usize,
            }
        }
        MODE_SQ8 => {
            need(3)?;
            IndexMode::Sq8 {
                nlist: params[0] as usize,
                nprobe: params[1] as usize,
                rerank: params[2] as usize,
            }
        }
        other => {
            return Err(RetrievalError::BadConfig(format!("unknown index mode tag {other}")))
        }
    };
    mode.validate()?;
    Ok(mode)
}

/// A serializable snapshot of an indexed gallery: the `(id, feature)`
/// entries plus the [`IndexMode`] the system served them in.
#[derive(Debug, Clone, PartialEq)]
pub struct GalleryIndex {
    entries: Vec<(VideoId, Tensor)>,
    mode: IndexMode,
}

impl GalleryIndex {
    /// Snapshots the given `(id, feature)` entries in exact mode.
    pub fn new(entries: Vec<(VideoId, Tensor)>) -> Self {
        GalleryIndex { entries, mode: IndexMode::Exact }
    }

    /// Snapshots entries together with an index mode.
    pub fn with_mode(entries: Vec<(VideoId, Tensor)>, mode: IndexMode) -> Self {
        GalleryIndex { entries, mode }
    }

    /// Extracts the index currently served by a retrieval system,
    /// including its index mode.
    ///
    /// The capture happens under the system's epoch gate — one
    /// consistent cross-shard cut — so a snapshot taken while a
    /// mutation batch or rebalance is publishing always equals exactly
    /// one published epoch, never a half-applied batch or a row caught
    /// mid-move. (To persist without materializing a tensor per row,
    /// use [`GalleryIndex::save_system`].)
    pub fn from_system(system: &RetrievalSystem) -> Self {
        let (_epoch, snaps) = system.snapshot_with_epoch();
        let mut entries = Vec::with_capacity(system.gallery_len());
        for snap in &snaps {
            entries.extend(snap.entries());
        }
        // Deterministic order regardless of shard layout.
        entries.sort_by_key(|(id, _)| (id.class, id.instance));
        GalleryIndex { entries, mode: system.config().index }
    }

    /// Streams a system's gallery straight to `w` in the `DUOINDX2`
    /// format, byte-identical to
    /// `GalleryIndex::from_system(system).write(w)` but writing feature
    /// rows from the shard snapshots' borrowed storage — no per-row
    /// tensor materialization, no gallery copy. Returns the epoch the
    /// snapshot was captured from (under the epoch gate, so the stream
    /// is always one published epoch).
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn write_system<W: Write>(system: &RetrievalSystem, mut w: W) -> Result<u64> {
        let io = |e: std::io::Error| RetrievalError::BadConfig(format!("index write: {e}"));
        let (epoch, snaps) = system.snapshot_with_epoch();
        // Global id order over borrowed rows: sort an (id, shard, row)
        // directory instead of copying features.
        let mut directory: Vec<(VideoId, usize, usize)> = Vec::new();
        for (s, snap) in snaps.iter().enumerate() {
            directory.extend(snap.ids().iter().enumerate().map(|(r, &id)| (id, s, r)));
        }
        directory.sort_by_key(|(id, _, _)| (id.class, id.instance));
        w.write_all(MAGIC_V2).map_err(io)?;
        let (tag, params) = mode_params(system.config().index);
        w.write_all(&[tag]).map_err(io)?;
        for p in params {
            w.write_all(&p.to_le_bytes()).map_err(io)?;
        }
        w.write_all(&(directory.len() as u64).to_le_bytes()).map_err(io)?;
        for (id, shard, row) in directory {
            let feat = snaps[shard].feature(row);
            w.write_all(&id.class.to_le_bytes()).map_err(io)?;
            w.write_all(&id.instance.to_le_bytes()).map_err(io)?;
            w.write_all(&(feat.len() as u64).to_le_bytes()).map_err(io)?;
            for &x in feat {
                w.write_all(&x.to_le_bytes()).map_err(io)?;
            }
        }
        Ok(epoch)
    }

    /// Streams a system's gallery to a file (see
    /// [`GalleryIndex::write_system`]); returns the captured epoch.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn save_system<P: AsRef<Path>>(system: &RetrievalSystem, path: P) -> Result<u64> {
        let file = std::fs::File::create(path)
            .map_err(|e| RetrievalError::BadConfig(format!("index create: {e}")))?;
        Self::write_system(system, std::io::BufWriter::new(file))
    }

    /// Number of indexed videos.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The indexed entries, sorted by id.
    pub fn entries(&self) -> &[(VideoId, Tensor)] {
        &self.entries
    }

    /// The index mode captured in this snapshot.
    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    /// Writes the index in the `DUOINDX2` format.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn write<W: Write>(&self, mut w: W) -> Result<()> {
        let io = |e: std::io::Error| RetrievalError::BadConfig(format!("index write: {e}"));
        w.write_all(MAGIC_V2).map_err(io)?;
        let (tag, params) = mode_params(self.mode);
        w.write_all(&[tag]).map_err(io)?;
        for p in params {
            w.write_all(&p.to_le_bytes()).map_err(io)?;
        }
        w.write_all(&(self.entries.len() as u64).to_le_bytes()).map_err(io)?;
        for (id, feat) in &self.entries {
            w.write_all(&id.class.to_le_bytes()).map_err(io)?;
            w.write_all(&id.instance.to_le_bytes()).map_err(io)?;
            w.write_all(&(feat.len() as u64).to_le_bytes()).map_err(io)?;
            for &x in feat.as_slice() {
                w.write_all(&x.to_le_bytes()).map_err(io)?;
            }
        }
        Ok(())
    }

    /// Reads an index written by [`GalleryIndex::write`]. Legacy
    /// `DUOINDX1` snapshots (no mode header) load as
    /// [`IndexMode::Exact`].
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for I/O failures, bad magic,
    /// or malformed entries.
    pub fn read<R: Read>(mut r: R) -> Result<Self> {
        let io = |e: std::io::Error| RetrievalError::BadConfig(format!("index read: {e}"));
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(io)?;
        let mut u64buf = [0u8; 8];
        let mode = match &magic {
            m if m == MAGIC_V1 => IndexMode::Exact,
            m if m == MAGIC_V2 => {
                let mut tag = [0u8; 1];
                r.read_exact(&mut tag).map_err(io)?;
                let nparams = match tag[0] {
                    MODE_EXACT => 0,
                    MODE_IVF => 2,
                    MODE_PQ => 5,
                    MODE_SQ8 => 3,
                    other => {
                        return Err(RetrievalError::BadConfig(format!(
                            "unknown index mode tag {other}"
                        )))
                    }
                };
                let mut params = Vec::with_capacity(nparams);
                for _ in 0..nparams {
                    r.read_exact(&mut u64buf).map_err(io)?;
                    params.push(u64::from_le_bytes(u64buf));
                }
                mode_from_params(tag[0], &params)?
            }
            _ => return Err(RetrievalError::BadConfig("not a DUOINDX1/DUOINDX2 index".into())),
        };
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u64buf).map_err(io)?;
        let count = u64::from_le_bytes(u64buf) as usize;
        if count > 100_000_000 {
            return Err(RetrievalError::BadConfig(format!("implausible entry count {count}")));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            r.read_exact(&mut u32buf).map_err(io)?;
            let class = u32::from_le_bytes(u32buf);
            r.read_exact(&mut u32buf).map_err(io)?;
            let instance = u32::from_le_bytes(u32buf);
            r.read_exact(&mut u64buf).map_err(io)?;
            let dim = u64::from_le_bytes(u64buf) as usize;
            if dim > 1_000_000 {
                return Err(RetrievalError::BadConfig(format!("implausible feature dim {dim}")));
            }
            let mut data = Vec::with_capacity(dim);
            let mut f32buf = [0u8; 4];
            for _ in 0..dim {
                r.read_exact(&mut f32buf).map_err(io)?;
                data.push(f32::from_le_bytes(f32buf));
            }
            let feat = Tensor::from_vec(data, &[dim])
                .map_err(|e| RetrievalError::BadConfig(format!("index feature: {e}")))?;
            entries.push((VideoId { class, instance }, feat));
        }
        Ok(GalleryIndex { entries, mode })
    }

    /// Saves the index to a file.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let file = std::fs::File::create(path)
            .map_err(|e| RetrievalError::BadConfig(format!("index create: {e}")))?;
        self.write(std::io::BufWriter::new(file))
    }

    /// Loads an index from a file.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = std::fs::File::open(path)
            .map_err(|e| RetrievalError::BadConfig(format!("index open: {e}")))?;
        Self::read(std::io::BufReader::new(file))
    }

    /// Serializes a system as one `DUOINDX3` image: header, shard
    /// directory, then each shard's trained sections (ids, features,
    /// centroids, coarse assignment, codec tables, packed codes) on
    /// 64-byte boundaries. Captured under the epoch gate — the image is
    /// always exactly one published epoch, and the epoch counter itself
    /// is stored so a reload resumes the epoch sequence. Returns the
    /// captured epoch and the image bytes.
    ///
    /// The writer is deterministic: same system state ⇒ same bytes, and
    /// because the trained structures are themselves deterministic in
    /// `(features, seed)`, save→load→save produces a byte-identical
    /// image (a duo-check property).
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] when a shard's mode
    /// disagrees with the system config (cannot happen through public
    /// construction paths).
    pub fn to_v3_bytes(system: &RetrievalSystem) -> Result<(u64, Vec<u8>)> {
        let (epoch, snaps) = system.snapshot_with_epoch();
        let mode = system.config().index;
        let dim = snaps.iter().map(|s| s.dim()).find(|&d| d > 0).unwrap_or(0);
        let (tag, params) = mode_params(mode);

        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V3);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u32::from(tag).to_le_bytes());
        for i in 0..5 {
            buf.extend_from_slice(&params.get(i).copied().unwrap_or(0).to_le_bytes());
        }
        buf.extend_from_slice(&(snaps.len() as u64).to_le_bytes());
        debug_assert_eq!(buf.len(), 64, "V3 header is exactly 64 bytes");

        buf.extend_from_slice(&(dim as u64).to_le_bytes());
        buf.extend_from_slice(&epoch.to_le_bytes());
        buf.extend_from_slice(&(system.gallery_len() as u64).to_le_bytes());

        // Directory: per shard, the row count plus (offset, len) of each
        // section. Offsets are patched in after layout.
        let dir_at = buf.len();
        for snap in &snaps {
            buf.extend_from_slice(&(snap.len() as u64).to_le_bytes());
            buf.extend_from_slice(&[0u8; V3_SECTIONS * 16]);
        }

        let mut sections: Vec<[(u64, u64); V3_SECTIONS]> = Vec::with_capacity(snaps.len());
        for snap in &snaps {
            let parts = snap.parts();
            let mut entry = [(0u64, 0u64); V3_SECTIONS];
            let mut write_section = |slot: usize, bytes: &[u8], buf: &mut Vec<u8>| {
                let pad = (V3_ALIGN - buf.len() % V3_ALIGN) % V3_ALIGN;
                buf.resize(buf.len() + pad, 0);
                entry[slot] = (buf.len() as u64, bytes.len() as u64);
                buf.extend_from_slice(bytes);
            };
            let mut ids = Vec::with_capacity(parts.ids.len() * 8);
            for id in parts.ids {
                ids.extend_from_slice(&id.class.to_le_bytes());
                ids.extend_from_slice(&id.instance.to_le_bytes());
            }
            write_section(0, &ids, &mut buf);
            write_section(1, &f32_bytes(parts.feats), &mut buf);
            write_section(2, &f32_bytes(parts.centroids), &mut buf);
            let mut assign = Vec::with_capacity(parts.assign.len() * 4);
            for a in parts.assign {
                assign.extend_from_slice(&a.to_le_bytes());
            }
            write_section(3, &assign, &mut buf);
            write_section(4, &f32_bytes(&parts.aux), &mut buf);
            write_section(5, parts.codes, &mut buf);
            sections.push(entry);
        }
        // Patch the directory.
        for (s, entry) in sections.iter().enumerate() {
            let mut at = dir_at + s * (8 + V3_SECTIONS * 16) + 8;
            for &(off, len) in entry {
                buf[at..at + 8].copy_from_slice(&off.to_le_bytes());
                buf[at + 8..at + 16].copy_from_slice(&len.to_le_bytes());
                at += 16;
            }
        }
        Ok((epoch, buf))
    }

    /// Writes a `DUOINDX3` whole-system image to a file (see
    /// [`GalleryIndex::to_v3_bytes`]); returns the captured epoch.
    ///
    /// ```no_run
    /// use duo_retrieval::GalleryIndex;
    /// # fn demo(system: &duo_retrieval::RetrievalSystem) -> Result<(), duo_retrieval::RetrievalError> {
    /// let epoch = GalleryIndex::save_system_v3(system, "gallery.duoindx3")?;
    /// assert_eq!(epoch, system.current_epoch());
    /// # Ok(()) }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] wrapping I/O failures.
    pub fn save_system_v3<P: AsRef<Path>>(system: &RetrievalSystem, path: P) -> Result<u64> {
        let (epoch, bytes) = Self::to_v3_bytes(system)?;
        std::fs::write(path, bytes)
            .map_err(|e| RetrievalError::BadConfig(format!("index write: {e}")))?;
        Ok(epoch)
    }
}

/// The f32 slice as little-endian bytes (the layout `DUOINDX3` sections
/// use for every float table).
fn f32_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for &x in data {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// A bounds-checked little-endian reader over a `DUOINDX3` image.
struct V3Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> V3Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            RetrievalError::BadConfig("truncated DUOINDX3 image".to_string())
        })?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// One section slice out of the image, validated against the directory.
fn v3_section(bytes: &[u8], off: u64, len: u64) -> Result<&[u8]> {
    let (off, len) = (off as usize, len as usize);
    if off % V3_ALIGN != 0 {
        return Err(RetrievalError::BadConfig(format!(
            "DUOINDX3 section at {off} is not {V3_ALIGN}-byte aligned"
        )));
    }
    off.checked_add(len)
        .filter(|&e| e <= bytes.len())
        .map(|end| &bytes[off..end])
        .ok_or_else(|| RetrievalError::BadConfig("DUOINDX3 section out of bounds".to_string()))
}

fn v3_f32s(section: &[u8]) -> Vec<f32> {
    section.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))).collect()
}

impl RetrievalSystem {
    /// Rebuilds a retrieval service from a persisted index and a backbone
    /// (restart-without-reindexing: the backbone is only used for *query*
    /// embeddings; gallery features come from the snapshot).
    ///
    /// The serving index mode is taken from `config.index` — the caller
    /// decides, typically forwarding [`GalleryIndex::mode`]. IVF shards
    /// are retrained at load from the snapshot's features with the same
    /// per-shard seeds a fresh build uses. Exact-mode rankings are
    /// bit-identical to the snapshotted system regardless of node count;
    /// IVF rankings can differ from the original when the snapshot's
    /// entries re-shard into different k-means problems (see the
    /// equivalence contract in DESIGN.md §6d).
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for invalid configuration.
    pub fn from_index(
        backbone: Backbone,
        index: &GalleryIndex,
        config: RetrievalConfig,
    ) -> Result<Self> {
        if config.m == 0 || config.nodes == 0 {
            return Err(RetrievalError::BadConfig(format!(
                "m and nodes must be positive, got {config:?}"
            )));
        }
        let mut shards: Vec<Vec<(VideoId, Tensor)>> =
            (0..config.nodes).map(|_| Vec::new()).collect();
        for (i, entry) in index.entries().iter().enumerate() {
            shards[i % config.nodes].push(entry.clone());
        }
        let nodes = shards
            .into_iter()
            .enumerate()
            .map(|(i, entries)| {
                DataNode::with_index_mode(format!("node-{i}"), entries, config.index, shard_seed(i))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(RetrievalSystem::assemble(backbone, nodes, config, index.len()))
    }

    /// Reconstructs a system from a `DUOINDX3` image in memory, without
    /// retraining: shard layout, trained coarse quantizers, codebooks,
    /// packed codes, and the epoch counter all come from the image
    /// exactly as the saved system served them, so the restored service
    /// replays a mutate+query trace bit-identically (telemetry epochs
    /// included). `m`/`threaded`/resilience come from `base`; node count
    /// and index mode come from the image.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for bad magic, truncated or
    /// misaligned sections, or parameters that fail validation.
    pub fn from_v3_bytes(
        backbone: Backbone,
        bytes: &[u8],
        base: RetrievalConfig,
    ) -> Result<Self> {
        if base.m == 0 {
            return Err(RetrievalError::BadConfig(format!(
                "m must be positive, got {base:?}"
            )));
        }
        let mut cur = V3Cursor { bytes, at: 0 };
        if cur.take(8)? != MAGIC_V3 {
            return Err(RetrievalError::BadConfig("not a DUOINDX3 image".into()));
        }
        let version = cur.u32()?;
        if version != 1 {
            return Err(RetrievalError::BadConfig(format!(
                "unsupported DUOINDX3 version {version}"
            )));
        }
        let tag = cur.u32()?;
        let mut params = [0u64; 5];
        for p in &mut params {
            *p = cur.u64()?;
        }
        let tag = u8::try_from(tag)
            .map_err(|_| RetrievalError::BadConfig(format!("implausible mode tag {tag}")))?;
        let mode = mode_from_params(tag, &params)?;
        let shard_count = cur.u64()? as usize;
        if shard_count == 0 || shard_count > 65_536 {
            return Err(RetrievalError::BadConfig(format!(
                "implausible shard count {shard_count}"
            )));
        }
        let dim = cur.u64()? as usize;
        if dim > 1_000_000 {
            return Err(RetrievalError::BadConfig(format!("implausible feature dim {dim}")));
        }
        let epoch = cur.u64()?;
        let total_rows = cur.u64()? as usize;

        let mut nodes = Vec::with_capacity(shard_count);
        let mut seen_rows = 0usize;
        for shard in 0..shard_count {
            let rows = cur.u64()? as usize;
            let mut sections = [(0u64, 0u64); V3_SECTIONS];
            for s in &mut sections {
                *s = (cur.u64()?, cur.u64()?);
            }
            let ids_raw = v3_section(bytes, sections[0].0, sections[0].1)?;
            if ids_raw.len() != rows * 8 {
                return Err(RetrievalError::BadConfig(format!(
                    "shard {shard}: id section holds {} bytes for {rows} rows",
                    ids_raw.len()
                )));
            }
            let ids: Vec<VideoId> = ids_raw
                .chunks_exact(8)
                .map(|c| VideoId {
                    class: u32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
                    instance: u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
                })
                .collect();
            let feats = v3_f32s(v3_section(bytes, sections[1].0, sections[1].1)?);
            let centroids = v3_f32s(v3_section(bytes, sections[2].0, sections[2].1)?);
            let assign: Vec<u32> = v3_section(bytes, sections[3].0, sections[3].1)?
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect();
            let aux = v3_f32s(v3_section(bytes, sections[4].0, sections[4].1)?);
            let codes = v3_section(bytes, sections[5].0, sections[5].1)?.to_vec();
            seen_rows += rows;
            let index = crate::ShardIndex::from_parts(
                ids, feats, dim, mode, centroids, assign, aux, codes,
            )?;
            nodes.push(DataNode::from_prebuilt(
                format!("node-{shard}"),
                index,
                shard_seed(shard),
            ));
        }
        if seen_rows != total_rows {
            return Err(RetrievalError::BadConfig(format!(
                "DUOINDX3 directory claims {total_rows} rows, sections hold {seen_rows}"
            )));
        }
        let config = RetrievalConfig { nodes: shard_count, index: mode, ..base };
        let system = RetrievalSystem::assemble(backbone, nodes, config, total_rows);
        system.restore_epoch(epoch);
        Ok(system)
    }

    /// Loads a `DUOINDX3` whole-system image from a file in a **single
    /// read** (`fs::read`, then in-memory section slicing — no seeks, no
    /// per-entry I/O), reconstructing every shard without retraining.
    /// See [`RetrievalSystem::from_v3_bytes`].
    ///
    /// ```no_run
    /// use duo_retrieval::{RetrievalConfig, RetrievalSystem};
    /// # fn demo(backbone: duo_models::Backbone) -> Result<(), duo_retrieval::RetrievalError> {
    /// let system = RetrievalSystem::load_v3(
    ///     backbone,
    ///     "gallery.duoindx3",
    ///     RetrievalConfig { m: 10, ..RetrievalConfig::default() },
    /// )?;
    /// assert!(system.gallery_len() > 0);
    /// # Ok(()) }
    /// ```
    ///
    /// # Errors
    ///
    /// As for [`RetrievalSystem::from_v3_bytes`], plus wrapped I/O
    /// failures.
    pub fn load_v3<P: AsRef<Path>>(
        backbone: Backbone,
        path: P,
        base: RetrievalConfig,
    ) -> Result<Self> {
        let bytes = std::fs::read(path)
            .map_err(|e| RetrievalError::BadConfig(format!("index open: {e}")))?;
        Self::from_v3_bytes(backbone, &bytes, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::{Architecture, BackboneConfig};
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};

    fn system() -> (RetrievalSystem, SyntheticDataset) {
        let mut rng = Rng64::new(281);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 281, 2, 0);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 8).copied().collect();
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            backbone,
            &ds,
            &gallery,
            RetrievalConfig { m: 5, nodes: 3, threaded: false, ..Default::default() },
        )
        .unwrap();
        (sys, ds)
    }

    #[test]
    fn binary_round_trip_preserves_index() {
        let (sys, _) = system();
        let index = GalleryIndex::from_system(&sys);
        assert_eq!(index.len(), sys.gallery_len());
        let mut buf = Vec::new();
        index.write(&mut buf).unwrap();
        let back = GalleryIndex::read(buf.as_slice()).unwrap();
        assert_eq!(index, back);
    }

    #[test]
    fn round_trip_preserves_ivf_mode() {
        let entries = vec![(
            VideoId { class: 0, instance: 0 },
            Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(),
        )];
        let index = GalleryIndex::with_mode(entries, IndexMode::ivf(16, 4));
        let mut buf = Vec::new();
        index.write(&mut buf).unwrap();
        let back = GalleryIndex::read(buf.as_slice()).unwrap();
        assert_eq!(back.mode(), IndexMode::ivf(16, 4));
        assert_eq!(index, back);
    }

    #[test]
    fn legacy_v1_snapshot_loads_as_exact() {
        // Hand-assemble a DUOINDX1 stream: magic, count, one 2-d entry.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DUOINDX1");
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&0.5f32.to_le_bytes());
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        let index = GalleryIndex::read(buf.as_slice()).unwrap();
        assert_eq!(index.mode(), IndexMode::Exact);
        assert_eq!(index.len(), 1);
        assert_eq!(index.entries()[0].0, VideoId { class: 3, instance: 7 });
    }

    #[test]
    fn restored_service_ranks_identically() {
        let (mut sys, ds) = system();
        let index = GalleryIndex::from_system(&sys);
        // Clone the backbone weights into a fresh system via checkpointing.
        let mut rng = Rng64::new(282);
        let mut restored_backbone =
            Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let params = duo_models::export_params(sys.backbone_mut());
        duo_models::import_params(&mut restored_backbone, &params).unwrap();
        let restored = RetrievalSystem::from_index(
            restored_backbone,
            &index,
            RetrievalConfig { m: 5, nodes: 5, threaded: false, index: index.mode() },
        )
        .unwrap();
        for c in 0..8 {
            let q = ds.video(VideoId { class: c, instance: 1 });
            assert_eq!(sys.retrieve(&q).unwrap(), restored.retrieve(&q).unwrap());
        }
    }

    #[test]
    fn restored_ivf_service_with_full_probe_matches_exact_restore() {
        let (mut sys, ds) = system();
        let snapshot = GalleryIndex::from_system(&sys);
        let params = duo_models::export_params(sys.backbone_mut());
        let make_backbone = || {
            let mut rng = Rng64::new(283);
            let mut b =
                Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
            duo_models::import_params(&mut b, &params).unwrap();
            b
        };
        let exact = RetrievalSystem::from_index(
            make_backbone(),
            &snapshot,
            RetrievalConfig { m: 5, nodes: 4, threaded: false, index: IndexMode::Exact },
        )
        .unwrap();
        // nprobe == nlist: IVF is exhaustive, so the restored services
        // must agree ranking-for-ranking.
        let ivf = RetrievalSystem::from_index(
            make_backbone(),
            &snapshot,
            RetrievalConfig { m: 5, nodes: 4, threaded: false, index: IndexMode::ivf(3, 3) },
        )
        .unwrap();
        for c in 0..8 {
            let q = ds.video(VideoId { class: c, instance: 1 });
            assert_eq!(exact.retrieve(&q).unwrap(), ivf.retrieve(&q).unwrap());
        }
    }

    #[test]
    fn write_system_matches_materialized_snapshot_bytes() {
        let (sys, _) = system();
        // Publish one epoch first so the stream covers mutated state too.
        sys.insert(
            VideoId { class: 200, instance: 0 },
            sys.nodes()[0].snapshot().entries().remove(0).1,
        )
        .unwrap();
        let mut streamed = Vec::new();
        let epoch = GalleryIndex::write_system(&sys, &mut streamed).unwrap();
        assert_eq!(epoch, sys.current_epoch());
        let mut materialized = Vec::new();
        GalleryIndex::from_system(&sys).write(&mut materialized).unwrap();
        assert_eq!(streamed, materialized, "streaming writer must be byte-identical");
    }

    #[test]
    fn snapshot_under_concurrent_mutation_is_one_published_epoch() {
        let (sys, _) = system();
        let base = sys.gallery_len();
        let dim = sys.nodes()[0].snapshot().dim();
        let marker = |k: u32| VideoId { class: 200 + k, instance: 0 };
        let feature = |k: u32| {
            Tensor::from_vec(vec![k as f32 + 1.0; dim], &[dim]).unwrap()
        };

        // Writer: five epoch transactions, each inserting TWO markers in
        // one batch. A torn capture would show an odd marker count.
        const EPOCHS: u32 = 5;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for k in 0..EPOCHS {
                    let batch = crate::MutationBatch::new()
                        .insert(marker(2 * k), feature(2 * k))
                        .insert(marker(2 * k + 1), feature(2 * k + 1));
                    sys.apply(&batch).unwrap();
                }
            });
            // Reader: repeatedly persist mid-mutation and reload. Every
            // capture must equal exactly the published epoch it reports —
            // all of batch `e` and nothing of batch `e + 1`.
            for _ in 0..40 {
                let mut buf = Vec::new();
                let epoch = GalleryIndex::write_system(&sys, &mut buf).unwrap();
                let back = GalleryIndex::read(buf.as_slice()).unwrap();
                let markers: Vec<u32> = back
                    .entries()
                    .iter()
                    .filter(|(id, _)| id.class >= 200)
                    .map(|(id, _)| id.class - 200)
                    .collect();
                assert_eq!(
                    markers.len() as u64,
                    2 * epoch,
                    "epoch {epoch} snapshot shows a half-applied batch: {markers:?}"
                );
                assert_eq!(markers, (0..2 * epoch as u32).collect::<Vec<_>>());
                assert_eq!(back.len(), base + markers.len());
            }
        });

        // After the writer drains, a final capture holds every batch.
        let mut buf = Vec::new();
        let epoch = GalleryIndex::write_system(&sys, &mut buf).unwrap();
        assert_eq!(epoch, u64::from(EPOCHS));
        assert_eq!(GalleryIndex::read(buf.as_slice()).unwrap().len(), base + 10);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(GalleryIndex::read(&b"BADMAGIC"[..]).is_err());
        assert!(RetrievalSystem::from_v3_bytes(
            {
                let mut rng = Rng64::new(7);
                Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap()
            },
            b"BADMAGIC",
            RetrievalConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn v2_round_trip_preserves_compressed_modes() {
        let entries = vec![(
            VideoId { class: 0, instance: 0 },
            Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(),
        )];
        for mode in [IndexMode::pq(16, 4, 2, 8, 32), IndexMode::sq8(8, 2, 0)] {
            let index = GalleryIndex::with_mode(entries.clone(), mode);
            let mut buf = Vec::new();
            index.write(&mut buf).unwrap();
            let back = GalleryIndex::read(buf.as_slice()).unwrap();
            assert_eq!(back.mode(), mode);
            assert_eq!(index, back);
        }
    }

    fn restored_backbone(sys: &mut RetrievalSystem, seed: u64) -> Backbone {
        let params = duo_models::export_params(sys.backbone_mut());
        let mut rng = Rng64::new(seed);
        let mut b = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        duo_models::import_params(&mut b, &params).unwrap();
        b
    }

    /// Rebuilds the persist-test system under a compressed index mode.
    fn compressed_system(mode: IndexMode) -> (RetrievalSystem, SyntheticDataset) {
        let (mut sys, ds) = system();
        let snapshot = GalleryIndex::from_system(&sys);
        let backbone = restored_backbone(&mut sys, 991);
        let restored = RetrievalSystem::from_index(
            backbone,
            &snapshot,
            RetrievalConfig { m: 5, nodes: 3, threaded: false, index: mode },
        )
        .unwrap();
        (restored, ds)
    }

    #[test]
    fn v3_save_load_save_is_byte_identical() {
        for mode in
            [IndexMode::Exact, IndexMode::ivf(3, 2), IndexMode::pq(3, 2, 2, 4, 8), IndexMode::sq8(3, 2, 4)]
        {
            let (mut sys, _) = compressed_system(mode);
            // Mutate so the image covers a published epoch, not just the
            // initial build.
            sys.insert(
                VideoId { class: 201, instance: 0 },
                sys.nodes()[0].snapshot().entries().remove(0).1,
            )
            .unwrap();
            let (epoch, bytes) = GalleryIndex::to_v3_bytes(&sys).unwrap();
            assert_eq!(epoch, 1);
            let backbone = restored_backbone(&mut sys, 992);
            let loaded = RetrievalSystem::from_v3_bytes(
                backbone,
                &bytes,
                RetrievalConfig { m: 5, ..RetrievalConfig::default() },
            )
            .unwrap();
            assert_eq!(loaded.current_epoch(), 1, "epoch counter restores");
            assert_eq!(loaded.config().index, mode);
            let (_, bytes2) = GalleryIndex::to_v3_bytes(&loaded).unwrap();
            assert_eq!(bytes, bytes2, "save -> load -> save must be byte-identical ({mode:?})");
        }
    }

    #[test]
    fn v3_restored_system_replays_mutate_query_trace_bit_identically() {
        let (mut sys, ds) = compressed_system(IndexMode::pq(3, 2, 2, 4, 8));
        let feats: Vec<Tensor> = (0..4)
            .map(|c| sys.embed(&ds.video(VideoId { class: c, instance: 1 })).unwrap())
            .collect();
        // Pre-save mutations so the loaded system starts mid-sequence.
        sys.insert(VideoId { class: 150, instance: 0 }, feats[0].clone()).unwrap();
        sys.rebalance().unwrap();
        let (_, bytes) = GalleryIndex::to_v3_bytes(&sys).unwrap();
        let backbone = restored_backbone(&mut sys, 993);
        let loaded = RetrievalSystem::from_v3_bytes(
            backbone,
            &bytes,
            RetrievalConfig { m: 5, ..RetrievalConfig::default() },
        )
        .unwrap();
        // Same continued trace on both systems: inserts, a delete, a
        // rebalance, queries after every step. Everything must agree —
        // rankings, coverage, telemetry, epochs.
        let script = |s: &RetrievalSystem| {
            let mut trace = Vec::new();
            for (i, f) in feats.iter().enumerate() {
                let t = s.insert(VideoId { class: 160 + i as u32, instance: 0 }, f.clone()).unwrap();
                trace.push((t, s.retrieve_resilient(f).unwrap()));
            }
            let t = s.delete(VideoId { class: 160, instance: 0 }).unwrap();
            trace.push((t, s.retrieve_resilient(&feats[0]).unwrap()));
            let t = s.rebalance().unwrap();
            trace.push((t, s.retrieve_resilient(&feats[3]).unwrap()));
            trace
        };
        assert_eq!(script(&sys), script(&loaded), "loaded system must replay bit-identically");
    }

    #[test]
    fn v3_loads_truncated_image_as_error() {
        let (sys, _) = compressed_system(IndexMode::sq8(3, 2, 0));
        let (_, bytes) = GalleryIndex::to_v3_bytes(&sys).unwrap();
        for cut in [4usize, 63, 64, 200] {
            let mut rng = Rng64::new(7);
            let b = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
            assert!(
                RetrievalSystem::from_v3_bytes(b, &bytes[..cut], RetrievalConfig::default())
                    .is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn v3_file_round_trip_single_read() {
        let (mut sys, ds) = compressed_system(IndexMode::ivf(3, 3));
        let dir = std::env::temp_dir().join("duo_index_v3_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gallery.duoindx3");
        let epoch = GalleryIndex::save_system_v3(&sys, &path).unwrap();
        assert_eq!(epoch, sys.current_epoch());
        let backbone = restored_backbone(&mut sys, 994);
        let loaded = RetrievalSystem::load_v3(
            backbone,
            &path,
            RetrievalConfig { m: 5, ..RetrievalConfig::default() },
        )
        .unwrap();
        assert_eq!(loaded.gallery_len(), sys.gallery_len());
        for c in 0..8 {
            let q = ds.video(VideoId { class: c, instance: 1 });
            assert_eq!(sys.retrieve(&q).unwrap(), loaded.retrieve(&q).unwrap());
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn file_round_trip() {
        let (sys, _) = system();
        let index = GalleryIndex::from_system(&sys);
        let dir = std::env::temp_dir().join("duo_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gallery.duoindx");
        index.save(&path).unwrap();
        assert_eq!(GalleryIndex::load(&path).unwrap(), index);
        let _ = std::fs::remove_file(path);
    }
}
