//! Resilience policy and telemetry for the distributed fan-out path.
//!
//! The chaos layer ([`crate::chaos`]) injects deterministic faults; this
//! module is the machinery that survives them: per-node virtual
//! deadlines, bounded retries with exponential backoff and seeded
//! jitter, optional hedged second attempts, and panic containment. All
//! timing decisions compare *injected virtual latency* against the
//! policy — the wall clock never participates — so a chaos run with a
//! fixed seed produces bit-identical retrieval lists and telemetry
//! counters across runs and across threaded/inline fan-out.

use crate::{BreakerConfig, DataNode, NodeFault, ScoredId};
use duo_tensor::Rng64;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Resilience policy for one retrieval fan-out.
///
/// The default policy is inert — no timeout, no retries, no hedging, no
/// breaker — and reproduces the pre-resilience fan-out bit for bit
/// (modulo panic containment, which turns a crashed node thread into a
/// failed shard instead of a crashed query).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Per-attempt virtual deadline: an answer whose injected
    /// `delay_us` exceeds this counts as a node timeout. `None`
    /// disables timeouts.
    pub node_timeout_us: Option<u64>,
    /// Extra attempts per node per query after the first.
    pub max_retries: u32,
    /// Base of the exponential backoff between attempts, microseconds
    /// (attempt `i` backs off `base << (i-1)` plus jitter). Virtual:
    /// recorded in telemetry, never slept.
    pub backoff_base_us: u64,
    /// Maximum seeded jitter added to each backoff, microseconds.
    pub backoff_jitter_us: u64,
    /// When a successful answer is slower than this, issue one hedged
    /// second attempt and keep the faster of the two. `None` disables
    /// hedging.
    pub hedge_after_us: Option<u64>,
    /// Per-node circuit breakers; `None` disables them.
    pub breaker: Option<BreakerConfig>,
    /// Seed of the backoff-jitter stream (mixed with node index and
    /// attempt number, so it is interleaving-independent).
    pub seed: u64,
    /// Fail queries that any shard sat out ([`crate::RetrievalError::NodeTimeout`] /
    /// [`crate::RetrievalError::DegradedCoverage`]) instead of returning
    /// a partial ranking.
    pub require_full_coverage: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            node_timeout_us: None,
            max_retries: 0,
            backoff_base_us: 0,
            backoff_jitter_us: 0,
            hedge_after_us: None,
            breaker: None,
            seed: 0,
            require_full_coverage: false,
        }
    }
}

impl ResilienceConfig {
    /// A policy that actually fights back: 3 retries over a 10 ms
    /// virtual deadline with backoff, hedging, and a default breaker.
    pub fn hardened(seed: u64) -> Self {
        ResilienceConfig {
            node_timeout_us: Some(10_000),
            max_retries: 3,
            backoff_base_us: 200,
            backoff_jitter_us: 100,
            hedge_after_us: Some(5_000),
            breaker: Some(BreakerConfig::default()),
            seed,
            require_full_coverage: false,
        }
    }
}

/// How many shards answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Shards that contributed candidates.
    pub answered: usize,
    /// Shards configured.
    pub total: usize,
}
duo_tensor::impl_to_json!(struct Coverage { answered, total });

impl Coverage {
    /// Whether every shard answered.
    pub fn is_full(&self) -> bool {
        self.answered == self.total
    }
}

/// Everything the resilience machinery did for one query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryTelemetry {
    /// Retry attempts issued (beyond first attempts).
    pub retries: u64,
    /// Hedged second attempts issued.
    pub hedges: u64,
    /// Attempts that exceeded the virtual per-node deadline.
    pub node_timeouts: u64,
    /// Injected transient failures observed.
    pub transient_faults: u64,
    /// Node panics contained into shard failures.
    pub panics: u64,
    /// Nodes skipped outright by an open breaker.
    pub breaker_skips: u64,
    /// Breaker trips to open caused by this query.
    pub breaker_opens: u64,
    /// Breaker probes admitted (open → half-open) by this query.
    pub breaker_half_opens: u64,
    /// Breaker recoveries (half-open → closed) caused by this query.
    pub breaker_closes: u64,
    /// Total virtual backoff accumulated, microseconds.
    pub backoff_us: u64,
    /// Slowest surviving shard answer, microseconds of virtual latency.
    pub max_delay_us: u64,
    /// Failed shards this query, by node index.
    pub node_failures: Vec<u64>,
}

impl QueryTelemetry {
    /// Zeroed telemetry sized for a system with `nodes` shards.
    pub fn new(nodes: usize) -> Self {
        QueryTelemetry { node_failures: vec![0; nodes], ..QueryTelemetry::default() }
    }
}

/// A retrieval answer that distinguishes full from degraded rankings.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieved {
    /// Global top-`m` over the shards that answered, most similar first.
    pub ids: Vec<duo_video::VideoId>,
    /// How many shards contributed.
    pub coverage: Coverage,
    /// Resilience counters for this query.
    pub telemetry: QueryTelemetry,
    /// The gallery epoch this query was served from: the epoch gate's
    /// value at the instant the per-shard snapshots were captured. Every
    /// shard answer of one query comes from this single epoch, however
    /// many publishes land while the fan-out runs.
    pub epoch: u64,
}

/// Cause of a node sitting a query out, for error selection and
/// per-node failure accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FailCause {
    Offline,
    Transient,
    Timeout,
    Panic,
}

/// Outcome of one node's full attempt loop for one query.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NodeReport {
    pub answer: Option<Vec<ScoredId>>,
    pub failure: Option<FailCause>,
    pub retries: u64,
    pub hedges: u64,
    pub timeouts: u64,
    pub transients: u64,
    pub panics: u64,
    pub backoff_us: u64,
    pub delay_us: u64,
}

impl NodeReport {
    fn empty() -> Self {
        NodeReport {
            answer: None,
            failure: None,
            retries: 0,
            hedges: 0,
            timeouts: 0,
            transients: 0,
            panics: 0,
            backoff_us: 0,
            delay_us: 0,
        }
    }

    pub(crate) fn panicked() -> Self {
        NodeReport { failure: Some(FailCause::Panic), panics: 1, ..NodeReport::empty() }
    }
}

/// Seeded backoff jitter: a pure function of `(seed, node, attempt)`, so
/// it is identical whichever thread runs the attempt loop.
fn backoff_jitter(policy: &ResilienceConfig, node_idx: usize, attempt: u32) -> u64 {
    if policy.backoff_jitter_us == 0 {
        return 0;
    }
    let mut rng = Rng64::new(
        policy
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((node_idx as u64) << 32)
            .wrapping_add(u64::from(attempt)),
    );
    rng.as_rng().next_u64() % policy.backoff_jitter_us
}

/// Runs the full attempt loop (attempt → virtual-deadline check → hedge
/// → retry with backoff) for one node, scoring the index generation
/// `snap` captured at query admission — retries and hedges of one query
/// can never straddle an epoch publish. Panics inside the node query
/// are contained and reported as [`FailCause::Panic`].
pub(crate) fn query_node(
    node: &DataNode,
    snap: &crate::ShardIndex,
    node_idx: usize,
    query: &duo_tensor::Tensor,
    m: usize,
    policy: &ResilienceConfig,
) -> NodeReport {
    let mut report = NodeReport::empty();
    let mut attempt: u32 = 0;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| node.try_query_at(snap, query, m)));
        let cause = match outcome {
            Err(_) => {
                report.panics += 1;
                FailCause::Panic
            }
            Ok(Err(NodeFault::Offline)) => FailCause::Offline,
            Ok(Err(NodeFault::Panicked)) => {
                report.panics += 1;
                FailCause::Panic
            }
            Ok(Err(NodeFault::Transient)) => {
                report.transients += 1;
                FailCause::Transient
            }
            Ok(Ok(answer)) => {
                let timed_out =
                    policy.node_timeout_us.is_some_and(|t| answer.delay_us > t);
                if timed_out {
                    report.timeouts += 1;
                    FailCause::Timeout
                } else {
                    let mut delay_us = answer.delay_us;
                    // Slow-but-alive shard: hedge once and keep the
                    // faster (virtual) answer. Shard scans are
                    // deterministic, so result lists agree; only the
                    // latency and fault verdict can differ.
                    if let Some(hedge_after) = policy.hedge_after_us {
                        if delay_us > hedge_after {
                            report.hedges += 1;
                            if let Ok(Ok(second)) =
                                catch_unwind(AssertUnwindSafe(|| node.try_query_at(snap, query, m)))
                            {
                                let hedged = hedge_after + second.delay_us;
                                let second_ok = !policy
                                    .node_timeout_us
                                    .is_some_and(|t| second.delay_us > t);
                                if second_ok && hedged < delay_us {
                                    delay_us = hedged;
                                }
                            }
                        }
                    }
                    report.answer = Some(answer.results);
                    report.delay_us = delay_us;
                    return report;
                }
            }
        };
        // A hard-offline node (no fault plan, or plan says nothing) will
        // not recover within this query: retrying only burns budget.
        let retryable = !(cause == FailCause::Offline && node.fault_plan().is_none());
        if !retryable || attempt >= policy.max_retries {
            report.failure = Some(cause);
            return report;
        }
        attempt += 1;
        report.retries += 1;
        let backoff = policy
            .backoff_base_us
            .saturating_shl(attempt - 1)
            .saturating_add(backoff_jitter(policy, node_idx, attempt));
        report.backoff_us += backoff;
    }
}

/// `u64::checked_shl` that saturates instead of wrapping, local helper
/// for exponential backoff growth.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            0
        } else if shift > self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use duo_tensor::Tensor;
    use duo_video::VideoId;

    fn node_with_plan(plan: Option<FaultPlan>) -> DataNode {
        let node = DataNode::new(
            "n0",
            vec![
                (VideoId { class: 0, instance: 0 }, Tensor::from_vec(vec![0.0], &[1]).unwrap()),
                (VideoId { class: 1, instance: 0 }, Tensor::from_vec(vec![1.0], &[1]).unwrap()),
            ],
        );
        node.set_fault_plan(plan);
        node
    }

    fn q() -> Tensor {
        Tensor::from_vec(vec![0.1], &[1]).unwrap()
    }

    #[test]
    fn clean_node_answers_first_attempt() {
        let node = node_with_plan(None);
        let report = query_node(&node, &node.snapshot(), 0, &q(), 2, &ResilienceConfig::default());
        assert_eq!(report.answer.as_ref().map(Vec::len), Some(2));
        assert_eq!(report.retries, 0);
        assert_eq!(report.failure, None);
    }

    #[test]
    fn retries_ride_out_transient_faults() {
        // Schedule: find a seed index pattern where attempt 0 is
        // transient and a later attempt succeeds; with p=1.0 every
        // attempt fails, with p small enough retries recover.
        let plan = FaultPlan::transient(1234, 0.6);
        let node = node_with_plan(Some(plan.clone()));
        let policy =
            ResilienceConfig { max_retries: 16, backoff_base_us: 10, ..ResilienceConfig::default() };
        let report = query_node(&node, &node.snapshot(), 0, &q(), 2, &policy);
        assert!(report.answer.is_some(), "16 retries beat p=0.6 transients: {report:?}");
        let schedule = plan.schedule(report.retries + 1);
        let expected_failures = schedule.iter().filter(|d| d.transient).count() as u64;
        assert_eq!(report.transients, expected_failures);
        assert_eq!(report.retries, expected_failures, "one retry per transient");
    }

    #[test]
    fn always_failing_node_exhausts_retries() {
        let node = node_with_plan(Some(FaultPlan::transient(5, 1.0)));
        let policy = ResilienceConfig { max_retries: 3, ..ResilienceConfig::default() };
        let report = query_node(&node, &node.snapshot(), 0, &q(), 2, &policy);
        assert_eq!(report.answer, None);
        assert_eq!(report.failure, Some(FailCause::Transient));
        assert_eq!(report.retries, 3);
        assert_eq!(report.transients, 4, "initial attempt plus three retries");
    }

    #[test]
    fn hard_offline_is_not_retried() {
        let node = node_with_plan(None);
        node.set_offline();
        let policy = ResilienceConfig { max_retries: 5, ..ResilienceConfig::default() };
        let report = query_node(&node, &node.snapshot(), 0, &q(), 2, &policy);
        assert_eq!(report.failure, Some(FailCause::Offline));
        assert_eq!(report.retries, 0, "hard-down nodes are failed fast");
    }

    #[test]
    fn virtual_timeout_fails_slow_answers() {
        let node = node_with_plan(Some(FaultPlan::none(9).with_latency(5_000, 0, 0.0, 0)));
        let policy =
            ResilienceConfig { node_timeout_us: Some(1_000), ..ResilienceConfig::default() };
        let report = query_node(&node, &node.snapshot(), 0, &q(), 2, &policy);
        assert_eq!(report.failure, Some(FailCause::Timeout));
        assert_eq!(report.timeouts, 1);
    }

    #[test]
    fn hedge_takes_the_faster_attempt() {
        // Base latency 6 ms with no jitter: first answer is slow, the
        // hedge costs 1 ms + 6 ms = 7 ms > 6 ms, so the first answer's
        // delay stands — but the hedge is counted.
        let node = node_with_plan(Some(FaultPlan::none(3).with_latency(6_000, 0, 0.0, 0)));
        let policy =
            ResilienceConfig { hedge_after_us: Some(1_000), ..ResilienceConfig::default() };
        let report = query_node(&node, &node.snapshot(), 0, &q(), 2, &policy);
        assert_eq!(report.hedges, 1);
        assert_eq!(report.delay_us, 6_000);
        assert!(report.answer.is_some());
    }

    #[test]
    fn backoff_grows_exponentially_and_jitter_is_deterministic() {
        let node = node_with_plan(Some(FaultPlan::transient(5, 1.0)));
        let policy = ResilienceConfig {
            max_retries: 3,
            backoff_base_us: 100,
            backoff_jitter_us: 50,
            seed: 77,
            ..ResilienceConfig::default()
        };
        let a = query_node(&node, &node.snapshot(), 0, &q(), 2, &policy);
        let b = query_node(&node, &node.snapshot(), 0, &q(), 2, &policy);
        assert_eq!(a.backoff_us, b.backoff_us, "jitter is seeded, not sampled from time");
        let base: u64 = 100 + 200 + 400;
        assert!(a.backoff_us >= base && a.backoff_us < base + 3 * 50, "{}", a.backoff_us);
    }

    #[test]
    fn saturating_shl_never_wraps() {
        assert_eq!(1u64.saturating_shl(63), 1 << 63);
        assert_eq!(1u64.saturating_shl(64), u64::MAX);
        assert_eq!(0u64.saturating_shl(200), 0);
        assert_eq!(3u64.saturating_shl(63), u64::MAX);
    }
}
