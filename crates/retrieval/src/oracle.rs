//! The query interface attacks are written against.
//!
//! The paper's adversary interacts with the victim purely through
//! retrieval lists `R^m(v)`. [`QueryOracle`] captures exactly that
//! surface, so attack implementations are agnostic to *how* queries reach
//! the system — directly through an in-process [`crate::BlackBox`], or
//! through a serving layer with batching and rate limits in front of it.

use crate::Result;
use duo_video::{Video, VideoId};

/// Black-box query access to a victim retrieval system.
///
/// Implementations must:
///
/// * return the top-`m` retrieval list for a submitted video;
/// * count every executed query (`queries_used`);
/// * reject queries past an optional hard budget with
///   [`crate::RetrievalError::BudgetExhausted`], *without* counting the
///   rejected query.
pub trait QueryOracle {
    /// Submits a query video and returns `R^m(v)`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RetrievalError::BudgetExhausted`] when the query
    /// budget is spent, and propagates retrieval failures.
    fn retrieve(&mut self, video: &Video) -> Result<Vec<VideoId>>;

    /// Number of queries executed so far.
    fn queries_used(&self) -> u64;

    /// The remaining budget, if one is set.
    fn budget_remaining(&self) -> Option<u64>;

    /// Length `m` of returned retrieval lists.
    fn m(&self) -> usize;
}
