use duo_models::ModelError;
use std::fmt;

/// Error type for the retrieval system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetrievalError {
    /// Feature extraction failed.
    Model(ModelError),
    /// The system was configured with invalid parameters.
    BadConfig(String),
    /// Every data node is offline; no shard can answer.
    AllNodesOffline,
    /// A data node failed to answer within its per-node deadline (after
    /// any retries). Surfaced when the caller requires full coverage;
    /// the lenient path degrades to partial coverage instead.
    NodeTimeout {
        /// Name of the node that timed out.
        node: String,
    },
    /// Fewer shards than configured answered the query and the caller
    /// required full coverage. `answered` is always nonzero — a total
    /// outage is [`RetrievalError::AllNodesOffline`].
    DegradedCoverage {
        /// Shards that answered.
        answered: usize,
        /// Shards configured.
        total: usize,
    },
    /// The client's query budget is spent; the query was not executed.
    ///
    /// Carried as a dedicated variant (rather than a config-error string)
    /// so attack loops can match on it and stop gracefully with their
    /// best-so-far result.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The serving layer's streaming defense escalated this account to
    /// hard rejection; the query was not executed and not charged.
    ///
    /// A dedicated variant for the same reason as
    /// [`RetrievalError::BudgetExhausted`]: campaign runners match on it
    /// to record "the blue team cut this lane off" as an outcome, not an
    /// infrastructure failure.
    Quarantined {
        /// Accumulated detector flags on the account at rejection time.
        flags: u64,
    },
}

impl fmt::Display for RetrievalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrievalError::Model(e) => write!(f, "model error: {e}"),
            RetrievalError::BadConfig(msg) => write!(f, "bad retrieval config: {msg}"),
            RetrievalError::AllNodesOffline => write!(f, "all data nodes are offline"),
            RetrievalError::NodeTimeout { node } => {
                write!(f, "data node {node} timed out")
            }
            RetrievalError::DegradedCoverage { answered, total } => {
                write!(f, "degraded coverage: only {answered} of {total} shards answered")
            }
            RetrievalError::BudgetExhausted { budget } => {
                write!(f, "query budget of {budget} exhausted")
            }
            RetrievalError::Quarantined { flags } => {
                write!(f, "account quarantined by streaming defense ({flags} flags)")
            }
        }
    }
}

impl std::error::Error for RetrievalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RetrievalError::Model(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<ModelError> for RetrievalError {
    fn from(e: ModelError) -> Self {
        RetrievalError::Model(e)
    }
}
