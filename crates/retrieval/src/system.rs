use crate::resilience::{query_node, FailCause, NodeReport};
use crate::{
    shard_seed, BreakerState, CircuitBreaker, Coverage, DataNode, IndexMode, IndexStats,
    QueryTelemetry, ResilienceConfig, Retrieved, RetrievalError, Result, ScoredId,
};
use duo_models::Backbone;
use duo_tensor::Tensor;
use duo_video::{SyntheticDataset, Video, VideoId};
use std::sync::Mutex;

/// Configuration of the distributed retrieval service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetrievalConfig {
    /// Number of videos in the returned list `R^m(v)`.
    pub m: usize,
    /// Number of data-node shards the gallery is spread over.
    pub nodes: usize,
    /// Whether node fan-out runs on scoped threads (true) or inline
    /// (false). Thread fan-out demonstrates the distributed query path;
    /// inline is faster on a single core.
    pub threaded: bool,
    /// How each shard indexes its gallery slice: [`IndexMode::Exact`]
    /// (the default; bit-identical to an exhaustive scan) or
    /// [`IndexMode::Ivf`] (sublinear approximate search with exact
    /// re-ranking inside the probed lists). See [`crate::index`].
    pub index: IndexMode,
}
duo_tensor::impl_to_json!(struct RetrievalConfig { m, nodes, threaded, index });

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig { m: 10, nodes: 4, threaded: false, index: IndexMode::Exact }
    }
}

/// The victim video retrieval system: trained backbone + sharded gallery.
///
/// `retrieve` implements the full service path: feature extraction, fan-out
/// to every online [`DataNode`], and a merge of local candidates into the
/// global top-`m`.
pub struct RetrievalSystem {
    backbone: Backbone,
    nodes: Vec<DataNode>,
    config: RetrievalConfig,
    gallery_len: usize,
    resilience: ResilienceConfig,
    /// Per-node circuit breakers, created lazily on the first query
    /// under a breaker-enabled policy. Behind a mutex because the whole
    /// retrieval path takes `&self`; held only for admission/recording,
    /// never across shard work.
    breakers: Mutex<Vec<CircuitBreaker>>,
}

impl std::fmt::Debug for RetrievalSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetrievalSystem")
            .field("arch", &self.backbone.arch())
            .field("gallery", &self.gallery_len)
            .field("config", &self.config)
            .finish()
    }
}

impl RetrievalSystem {
    /// Indexes `gallery` under `backbone` and shards it over data nodes.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for zero `m`/`nodes` and
    /// propagates feature-extraction failures.
    pub fn build(
        backbone: Backbone,
        dataset: &SyntheticDataset,
        gallery: &[VideoId],
        config: RetrievalConfig,
    ) -> Result<Self> {
        Self::build_with_workers(backbone, dataset, gallery, config, 1)
    }

    /// Like [`RetrievalSystem::build`], but extracts gallery features on
    /// `workers` scoped threads sharing one immutable backbone. Produces
    /// a system with *bit-identical* retrieval behaviour to the serial
    /// build — indexing a large gallery is the one embarrassingly
    /// parallel step of service construction.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for zero `m`/`nodes`/`workers`
    /// and propagates feature-extraction failures.
    pub fn build_parallel(
        backbone: Backbone,
        dataset: &SyntheticDataset,
        gallery: &[VideoId],
        config: RetrievalConfig,
        workers: usize,
    ) -> Result<Self> {
        if workers == 0 {
            return Err(RetrievalError::BadConfig(format!(
                "m, nodes and workers must be positive, got {config:?} with {workers} workers"
            )));
        }
        Self::build_with_workers(backbone, dataset, gallery, config, workers)
    }

    /// Common indexing path: extract every gallery feature (in gallery
    /// order, on up to `workers` threads sharing `&backbone`), then deal
    /// the features round-robin over the shards. Shard layout is a
    /// function of gallery order alone, so worker count never changes the
    /// resulting system.
    fn build_with_workers(
        backbone: Backbone,
        dataset: &SyntheticDataset,
        gallery: &[VideoId],
        config: RetrievalConfig,
        workers: usize,
    ) -> Result<Self> {
        if config.m == 0 || config.nodes == 0 {
            return Err(RetrievalError::BadConfig(format!(
                "m and nodes must be positive, got {config:?}"
            )));
        }
        let feats: Vec<Tensor> = if workers <= 1 {
            let mut feats = Vec::with_capacity(gallery.len());
            for &id in gallery {
                feats.push(backbone.extract(&dataset.video(id))?);
            }
            feats
        } else {
            let videos: Vec<_> = gallery.iter().map(|&id| dataset.video(id)).collect();
            let refs: Vec<&_> = videos.iter().collect();
            backbone.extract_batch(&refs, workers)?
        };
        let mut shards: Vec<Vec<(VideoId, Tensor)>> =
            (0..config.nodes).map(|_| Vec::new()).collect();
        for (i, (&id, feat)) in gallery.iter().zip(feats).enumerate() {
            shards[i % config.nodes].push((id, feat));
        }
        let nodes = shards
            .into_iter()
            .enumerate()
            .map(|(i, entries)| {
                DataNode::with_index_mode(format!("node-{i}"), entries, config.index, shard_seed(i))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(RetrievalSystem {
            backbone,
            nodes,
            config,
            gallery_len: gallery.len(),
            resilience: ResilienceConfig::default(),
            breakers: Mutex::new(Vec::new()),
        })
    }

    /// Assembles a system from prebuilt shards (used by index restore).
    pub(crate) fn assemble(
        backbone: Backbone,
        nodes: Vec<DataNode>,
        config: RetrievalConfig,
        gallery_len: usize,
    ) -> Self {
        RetrievalSystem {
            backbone,
            nodes,
            config,
            gallery_len,
            resilience: ResilienceConfig::default(),
            breakers: Mutex::new(Vec::new()),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> RetrievalConfig {
        self.config
    }

    /// Number of indexed gallery videos.
    pub fn gallery_len(&self) -> usize {
        self.gallery_len
    }

    /// The data-node shards (for failure injection in tests).
    pub fn nodes(&self) -> &[DataNode] {
        &self.nodes
    }

    /// Shard-index scan counters summed over every node: queries, probed
    /// lists, kernel rows, and the running recall@m audit (see
    /// [`IndexStats`]). All zeros until the first query.
    pub fn index_stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for node in &self.nodes {
            total.merge(&node.index_stats());
        }
        total
    }

    /// Read access to the victim backbone (white-box evaluations and
    /// defense harnesses use this; the black-box attacker surface is
    /// [`crate::BlackBox`]).
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// Mutable access to the victim backbone (training-path evaluations
    /// that need input gradients through the victim use this).
    pub fn backbone_mut(&mut self) -> &mut Backbone {
        &mut self.backbone
    }

    /// Extracts the victim's embedding for a video.
    ///
    /// Pure inference (`&self`): one system can embed queries for many
    /// threads concurrently.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn embed(&self, video: &Video) -> Result<Tensor> {
        Ok(self.backbone.extract(video)?)
    }

    /// Extracts victim embeddings for a batch of queries, fanning the
    /// per-item work over up to `workers` threads. Bit-identical to
    /// calling [`RetrievalSystem::embed`] per item, in input order.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn embed_batch(&self, videos: &[&Video], workers: usize) -> Result<Vec<Tensor>> {
        Ok(self.backbone.extract_batch(videos, workers)?)
    }

    /// Full retrieval path: returns the global top-`m` gallery ids for the
    /// query video, most similar first.
    ///
    /// Takes `&self` end to end — extraction, fan-out and merge are all
    /// read-only — so a single system instance is safely shared across
    /// serving threads without a global lock.
    ///
    /// # Example
    ///
    /// ```
    /// use duo_retrieval::{IndexMode, RetrievalConfig, RetrievalSystem};
    /// use duo_models::{Architecture, Backbone, BackboneConfig};
    /// use duo_tensor::Rng64;
    /// use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};
    ///
    /// let mut rng = Rng64::new(7);
    /// let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 2, 1, 0);
    /// let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng)?;
    /// let config = RetrievalConfig { m: 3, index: IndexMode::Exact, ..RetrievalConfig::default() };
    /// let system = RetrievalSystem::build(backbone, &ds, ds.train(), config)?;
    ///
    /// let query = ds.video(ds.train()[0]);
    /// let top_m = system.retrieve(&query)?;
    /// // A gallery video retrieves itself at rank 1 (distance zero).
    /// assert_eq!(top_m[0], ds.train()[0]);
    /// assert_eq!(top_m.len(), 3);
    /// # Ok::<(), duo_retrieval::RetrievalError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::AllNodesOffline`] when no shard can
    /// answer, and propagates feature-extraction failures.
    pub fn retrieve(&self, video: &Video) -> Result<Vec<VideoId>> {
        let query = self.backbone.extract(video)?;
        self.retrieve_by_feature(&query)
    }

    /// The system's standing resilience policy, used by
    /// [`RetrievalSystem::retrieve_by_feature`] and
    /// [`RetrievalSystem::retrieve_resilient`].
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// Replaces the standing resilience policy (resets the circuit
    /// breakers, since thresholds may have changed).
    pub fn set_resilience(&mut self, policy: ResilienceConfig) {
        self.resilience = policy;
        self.breakers.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Current circuit-breaker states, one per node — `None` until a
    /// breaker-enabled query has run.
    pub fn breaker_states(&self) -> Option<Vec<BreakerState>> {
        let breakers = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
        if breakers.is_empty() {
            None
        } else {
            Some(breakers.iter().map(CircuitBreaker::state).collect())
        }
    }

    /// Retrieval from a precomputed query embedding.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::AllNodesOffline`] when no shard answers.
    pub fn retrieve_by_feature(&self, query: &Tensor) -> Result<Vec<VideoId>> {
        self.retrieve_with(query, &self.resilience).map(|r| r.ids)
    }

    /// Retrieval under the standing resilience policy, returning the
    /// full [`Retrieved`] shape so callers can distinguish complete from
    /// degraded (partial-shard) rankings and account retries/hedges.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::AllNodesOffline`] when coverage is
    /// zero, and — only under `require_full_coverage` —
    /// [`RetrievalError::NodeTimeout`] / [`RetrievalError::DegradedCoverage`]
    /// for partial coverage.
    pub fn retrieve_resilient(&self, query: &Tensor) -> Result<Retrieved> {
        self.retrieve_with(query, &self.resilience)
    }

    /// Retrieval under an explicit resilience policy.
    ///
    /// Node panics are contained: a panicking shard counts as that node
    /// failing the query, never as a crashed retrieval. All retry,
    /// timeout, hedge, and breaker decisions compare injected *virtual*
    /// latency against the policy — no wall clock — so results and
    /// telemetry are bit-identical across threaded and inline fan-out.
    ///
    /// # Errors
    ///
    /// As for [`RetrievalSystem::retrieve_resilient`].
    pub fn retrieve_with(&self, query: &Tensor, policy: &ResilienceConfig) -> Result<Retrieved> {
        let m = self.config.m;
        let total = self.nodes.len();
        let mut telemetry = QueryTelemetry::new(total);

        // Breaker admission runs sequentially in node order (never
        // inside the fan-out threads), so breaker trajectories are
        // independent of thread interleavings.
        let admitted: Vec<bool> = match &policy.breaker {
            None => vec![true; total],
            Some(cfg) => {
                let mut breakers = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
                if breakers.len() != total {
                    *breakers = (0..total).map(|_| CircuitBreaker::new(*cfg)).collect();
                }
                breakers
                    .iter_mut()
                    .map(|b| {
                        let before = b.transitions();
                        let ok = b.admit();
                        telemetry.breaker_half_opens +=
                            b.transitions().half_opens - before.half_opens;
                        if !ok {
                            telemetry.breaker_skips += 1;
                        }
                        ok
                    })
                    .collect()
            }
        };

        let reports: Vec<Option<NodeReport>> = if self.config.threaded {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(idx, node)| {
                        let run = admitted[idx];
                        scope.spawn(move || {
                            run.then(|| query_node(node, idx, query, m, policy))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or(Some(NodeReport::panicked())))
                    .collect()
            })
        } else {
            self.nodes
                .iter()
                .enumerate()
                .map(|(idx, node)| admitted[idx].then(|| query_node(node, idx, query, m, policy)))
                .collect()
        };

        // Breaker outcome recording, again sequential in node order.
        if policy.breaker.is_some() {
            let mut breakers = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
            for (breaker, report) in breakers.iter_mut().zip(&reports) {
                let Some(report) = report else { continue };
                let before = breaker.transitions();
                if report.answer.is_some() {
                    breaker.record_success();
                } else {
                    breaker.record_failure();
                }
                let after = breaker.transitions();
                telemetry.breaker_opens += after.opens - before.opens;
                telemetry.breaker_closes += after.closes - before.closes;
            }
        }

        let mut merged: Vec<ScoredId> = Vec::new();
        let mut answered = 0usize;
        let mut first_failure: Option<(usize, FailCause)> = None;
        for (idx, report) in reports.into_iter().enumerate() {
            let Some(report) = report else { continue }; // breaker skip
            telemetry.retries += report.retries;
            telemetry.hedges += report.hedges;
            telemetry.node_timeouts += report.timeouts;
            telemetry.transient_faults += report.transients;
            telemetry.panics += report.panics;
            telemetry.backoff_us += report.backoff_us;
            match report.answer {
                Some(local) => {
                    answered += 1;
                    telemetry.max_delay_us = telemetry.max_delay_us.max(report.delay_us);
                    merged.extend(local);
                }
                None => {
                    telemetry.node_failures[idx] += 1;
                    if first_failure.is_none() {
                        first_failure =
                            Some((idx, report.failure.unwrap_or(FailCause::Offline)));
                    }
                }
            }
        }
        if answered == 0 {
            return Err(RetrievalError::AllNodesOffline);
        }
        let coverage = Coverage { answered, total };
        if policy.require_full_coverage && !coverage.is_full() {
            return Err(match first_failure {
                Some((idx, FailCause::Timeout)) => {
                    RetrievalError::NodeTimeout { node: self.nodes[idx].name().to_string() }
                }
                _ => RetrievalError::DegradedCoverage { answered, total },
            });
        }
        merged.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| (a.id.class, a.id.instance).cmp(&(b.id.class, b.id.instance)))
        });
        merged.truncate(m);
        Ok(Retrieved { ids: merged.into_iter().map(|s| s.id).collect(), coverage, telemetry })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::{Architecture, BackboneConfig};
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, DatasetKind};

    fn small_system(threaded: bool) -> (RetrievalSystem, SyntheticDataset) {
        let mut rng = Rng64::new(131);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 3, 1, 0);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 12).copied().collect();
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let config = RetrievalConfig { m: 5, nodes: 3, threaded, ..RetrievalConfig::default() };
        (RetrievalSystem::build(backbone, &ds, &gallery, config).unwrap(), ds)
    }

    #[test]
    fn retrieve_returns_m_results_most_similar_first() {
        let (sys, ds) = small_system(false);
        let probe = ds.video(VideoId { class: 0, instance: 0 });
        let result = sys.retrieve(&probe).unwrap();
        assert_eq!(result.len(), 5);
        // The exact gallery video must rank first (distance 0 to itself).
        assert_eq!(result[0], VideoId { class: 0, instance: 0 });
    }

    #[test]
    fn threaded_and_inline_fanout_agree() {
        let (a, ds) = small_system(false);
        let (b, _) = small_system(true);
        let probe = ds.video(VideoId { class: 3, instance: 0 });
        assert_eq!(a.retrieve(&probe).unwrap(), b.retrieve(&probe).unwrap());
    }

    #[test]
    fn node_failure_degrades_but_does_not_corrupt() {
        let (sys, ds) = small_system(false);
        let probe = ds.video(VideoId { class: 0, instance: 0 });
        let full = sys.retrieve(&probe).unwrap();
        sys.nodes()[0].set_offline();
        let degraded = sys.retrieve(&probe).unwrap();
        assert_eq!(degraded.len(), 5);
        // Every returned id must still come from an online shard, and the
        // order must remain globally sorted (a subsequence check against
        // the full ranking over surviving ids).
        let survivors: Vec<VideoId> =
            full.iter().copied().filter(|id| degraded.contains(id)).collect();
        let filtered: Vec<VideoId> =
            degraded.iter().copied().filter(|id| full.contains(id)).collect();
        assert_eq!(survivors, filtered, "relative order must be preserved");
    }

    #[test]
    fn all_nodes_offline_is_an_error() {
        let (sys, ds) = small_system(false);
        for node in sys.nodes() {
            node.set_offline();
        }
        let probe = ds.video(VideoId { class: 0, instance: 0 });
        assert!(matches!(sys.retrieve(&probe), Err(RetrievalError::AllNodesOffline)));
    }

    #[test]
    fn parallel_build_matches_serial_exactly() {
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 31, 1, 1);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 10).copied().collect();
        let config = RetrievalConfig { m: 5, nodes: 3, threaded: false, ..Default::default() };
        // Identical weights in both builds via a shared seed.
        let serial = {
            let mut rng = Rng64::new(132);
            let b = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
            RetrievalSystem::build(b, &ds, &gallery, config).unwrap()
        };
        let parallel = {
            let mut rng = Rng64::new(132);
            let b = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
            RetrievalSystem::build_parallel(b, &ds, &gallery, config, 4).unwrap()
        };
        assert_eq!(parallel.gallery_len(), serial.gallery_len());
        for &id in ds.test().iter().filter(|id| id.class < 10) {
            let q = ds.video(id);
            assert_eq!(
                serial.retrieve(&q).unwrap(),
                parallel.retrieve(&q).unwrap(),
                "parallel indexing must be bit-identical"
            );
        }
    }

    #[test]
    fn parallel_build_rejects_zero_workers() {
        let mut rng = Rng64::new(133);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 31, 1, 0);
        let b = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let config = RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() };
        assert!(RetrievalSystem::build_parallel(b, &ds, ds.train(), config, 0).is_err());
    }

    #[test]
    fn rejects_zero_m() {
        let mut rng = Rng64::new(132);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 3, 1, 0);
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let bad = RetrievalConfig { m: 0, nodes: 1, threaded: false, ..Default::default() };
        assert!(RetrievalSystem::build(backbone, &ds, ds.train(), bad).is_err());
    }

    #[test]
    fn ivf_system_builds_and_retrieves_self() {
        let mut rng = Rng64::new(134);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 3, 1, 0);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 12).copied().collect();
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let config = RetrievalConfig {
            m: 5,
            nodes: 3,
            index: IndexMode::ivf(4, 4),
            ..Default::default()
        };
        let sys = RetrievalSystem::build(backbone, &ds, &gallery, config).unwrap();
        let probe = ds.video(VideoId { class: 0, instance: 0 });
        let result = sys.retrieve(&probe).unwrap();
        assert_eq!(result[0], VideoId { class: 0, instance: 0 });
        let stats = sys.index_stats();
        assert_eq!(stats.queries, 3, "one shard search per node");
        assert!(stats.probed_lists > 0);
    }

    #[test]
    fn rejects_invalid_ivf_config() {
        let mut rng = Rng64::new(135);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 3, 1, 0);
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let bad = RetrievalConfig { index: IndexMode::ivf(2, 5), ..Default::default() };
        assert!(RetrievalSystem::build(backbone, &ds, ds.train(), bad).is_err());
    }
}
