use crate::resilience::{query_node, FailCause, NodeReport};
use crate::{
    shard_seed, BreakerState, CircuitBreaker, Coverage, DataNode, EpochTransition, IndexMode,
    IndexStats, Mutation, MutationBatch, MutationStats, QueryTelemetry, ResilienceConfig,
    Retrieved, RetrievalError, Result, ScoredId, ShardIndex,
};
use duo_models::Backbone;
use duo_tensor::Tensor;
use duo_video::{SyntheticDataset, Video, VideoId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Configuration of the distributed retrieval service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetrievalConfig {
    /// Number of videos in the returned list `R^m(v)`.
    pub m: usize,
    /// Number of data-node shards the gallery is spread over.
    pub nodes: usize,
    /// Whether node fan-out runs on scoped threads (true) or inline
    /// (false). Thread fan-out demonstrates the distributed query path;
    /// inline is faster on a single core.
    pub threaded: bool,
    /// How each shard indexes its gallery slice: [`IndexMode::Exact`]
    /// (the default; bit-identical to an exhaustive scan),
    /// [`IndexMode::Ivf`] (sublinear approximate search with exact
    /// re-ranking inside the probed lists), or the compressed modes
    /// [`IndexMode::Pq`] / [`IndexMode::Sq8`] (residual codes scanned
    /// in place of the f32 features, with an optional exact rerank
    /// tail). See [`crate::index`].
    pub index: IndexMode,
}
duo_tensor::impl_to_json!(struct RetrievalConfig { m, nodes, threaded, index });

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig { m: 10, nodes: 4, threaded: false, index: IndexMode::Exact }
    }
}

/// The victim video retrieval system: trained backbone + sharded gallery.
///
/// `retrieve` implements the full service path: feature extraction, fan-out
/// to every online [`DataNode`], and a merge of local candidates into the
/// global top-`m`.
pub struct RetrievalSystem {
    backbone: Backbone,
    nodes: Vec<DataNode>,
    config: RetrievalConfig,
    gallery_len: AtomicUsize,
    resilience: ResilienceConfig,
    /// Per-node circuit breakers, created lazily on the first query
    /// under a breaker-enabled policy. Behind a mutex because the whole
    /// retrieval path takes `&self`; held only for admission/recording,
    /// never across shard work.
    breakers: Mutex<Vec<CircuitBreaker>>,
    /// The epoch gate. Queries hold the read side only long enough to
    /// clone every node's generation pointer — one consistent
    /// cross-shard cut — and publishers hold the write side while
    /// swapping the staged generations in and bumping the counter, so a
    /// multi-shard publish is atomic with respect to every query.
    epoch: RwLock<u64>,
    /// Serializes gallery writers (one epoch transaction builds at a
    /// time) and accumulates the system's mutation counters.
    mutation: Mutex<MutationStats>,
}

/// A writer's off-to-the-side copy of the gallery: per-shard SoA
/// buffers mutated freely before the dirty shards are rebuilt and
/// published as one epoch.
struct StagedGallery {
    dim: usize,
    shards: Vec<StagedShard>,
}

struct StagedShard {
    ids: Vec<VideoId>,
    feats: Vec<f32>,
    dirty: bool,
}

impl StagedGallery {
    /// Locates an id: shards in node order, rows in row order.
    fn find(&self, id: VideoId) -> Option<(usize, usize)> {
        self.shards
            .iter()
            .enumerate()
            .find_map(|(s, shard)| shard.ids.iter().position(|&x| x == id).map(|r| (s, r)))
    }

    /// The shard new ids route to: fewest staged rows, ties to the
    /// lowest node index.
    fn smallest_shard(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .min_by_key(|(i, shard)| (shard.ids.len(), *i))
            .map(|(i, _)| i)
            .expect("systems have at least one node")
    }
}

impl std::fmt::Debug for RetrievalSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetrievalSystem")
            .field("arch", &self.backbone.arch())
            .field("gallery", &self.gallery_len)
            .field("config", &self.config)
            .finish()
    }
}

impl RetrievalSystem {
    /// Indexes `gallery` under `backbone` and shards it over data nodes.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for zero `m`/`nodes` and
    /// propagates feature-extraction failures.
    pub fn build(
        backbone: Backbone,
        dataset: &SyntheticDataset,
        gallery: &[VideoId],
        config: RetrievalConfig,
    ) -> Result<Self> {
        Self::build_with_workers(backbone, dataset, gallery, config, 1)
    }

    /// Like [`RetrievalSystem::build`], but extracts gallery features on
    /// `workers` scoped threads sharing one immutable backbone. Produces
    /// a system with *bit-identical* retrieval behaviour to the serial
    /// build — indexing a large gallery is the one embarrassingly
    /// parallel step of service construction.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for zero `m`/`nodes`/`workers`
    /// and propagates feature-extraction failures.
    pub fn build_parallel(
        backbone: Backbone,
        dataset: &SyntheticDataset,
        gallery: &[VideoId],
        config: RetrievalConfig,
        workers: usize,
    ) -> Result<Self> {
        if workers == 0 {
            return Err(RetrievalError::BadConfig(format!(
                "m, nodes and workers must be positive, got {config:?} with {workers} workers"
            )));
        }
        Self::build_with_workers(backbone, dataset, gallery, config, workers)
    }

    /// Common indexing path: extract every gallery feature (in gallery
    /// order, on up to `workers` threads sharing `&backbone`), then deal
    /// the features round-robin over the shards. Shard layout is a
    /// function of gallery order alone, so worker count never changes the
    /// resulting system.
    fn build_with_workers(
        backbone: Backbone,
        dataset: &SyntheticDataset,
        gallery: &[VideoId],
        config: RetrievalConfig,
        workers: usize,
    ) -> Result<Self> {
        if config.m == 0 || config.nodes == 0 {
            return Err(RetrievalError::BadConfig(format!(
                "m and nodes must be positive, got {config:?}"
            )));
        }
        let feats: Vec<Tensor> = if workers <= 1 {
            let mut feats = Vec::with_capacity(gallery.len());
            for &id in gallery {
                feats.push(backbone.extract(&dataset.video(id))?);
            }
            feats
        } else {
            let videos: Vec<_> = gallery.iter().map(|&id| dataset.video(id)).collect();
            let refs: Vec<&_> = videos.iter().collect();
            backbone.extract_batch(&refs, workers)?
        };
        let mut shards: Vec<Vec<(VideoId, Tensor)>> =
            (0..config.nodes).map(|_| Vec::new()).collect();
        for (i, (&id, feat)) in gallery.iter().zip(feats).enumerate() {
            shards[i % config.nodes].push((id, feat));
        }
        let nodes = shards
            .into_iter()
            .enumerate()
            .map(|(i, entries)| {
                DataNode::with_index_mode(format!("node-{i}"), entries, config.index, shard_seed(i))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self::assemble(backbone, nodes, config, gallery.len()))
    }

    /// Assembles a system from prebuilt shards (used by index restore).
    pub(crate) fn assemble(
        backbone: Backbone,
        nodes: Vec<DataNode>,
        config: RetrievalConfig,
        gallery_len: usize,
    ) -> Self {
        RetrievalSystem {
            backbone,
            nodes,
            config,
            gallery_len: AtomicUsize::new(gallery_len),
            resilience: ResilienceConfig::default(),
            breakers: Mutex::new(Vec::new()),
            epoch: RwLock::new(0),
            mutation: Mutex::new(MutationStats::default()),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> RetrievalConfig {
        self.config
    }

    /// Number of indexed gallery videos (tracks live mutation).
    pub fn gallery_len(&self) -> usize {
        self.gallery_len.load(Ordering::SeqCst)
    }

    /// The data-node shards (for failure injection in tests).
    pub fn nodes(&self) -> &[DataNode] {
        &self.nodes
    }

    /// The epoch queries admitted right now would be served from.
    pub fn current_epoch(&self) -> u64 {
        *self.epoch.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Monotonic mutation counters accumulated over every published
    /// epoch (batches and rebalances).
    pub fn mutation_stats(&self) -> MutationStats {
        *self.mutation.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// One consistent cross-shard cut: the current epoch plus every
    /// node's generation pointer, captured together under the epoch
    /// gate. A publisher can never interleave inside the returned set —
    /// this is the capture the query path, persistence, and any external
    /// gallery reader should use.
    pub fn snapshot_with_epoch(&self) -> (u64, Vec<Arc<ShardIndex>>) {
        let gate = self.epoch.read().unwrap_or_else(|e| e.into_inner());
        (*gate, self.nodes.iter().map(DataNode::snapshot).collect())
    }

    /// Shard-index scan counters summed over every node: queries, probed
    /// lists, kernel rows, and the running recall@m audit (see
    /// [`IndexStats`]). All zeros until the first query.
    pub fn index_stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for node in &self.nodes {
            total.merge(&node.index_stats());
        }
        total
    }

    /// Scan counters split per index mode, plus the system's resident
    /// byte footprint (f32 features vs compressed codes) — the shape
    /// [`crate::IndexBreakdown`] documents. Recall audits attribute to
    /// the mode of the shard that answered, so a mixed-mode fleet
    /// reports exact/IVF/PQ recall separately.
    pub fn index_breakdown(&self) -> crate::IndexBreakdown {
        let mut breakdown = crate::IndexBreakdown::default();
        for node in &self.nodes {
            breakdown.absorb(node.index_mode(), &node.index_stats());
            let snap = node.snapshot();
            breakdown.feature_bytes += snap.feature_bytes();
            breakdown.code_bytes += snap.code_bytes();
        }
        breakdown
    }

    /// Restores the epoch counter from a persisted image (the
    /// `DUOINDX3` load path), so a reloaded system continues the saved
    /// system's epoch sequence and replays traces with identical
    /// telemetry.
    pub(crate) fn restore_epoch(&self, epoch: u64) {
        *self.epoch.write().unwrap_or_else(|e| e.into_inner()) = epoch;
    }

    /// Read access to the victim backbone (white-box evaluations and
    /// defense harnesses use this; the black-box attacker surface is
    /// [`crate::BlackBox`]).
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// Mutable access to the victim backbone (training-path evaluations
    /// that need input gradients through the victim use this).
    pub fn backbone_mut(&mut self) -> &mut Backbone {
        &mut self.backbone
    }

    /// Extracts the victim's embedding for a video.
    ///
    /// Pure inference (`&self`): one system can embed queries for many
    /// threads concurrently.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn embed(&self, video: &Video) -> Result<Tensor> {
        Ok(self.backbone.extract(video)?)
    }

    /// Extracts victim embeddings for a batch of queries, fanning the
    /// per-item work over up to `workers` threads. Bit-identical to
    /// calling [`RetrievalSystem::embed`] per item, in input order.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn embed_batch(&self, videos: &[&Video], workers: usize) -> Result<Vec<Tensor>> {
        Ok(self.backbone.extract_batch(videos, workers)?)
    }

    /// Full retrieval path: returns the global top-`m` gallery ids for the
    /// query video, most similar first.
    ///
    /// Takes `&self` end to end — extraction, fan-out and merge are all
    /// read-only — so a single system instance is safely shared across
    /// serving threads without a global lock.
    ///
    /// # Example
    ///
    /// ```
    /// use duo_retrieval::{IndexMode, RetrievalConfig, RetrievalSystem};
    /// use duo_models::{Architecture, Backbone, BackboneConfig};
    /// use duo_tensor::Rng64;
    /// use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};
    ///
    /// let mut rng = Rng64::new(7);
    /// let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 2, 1, 0);
    /// let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng)?;
    /// let config = RetrievalConfig { m: 3, index: IndexMode::Exact, ..RetrievalConfig::default() };
    /// let system = RetrievalSystem::build(backbone, &ds, ds.train(), config)?;
    ///
    /// let query = ds.video(ds.train()[0]);
    /// let top_m = system.retrieve(&query)?;
    /// // A gallery video retrieves itself at rank 1 (distance zero).
    /// assert_eq!(top_m[0], ds.train()[0]);
    /// assert_eq!(top_m.len(), 3);
    /// # Ok::<(), duo_retrieval::RetrievalError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::AllNodesOffline`] when no shard can
    /// answer, and propagates feature-extraction failures.
    pub fn retrieve(&self, video: &Video) -> Result<Vec<VideoId>> {
        let query = self.backbone.extract(video)?;
        self.retrieve_by_feature(&query)
    }

    /// The system's standing resilience policy, used by
    /// [`RetrievalSystem::retrieve_by_feature`] and
    /// [`RetrievalSystem::retrieve_resilient`].
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// Replaces the standing resilience policy (resets the circuit
    /// breakers, since thresholds may have changed).
    pub fn set_resilience(&mut self, policy: ResilienceConfig) {
        self.resilience = policy;
        self.breakers.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Current circuit-breaker states, one per node — `None` until a
    /// breaker-enabled query has run.
    pub fn breaker_states(&self) -> Option<Vec<BreakerState>> {
        let breakers = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
        if breakers.is_empty() {
            None
        } else {
            Some(breakers.iter().map(CircuitBreaker::state).collect())
        }
    }

    /// Inserts (or updates) one gallery entry as its own epoch
    /// transaction. See [`RetrievalSystem::apply`].
    ///
    /// # Errors
    ///
    /// As for [`RetrievalSystem::apply`].
    pub fn insert(&self, id: VideoId, feature: Tensor) -> Result<EpochTransition> {
        self.apply(&MutationBatch::new().insert(id, feature))
    }

    /// Deletes one gallery entry as its own epoch transaction. Deleting
    /// an absent id is a counted no-op. See [`RetrievalSystem::apply`].
    ///
    /// # Errors
    ///
    /// As for [`RetrievalSystem::apply`].
    pub fn delete(&self, id: VideoId) -> Result<EpochTransition> {
        self.apply(&MutationBatch::new().delete(id))
    }

    /// Applies an ordered mutation batch as one epoch transaction.
    ///
    /// The writer stages every touched shard's next generation off to
    /// the side (one `memcpy` of the SoA storage per touched shard, no
    /// per-row tensor materialization), applies the batch in order,
    /// rebuilds the dirty shards deterministically — same
    /// [`crate::shard_seed`]-per-shard k-means discipline the persist
    /// path restores with — and publishes all of them atomically under
    /// the epoch gate. Queries in flight keep their captured generation;
    /// queries admitted afterwards see the whole batch. A batch that
    /// touches nothing (empty, or all delete misses) publishes no epoch.
    ///
    /// Insert routing is deterministic: an existing id updates in place
    /// (same shard, same row); a new id appends to the smallest staged
    /// shard, ties to the lowest node index. Mutation ignores
    /// [`crate::NodeStatus`] and fault plans entirely — a flapping node
    /// still receives its rows.
    ///
    /// Takes `&self`: concurrent writers serialize on an internal lock,
    /// and queries never block on a writer except for the pointer swap.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] when an inserted feature
    /// disagrees with the gallery dimension; the gallery is untouched
    /// (staging is off to the side, so a failed batch publishes
    /// nothing).
    pub fn apply(&self, batch: &MutationBatch) -> Result<EpochTransition> {
        let mut stats = self.mutation.lock().unwrap_or_else(|e| e.into_inner());
        let mut transition = EpochTransition { epoch: self.current_epoch(), ..Default::default() };
        if batch.is_empty() {
            return Ok(transition);
        }
        let mut staged = self.stage();
        let mut dim = staged.dim;
        for mutation in batch.mutations() {
            match mutation {
                Mutation::Insert { id, feature } => {
                    if dim == 0 {
                        dim = feature.len();
                        staged.dim = dim;
                    }
                    if feature.len() != dim {
                        return Err(RetrievalError::BadConfig(format!(
                            "inserted feature dimension {} disagrees with gallery dimension {dim}",
                            feature.len()
                        )));
                    }
                    match staged.find(*id) {
                        Some((shard, row)) => {
                            staged.shards[shard].feats[row * dim..(row + 1) * dim]
                                .copy_from_slice(feature.as_slice());
                            staged.shards[shard].dirty = true;
                            transition.updated += 1;
                        }
                        None => {
                            let shard = staged.smallest_shard();
                            staged.shards[shard].ids.push(*id);
                            staged.shards[shard].feats.extend_from_slice(feature.as_slice());
                            staged.shards[shard].dirty = true;
                            transition.inserted += 1;
                        }
                    }
                }
                Mutation::Delete { id } => match staged.find(*id) {
                    Some((shard, row)) => {
                        staged.shards[shard].ids.remove(row);
                        staged.shards[shard].feats.drain(row * dim..(row + 1) * dim);
                        staged.shards[shard].dirty = true;
                        transition.deleted += 1;
                    }
                    None => transition.delete_misses += 1,
                },
            }
        }
        self.publish(staged, &mut transition)?;
        stats.absorb_outcome(&transition);
        Ok(transition)
    }

    /// Rebalances shard sizes as one epoch transaction: every shard ends
    /// within one row of `gallery_len / nodes` (remainders to the lowest
    /// node indices). Donor shards give rows from their tail in node
    /// order; recipients append in node order — a pure function of the
    /// current layout, so same gallery ⇒ same moves. Moves are staged
    /// and published atomically: no query can observe a row on two
    /// shards or on neither, and a node flapping through its fault
    /// schedule mid-rebalance still receives its rows (mutation ignores
    /// node status). An already-balanced gallery publishes no epoch.
    ///
    /// # Errors
    ///
    /// Propagates index-rebuild failures ([`RetrievalError::BadConfig`]);
    /// the gallery is untouched on error.
    pub fn rebalance(&self) -> Result<EpochTransition> {
        let mut stats = self.mutation.lock().unwrap_or_else(|e| e.into_inner());
        let mut transition = EpochTransition { epoch: self.current_epoch(), ..Default::default() };
        let mut staged = self.stage();
        let dim = staged.dim;
        let n = staged.shards.len();
        let total: usize = staged.shards.iter().map(|s| s.ids.len()).sum();
        let target =
            |i: usize| -> usize { total / n + usize::from(i < total % n) };
        // Donors surrender surplus rows from the tail, node order.
        let mut surplus: Vec<(VideoId, Vec<f32>)> = Vec::new();
        for i in 0..n {
            while staged.shards[i].ids.len() > target(i) {
                let id = staged.shards[i].ids.pop().expect("len > target >= 0");
                let at = staged.shards[i].ids.len() * dim;
                let feat = staged.shards[i].feats.split_off(at);
                staged.shards[i].dirty = true;
                surplus.push((id, feat));
            }
        }
        // Recipients fill to target, node order, FIFO over the surplus.
        let mut surplus = surplus.into_iter();
        for i in 0..n {
            while staged.shards[i].ids.len() < target(i) {
                let (id, feat) = surplus.next().expect("surplus covers every deficit");
                staged.shards[i].ids.push(id);
                staged.shards[i].feats.extend_from_slice(&feat);
                staged.shards[i].dirty = true;
                transition.rows_moved += 1;
            }
        }
        self.publish(staged, &mut transition)?;
        stats.absorb_outcome(&transition);
        Ok(transition)
    }

    /// Copies every shard's current generation into a staging buffer
    /// (writer-side; the caller holds the mutation lock).
    fn stage(&self) -> StagedGallery {
        let snaps: Vec<Arc<ShardIndex>> = self.nodes.iter().map(DataNode::snapshot).collect();
        let dim = snaps.iter().map(|s| s.dim()).find(|&d| d > 0).unwrap_or(0);
        StagedGallery {
            dim,
            shards: snaps
                .iter()
                .map(|s| StagedShard {
                    ids: s.ids().to_vec(),
                    feats: s.features().to_vec(),
                    dirty: false,
                })
                .collect(),
        }
    }

    /// Rebuilds every dirty staged shard off to the side, then swaps all
    /// of them in and bumps the epoch under the write gate. Nothing
    /// dirty ⇒ nothing published, epoch unchanged.
    fn publish(&self, staged: StagedGallery, transition: &mut EpochTransition) -> Result<()> {
        let dim = staged.dim;
        let mut next: Vec<Option<Arc<ShardIndex>>> = Vec::with_capacity(staged.shards.len());
        let mut total = 0usize;
        for (i, shard) in staged.shards.into_iter().enumerate() {
            total += shard.ids.len();
            if shard.dirty {
                let built = ShardIndex::build_from_rows(
                    shard.ids,
                    shard.feats,
                    dim,
                    self.config.index,
                    self.nodes[i].seed(),
                )?;
                next.push(Some(Arc::new(built)));
            } else {
                next.push(None);
            }
        }
        if next.iter().all(Option::is_none) {
            return Ok(());
        }
        let mut epoch = self.epoch.write().unwrap_or_else(|e| e.into_inner());
        for (node, generation) in self.nodes.iter().zip(next) {
            if let Some(generation) = generation {
                transition.rebuilt_shards += 1;
                node.install_index(generation);
            }
        }
        self.gallery_len.store(total, Ordering::SeqCst);
        *epoch += 1;
        transition.epoch = *epoch;
        Ok(())
    }

    /// Retrieval from a precomputed query embedding.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::AllNodesOffline`] when no shard answers.
    pub fn retrieve_by_feature(&self, query: &Tensor) -> Result<Vec<VideoId>> {
        self.retrieve_with(query, &self.resilience).map(|r| r.ids)
    }

    /// Retrieval under the standing resilience policy, returning the
    /// full [`Retrieved`] shape so callers can distinguish complete from
    /// degraded (partial-shard) rankings and account retries/hedges.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::AllNodesOffline`] when coverage is
    /// zero, and — only under `require_full_coverage` —
    /// [`RetrievalError::NodeTimeout`] / [`RetrievalError::DegradedCoverage`]
    /// for partial coverage.
    pub fn retrieve_resilient(&self, query: &Tensor) -> Result<Retrieved> {
        self.retrieve_with(query, &self.resilience)
    }

    /// Retrieval under an explicit resilience policy.
    ///
    /// Node panics are contained: a panicking shard counts as that node
    /// failing the query, never as a crashed retrieval. All retry,
    /// timeout, hedge, and breaker decisions compare injected *virtual*
    /// latency against the policy — no wall clock — so results and
    /// telemetry are bit-identical across threaded and inline fan-out.
    ///
    /// # Errors
    ///
    /// As for [`RetrievalSystem::retrieve_resilient`].
    pub fn retrieve_with(&self, query: &Tensor, policy: &ResilienceConfig) -> Result<Retrieved> {
        let m = self.config.m;
        let total = self.nodes.len();
        let mut telemetry = QueryTelemetry::new(total);

        // Capture one consistent cross-shard cut under the epoch gate:
        // every shard of this query scores the same epoch, and every
        // retry/hedge scores the generation captured here, however many
        // publishes land while the fan-out runs.
        let (epoch, snaps) = self.snapshot_with_epoch();
        let snaps = &snaps;

        // Breaker admission runs sequentially in node order (never
        // inside the fan-out threads), so breaker trajectories are
        // independent of thread interleavings.
        let admitted: Vec<bool> = match &policy.breaker {
            None => vec![true; total],
            Some(cfg) => {
                let mut breakers = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
                if breakers.len() != total {
                    *breakers = (0..total).map(|_| CircuitBreaker::new(*cfg)).collect();
                }
                breakers
                    .iter_mut()
                    .map(|b| {
                        let before = b.transitions();
                        let ok = b.admit();
                        telemetry.breaker_half_opens +=
                            b.transitions().half_opens - before.half_opens;
                        if !ok {
                            telemetry.breaker_skips += 1;
                        }
                        ok
                    })
                    .collect()
            }
        };

        let reports: Vec<Option<NodeReport>> = if self.config.threaded {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(idx, node)| {
                        let run = admitted[idx];
                        scope.spawn(move || {
                            run.then(|| query_node(node, &snaps[idx], idx, query, m, policy))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or(Some(NodeReport::panicked())))
                    .collect()
            })
        } else {
            self.nodes
                .iter()
                .enumerate()
                .map(|(idx, node)| {
                    admitted[idx].then(|| query_node(node, &snaps[idx], idx, query, m, policy))
                })
                .collect()
        };

        // Breaker outcome recording, again sequential in node order.
        if policy.breaker.is_some() {
            let mut breakers = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
            for (breaker, report) in breakers.iter_mut().zip(&reports) {
                let Some(report) = report else { continue };
                let before = breaker.transitions();
                if report.answer.is_some() {
                    breaker.record_success();
                } else {
                    breaker.record_failure();
                }
                let after = breaker.transitions();
                telemetry.breaker_opens += after.opens - before.opens;
                telemetry.breaker_closes += after.closes - before.closes;
            }
        }

        let mut merged: Vec<ScoredId> = Vec::new();
        let mut answered = 0usize;
        let mut first_failure: Option<(usize, FailCause)> = None;
        for (idx, report) in reports.into_iter().enumerate() {
            let Some(report) = report else { continue }; // breaker skip
            telemetry.retries += report.retries;
            telemetry.hedges += report.hedges;
            telemetry.node_timeouts += report.timeouts;
            telemetry.transient_faults += report.transients;
            telemetry.panics += report.panics;
            telemetry.backoff_us += report.backoff_us;
            match report.answer {
                Some(local) => {
                    answered += 1;
                    telemetry.max_delay_us = telemetry.max_delay_us.max(report.delay_us);
                    merged.extend(local);
                }
                None => {
                    telemetry.node_failures[idx] += 1;
                    if first_failure.is_none() {
                        first_failure =
                            Some((idx, report.failure.unwrap_or(FailCause::Offline)));
                    }
                }
            }
        }
        if answered == 0 {
            return Err(RetrievalError::AllNodesOffline);
        }
        let coverage = Coverage { answered, total };
        if policy.require_full_coverage && !coverage.is_full() {
            return Err(match first_failure {
                Some((idx, FailCause::Timeout)) => {
                    RetrievalError::NodeTimeout { node: self.nodes[idx].name().to_string() }
                }
                _ => RetrievalError::DegradedCoverage { answered, total },
            });
        }
        merged.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| (a.id.class, a.id.instance).cmp(&(b.id.class, b.id.instance)))
        });
        merged.truncate(m);
        Ok(Retrieved { ids: merged.into_iter().map(|s| s.id).collect(), coverage, telemetry, epoch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::{Architecture, BackboneConfig};
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, DatasetKind};

    fn small_system(threaded: bool) -> (RetrievalSystem, SyntheticDataset) {
        let mut rng = Rng64::new(131);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 3, 1, 0);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 12).copied().collect();
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let config = RetrievalConfig { m: 5, nodes: 3, threaded, ..RetrievalConfig::default() };
        (RetrievalSystem::build(backbone, &ds, &gallery, config).unwrap(), ds)
    }

    #[test]
    fn retrieve_returns_m_results_most_similar_first() {
        let (sys, ds) = small_system(false);
        let probe = ds.video(VideoId { class: 0, instance: 0 });
        let result = sys.retrieve(&probe).unwrap();
        assert_eq!(result.len(), 5);
        // The exact gallery video must rank first (distance 0 to itself).
        assert_eq!(result[0], VideoId { class: 0, instance: 0 });
    }

    #[test]
    fn threaded_and_inline_fanout_agree() {
        let (a, ds) = small_system(false);
        let (b, _) = small_system(true);
        let probe = ds.video(VideoId { class: 3, instance: 0 });
        assert_eq!(a.retrieve(&probe).unwrap(), b.retrieve(&probe).unwrap());
    }

    #[test]
    fn node_failure_degrades_but_does_not_corrupt() {
        let (sys, ds) = small_system(false);
        let probe = ds.video(VideoId { class: 0, instance: 0 });
        let full = sys.retrieve(&probe).unwrap();
        sys.nodes()[0].set_offline();
        let degraded = sys.retrieve(&probe).unwrap();
        assert_eq!(degraded.len(), 5);
        // Every returned id must still come from an online shard, and the
        // order must remain globally sorted (a subsequence check against
        // the full ranking over surviving ids).
        let survivors: Vec<VideoId> =
            full.iter().copied().filter(|id| degraded.contains(id)).collect();
        let filtered: Vec<VideoId> =
            degraded.iter().copied().filter(|id| full.contains(id)).collect();
        assert_eq!(survivors, filtered, "relative order must be preserved");
    }

    #[test]
    fn all_nodes_offline_is_an_error() {
        let (sys, ds) = small_system(false);
        for node in sys.nodes() {
            node.set_offline();
        }
        let probe = ds.video(VideoId { class: 0, instance: 0 });
        assert!(matches!(sys.retrieve(&probe), Err(RetrievalError::AllNodesOffline)));
    }

    #[test]
    fn parallel_build_matches_serial_exactly() {
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 31, 1, 1);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 10).copied().collect();
        let config = RetrievalConfig { m: 5, nodes: 3, threaded: false, ..Default::default() };
        // Identical weights in both builds via a shared seed.
        let serial = {
            let mut rng = Rng64::new(132);
            let b = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
            RetrievalSystem::build(b, &ds, &gallery, config).unwrap()
        };
        let parallel = {
            let mut rng = Rng64::new(132);
            let b = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
            RetrievalSystem::build_parallel(b, &ds, &gallery, config, 4).unwrap()
        };
        assert_eq!(parallel.gallery_len(), serial.gallery_len());
        for &id in ds.test().iter().filter(|id| id.class < 10) {
            let q = ds.video(id);
            assert_eq!(
                serial.retrieve(&q).unwrap(),
                parallel.retrieve(&q).unwrap(),
                "parallel indexing must be bit-identical"
            );
        }
    }

    #[test]
    fn parallel_build_rejects_zero_workers() {
        let mut rng = Rng64::new(133);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 31, 1, 0);
        let b = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let config = RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() };
        assert!(RetrievalSystem::build_parallel(b, &ds, ds.train(), config, 0).is_err());
    }

    #[test]
    fn rejects_zero_m() {
        let mut rng = Rng64::new(132);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 3, 1, 0);
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let bad = RetrievalConfig { m: 0, nodes: 1, threaded: false, ..Default::default() };
        assert!(RetrievalSystem::build(backbone, &ds, ds.train(), bad).is_err());
    }

    #[test]
    fn ivf_system_builds_and_retrieves_self() {
        let mut rng = Rng64::new(134);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 3, 1, 0);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 12).copied().collect();
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let config = RetrievalConfig {
            m: 5,
            nodes: 3,
            index: IndexMode::ivf(4, 4),
            ..Default::default()
        };
        let sys = RetrievalSystem::build(backbone, &ds, &gallery, config).unwrap();
        let probe = ds.video(VideoId { class: 0, instance: 0 });
        let result = sys.retrieve(&probe).unwrap();
        assert_eq!(result[0], VideoId { class: 0, instance: 0 });
        let stats = sys.index_stats();
        assert_eq!(stats.queries, 3, "one shard search per node");
        assert!(stats.probed_lists > 0);
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let (sys, ds) = small_system(false);
        let len0 = sys.gallery_len();
        let probe = ds.video(VideoId { class: 0, instance: 0 });
        let feat = sys.embed(&probe).unwrap();
        let planted = VideoId { class: 99, instance: 9 };

        let t = sys.insert(planted, feat.clone()).unwrap();
        assert_eq!((t.epoch, t.inserted), (1, 1));
        assert_eq!(sys.gallery_len(), len0 + 1);
        let got = sys.retrieve_resilient(&feat).unwrap();
        assert_eq!(got.epoch, 1);
        assert!(got.ids.contains(&planted), "planted duplicate embedding must rank");

        // Upsert the same id: no growth, updated counted.
        let t = sys.insert(planted, feat.clone()).unwrap();
        assert_eq!((t.epoch, t.inserted, t.updated), (2, 0, 1));
        assert_eq!(sys.gallery_len(), len0 + 1);

        let t = sys.delete(planted).unwrap();
        assert_eq!((t.epoch, t.deleted), (3, 1));
        assert_eq!(sys.gallery_len(), len0);
        assert!(!sys.retrieve_resilient(&feat).unwrap().ids.contains(&planted));

        // Deleting again is a counted no-op and publishes nothing.
        let t = sys.delete(planted).unwrap();
        assert_eq!((t.epoch, t.delete_misses, t.rebuilt_shards), (3, 1, 0));
        assert_eq!(sys.current_epoch(), 3);
        let stats = sys.mutation_stats();
        assert_eq!(stats.epochs_published, 3);
        assert_eq!(stats.mutations_applied, 3);
        assert_eq!(stats.delete_misses, 1);
    }

    #[test]
    fn bad_dimension_insert_leaves_gallery_untouched() {
        let (sys, _) = small_system(false);
        let len0 = sys.gallery_len();
        let bad = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert!(sys.insert(VideoId { class: 77, instance: 0 }, bad).is_err());
        assert_eq!(sys.gallery_len(), len0);
        assert_eq!(sys.current_epoch(), 0, "failed batches publish nothing");
    }

    #[test]
    fn rebalance_conserves_rows_and_evens_shards() {
        let (sys, _) = small_system(false);
        // Unbalance shard 0 by deleting everything it holds.
        let victims: Vec<VideoId> = sys.nodes()[0].snapshot().ids().to_vec();
        let mut batch = MutationBatch::new();
        for id in &victims {
            batch.push(Mutation::Delete { id: *id });
        }
        sys.apply(&batch).unwrap();
        assert!(sys.nodes()[0].is_empty());

        let mut before: Vec<VideoId> =
            sys.nodes().iter().flat_map(|n| n.snapshot().ids().to_vec()).collect();
        before.sort_by_key(|id| (id.class, id.instance));

        let t = sys.rebalance().unwrap();
        assert!(t.rows_moved > 0);
        let lens: Vec<usize> = sys.nodes().iter().map(DataNode::len).collect();
        assert!(
            lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1,
            "rebalance must even shards to within one row: {lens:?}"
        );
        let mut after: Vec<VideoId> =
            sys.nodes().iter().flat_map(|n| n.snapshot().ids().to_vec()).collect();
        after.sort_by_key(|id| (id.class, id.instance));
        assert_eq!(before, after, "rows are moved, never lost or duplicated");

        // A balanced gallery rebalances to a no-op.
        let t2 = sys.rebalance().unwrap();
        assert_eq!((t2.rows_moved, t2.rebuilt_shards), (0, 0));
        assert_eq!(sys.current_epoch(), t.epoch);
    }

    #[test]
    fn replayed_mutation_sequence_is_bit_identical() {
        let run = |threaded: bool| {
            let (sys, ds) = small_system(threaded);
            let feats: Vec<Tensor> = (0..4)
                .map(|c| sys.embed(&ds.video(VideoId { class: c, instance: 0 })).unwrap())
                .collect();
            let mut trace = Vec::new();
            for (i, feat) in feats.iter().enumerate() {
                sys.insert(VideoId { class: 90 + i as u32, instance: 0 }, feat.clone()).unwrap();
                trace.push(sys.retrieve_resilient(feat).unwrap());
            }
            sys.rebalance().unwrap();
            sys.delete(VideoId { class: 90, instance: 0 }).unwrap();
            for feat in &feats {
                trace.push(sys.retrieve_resilient(feat).unwrap());
            }
            trace
        };
        let a = run(false);
        let b = run(false);
        assert_eq!(a, b, "same seed + same mutations => identical lists, epochs, telemetry");
        let c = run(true);
        assert_eq!(a, c, "threaded fan-out changes nothing");
    }

    #[test]
    fn rejects_invalid_ivf_config() {
        let mut rng = Rng64::new(135);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 3, 1, 0);
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let bad = RetrievalConfig { index: IndexMode::ivf(2, 5), ..Default::default() };
        assert!(RetrievalSystem::build(backbone, &ds, ds.train(), bad).is_err());
    }
}
