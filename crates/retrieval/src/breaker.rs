//! Per-node circuit breakers for the resilient fan-out path.
//!
//! A flapping node would otherwise eat the retry budget of every query
//! that touches it. The breaker is the classic three-state machine —
//! closed → open after `failure_threshold` consecutive failures →
//! half-open probe → closed — but advanced by *query count* rather than
//! elapsed time, so breaker trajectories are as deterministic as the
//! fault schedules that drive them (see [`crate::FaultPlan`]).

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive node failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Queries the open breaker skips before admitting a half-open probe.
    pub open_cooldown: u32,
}
duo_tensor::impl_to_json!(struct BreakerConfig { failure_threshold, open_cooldown });

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, open_cooldown: 8 }
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Queries flow normally.
    Closed,
    /// The node is quarantined; queries skip it without an attempt.
    Open,
    /// One probe query is admitted to test recovery.
    HalfOpen,
}
duo_tensor::impl_to_json!(enum BreakerState { Closed, Open, HalfOpen });

/// Counts of state transitions, for service observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerTransitions {
    /// Closed/half-open → open trips.
    pub opens: u64,
    /// Open → half-open probe admissions.
    pub half_opens: u64,
    /// Half-open → closed recoveries.
    pub closes: u64,
}
duo_tensor::impl_to_json!(struct BreakerTransitions { opens, half_opens, closes });

/// A query-count-driven circuit breaker guarding one data node.
///
/// Protocol per query: call [`CircuitBreaker::admit`]; if it returns
/// `true`, attempt the node and report the outcome with
/// [`CircuitBreaker::record_success`] / [`CircuitBreaker::record_failure`].
/// If it returns `false`, skip the node (it contributes no shard this
/// query) and report nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    probe_in_flight: bool,
    transitions: BreakerTransitions,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            probe_in_flight: false,
            transitions: BreakerTransitions::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Transition counters accumulated so far.
    pub fn transitions(&self) -> BreakerTransitions {
        self.transitions
    }

    /// Asks whether a query may be issued to the guarded node.
    ///
    /// Open breakers deny exactly [`BreakerConfig::open_cooldown`]
    /// queries, then flip to half-open and admit that very query as the
    /// single probe. A half-open breaker with its probe unresolved denies
    /// everything until the probe's outcome is recorded.
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if self.cooldown_left > 0 {
                    self.cooldown_left -= 1;
                    false
                } else {
                    self.state = BreakerState::HalfOpen;
                    self.transitions.half_opens += 1;
                    self.probe_in_flight = true;
                    true
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false
                } else {
                    // Unreachable through the documented protocol (the
                    // probe outcome resolves the state), but harmless:
                    // re-admit a probe.
                    self.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Reports that an admitted query succeeded.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.transitions.closes += 1;
                self.consecutive_failures = 0;
                self.probe_in_flight = false;
            }
            BreakerState::Open => {}
        }
    }

    /// Reports that an admitted query failed (after any retries).
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip_open();
                }
            }
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                self.trip_open();
            }
            BreakerState::Open => {}
        }
    }

    fn trip_open(&mut self) {
        self.state = BreakerState::Open;
        self.transitions.opens += 1;
        self.cooldown_left = self.config.open_cooldown;
        self.consecutive_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(k: u32, cooldown: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig { failure_threshold: k, open_cooldown: cooldown })
    }

    #[test]
    fn trips_open_after_k_consecutive_failures() {
        let mut b = breaker(3, 4);
        for _ in 0..2 {
            assert!(b.admit());
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().opens, 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = breaker(2, 4);
        assert!(b.admit());
        b.record_failure();
        assert!(b.admit());
        b.record_success();
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn open_denies_cooldown_queries_then_probes() {
        let mut b = breaker(1, 3);
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        for i in 0..3 {
            assert!(!b.admit(), "denial {i} while open");
        }
        assert!(b.admit(), "cooldown spent: half-open probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(), "only one probe while unresolved");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions(), BreakerTransitions { opens: 1, half_opens: 1, closes: 1 });
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = breaker(1, 2);
        assert!(b.admit());
        b.record_failure();
        assert!(!b.admit());
        assert!(!b.admit());
        assert!(b.admit(), "probe");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().opens, 2);
        assert_eq!(b.transitions().closes, 0);
    }
}
