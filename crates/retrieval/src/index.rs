//! The shard-local ANN index: structure-of-arrays storage, a check-free
//! blocked distance kernel, bounded top-`m` selection, and a seeded IVF
//! (inverted-file) coarse quantizer.
//!
//! Every [`crate::DataNode`] owns one [`ShardIndex`]. The seed
//! implementation scanned a `Vec<(VideoId, Tensor)>` per query — one
//! heap-allocated tensor, one shape check, and one bounds-checked
//! iterator chain per entry, followed by a full `O(G log G)` sort for a
//! top-`m` answer. The index replaces that with:
//!
//! * **SoA storage** — all features live in one flattened row-major
//!   `Vec<f32>` (`row r` at `feats[r*dim .. (r+1)*dim]`), ids in a
//!   parallel `Vec<VideoId>`. Dimension agreement is validated *once* at
//!   build time, so the query loop carries no per-entry checks.
//! * **Bounded top-`m`** — a max-heap of capacity `m` ([`TopM`]) replaces
//!   collect-all-and-sort: `O(G log m)` and `O(m)` memory.
//! * **Optional IVF** — a seeded k-means coarse quantizer partitions the
//!   shard into `nlist` inverted lists; a query scans only the `nprobe`
//!   nearest lists with *exact* distances (probed candidates are fully
//!   re-ranked, never approximated).
//!
//! # Determinism
//!
//! Exact mode is **bit-identical** to the seed scan: the kernel
//! accumulates each row's squared distance in strictly sequential element
//! order (the same order `Tensor::sq_distance` used), blocking only
//! *across* rows, and the heap's total order `(distance.total_cmp, id)`
//! is exactly the seed sort's comparator — so the selected set and its
//! final ascending order coincide with sort-and-truncate. IVF is
//! deterministic too: k-means is seeded ([`shard_seed`] per shard),
//! assignment and probe ties break on the lower list index, and result
//! ties break by id. Same shard contents + same seed ⇒ same index, same
//! rankings, on every run and thread interleaving.
//!
//! # Example
//!
//! ```
//! use duo_retrieval::{IndexMode, ShardIndex};
//! use duo_tensor::Tensor;
//! use duo_video::VideoId;
//!
//! // 64 points on a line; the nearest neighbours of 3.2 are 3, 4, 2…
//! let entries: Vec<(VideoId, Tensor)> = (0..64)
//!     .map(|i| {
//!         let feat = Tensor::from_vec(vec![i as f32, 0.0], &[2]).unwrap();
//!         (VideoId { class: i, instance: 0 }, feat)
//!     })
//!     .collect();
//! let exact = ShardIndex::build(&entries, IndexMode::Exact, 0)?;
//! let ivf = ShardIndex::build(&entries, IndexMode::ivf(8, 8), 7)?;
//!
//! let top = exact.search(&[3.2, 0.0], 3);
//! assert_eq!(top[0].id.class, 3);
//! // Probing every list makes IVF exhaustive: identical to exact.
//! assert_eq!(ivf.search(&[3.2, 0.0], 3), top);
//! # Ok::<(), duo_retrieval::RetrievalError>(())
//! ```

use crate::{Result, RetrievalError, ScoredId};
use duo_tensor::{Json, Rng64, Tensor, ToJson};
use duo_video::VideoId;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Rounds of Lloyd iteration for the IVF coarse quantizer. Assignment
/// converges long before this on shard-sized galleries; the fixed bound
/// keeps index builds predictable.
const KMEANS_ROUNDS: usize = 8;

/// Every `AUDIT_PERIOD`-th IVF query on a shard is audited: the exact
/// answer is computed alongside and the overlap recorded, so recall@m is
/// observable in production stats at ~1/16th of an exact scan's cost.
const AUDIT_PERIOD: u64 = 16;

/// Rows per block in the exact kernel. Blocking is across *rows* only —
/// each row's accumulation stays strictly sequential so distances remain
/// bit-identical to `Tensor::sq_distance` — and exists to keep the heap
/// maintenance out of the kernel's inner loop.
const ROW_BLOCK: usize = 16;

/// How a shard answers nearest-neighbour queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexMode {
    /// Scan every row (the default). Exhaustive and bit-identical to the
    /// seed per-entry scan, but on SoA storage with bounded top-`m`.
    Exact,
    /// Inverted-file index: k-means partitions the shard into `nlist`
    /// cells; a query scans the `nprobe` nearest cells exhaustively with
    /// exact distances. Sublinear when `nprobe < nlist`, exhaustive
    /// (equal to [`IndexMode::Exact`]) when `nprobe == nlist`.
    Ivf {
        /// Number of inverted lists (k-means centroids) per shard.
        nlist: usize,
        /// Lists scanned per query, nearest centroid first.
        nprobe: usize,
    },
}

impl Default for IndexMode {
    fn default() -> Self {
        IndexMode::Exact
    }
}

impl IndexMode {
    /// Shorthand for [`IndexMode::Ivf`].
    pub fn ivf(nlist: usize, nprobe: usize) -> Self {
        IndexMode::Ivf { nlist, nprobe }
    }

    /// Whether this mode scans the whole shard (no coarse quantizer).
    pub fn is_exact(&self) -> bool {
        matches!(self, IndexMode::Exact)
    }

    /// Validates the mode's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for zero `nlist`/`nprobe` or
    /// `nprobe > nlist`.
    pub fn validate(&self) -> Result<()> {
        if let IndexMode::Ivf { nlist, nprobe } = *self {
            if nlist == 0 || nprobe == 0 {
                return Err(RetrievalError::BadConfig(format!(
                    "nlist and nprobe must be positive, got {self:?}"
                )));
            }
            if nprobe > nlist {
                return Err(RetrievalError::BadConfig(format!(
                    "nprobe must not exceed nlist, got {self:?}"
                )));
            }
        }
        Ok(())
    }
}

impl ToJson for IndexMode {
    fn to_json(&self) -> Json {
        match *self {
            IndexMode::Exact => {
                Json::object(vec![("mode".to_string(), Json::Str("exact".to_string()))])
            }
            IndexMode::Ivf { nlist, nprobe } => Json::object(vec![
                ("mode".to_string(), Json::Str("ivf".to_string())),
                ("nlist".to_string(), Json::Int(nlist as i128)),
                ("nprobe".to_string(), Json::Int(nprobe as i128)),
            ]),
        }
    }
}

/// The deterministic k-means seed for shard `shard` of a system. Builds
/// and index restores use the same function, so a restored shard with
/// identical contents trains the identical quantizer.
pub fn shard_seed(shard: usize) -> u64 {
    (0x1DF5_EED0_u64.wrapping_add(shard as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Bounded top-`m` selection: a max-heap of capacity `m` keeping the `m`
/// smallest candidates under the total order `(distance, id)` — the same
/// comparator the seed scan sorted with, so the surviving set and its
/// sorted order are identical to sort-and-truncate.
#[derive(Debug)]
pub struct TopM {
    cap: usize,
    heap: BinaryHeap<Cand>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    distance: f32,
    id: VideoId,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then_with(|| (self.id.class, self.id.instance).cmp(&(other.id.class, other.id.instance)))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TopM {
    /// An empty selector keeping at most `cap` candidates.
    pub fn new(cap: usize) -> Self {
        TopM { cap, heap: BinaryHeap::with_capacity(cap.saturating_add(1)) }
    }

    /// Offers one candidate; it survives only while it is among the `cap`
    /// smallest seen so far.
    #[inline]
    pub fn push(&mut self, distance: f32, id: VideoId) {
        if self.cap == 0 {
            return;
        }
        let cand = Cand { distance, id };
        if self.heap.len() < self.cap {
            self.heap.push(cand);
        } else if let Some(worst) = self.heap.peek() {
            if cand < *worst {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    /// Candidates currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate survived (or `cap` was zero).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The survivors, ascending by `(distance, id)` — nearest first.
    pub fn into_sorted(self) -> Vec<ScoredId> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|c| ScoredId { id: c.id, distance: c.distance })
            .collect()
    }
}

/// One row's squared Euclidean distance, accumulated in strictly
/// sequential element order — bit-identical to `Tensor::sq_distance` on
/// the same data.
#[inline]
fn sq_distance_row(row: &[f32], query: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (a, b) in row.iter().zip(query) {
        let d = a - b;
        acc += d * d;
    }
    acc
}

/// A trained inverted-file structure: `nlist` centroids plus the row
/// indices assigned to each.
#[derive(Debug, Clone)]
struct Ivf {
    nprobe: usize,
    /// Row-major `lists.len() × dim` centroid matrix.
    centroids: Vec<f32>,
    /// Member rows per list, ascending (assignment iterates in row order).
    lists: Vec<Vec<u32>>,
}

/// Aggregated scan counters for one index (or, merged, for a whole
/// system). All counters are monotonic; [`IndexStats::recall_at_m`]
/// derives the running recall estimate from the audit counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Shard-level searches answered.
    pub queries: u64,
    /// Inverted lists scanned across all IVF queries (0 in exact mode).
    pub probed_lists: u64,
    /// Feature rows pushed through the distance kernel.
    pub scanned_rows: u64,
    /// IVF queries that were recall-audited against an exact scan.
    pub audit_queries: u64,
    /// Audited result ids that the exact answer also contained.
    pub audit_hits: u64,
    /// Total result ids the exact answers of audited queries contained.
    pub audit_expected: u64,
}

duo_tensor::impl_to_json!(struct IndexStats {
    queries, probed_lists, scanned_rows, audit_queries, audit_hits, audit_expected
});

impl IndexStats {
    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: &IndexStats) {
        self.queries += other.queries;
        self.probed_lists += other.probed_lists;
        self.scanned_rows += other.scanned_rows;
        self.audit_queries += other.audit_queries;
        self.audit_hits += other.audit_hits;
        self.audit_expected += other.audit_expected;
    }

    /// Mean inverted lists probed per query (0 for pure exact traffic).
    pub fn mean_probes(&self) -> f32 {
        if self.queries == 0 {
            0.0
        } else {
            self.probed_lists as f32 / self.queries as f32
        }
    }

    /// The running recall@m estimate from audited IVF queries, or `None`
    /// before the first audit (exact mode never audits — its recall is 1
    /// by construction).
    pub fn recall_at_m(&self) -> Option<f32> {
        if self.audit_expected == 0 {
            None
        } else {
            Some(self.audit_hits as f32 / self.audit_expected as f32)
        }
    }
}

/// The per-shard nearest-neighbour index: SoA feature storage plus an
/// optional IVF coarse quantizer. See the [module docs](self) for the
/// layout and determinism contract.
#[derive(Debug)]
pub struct ShardIndex {
    ids: Vec<VideoId>,
    /// Row-major `ids.len() × dim` feature matrix.
    feats: Vec<f32>,
    dim: usize,
    mode: IndexMode,
    ivf: Option<Ivf>,
    queries: AtomicU64,
    probed_lists: AtomicU64,
    scanned_rows: AtomicU64,
    audit_queries: AtomicU64,
    audit_hits: AtomicU64,
    audit_expected: AtomicU64,
}

impl ShardIndex {
    /// Builds an index over `(id, feature)` entries.
    ///
    /// All feature dimensions are validated here — the one place the
    /// check runs — so the query kernel is check-free. For
    /// [`IndexMode::Ivf`], the coarse quantizer is trained immediately
    /// with a k-means seeded from `seed` (use [`shard_seed`] for the
    /// per-shard convention); `nlist` is silently capped at the number of
    /// rows.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for invalid IVF parameters
    /// or entries with disagreeing dimensions.
    pub fn build(entries: &[(VideoId, Tensor)], mode: IndexMode, seed: u64) -> Result<Self> {
        let dim = entries.first().map(|(_, feat)| feat.len()).unwrap_or(0);
        let mut ids = Vec::with_capacity(entries.len());
        let mut feats = Vec::with_capacity(entries.len() * dim);
        for (id, feat) in entries {
            if feat.len() != dim {
                return Err(RetrievalError::BadConfig(format!(
                    "shard features must share one dimension: got {} after {dim}",
                    feat.len()
                )));
            }
            ids.push(*id);
            feats.extend_from_slice(feat.as_slice());
        }
        Self::build_from_rows(ids, feats, dim, mode, seed)
    }

    /// Builds an index directly from flattened SoA storage: `ids.len()`
    /// rows of `dim` features each, row `r` at `feats[r*dim..(r+1)*dim]`.
    /// This is the epoch-rebuild entry point — a mutation staging buffer
    /// (one `memcpy` of the previous generation's matrix) becomes the
    /// next generation without materializing a tensor per row.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for invalid IVF parameters
    /// or when `feats.len() != ids.len() * dim`.
    pub fn build_from_rows(
        ids: Vec<VideoId>,
        feats: Vec<f32>,
        dim: usize,
        mode: IndexMode,
        seed: u64,
    ) -> Result<Self> {
        mode.validate()?;
        if feats.len() != ids.len() * dim {
            return Err(RetrievalError::BadConfig(format!(
                "flattened feature matrix must hold ids*dim floats: {} ids x {dim} != {}",
                ids.len(),
                feats.len()
            )));
        }
        let ivf = match mode {
            IndexMode::Ivf { nlist, nprobe } if !ids.is_empty() => {
                Some(train_ivf(&feats, dim, ids.len(), nlist, nprobe, seed))
            }
            _ => None,
        };
        Ok(ShardIndex {
            ids,
            feats,
            dim,
            mode,
            ivf,
            queries: AtomicU64::new(0),
            probed_lists: AtomicU64::new(0),
            scanned_rows: AtomicU64::new(0),
            audit_queries: AtomicU64::new(0),
            audit_hits: AtomicU64::new(0),
            audit_expected: AtomicU64::new(0),
        })
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Feature dimensionality (0 for an empty index).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The mode this index answers queries in.
    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    /// The indexed ids, in row order.
    pub fn ids(&self) -> &[VideoId] {
        &self.ids
    }

    /// The feature vector of one row.
    ///
    /// # Panics
    ///
    /// Panics when `row >= self.len()`.
    pub fn feature(&self, row: usize) -> &[f32] {
        &self.feats[row * self.dim..(row + 1) * self.dim]
    }

    /// Number of inverted lists actually trained (0 in exact mode; capped
    /// at the row count in IVF mode).
    pub fn nlist(&self) -> usize {
        self.ivf.as_ref().map_or(0, |ivf| ivf.lists.len())
    }

    /// A snapshot of this shard's scan counters.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            queries: self.queries.load(Ordering::Relaxed),
            probed_lists: self.probed_lists.load(Ordering::Relaxed),
            scanned_rows: self.scanned_rows.load(Ordering::Relaxed),
            audit_queries: self.audit_queries.load(Ordering::Relaxed),
            audit_hits: self.audit_hits.load(Ordering::Relaxed),
            audit_expected: self.audit_expected.load(Ordering::Relaxed),
        }
    }

    /// The local top-`m` nearest rows to `query`, ascending by
    /// `(distance, id)`. Exact mode is bit-identical to the seed scan;
    /// IVF mode scans the `nprobe` nearest lists with exact distances.
    ///
    /// # Panics
    ///
    /// Panics when `query.len()` disagrees with the index dimension —
    /// the build-time dimension contract makes this the only check on
    /// the query path, hoisted out of the per-row loop.
    pub fn search(&self, query: &[f32], m: usize) -> Vec<ScoredId> {
        let qidx = self.queries.fetch_add(1, Ordering::Relaxed);
        if self.ids.is_empty() || m == 0 {
            return Vec::new();
        }
        assert_eq!(
            query.len(),
            self.dim,
            "query dimension must match the index dimension"
        );
        match &self.ivf {
            None => {
                self.scanned_rows.fetch_add(self.ids.len() as u64, Ordering::Relaxed);
                self.scan_all(query, m)
            }
            Some(ivf) => {
                let results = self.scan_ivf(ivf, query, m);
                if qidx % AUDIT_PERIOD == 0 {
                    // Recall audit: compare against the exact answer
                    // (counted separately; audit scans do not inflate the
                    // kernel-row counter).
                    let exact = self.scan_all(query, m);
                    let hits = results
                        .iter()
                        .filter(|s| exact.iter().any(|e| e.id == s.id))
                        .count() as u64;
                    self.audit_queries.fetch_add(1, Ordering::Relaxed);
                    self.audit_hits.fetch_add(hits, Ordering::Relaxed);
                    self.audit_expected.fetch_add(exact.len() as u64, Ordering::Relaxed);
                }
                results
            }
        }
    }

    /// Exhaustive scan over the SoA matrix, blocked across rows.
    fn scan_all(&self, query: &[f32], m: usize) -> Vec<ScoredId> {
        let mut top = TopM::new(m);
        let mut distances = [0.0f32; ROW_BLOCK];
        let mut row = 0usize;
        while row < self.ids.len() {
            let block = ROW_BLOCK.min(self.ids.len() - row);
            for (i, d) in distances[..block].iter_mut().enumerate() {
                let r = row + i;
                *d = sq_distance_row(&self.feats[r * self.dim..(r + 1) * self.dim], query);
            }
            for (i, &d) in distances[..block].iter().enumerate() {
                top.push(d, self.ids[row + i]);
            }
            row += block;
        }
        top.into_sorted()
    }

    /// IVF probe: rank centroids by exact distance, scan the `nprobe`
    /// nearest lists exhaustively.
    fn scan_ivf(&self, ivf: &Ivf, query: &[f32], m: usize) -> Vec<ScoredId> {
        let nlist = ivf.lists.len();
        let mut order: Vec<(f32, usize)> = (0..nlist)
            .map(|c| (sq_distance_row(&ivf.centroids[c * self.dim..(c + 1) * self.dim], query), c))
            .collect();
        // Ties on centroid distance break toward the lower list index.
        order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let probe = ivf.nprobe.min(nlist);
        let mut top = TopM::new(m);
        let mut scanned = 0u64;
        for &(_, list) in &order[..probe] {
            for &row in &ivf.lists[list] {
                let r = row as usize;
                let d = sq_distance_row(&self.feats[r * self.dim..(r + 1) * self.dim], query);
                top.push(d, self.ids[r]);
            }
            scanned += ivf.lists[list].len() as u64;
        }
        self.probed_lists.fetch_add(probe as u64, Ordering::Relaxed);
        self.scanned_rows.fetch_add(scanned, Ordering::Relaxed);
        top.into_sorted()
    }

    /// Materializes `(id, feature)` pairs in row order. This clones every
    /// feature into a fresh tensor — callers that only need to *read* the
    /// gallery (epoch rebuilds, persistence, tests) should iterate
    /// [`ShardIndex::rows`] instead, which borrows straight from the SoA
    /// matrix.
    pub fn entries(&self) -> Vec<(VideoId, Tensor)> {
        self.rows()
            .map(|(id, row)| {
                let feat = Tensor::from_vec(row.to_vec(), &[self.dim])
                    .expect("row length equals dim by construction");
                (id, feat)
            })
            .collect()
    }

    /// Iterates `(id, feature-row)` pairs in row order, borrowing from
    /// the flattened storage — zero copies, zero allocations per row.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = (VideoId, &[f32])> + '_ {
        self.ids
            .iter()
            .zip(self.feats.chunks_exact(self.dim.max(1)))
            .map(|(&id, row)| (id, row))
    }

    /// The raw flattened feature matrix (row-major `len() × dim`).
    pub fn features(&self) -> &[f32] {
        &self.feats
    }
}

/// Seeded Lloyd k-means over the flattened feature matrix. Every step is
/// a pure function of `(feats, seed)`: seeded sampling for the initial
/// centroids, sequential assignment with lower-index tie-breaks, and
/// fixed-order mean recomputation.
fn train_ivf(
    feats: &[f32],
    dim: usize,
    rows: usize,
    nlist: usize,
    nprobe: usize,
    seed: u64,
) -> Ivf {
    let k = nlist.min(rows);
    let mut rng = Rng64::new(seed);
    let mut centroids = Vec::with_capacity(k * dim);
    for row in rng.sample_indices(rows, k) {
        centroids.extend_from_slice(&feats[row * dim..(row + 1) * dim]);
    }
    let mut assign = vec![0u32; rows];
    for round in 0..KMEANS_ROUNDS {
        // Assignment: nearest centroid, first (lowest-index) winner on ties.
        let mut changed = false;
        for row in 0..rows {
            let rf = &feats[row * dim..(row + 1) * dim];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = sq_distance_row(&centroids[c * dim..(c + 1) * dim], rf);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[row] != best as u32 {
                assign[row] = best as u32;
                changed = true;
            }
        }
        if !changed && round > 0 {
            break;
        }
        // Update: per-cluster mean in f64, sequential row order. Empty
        // clusters keep their previous centroid.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for row in 0..rows {
            let c = assign[row] as usize;
            counts[c] += 1;
            for j in 0..dim {
                sums[c * dim + j] += f64::from(feats[row * dim + j]);
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..dim {
                    centroids[c * dim + j] = (sums[c * dim + j] / counts[c] as f64) as f32;
                }
            }
        }
    }
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (row, &c) in assign.iter().enumerate() {
        lists[c as usize].push(row as u32);
    }
    Ivf { nprobe, centroids, lists }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(points: &[(u32, Vec<f32>)]) -> Vec<(VideoId, Tensor)> {
        points
            .iter()
            .map(|(class, v)| {
                let n = v.len();
                (
                    VideoId { class: *class, instance: 0 },
                    Tensor::from_vec(v.clone(), &[n]).unwrap(),
                )
            })
            .collect()
    }

    fn line_gallery(n: u32) -> Vec<(VideoId, Tensor)> {
        entries(&(0..n).map(|i| (i, vec![i as f32, 0.0])).collect::<Vec<_>>())
    }

    #[test]
    fn exact_search_matches_sort_and_truncate() {
        let gallery = line_gallery(40);
        let index = ShardIndex::build(&gallery, IndexMode::Exact, 0).unwrap();
        let got = index.search(&[7.3, 0.0], 4);
        let mut reference: Vec<ScoredId> = gallery
            .iter()
            .map(|(id, feat)| ScoredId {
                id: *id,
                distance: feat
                    .sq_distance(&Tensor::from_vec(vec![7.3, 0.0], &[2]).unwrap())
                    .unwrap(),
            })
            .collect();
        reference.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| (a.id.class, a.id.instance).cmp(&(b.id.class, b.id.instance)))
        });
        reference.truncate(4);
        assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.id, r.id);
            assert_eq!(g.distance.to_bits(), r.distance.to_bits(), "bit-identical distances");
        }
    }

    #[test]
    fn full_probe_ivf_equals_exact() {
        let gallery = line_gallery(50);
        let exact = ShardIndex::build(&gallery, IndexMode::Exact, 0).unwrap();
        let ivf = ShardIndex::build(&gallery, IndexMode::ivf(5, 5), 99).unwrap();
        for q in [[0.0, 0.0], [12.6, 0.0], [49.9, 0.0]] {
            assert_eq!(ivf.search(&q, 7), exact.search(&q, 7));
        }
    }

    #[test]
    fn partial_probe_finds_local_neighbours() {
        // Two well-separated clusters; probing one list still answers the
        // in-cluster query perfectly.
        let mut points = Vec::new();
        for i in 0..20u32 {
            points.push((i, vec![i as f32 * 0.01, 0.0]));
            points.push((100 + i, vec![1000.0 + i as f32 * 0.01, 0.0]));
        }
        let index = ShardIndex::build(&entries(&points), IndexMode::ivf(2, 1), 7).unwrap();
        let got = index.search(&[0.05, 0.0], 3);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|s| s.id.class < 100), "all answers from the near cluster");
    }

    #[test]
    fn stats_count_probes_and_rows() {
        let gallery = line_gallery(30);
        let index = ShardIndex::build(&gallery, IndexMode::ivf(3, 2), 3).unwrap();
        index.search(&[1.0, 0.0], 5);
        let stats = index.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.probed_lists, 2);
        assert!(stats.scanned_rows > 0 && stats.scanned_rows < 30);
        // First query is audited.
        assert_eq!(stats.audit_queries, 1);
        assert!(stats.recall_at_m().is_some());
    }

    #[test]
    fn exact_mode_counts_all_rows() {
        let index = ShardIndex::build(&line_gallery(30), IndexMode::Exact, 0).unwrap();
        index.search(&[1.0, 0.0], 5);
        index.search(&[2.0, 0.0], 5);
        let stats = index.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.scanned_rows, 60);
        assert_eq!(stats.probed_lists, 0);
        assert_eq!(stats.recall_at_m(), None);
    }

    #[test]
    fn rejects_mixed_dimensions_at_build() {
        let bad = vec![
            (VideoId { class: 0, instance: 0 }, Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap()),
            (VideoId { class: 1, instance: 0 }, Tensor::from_vec(vec![0.0], &[1]).unwrap()),
        ];
        assert!(ShardIndex::build(&bad, IndexMode::Exact, 0).is_err());
    }

    #[test]
    fn rejects_bad_ivf_parameters() {
        let gallery = line_gallery(4);
        assert!(ShardIndex::build(&gallery, IndexMode::ivf(0, 1), 0).is_err());
        assert!(ShardIndex::build(&gallery, IndexMode::ivf(4, 0), 0).is_err());
        assert!(ShardIndex::build(&gallery, IndexMode::ivf(2, 3), 0).is_err());
    }

    #[test]
    fn empty_index_answers_empty() {
        let index = ShardIndex::build(&[], IndexMode::ivf(4, 2), 0).unwrap();
        assert!(index.is_empty());
        assert!(index.search(&[1.0], 3).is_empty());
    }

    #[test]
    fn nlist_caps_at_row_count() {
        let index = ShardIndex::build(&line_gallery(3), IndexMode::ivf(16, 16), 1).unwrap();
        assert_eq!(index.nlist(), 3);
    }

    #[test]
    fn top_m_zero_cap_keeps_nothing() {
        let mut top = TopM::new(0);
        top.push(1.0, VideoId { class: 0, instance: 0 });
        assert!(top.is_empty());
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn entries_round_trip() {
        let gallery = line_gallery(5);
        let index = ShardIndex::build(&gallery, IndexMode::Exact, 0).unwrap();
        assert_eq!(index.entries(), gallery);
    }

    #[test]
    fn mode_serializes_to_json() {
        assert_eq!(IndexMode::Exact.to_json().to_string(), r#"{"mode":"exact"}"#);
        assert_eq!(
            IndexMode::ivf(16, 4).to_json().to_string(),
            r#"{"mode":"ivf","nlist":16,"nprobe":4}"#
        );
    }
}
