//! The shard-local ANN index: structure-of-arrays storage, a check-free
//! blocked distance kernel, bounded top-`m` selection, and a seeded IVF
//! (inverted-file) coarse quantizer.
//!
//! Every [`crate::DataNode`] owns one [`ShardIndex`]. The seed
//! implementation scanned a `Vec<(VideoId, Tensor)>` per query — one
//! heap-allocated tensor, one shape check, and one bounds-checked
//! iterator chain per entry, followed by a full `O(G log G)` sort for a
//! top-`m` answer. The index replaces that with:
//!
//! * **SoA storage** — all features live in one flattened row-major
//!   `Vec<f32>` (`row r` at `feats[r*dim .. (r+1)*dim]`), ids in a
//!   parallel `Vec<VideoId>`. Dimension agreement is validated *once* at
//!   build time, so the query loop carries no per-entry checks.
//! * **Bounded top-`m`** — a max-heap of capacity `m` ([`TopM`]) replaces
//!   collect-all-and-sort: `O(G log m)` and `O(m)` memory.
//! * **Optional IVF** — a seeded k-means coarse quantizer partitions the
//!   shard into `nlist` inverted lists; a query scans only the `nprobe`
//!   nearest lists with *exact* distances (probed candidates are fully
//!   re-ranked, never approximated).
//! * **Compressed residual codes** — [`IndexMode::Pq`] and
//!   [`IndexMode::Sq8`] keep the IVF coarse quantizer but score probed
//!   candidates against quantized *residuals* (row − assigned centroid).
//!   PQ splits each residual into `m_sub` subspaces, each encoded as one
//!   byte against a seeded per-subspace codebook, and scores rows through
//!   a per-probed-list lookup table (asymmetric distance computation:
//!   `m_sub` table adds per row, `m_sub` bytes per row on the scan path).
//!   SQ8 stores one affine byte per dimension (`dim` bytes per row). An
//!   optional exact-rerank tail rescores the top ADC candidates from the
//!   retained f32 matrix, so full-depth rerank at full probe is
//!   bit-identical to [`IndexMode::Exact`]. The byte-level on-disk
//!   layout (`DUOINDX3`) and the ADC walkthrough live in DESIGN.md §6h.
//!
//! # Determinism
//!
//! Exact mode is **bit-identical** to the seed scan: the kernel
//! accumulates each row's squared distance in strictly sequential element
//! order (the same order `Tensor::sq_distance` used), blocking only
//! *across* rows, and the heap's total order `(distance.total_cmp, id)`
//! is exactly the seed sort's comparator — so the selected set and its
//! final ascending order coincide with sort-and-truncate. IVF is
//! deterministic too: k-means is seeded ([`shard_seed`] per shard),
//! assignment and probe ties break on the lower list index, and result
//! ties break by id. PQ codebooks extend the same doctrine: subspace `s`
//! trains with the derived seed [`pq_subspace_seed`]`(seed, s)` and
//! encoding is a final explicit nearest-codeword pass (lowest index on
//! ties), so same shard contents + same seed ⇒ same codebooks, same
//! codes, same rankings, on every run and thread interleaving — the
//! property every epoch rebuild and every persistence reload relies on.
//!
//! # Example
//!
//! ```
//! use duo_retrieval::{IndexMode, ShardIndex};
//! use duo_tensor::Tensor;
//! use duo_video::VideoId;
//!
//! // 64 points on a line; the nearest neighbours of 3.2 are 3, 4, 2…
//! let entries: Vec<(VideoId, Tensor)> = (0..64)
//!     .map(|i| {
//!         let feat = Tensor::from_vec(vec![i as f32, 0.0], &[2]).unwrap();
//!         (VideoId { class: i, instance: 0 }, feat)
//!     })
//!     .collect();
//! let exact = ShardIndex::build(&entries, IndexMode::Exact, 0)?;
//! let ivf = ShardIndex::build(&entries, IndexMode::ivf(8, 8), 7)?;
//!
//! let top = exact.search(&[3.2, 0.0], 3);
//! assert_eq!(top[0].id.class, 3);
//! // Probing every list makes IVF exhaustive: identical to exact.
//! assert_eq!(ivf.search(&[3.2, 0.0], 3), top);
//! # Ok::<(), duo_retrieval::RetrievalError>(())
//! ```

use crate::{Result, RetrievalError, ScoredId};
use duo_tensor::{Json, Rng64, Tensor, ToJson};
use duo_video::VideoId;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Rounds of Lloyd iteration for the IVF coarse quantizer. Assignment
/// converges long before this on shard-sized galleries; the fixed bound
/// keeps index builds predictable.
const KMEANS_ROUNDS: usize = 8;

/// Every `AUDIT_PERIOD`-th IVF query on a shard is audited: the exact
/// answer is computed alongside and the overlap recorded, so recall@m is
/// observable in production stats at ~1/16th of an exact scan's cost.
const AUDIT_PERIOD: u64 = 16;

/// Rows per block in the exact kernel. Blocking is across *rows* only —
/// each row's accumulation stays strictly sequential so distances remain
/// bit-identical to `Tensor::sq_distance` — and exists to keep the heap
/// maintenance out of the kernel's inner loop.
const ROW_BLOCK: usize = 16;

/// How a shard answers nearest-neighbour queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexMode {
    /// Scan every row (the default). Exhaustive and bit-identical to the
    /// seed per-entry scan, but on SoA storage with bounded top-`m`.
    Exact,
    /// Inverted-file index: k-means partitions the shard into `nlist`
    /// cells; a query scans the `nprobe` nearest cells exhaustively with
    /// exact distances. Sublinear when `nprobe < nlist`, exhaustive
    /// (equal to [`IndexMode::Exact`]) when `nprobe == nlist`.
    Ivf {
        /// Number of inverted lists (k-means centroids) per shard.
        nlist: usize,
        /// Lists scanned per query, nearest centroid first.
        nprobe: usize,
    },
    /// IVF with product-quantized residual codes: probed candidates are
    /// scored by asymmetric distance computation (a per-list lookup
    /// table over `m_sub` seeded subspace codebooks) instead of the f32
    /// rows, touching `m_sub` bytes per row on the scan path. `rerank`
    /// exact-rescores the top ADC candidates from the retained f32
    /// matrix. The feature dimension must be divisible by `m_sub`
    /// (checked at build time).
    Pq {
        /// Number of inverted lists (k-means centroids) per shard.
        nlist: usize,
        /// Lists scanned per query, nearest centroid first.
        nprobe: usize,
        /// Residual subspaces per vector — also the code bytes per row.
        m_sub: usize,
        /// Bits per sub-code, `1..=8`; each subspace codebook holds
        /// `2^nbits` codewords (capped at the row count). Codes are
        /// stored byte-packed regardless of `nbits`.
        nbits: u32,
        /// Exact-rerank depth: `0` ranks by ADC distance alone; `r > 0`
        /// rescores the `max(r, m)` best ADC candidates exactly.
        rerank: usize,
    },
    /// IVF with 8-bit scalar-quantized residual codes: one affine byte
    /// per dimension (`code = round((x − min_d) / step_d)`), so probed
    /// rows decode inline at `dim` bytes per row — 1/4 of the f32 scan
    /// footprint before table overheads. `rerank` as for
    /// [`IndexMode::Pq`].
    Sq8 {
        /// Number of inverted lists (k-means centroids) per shard.
        nlist: usize,
        /// Lists scanned per query, nearest centroid first.
        nprobe: usize,
        /// Exact-rerank depth: `0` ranks by quantized distance alone.
        rerank: usize,
    },
}

impl Default for IndexMode {
    fn default() -> Self {
        IndexMode::Exact
    }
}

impl IndexMode {
    /// Shorthand for [`IndexMode::Ivf`].
    pub fn ivf(nlist: usize, nprobe: usize) -> Self {
        IndexMode::Ivf { nlist, nprobe }
    }

    /// Shorthand for [`IndexMode::Pq`].
    ///
    /// ```
    /// use duo_retrieval::{IndexMode, ShardIndex};
    /// use duo_tensor::Tensor;
    /// use duo_video::VideoId;
    ///
    /// let entries: Vec<(VideoId, Tensor)> = (0..32)
    ///     .map(|i| {
    ///         let feat = Tensor::from_vec(vec![i as f32, -(i as f32), 1.0, 0.0], &[4]).unwrap();
    ///         (VideoId { class: i, instance: 0 }, feat)
    ///     })
    ///     .collect();
    /// // 4 lists, probe all 4, 2 subspaces of 2 dims, 8-bit codes,
    /// // exact-rerank the full shard: bit-identical to an exact scan.
    /// let pq = ShardIndex::build(&entries, IndexMode::pq(4, 4, 2, 8, 32), 7)?;
    /// let exact = ShardIndex::build(&entries, IndexMode::Exact, 0)?;
    /// let q = [5.2f32, -5.2, 1.0, 0.0];
    /// assert_eq!(pq.search(&q, 3), exact.search(&q, 3));
    /// # Ok::<(), duo_retrieval::RetrievalError>(())
    /// ```
    pub fn pq(nlist: usize, nprobe: usize, m_sub: usize, nbits: u32, rerank: usize) -> Self {
        IndexMode::Pq { nlist, nprobe, m_sub, nbits, rerank }
    }

    /// Shorthand for [`IndexMode::Sq8`].
    ///
    /// ```
    /// use duo_retrieval::{IndexMode, ShardIndex};
    /// use duo_tensor::Tensor;
    /// use duo_video::VideoId;
    ///
    /// let entries: Vec<(VideoId, Tensor)> = (0..16)
    ///     .map(|i| {
    ///         let feat = Tensor::from_vec(vec![i as f32, 0.5], &[2]).unwrap();
    ///         (VideoId { class: i, instance: 0 }, feat)
    ///     })
    ///     .collect();
    /// let sq8 = ShardIndex::build(&entries, IndexMode::sq8(2, 2, 16), 3)?;
    /// // Full probe + full-depth rerank: exact answers from 1-byte codes.
    /// assert_eq!(sq8.search(&[6.1, 0.5], 1)[0].id.class, 6);
    /// # Ok::<(), duo_retrieval::RetrievalError>(())
    /// ```
    pub fn sq8(nlist: usize, nprobe: usize, rerank: usize) -> Self {
        IndexMode::Sq8 { nlist, nprobe, rerank }
    }

    /// Whether this mode scans the whole shard (no coarse quantizer).
    pub fn is_exact(&self) -> bool {
        matches!(self, IndexMode::Exact)
    }

    /// The coarse quantizer's `(nlist, nprobe)`, or `None` in exact mode.
    pub fn coarse_params(&self) -> Option<(usize, usize)> {
        match *self {
            IndexMode::Exact => None,
            IndexMode::Ivf { nlist, nprobe }
            | IndexMode::Pq { nlist, nprobe, .. }
            | IndexMode::Sq8 { nlist, nprobe, .. } => Some((nlist, nprobe)),
        }
    }

    /// The exact-rerank depth (0 for modes that never rerank).
    pub fn rerank_depth(&self) -> usize {
        match *self {
            IndexMode::Pq { rerank, .. } | IndexMode::Sq8 { rerank, .. } => rerank,
            _ => 0,
        }
    }

    /// Whether this mode scores quantized residual codes (PQ or SQ8).
    pub fn is_compressed(&self) -> bool {
        matches!(self, IndexMode::Pq { .. } | IndexMode::Sq8 { .. })
    }

    /// Validates the mode's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for zero `nlist`/`nprobe`,
    /// `nprobe > nlist`, zero `m_sub`, or `nbits` outside `1..=8`.
    pub fn validate(&self) -> Result<()> {
        if let Some((nlist, nprobe)) = self.coarse_params() {
            if nlist == 0 || nprobe == 0 {
                return Err(RetrievalError::BadConfig(format!(
                    "nlist and nprobe must be positive, got {self:?}"
                )));
            }
            if nprobe > nlist {
                return Err(RetrievalError::BadConfig(format!(
                    "nprobe must not exceed nlist, got {self:?}"
                )));
            }
        }
        if let IndexMode::Pq { m_sub, nbits, .. } = *self {
            if m_sub == 0 {
                return Err(RetrievalError::BadConfig(format!(
                    "m_sub must be positive, got {self:?}"
                )));
            }
            if nbits == 0 || nbits > 8 {
                return Err(RetrievalError::BadConfig(format!(
                    "nbits must be in 1..=8, got {self:?}"
                )));
            }
        }
        Ok(())
    }
}

impl ToJson for IndexMode {
    fn to_json(&self) -> Json {
        match *self {
            IndexMode::Exact => {
                Json::object(vec![("mode".to_string(), Json::Str("exact".to_string()))])
            }
            IndexMode::Ivf { nlist, nprobe } => Json::object(vec![
                ("mode".to_string(), Json::Str("ivf".to_string())),
                ("nlist".to_string(), Json::Int(nlist as i128)),
                ("nprobe".to_string(), Json::Int(nprobe as i128)),
            ]),
            IndexMode::Pq { nlist, nprobe, m_sub, nbits, rerank } => Json::object(vec![
                ("mode".to_string(), Json::Str("pq".to_string())),
                ("nlist".to_string(), Json::Int(nlist as i128)),
                ("nprobe".to_string(), Json::Int(nprobe as i128)),
                ("m_sub".to_string(), Json::Int(m_sub as i128)),
                ("nbits".to_string(), Json::Int(i128::from(nbits))),
                ("rerank".to_string(), Json::Int(rerank as i128)),
            ]),
            IndexMode::Sq8 { nlist, nprobe, rerank } => Json::object(vec![
                ("mode".to_string(), Json::Str("sq8".to_string())),
                ("nlist".to_string(), Json::Int(nlist as i128)),
                ("nprobe".to_string(), Json::Int(nprobe as i128)),
                ("rerank".to_string(), Json::Int(rerank as i128)),
            ]),
        }
    }
}

/// The deterministic k-means seed for shard `shard` of a system. Builds
/// and index restores use the same function, so a restored shard with
/// identical contents trains the identical quantizer.
pub fn shard_seed(shard: usize) -> u64 {
    (0x1DF5_EED0_u64.wrapping_add(shard as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The deterministic k-means seed for PQ subspace `sub` of a shard
/// trained with `seed`. Every codebook retrain — fresh build, epoch
/// rebuild of a dirty shard, `DUOINDX2` reload — derives subspace seeds
/// through this one function, so identical residuals always train
/// identical codebooks (the determinism doctrine, DESIGN.md §6h).
pub fn pq_subspace_seed(seed: u64, sub: usize) -> u64 {
    seed ^ (0xA5C0_0B00_u64.wrapping_add(sub as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Bounded top-`m` selection: a max-heap of capacity `m` keeping the `m`
/// smallest candidates under the total order `(distance, id)` — the same
/// comparator the seed scan sorted with, so the surviving set and its
/// sorted order are identical to sort-and-truncate.
#[derive(Debug)]
pub struct TopM {
    cap: usize,
    heap: BinaryHeap<Cand>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    distance: f32,
    id: VideoId,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then_with(|| (self.id.class, self.id.instance).cmp(&(other.id.class, other.id.instance)))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TopM {
    /// An empty selector keeping at most `cap` candidates.
    pub fn new(cap: usize) -> Self {
        TopM { cap, heap: BinaryHeap::with_capacity(cap.saturating_add(1)) }
    }

    /// Offers one candidate; it survives only while it is among the `cap`
    /// smallest seen so far.
    #[inline]
    pub fn push(&mut self, distance: f32, id: VideoId) {
        if self.cap == 0 {
            return;
        }
        let cand = Cand { distance, id };
        if self.heap.len() < self.cap {
            self.heap.push(cand);
        } else if let Some(worst) = self.heap.peek() {
            if cand < *worst {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    /// Candidates currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate survived (or `cap` was zero).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The survivors, ascending by `(distance, id)` — nearest first.
    pub fn into_sorted(self) -> Vec<ScoredId> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|c| ScoredId { id: c.id, distance: c.distance })
            .collect()
    }
}

/// One row's squared Euclidean distance, accumulated in strictly
/// sequential element order — bit-identical to `Tensor::sq_distance` on
/// the same data.
#[inline]
fn sq_distance_row(row: &[f32], query: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (a, b) in row.iter().zip(query) {
        let d = a - b;
        acc += d * d;
    }
    acc
}

/// A trained inverted-file structure: `nlist` centroids plus the row
/// indices assigned to each. Shared by the IVF, PQ, and SQ8 modes as the
/// coarse quantizer.
#[derive(Debug, Clone)]
struct Ivf {
    nprobe: usize,
    /// Row-major `lists.len() × dim` centroid matrix.
    centroids: Vec<f32>,
    /// Member rows per list, ascending (assignment iterates in row order).
    lists: Vec<Vec<u32>>,
}

/// A trained product quantizer over coarse residuals: `m_sub` subspace
/// codebooks of `ksub` codewords each, `dsub = dim / m_sub` dims apiece.
#[derive(Debug, Clone)]
struct PqCodec {
    m_sub: usize,
    ksub: usize,
    dsub: usize,
    /// `m_sub × ksub × dsub`, subspace-major: codeword `k` of subspace
    /// `s` at `[(s*ksub + k)*dsub ..][..dsub]`.
    codebooks: Vec<f32>,
    rerank: usize,
}

/// A trained per-dimension affine scalar quantizer over coarse
/// residuals: `code = round((x − mins[d]) / steps[d])`, clamped to a
/// byte; decode is `mins[d] + steps[d] * code`.
#[derive(Debug, Clone)]
struct Sq8Codec {
    mins: Vec<f32>,
    steps: Vec<f32>,
    rerank: usize,
}

/// The residual codec of a compressed index. The per-row coarse
/// assignment the residuals were taken against lives on the
/// [`ShardIndex`] (`coarse_assign`), shared with the plain IVF mode.
#[derive(Debug, Clone)]
enum Codec {
    Pq(PqCodec),
    Sq8(Sq8Codec),
}

/// Bounded top-`cap` row selection by approximate distance — the rerank
/// staging heap. Same mechanics as [`TopM`], ordered by
/// `(distance, row)` so the retained candidate *set* is independent of
/// scan order.
struct TopRows {
    cap: usize,
    heap: BinaryHeap<RowCand>,
}

#[derive(PartialEq)]
struct RowCand {
    distance: f32,
    row: u32,
}

impl Eq for RowCand {}

impl Ord for RowCand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance.total_cmp(&other.distance).then_with(|| self.row.cmp(&other.row))
    }
}

impl PartialOrd for RowCand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TopRows {
    fn new(cap: usize) -> Self {
        TopRows { cap, heap: BinaryHeap::with_capacity(cap.saturating_add(1)) }
    }

    #[inline]
    fn push(&mut self, distance: f32, row: u32) {
        if self.cap == 0 {
            return;
        }
        let cand = RowCand { distance, row };
        if self.heap.len() < self.cap {
            self.heap.push(cand);
        } else if let Some(worst) = self.heap.peek() {
            if cand < *worst {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    fn rows(self) -> impl Iterator<Item = u32> {
        self.heap.into_iter().map(|c| c.row)
    }
}

/// Where a compressed scan's candidates go: straight into the result
/// heap when `rerank == 0`, or into the rerank staging heap (capacity
/// `max(rerank, m)`) for exact rescoring.
enum CandidateSink {
    Direct(TopM),
    Rerank(TopRows),
}

impl CandidateSink {
    fn new(m: usize, rerank: usize) -> Self {
        if rerank == 0 {
            CandidateSink::Direct(TopM::new(m))
        } else {
            CandidateSink::Rerank(TopRows::new(rerank.max(m)))
        }
    }

    #[inline]
    fn push(&mut self, distance: f32, row: u32, ids: &[VideoId]) {
        match self {
            CandidateSink::Direct(top) => top.push(distance, ids[row as usize]),
            CandidateSink::Rerank(rows) => rows.push(distance, row),
        }
    }
}

/// Aggregated scan counters for one index (or, merged, for a whole
/// system). All counters are monotonic; [`IndexStats::recall_at_m`]
/// derives the running recall estimate from the audit counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Shard-level searches answered.
    pub queries: u64,
    /// Inverted lists scanned across all IVF queries (0 in exact mode).
    pub probed_lists: u64,
    /// Feature rows pushed through the distance kernel.
    pub scanned_rows: u64,
    /// ADC candidates exact-rescored by the rerank tail (0 outside
    /// compressed modes or with `rerank == 0`).
    pub reranked_rows: u64,
    /// Coarse-mode queries that were recall-audited against an exact
    /// scan.
    pub audit_queries: u64,
    /// Audited result ids that the exact answer also contained.
    pub audit_hits: u64,
    /// Total result ids the exact answers of audited queries contained.
    pub audit_expected: u64,
}

duo_tensor::impl_to_json!(struct IndexStats {
    queries, probed_lists, scanned_rows, reranked_rows, audit_queries, audit_hits, audit_expected
});

impl IndexStats {
    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: &IndexStats) {
        self.queries += other.queries;
        self.probed_lists += other.probed_lists;
        self.scanned_rows += other.scanned_rows;
        self.reranked_rows += other.reranked_rows;
        self.audit_queries += other.audit_queries;
        self.audit_hits += other.audit_hits;
        self.audit_expected += other.audit_expected;
    }

    /// Mean inverted lists probed per query (0 for pure exact traffic).
    pub fn mean_probes(&self) -> f32 {
        if self.queries == 0 {
            0.0
        } else {
            self.probed_lists as f32 / self.queries as f32
        }
    }

    /// The running recall@m estimate from audited IVF queries, or `None`
    /// before the first audit (exact mode never audits — its recall is 1
    /// by construction).
    pub fn recall_at_m(&self) -> Option<f32> {
        if self.audit_expected == 0 {
            None
        } else {
            Some(self.audit_hits as f32 / self.audit_expected as f32)
        }
    }
}

/// Per-mode scan counters for a whole system: the aggregate plus one
/// [`IndexStats`] bucket per index mode, so mixed-mode fleets attribute
/// recall (and probe/rerank volume) to the mode that produced it, plus
/// the system's resident byte footprint split into f32 features and
/// compressed-code bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexBreakdown {
    /// All shards' counters merged (what [`IndexStats`] alone reported
    /// before the split).
    pub total: IndexStats,
    /// Counters of shards serving [`IndexMode::Exact`].
    pub exact: IndexStats,
    /// Counters of shards serving [`IndexMode::Ivf`].
    pub ivf: IndexStats,
    /// Counters of shards serving [`IndexMode::Pq`].
    pub pq: IndexStats,
    /// Counters of shards serving [`IndexMode::Sq8`].
    pub sq8: IndexStats,
    /// Bytes of retained f32 feature matrix across shards.
    pub feature_bytes: u64,
    /// Bytes of compressed codes plus codec tables across shards (0 for
    /// uncompressed modes).
    pub code_bytes: u64,
}

duo_tensor::impl_to_json!(struct IndexBreakdown {
    total, exact, ivf, pq, sq8, feature_bytes, code_bytes
});

impl IndexBreakdown {
    /// Merges one shard's counters into the aggregate and into the
    /// bucket for `mode`.
    pub fn absorb(&mut self, mode: IndexMode, stats: &IndexStats) {
        self.total.merge(stats);
        match mode {
            IndexMode::Exact => self.exact.merge(stats),
            IndexMode::Ivf { .. } => self.ivf.merge(stats),
            IndexMode::Pq { .. } => self.pq.merge(stats),
            IndexMode::Sq8 { .. } => self.sq8.merge(stats),
        }
    }
}

/// The per-shard nearest-neighbour index: SoA feature storage plus an
/// optional IVF coarse quantizer. See the [module docs](self) for the
/// layout and determinism contract.
#[derive(Debug)]
pub struct ShardIndex {
    ids: Vec<VideoId>,
    /// Row-major `ids.len() × dim` feature matrix.
    feats: Vec<f32>,
    dim: usize,
    mode: IndexMode,
    ivf: Option<Ivf>,
    /// Per-row coarse list assignment (empty in exact mode). Redundant
    /// with `ivf.lists` but kept flat for residual decoding and the
    /// `DUOINDX3` writer.
    coarse_assign: Vec<u32>,
    codec: Option<Codec>,
    /// Row-major residual codes: `m_sub` bytes per row (PQ) or `dim`
    /// bytes per row (SQ8); empty for uncompressed modes.
    codes: Vec<u8>,
    queries: AtomicU64,
    probed_lists: AtomicU64,
    scanned_rows: AtomicU64,
    reranked_rows: AtomicU64,
    audit_queries: AtomicU64,
    audit_hits: AtomicU64,
    audit_expected: AtomicU64,
}

impl ShardIndex {
    /// Builds an index over `(id, feature)` entries.
    ///
    /// All feature dimensions are validated here — the one place the
    /// check runs — so the query kernel is check-free. For
    /// [`IndexMode::Ivf`], the coarse quantizer is trained immediately
    /// with a k-means seeded from `seed` (use [`shard_seed`] for the
    /// per-shard convention); `nlist` is silently capped at the number of
    /// rows.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for invalid IVF parameters
    /// or entries with disagreeing dimensions.
    pub fn build(entries: &[(VideoId, Tensor)], mode: IndexMode, seed: u64) -> Result<Self> {
        let dim = entries.first().map(|(_, feat)| feat.len()).unwrap_or(0);
        let mut ids = Vec::with_capacity(entries.len());
        let mut feats = Vec::with_capacity(entries.len() * dim);
        for (id, feat) in entries {
            if feat.len() != dim {
                return Err(RetrievalError::BadConfig(format!(
                    "shard features must share one dimension: got {} after {dim}",
                    feat.len()
                )));
            }
            ids.push(*id);
            feats.extend_from_slice(feat.as_slice());
        }
        Self::build_from_rows(ids, feats, dim, mode, seed)
    }

    /// Builds an index directly from flattened SoA storage: `ids.len()`
    /// rows of `dim` features each, row `r` at `feats[r*dim..(r+1)*dim]`.
    /// This is the epoch-rebuild entry point — a mutation staging buffer
    /// (one `memcpy` of the previous generation's matrix) becomes the
    /// next generation without materializing a tensor per row.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for invalid IVF parameters
    /// or when `feats.len() != ids.len() * dim`.
    pub fn build_from_rows(
        ids: Vec<VideoId>,
        feats: Vec<f32>,
        dim: usize,
        mode: IndexMode,
        seed: u64,
    ) -> Result<Self> {
        mode.validate()?;
        if feats.len() != ids.len() * dim {
            return Err(RetrievalError::BadConfig(format!(
                "flattened feature matrix must hold ids*dim floats: {} ids x {dim} != {}",
                ids.len(),
                feats.len()
            )));
        }
        if let IndexMode::Pq { m_sub, .. } = mode {
            if !ids.is_empty() && dim % m_sub != 0 {
                return Err(RetrievalError::BadConfig(format!(
                    "PQ m_sub must divide the feature dimension: {dim} % {m_sub} != 0"
                )));
            }
        }
        let (ivf, coarse_assign) = match mode.coarse_params() {
            Some((nlist, nprobe)) if !ids.is_empty() => {
                let (ivf, assign) = train_ivf(&feats, dim, ids.len(), nlist, nprobe, seed);
                (Some(ivf), assign)
            }
            _ => (None, Vec::new()),
        };
        let (codec, codes) = match (mode, &ivf) {
            (IndexMode::Pq { m_sub, nbits, rerank, .. }, Some(ivf)) => {
                let (pq, codes) = train_pq(
                    &feats,
                    dim,
                    &ivf.centroids,
                    &coarse_assign,
                    m_sub,
                    nbits,
                    rerank,
                    seed,
                );
                (Some(Codec::Pq(pq)), codes)
            }
            (IndexMode::Sq8 { rerank, .. }, Some(ivf)) => {
                let (sq, codes) =
                    train_sq8(&feats, dim, &ivf.centroids, &coarse_assign, rerank);
                (Some(Codec::Sq8(sq)), codes)
            }
            _ => (None, Vec::new()),
        };
        Ok(ShardIndex {
            ids,
            feats,
            dim,
            mode,
            ivf,
            coarse_assign,
            codec,
            codes,
            queries: AtomicU64::new(0),
            probed_lists: AtomicU64::new(0),
            scanned_rows: AtomicU64::new(0),
            reranked_rows: AtomicU64::new(0),
            audit_queries: AtomicU64::new(0),
            audit_hits: AtomicU64::new(0),
            audit_expected: AtomicU64::new(0),
        })
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Feature dimensionality (0 for an empty index).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The mode this index answers queries in.
    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    /// The indexed ids, in row order.
    pub fn ids(&self) -> &[VideoId] {
        &self.ids
    }

    /// The feature vector of one row.
    ///
    /// # Panics
    ///
    /// Panics when `row >= self.len()`.
    pub fn feature(&self, row: usize) -> &[f32] {
        &self.feats[row * self.dim..(row + 1) * self.dim]
    }

    /// Number of inverted lists actually trained (0 in exact mode; capped
    /// at the row count in IVF mode).
    pub fn nlist(&self) -> usize {
        self.ivf.as_ref().map_or(0, |ivf| ivf.lists.len())
    }

    /// A snapshot of this shard's scan counters.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            queries: self.queries.load(Ordering::Relaxed),
            probed_lists: self.probed_lists.load(Ordering::Relaxed),
            scanned_rows: self.scanned_rows.load(Ordering::Relaxed),
            reranked_rows: self.reranked_rows.load(Ordering::Relaxed),
            audit_queries: self.audit_queries.load(Ordering::Relaxed),
            audit_hits: self.audit_hits.load(Ordering::Relaxed),
            audit_expected: self.audit_expected.load(Ordering::Relaxed),
        }
    }

    /// The local top-`m` nearest rows to `query`, ascending by
    /// `(distance, id)`. Exact mode is bit-identical to the seed scan;
    /// IVF mode scans the `nprobe` nearest lists with exact distances.
    ///
    /// # Panics
    ///
    /// Panics when `query.len()` disagrees with the index dimension —
    /// the build-time dimension contract makes this the only check on
    /// the query path, hoisted out of the per-row loop.
    pub fn search(&self, query: &[f32], m: usize) -> Vec<ScoredId> {
        let qidx = self.queries.fetch_add(1, Ordering::Relaxed);
        if self.ids.is_empty() || m == 0 {
            return Vec::new();
        }
        assert_eq!(
            query.len(),
            self.dim,
            "query dimension must match the index dimension"
        );
        match &self.ivf {
            None => {
                self.scanned_rows.fetch_add(self.ids.len() as u64, Ordering::Relaxed);
                self.scan_all(query, m)
            }
            Some(ivf) => {
                let results = match &self.codec {
                    None => self.scan_ivf(ivf, query, m),
                    Some(Codec::Pq(pq)) => self.scan_pq(ivf, pq, query, m),
                    Some(Codec::Sq8(sq)) => self.scan_sq8(ivf, sq, query, m),
                };
                if qidx % AUDIT_PERIOD == 0 {
                    // Recall audit: compare against the exact answer
                    // (counted separately; audit scans do not inflate the
                    // kernel-row counter).
                    let exact = self.scan_all(query, m);
                    let hits = results
                        .iter()
                        .filter(|s| exact.iter().any(|e| e.id == s.id))
                        .count() as u64;
                    self.audit_queries.fetch_add(1, Ordering::Relaxed);
                    self.audit_hits.fetch_add(hits, Ordering::Relaxed);
                    self.audit_expected.fetch_add(exact.len() as u64, Ordering::Relaxed);
                }
                results
            }
        }
    }

    /// Exhaustive scan over the SoA matrix, blocked across rows.
    fn scan_all(&self, query: &[f32], m: usize) -> Vec<ScoredId> {
        let mut top = TopM::new(m);
        let mut distances = [0.0f32; ROW_BLOCK];
        let mut row = 0usize;
        while row < self.ids.len() {
            let block = ROW_BLOCK.min(self.ids.len() - row);
            for (i, d) in distances[..block].iter_mut().enumerate() {
                let r = row + i;
                *d = sq_distance_row(&self.feats[r * self.dim..(r + 1) * self.dim], query);
            }
            for (i, &d) in distances[..block].iter().enumerate() {
                top.push(d, self.ids[row + i]);
            }
            row += block;
        }
        top.into_sorted()
    }

    /// Centroid ranking shared by every coarse mode: exact distances,
    /// ties toward the lower list index.
    fn rank_centroids(&self, ivf: &Ivf, query: &[f32]) -> Vec<(f32, usize)> {
        let nlist = ivf.lists.len();
        let mut order: Vec<(f32, usize)> = (0..nlist)
            .map(|c| (sq_distance_row(&ivf.centroids[c * self.dim..(c + 1) * self.dim], query), c))
            .collect();
        // Ties on centroid distance break toward the lower list index.
        order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        order
    }

    /// IVF probe: rank centroids by exact distance, scan the `nprobe`
    /// nearest lists exhaustively.
    fn scan_ivf(&self, ivf: &Ivf, query: &[f32], m: usize) -> Vec<ScoredId> {
        let order = self.rank_centroids(ivf, query);
        let probe = ivf.nprobe.min(ivf.lists.len());
        let mut top = TopM::new(m);
        let mut scanned = 0u64;
        for &(_, list) in &order[..probe] {
            for &row in &ivf.lists[list] {
                let r = row as usize;
                let d = sq_distance_row(&self.feats[r * self.dim..(r + 1) * self.dim], query);
                top.push(d, self.ids[r]);
            }
            scanned += ivf.lists[list].len() as u64;
        }
        self.probed_lists.fetch_add(probe as u64, Ordering::Relaxed);
        self.scanned_rows.fetch_add(scanned, Ordering::Relaxed);
        top.into_sorted()
    }

    /// PQ probe: per probed list, build the ADC lookup table for the
    /// residual query `q − centroid`, then score the list's rows as
    /// `m_sub` table adds each. Candidates go straight into the top-`m`
    /// heap (`rerank == 0`) or through the exact-rerank tail.
    fn scan_pq(&self, ivf: &Ivf, pq: &PqCodec, query: &[f32], m: usize) -> Vec<ScoredId> {
        let order = self.rank_centroids(ivf, query);
        let probe = ivf.nprobe.min(ivf.lists.len());
        let mut sink = CandidateSink::new(m, pq.rerank);
        let mut scanned = 0u64;
        let mut rq = vec![0.0f32; self.dim];
        let mut lut = vec![0.0f32; pq.m_sub * pq.ksub];
        for &(_, list) in &order[..probe] {
            if ivf.lists[list].is_empty() {
                continue;
            }
            let centroid = &ivf.centroids[list * self.dim..(list + 1) * self.dim];
            for (d, (q, c)) in rq.iter_mut().zip(query.iter().zip(centroid)) {
                *d = q - c;
            }
            for s in 0..pq.m_sub {
                let q_sub = &rq[s * pq.dsub..(s + 1) * pq.dsub];
                for k in 0..pq.ksub {
                    let word = &pq.codebooks[(s * pq.ksub + k) * pq.dsub..][..pq.dsub];
                    lut[s * pq.ksub + k] = sq_distance_row(word, q_sub);
                }
            }
            for &row in &ivf.lists[list] {
                let r = row as usize;
                let code = &self.codes[r * pq.m_sub..(r + 1) * pq.m_sub];
                let mut adc = 0.0f32;
                for (s, &c) in code.iter().enumerate() {
                    adc += lut[s * pq.ksub + c as usize];
                }
                sink.push(adc, row, &self.ids);
            }
            scanned += ivf.lists[list].len() as u64;
        }
        self.probed_lists.fetch_add(probe as u64, Ordering::Relaxed);
        self.scanned_rows.fetch_add(scanned, Ordering::Relaxed);
        self.finish_sink(sink, query, m)
    }

    /// SQ8 probe: per probed list, decode each row's residual bytes
    /// inline against the residual query (`dim` bytes per row).
    ///
    /// The decode is algebraically folded so the hot loop stays lean:
    /// `q − (min + step·c) = (q − centroid − min) − step·c`, and the
    /// parenthesized shift depends only on the probed list, so it is
    /// hoisted into `tq` once per list. The squared-diff accumulation
    /// runs in eight independent lanes (summed in a fixed order at the
    /// end, so ADC distances stay deterministic) to break the serial
    /// float dependency chain and let the compiler vectorize the
    /// byte→f32 decode.
    fn scan_sq8(&self, ivf: &Ivf, sq: &Sq8Codec, query: &[f32], m: usize) -> Vec<ScoredId> {
        const LANES: usize = 8;
        let order = self.rank_centroids(ivf, query);
        let probe = ivf.nprobe.min(ivf.lists.len());
        let mut sink = CandidateSink::new(m, sq.rerank);
        let mut scanned = 0u64;
        let mut tq = vec![0.0f32; self.dim];
        let tail = self.dim - self.dim % LANES;
        for &(_, list) in &order[..probe] {
            if ivf.lists[list].is_empty() {
                continue;
            }
            let centroid = &ivf.centroids[list * self.dim..(list + 1) * self.dim];
            for (t, ((q, c), min)) in
                tq.iter_mut().zip(query.iter().zip(centroid).zip(&sq.mins))
            {
                *t = (q - c) - min;
            }
            for &row in &ivf.lists[list] {
                let r = row as usize;
                let code = &self.codes[r * self.dim..(r + 1) * self.dim];
                let mut lanes = [0.0f32; LANES];
                for ((cs, ts), ss) in code
                    .chunks_exact(LANES)
                    .zip(tq.chunks_exact(LANES))
                    .zip(sq.steps.chunks_exact(LANES))
                {
                    for j in 0..LANES {
                        let diff = ts[j] - ss[j] * f32::from(cs[j]);
                        lanes[j] += diff * diff;
                    }
                }
                let mut acc = lanes.iter().sum::<f32>();
                for ((&c, &t), &s) in
                    code[tail..].iter().zip(&tq[tail..]).zip(&sq.steps[tail..])
                {
                    let diff = t - s * f32::from(c);
                    acc += diff * diff;
                }
                sink.push(acc, row, &self.ids);
            }
            scanned += ivf.lists[list].len() as u64;
        }
        self.probed_lists.fetch_add(probe as u64, Ordering::Relaxed);
        self.scanned_rows.fetch_add(scanned, Ordering::Relaxed);
        self.finish_sink(sink, query, m)
    }

    /// Resolves a compressed scan's candidate sink: either the ADC
    /// ranking directly, or the exact-rerank tail — rescore the retained
    /// rows from the f32 matrix into a fresh top-`m` heap. Both heaps
    /// select under total orders, so results are independent of scan
    /// order.
    fn finish_sink(&self, sink: CandidateSink, query: &[f32], m: usize) -> Vec<ScoredId> {
        match sink {
            CandidateSink::Direct(top) => top.into_sorted(),
            CandidateSink::Rerank(rows) => {
                let mut top = TopM::new(m);
                let mut rescored = 0u64;
                for row in rows.rows() {
                    let r = row as usize;
                    let d = sq_distance_row(&self.feats[r * self.dim..(r + 1) * self.dim], query);
                    top.push(d, self.ids[r]);
                    rescored += 1;
                }
                self.reranked_rows.fetch_add(rescored, Ordering::Relaxed);
                top.into_sorted()
            }
        }
    }

    /// Materializes `(id, feature)` pairs in row order. This clones every
    /// feature into a fresh tensor — callers that only need to *read* the
    /// gallery (epoch rebuilds, persistence, tests) should iterate
    /// [`ShardIndex::rows`] instead, which borrows straight from the SoA
    /// matrix.
    pub fn entries(&self) -> Vec<(VideoId, Tensor)> {
        self.rows()
            .map(|(id, row)| {
                let feat = Tensor::from_vec(row.to_vec(), &[self.dim])
                    .expect("row length equals dim by construction");
                (id, feat)
            })
            .collect()
    }

    /// Iterates `(id, feature-row)` pairs in row order, borrowing from
    /// the flattened storage — zero copies, zero allocations per row.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = (VideoId, &[f32])> + '_ {
        self.ids
            .iter()
            .zip(self.feats.chunks_exact(self.dim.max(1)))
            .map(|(&id, row)| (id, row))
    }

    /// The raw flattened feature matrix (row-major `len() × dim`).
    ///
    /// Retained in *every* mode — compressed modes scan codes but keep
    /// the f32 matrix as the writer-side source of truth: mutation
    /// staging, recall audits, the exact-rerank tail, and byte-stable
    /// persistence all read it (DESIGN.md §6h).
    pub fn features(&self) -> &[f32] {
        &self.feats
    }

    /// Bytes of retained f32 feature matrix.
    pub fn feature_bytes(&self) -> u64 {
        (self.feats.len() * 4) as u64
    }

    /// Bytes of compressed residual codes plus codec tables (codebooks
    /// for PQ, min/step tables for SQ8); 0 for uncompressed modes.
    pub fn code_bytes(&self) -> u64 {
        let aux = match &self.codec {
            None => 0,
            Some(Codec::Pq(pq)) => pq.codebooks.len() * 4,
            Some(Codec::Sq8(sq)) => (sq.mins.len() + sq.steps.len()) * 4,
        };
        (self.codes.len() + aux) as u64
    }

    /// Resident bytes the hot scan path touches, amortized per row:
    /// `dim × 4` for exact/IVF (the f32 matrix), or codes + codec tables
    /// + coarse centroids divided by the row count for compressed modes
    /// (the f32 matrix stays resident for writers and audits but is off
    /// the scan path). 0 for an empty index.
    pub fn scan_bytes_per_row(&self) -> f64 {
        let rows = self.ids.len();
        if rows == 0 {
            return 0.0;
        }
        match &self.codec {
            None => (self.dim * 4) as f64,
            Some(_) => {
                let centroids =
                    self.ivf.as_ref().map_or(0, |ivf| ivf.centroids.len() * 4);
                (self.code_bytes() as usize + centroids) as f64 / rows as f64
            }
        }
    }

    /// The quantized reconstruction of one row — what the compressed
    /// scan path effectively scores (`centroid + decoded residual`). For
    /// uncompressed modes this is the exact f32 row. The SQ8 error bound
    /// (`|x − decode(x)| ≤ step_d / 2` per dimension) is a duo-check
    /// property over this function.
    ///
    /// # Panics
    ///
    /// Panics when `row >= self.len()`.
    pub fn decode_row(&self, row: usize) -> Vec<f32> {
        let Some(codec) = &self.codec else {
            return self.feature(row).to_vec();
        };
        let ivf = self.ivf.as_ref().expect("compressed indexes always train a coarse quantizer");
        let c = self.coarse_assign[row] as usize;
        let centroid = &ivf.centroids[c * self.dim..(c + 1) * self.dim];
        match codec {
            Codec::Pq(pq) => {
                let code = &self.codes[row * pq.m_sub..(row + 1) * pq.m_sub];
                let mut out = centroid.to_vec();
                for (s, &k) in code.iter().enumerate() {
                    let word = &pq.codebooks[(s * pq.ksub + k as usize) * pq.dsub..][..pq.dsub];
                    for (o, &w) in out[s * pq.dsub..(s + 1) * pq.dsub].iter_mut().zip(word) {
                        *o += w;
                    }
                }
                out
            }
            Codec::Sq8(sq) => {
                let code = &self.codes[row * self.dim..(row + 1) * self.dim];
                centroid
                    .iter()
                    .zip(code)
                    .zip(sq.mins.iter().zip(&sq.steps))
                    .map(|((&cent, &c), (&min, &step))| cent + min + step * f32::from(c))
                    .collect()
            }
        }
    }

    /// The SQ8 quantizer's per-dimension `(mins, steps)` tables, or
    /// `None` outside [`IndexMode::Sq8`]. Exposed so the quantization
    /// error bound is checkable from outside the crate.
    pub fn sq8_params(&self) -> Option<(&[f32], &[f32])> {
        match &self.codec {
            Some(Codec::Sq8(sq)) => Some((&sq.mins, &sq.steps)),
            _ => None,
        }
    }

    /// Dismantles the trained index into the flat arrays the `DUOINDX3`
    /// writer serializes. Centroids/aux/codes are empty slices or
    /// vectors where the mode has none.
    pub(crate) fn parts(&self) -> IndexParts<'_> {
        let aux = match &self.codec {
            None => Vec::new(),
            Some(Codec::Pq(pq)) => pq.codebooks.clone(),
            Some(Codec::Sq8(sq)) => {
                let mut aux = sq.mins.clone();
                aux.extend_from_slice(&sq.steps);
                aux
            }
        };
        IndexParts {
            ids: &self.ids,
            feats: &self.feats,
            centroids: self.ivf.as_ref().map_or(&[], |ivf| &ivf.centroids),
            assign: &self.coarse_assign,
            aux,
            codes: &self.codes,
        }
    }

    /// Reassembles an index from persisted `DUOINDX3` arrays without
    /// retraining: inverted lists rebuild from the stored assignment in
    /// ascending row order (the training construction), codebooks/codes
    /// are taken verbatim. The stored structures equal what retraining
    /// would produce — k-means is seeded — so this is purely a load-time
    /// shortcut, not a second source of truth.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BadConfig`] for invalid modes or array
    /// lengths that disagree with `mode`/`dim`/row count.
    pub(crate) fn from_parts(
        ids: Vec<VideoId>,
        feats: Vec<f32>,
        dim: usize,
        mode: IndexMode,
        centroids: Vec<f32>,
        assign: Vec<u32>,
        aux: Vec<f32>,
        codes: Vec<u8>,
    ) -> Result<Self> {
        mode.validate()?;
        let rows = ids.len();
        if feats.len() != rows * dim {
            return Err(RetrievalError::BadConfig(format!(
                "flattened feature matrix must hold ids*dim floats: {rows} ids x {dim} != {}",
                feats.len()
            )));
        }
        let bad = |what: &str| RetrievalError::BadConfig(format!("DUOINDX3 {what} length mismatch"));
        let (ivf, coarse_assign) = match mode.coarse_params() {
            Some((_, nprobe)) if rows > 0 => {
                if dim == 0 || centroids.len() % dim != 0 || assign.len() != rows {
                    return Err(bad("coarse section"));
                }
                let k = centroids.len() / dim;
                let mut lists: Vec<Vec<u32>> = vec![Vec::new(); k];
                for (row, &c) in assign.iter().enumerate() {
                    if c as usize >= k {
                        return Err(bad("coarse assignment"));
                    }
                    lists[c as usize].push(row as u32);
                }
                (Some(Ivf { nprobe, centroids, lists }), assign)
            }
            _ => (None, Vec::new()),
        };
        let codec = match (mode, &ivf) {
            (IndexMode::Pq { m_sub, rerank, .. }, Some(_)) => {
                if m_sub == 0 || dim % m_sub != 0 || codes.len() != rows * m_sub {
                    return Err(bad("pq codes"));
                }
                let dsub = dim / m_sub;
                if dsub == 0 || aux.len() % (m_sub * dsub) != 0 {
                    return Err(bad("pq codebooks"));
                }
                let ksub = aux.len() / (m_sub * dsub);
                if ksub == 0 || ksub > 256 {
                    return Err(bad("pq codebooks"));
                }
                Some(Codec::Pq(PqCodec { m_sub, ksub, dsub, codebooks: aux, rerank }))
            }
            (IndexMode::Sq8 { rerank, .. }, Some(_)) => {
                if aux.len() != 2 * dim || codes.len() != rows * dim {
                    return Err(bad("sq8 tables"));
                }
                let steps = aux[dim..].to_vec();
                let mut mins = aux;
                mins.truncate(dim);
                Some(Codec::Sq8(Sq8Codec { mins, steps, rerank }))
            }
            _ => None,
        };
        let codes = if codec.is_some() { codes } else { Vec::new() };
        Ok(ShardIndex {
            ids,
            feats,
            dim,
            mode,
            ivf,
            coarse_assign,
            codec,
            codes,
            queries: AtomicU64::new(0),
            probed_lists: AtomicU64::new(0),
            scanned_rows: AtomicU64::new(0),
            reranked_rows: AtomicU64::new(0),
            audit_queries: AtomicU64::new(0),
            audit_hits: AtomicU64::new(0),
            audit_expected: AtomicU64::new(0),
        })
    }
}

/// Borrowed flat views of a trained index, in the section order the
/// `DUOINDX3` writer lays them out.
pub(crate) struct IndexParts<'a> {
    /// Indexed ids, row order.
    pub ids: &'a [VideoId],
    /// Row-major f32 feature matrix.
    pub feats: &'a [f32],
    /// Coarse centroid matrix (empty in exact mode).
    pub centroids: &'a [f32],
    /// Per-row coarse list assignment (empty in exact mode).
    pub assign: &'a [u32],
    /// Codec tables: PQ codebooks, or SQ8 `mins ‖ steps` (owned — the
    /// SQ8 concatenation has no contiguous borrow).
    pub aux: Vec<f32>,
    /// Row-major residual codes (empty for uncompressed modes).
    pub codes: &'a [u8],
}

/// Seeded Lloyd k-means over a flattened row-major matrix. Every step is
/// a pure function of `(data, seed)`: seeded sampling for the initial
/// centroids, sequential assignment with lower-index tie-breaks, and
/// fixed-order f64 mean recomputation (empty clusters keep their
/// previous centroid). Returns the trained `k × dim` centroid matrix and
/// the final per-row assignment. The IVF coarse quantizer and every PQ
/// subspace codebook train through this one function.
fn kmeans(data: &[f32], dim: usize, rows: usize, k: usize, seed: u64) -> (Vec<f32>, Vec<u32>) {
    let k = k.min(rows);
    let mut rng = Rng64::new(seed);
    let mut centroids = Vec::with_capacity(k * dim);
    for row in rng.sample_indices(rows, k) {
        centroids.extend_from_slice(&data[row * dim..(row + 1) * dim]);
    }
    let mut assign = vec![0u32; rows];
    for round in 0..KMEANS_ROUNDS {
        // Assignment: nearest centroid, first (lowest-index) winner on ties.
        let mut changed = false;
        for row in 0..rows {
            let rf = &data[row * dim..(row + 1) * dim];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = sq_distance_row(&centroids[c * dim..(c + 1) * dim], rf);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[row] != best as u32 {
                assign[row] = best as u32;
                changed = true;
            }
        }
        if !changed && round > 0 {
            break;
        }
        // Update: per-cluster mean in f64, sequential row order. Empty
        // clusters keep their previous centroid.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for row in 0..rows {
            let c = assign[row] as usize;
            counts[c] += 1;
            for j in 0..dim {
                sums[c * dim + j] += f64::from(data[row * dim + j]);
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..dim {
                    centroids[c * dim + j] = (sums[c * dim + j] / counts[c] as f64) as f32;
                }
            }
        }
    }
    (centroids, assign)
}

/// Trains the IVF coarse quantizer: seeded k-means, inverted lists in
/// ascending row order. Returns the structure plus the flat per-row
/// assignment (kept for residual decoding and persistence).
fn train_ivf(
    feats: &[f32],
    dim: usize,
    rows: usize,
    nlist: usize,
    nprobe: usize,
    seed: u64,
) -> (Ivf, Vec<u32>) {
    let (centroids, assign) = kmeans(feats, dim, rows, nlist, seed);
    let k = nlist.min(rows);
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (row, &c) in assign.iter().enumerate() {
        lists[c as usize].push(row as u32);
    }
    (Ivf { nprobe, centroids, lists }, assign)
}

/// The per-row coarse residuals `x − centroid[assign[row]]`, flattened
/// row-major.
fn coarse_residuals(feats: &[f32], dim: usize, centroids: &[f32], assign: &[u32]) -> Vec<f32> {
    let mut residuals = vec![0.0f32; feats.len()];
    for (row, &c) in assign.iter().enumerate() {
        let x = &feats[row * dim..(row + 1) * dim];
        let cent = &centroids[c as usize * dim..(c as usize + 1) * dim];
        let out = &mut residuals[row * dim..(row + 1) * dim];
        for ((o, &a), &b) in out.iter_mut().zip(x).zip(cent) {
            *o = a - b;
        }
    }
    residuals
}

/// Trains the product quantizer over coarse residuals and encodes every
/// row. Subspace `s` trains its own seeded k-means
/// ([`pq_subspace_seed`]) on the rows' `dsub`-dim residual slices;
/// encoding is a final explicit nearest-codeword pass (lowest index on
/// ties) against the trained codebook, so codes are a pure function of
/// `(feats, seed)`.
#[allow(clippy::too_many_arguments)]
fn train_pq(
    feats: &[f32],
    dim: usize,
    centroids: &[f32],
    assign: &[u32],
    m_sub: usize,
    nbits: u32,
    rerank: usize,
    seed: u64,
) -> (PqCodec, Vec<u8>) {
    let rows = assign.len();
    let dsub = dim / m_sub;
    let ksub = (1usize << nbits).min(rows);
    let residuals = coarse_residuals(feats, dim, centroids, assign);
    let mut codebooks = vec![0.0f32; m_sub * ksub * dsub];
    let mut codes = vec![0u8; rows * m_sub];
    let mut sub_data = vec![0.0f32; rows * dsub];
    for s in 0..m_sub {
        for row in 0..rows {
            sub_data[row * dsub..(row + 1) * dsub]
                .copy_from_slice(&residuals[row * dim + s * dsub..row * dim + (s + 1) * dsub]);
        }
        let (book, _) = kmeans(&sub_data, dsub, rows, ksub, pq_subspace_seed(seed, s));
        // Encode: explicit nearest-codeword pass against the *final*
        // codebook (k-means assignment may lag one update round).
        for row in 0..rows {
            let rf = &sub_data[row * dsub..(row + 1) * dsub];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for k in 0..ksub {
                let d = sq_distance_row(&book[k * dsub..(k + 1) * dsub], rf);
                if d < best_d {
                    best_d = d;
                    best = k;
                }
            }
            codes[row * m_sub + s] = best as u8;
        }
        codebooks[s * ksub * dsub..(s + 1) * ksub * dsub].copy_from_slice(&book);
    }
    (PqCodec { m_sub, ksub, dsub, codebooks, rerank }, codes)
}

/// Trains the per-dimension affine scalar quantizer over coarse
/// residuals and encodes every row: `steps[d] = (max_d − min_d) / 255`,
/// `code = round((x − min_d) / step_d)` clamped to a byte. A constant
/// dimension gets `step = 0` and decodes exactly to its minimum.
fn train_sq8(
    feats: &[f32],
    dim: usize,
    centroids: &[f32],
    assign: &[u32],
    rerank: usize,
) -> (Sq8Codec, Vec<u8>) {
    let rows = assign.len();
    let residuals = coarse_residuals(feats, dim, centroids, assign);
    let mut mins = vec![f32::INFINITY; dim];
    let mut maxs = vec![f32::NEG_INFINITY; dim];
    for row in 0..rows {
        for d in 0..dim {
            let x = residuals[row * dim + d];
            mins[d] = mins[d].min(x);
            maxs[d] = maxs[d].max(x);
        }
    }
    let steps: Vec<f32> = mins.iter().zip(&maxs).map(|(&lo, &hi)| (hi - lo) / 255.0).collect();
    let mut codes = vec![0u8; rows * dim];
    for row in 0..rows {
        for d in 0..dim {
            let step = steps[d];
            codes[row * dim + d] = if step > 0.0 {
                let q = ((residuals[row * dim + d] - mins[d]) / step).round();
                q.clamp(0.0, 255.0) as u8
            } else {
                0
            };
        }
    }
    (Sq8Codec { mins, steps, rerank }, codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(points: &[(u32, Vec<f32>)]) -> Vec<(VideoId, Tensor)> {
        points
            .iter()
            .map(|(class, v)| {
                let n = v.len();
                (
                    VideoId { class: *class, instance: 0 },
                    Tensor::from_vec(v.clone(), &[n]).unwrap(),
                )
            })
            .collect()
    }

    fn line_gallery(n: u32) -> Vec<(VideoId, Tensor)> {
        entries(&(0..n).map(|i| (i, vec![i as f32, 0.0])).collect::<Vec<_>>())
    }

    #[test]
    fn exact_search_matches_sort_and_truncate() {
        let gallery = line_gallery(40);
        let index = ShardIndex::build(&gallery, IndexMode::Exact, 0).unwrap();
        let got = index.search(&[7.3, 0.0], 4);
        let mut reference: Vec<ScoredId> = gallery
            .iter()
            .map(|(id, feat)| ScoredId {
                id: *id,
                distance: feat
                    .sq_distance(&Tensor::from_vec(vec![7.3, 0.0], &[2]).unwrap())
                    .unwrap(),
            })
            .collect();
        reference.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| (a.id.class, a.id.instance).cmp(&(b.id.class, b.id.instance)))
        });
        reference.truncate(4);
        assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.id, r.id);
            assert_eq!(g.distance.to_bits(), r.distance.to_bits(), "bit-identical distances");
        }
    }

    #[test]
    fn full_probe_ivf_equals_exact() {
        let gallery = line_gallery(50);
        let exact = ShardIndex::build(&gallery, IndexMode::Exact, 0).unwrap();
        let ivf = ShardIndex::build(&gallery, IndexMode::ivf(5, 5), 99).unwrap();
        for q in [[0.0, 0.0], [12.6, 0.0], [49.9, 0.0]] {
            assert_eq!(ivf.search(&q, 7), exact.search(&q, 7));
        }
    }

    #[test]
    fn partial_probe_finds_local_neighbours() {
        // Two well-separated clusters; probing one list still answers the
        // in-cluster query perfectly.
        let mut points = Vec::new();
        for i in 0..20u32 {
            points.push((i, vec![i as f32 * 0.01, 0.0]));
            points.push((100 + i, vec![1000.0 + i as f32 * 0.01, 0.0]));
        }
        let index = ShardIndex::build(&entries(&points), IndexMode::ivf(2, 1), 7).unwrap();
        let got = index.search(&[0.05, 0.0], 3);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|s| s.id.class < 100), "all answers from the near cluster");
    }

    #[test]
    fn stats_count_probes_and_rows() {
        let gallery = line_gallery(30);
        let index = ShardIndex::build(&gallery, IndexMode::ivf(3, 2), 3).unwrap();
        index.search(&[1.0, 0.0], 5);
        let stats = index.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.probed_lists, 2);
        assert!(stats.scanned_rows > 0 && stats.scanned_rows < 30);
        // First query is audited.
        assert_eq!(stats.audit_queries, 1);
        assert!(stats.recall_at_m().is_some());
    }

    #[test]
    fn exact_mode_counts_all_rows() {
        let index = ShardIndex::build(&line_gallery(30), IndexMode::Exact, 0).unwrap();
        index.search(&[1.0, 0.0], 5);
        index.search(&[2.0, 0.0], 5);
        let stats = index.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.scanned_rows, 60);
        assert_eq!(stats.probed_lists, 0);
        assert_eq!(stats.recall_at_m(), None);
    }

    #[test]
    fn rejects_mixed_dimensions_at_build() {
        let bad = vec![
            (VideoId { class: 0, instance: 0 }, Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap()),
            (VideoId { class: 1, instance: 0 }, Tensor::from_vec(vec![0.0], &[1]).unwrap()),
        ];
        assert!(ShardIndex::build(&bad, IndexMode::Exact, 0).is_err());
    }

    #[test]
    fn rejects_bad_ivf_parameters() {
        let gallery = line_gallery(4);
        assert!(ShardIndex::build(&gallery, IndexMode::ivf(0, 1), 0).is_err());
        assert!(ShardIndex::build(&gallery, IndexMode::ivf(4, 0), 0).is_err());
        assert!(ShardIndex::build(&gallery, IndexMode::ivf(2, 3), 0).is_err());
    }

    #[test]
    fn empty_index_answers_empty() {
        let index = ShardIndex::build(&[], IndexMode::ivf(4, 2), 0).unwrap();
        assert!(index.is_empty());
        assert!(index.search(&[1.0], 3).is_empty());
    }

    #[test]
    fn nlist_caps_at_row_count() {
        let index = ShardIndex::build(&line_gallery(3), IndexMode::ivf(16, 16), 1).unwrap();
        assert_eq!(index.nlist(), 3);
    }

    #[test]
    fn top_m_zero_cap_keeps_nothing() {
        let mut top = TopM::new(0);
        top.push(1.0, VideoId { class: 0, instance: 0 });
        assert!(top.is_empty());
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn entries_round_trip() {
        let gallery = line_gallery(5);
        let index = ShardIndex::build(&gallery, IndexMode::Exact, 0).unwrap();
        assert_eq!(index.entries(), gallery);
    }

    #[test]
    fn mode_serializes_to_json() {
        assert_eq!(IndexMode::Exact.to_json().to_string(), r#"{"mode":"exact"}"#);
        assert_eq!(
            IndexMode::ivf(16, 4).to_json().to_string(),
            r#"{"mode":"ivf","nlist":16,"nprobe":4}"#
        );
        assert_eq!(
            IndexMode::pq(16, 4, 8, 8, 32).to_json().to_string(),
            r#"{"mode":"pq","nlist":16,"nprobe":4,"m_sub":8,"nbits":8,"rerank":32}"#
        );
        assert_eq!(
            IndexMode::sq8(16, 4, 0).to_json().to_string(),
            r#"{"mode":"sq8","nlist":16,"nprobe":4,"rerank":0}"#
        );
    }

    /// A 2-D gallery whose points spread over both axes, so residuals
    /// are nontrivial in every PQ subspace.
    fn grid_gallery(n: u32) -> Vec<(VideoId, Tensor)> {
        entries(
            &(0..n)
                .map(|i| (i, vec![(i % 7) as f32, (i / 7) as f32 * 0.5]))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn pq_full_probe_full_rerank_equals_exact() {
        let gallery = grid_gallery(60);
        let exact = ShardIndex::build(&gallery, IndexMode::Exact, 0).unwrap();
        let pq = ShardIndex::build(&gallery, IndexMode::pq(4, 4, 2, 4, 60), 21).unwrap();
        for q in [[0.3, 0.1], [5.8, 3.3], [2.0, 4.0]] {
            let e = exact.search(&q, 6);
            let p = pq.search(&q, 6);
            assert_eq!(p.len(), e.len());
            for (a, b) in p.iter().zip(&e) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "bit-identical rerank");
            }
        }
    }

    #[test]
    fn sq8_full_probe_full_rerank_equals_exact() {
        let gallery = grid_gallery(48);
        let exact = ShardIndex::build(&gallery, IndexMode::Exact, 0).unwrap();
        let sq8 = ShardIndex::build(&gallery, IndexMode::sq8(4, 4, 48), 9).unwrap();
        for q in [[1.1, 0.0], [6.0, 3.0]] {
            assert_eq!(sq8.search(&q, 5), exact.search(&q, 5));
        }
    }

    #[test]
    fn pq_adc_without_rerank_finds_local_neighbours() {
        // Two tight, well-separated clusters: ADC distances are
        // approximate but the cluster structure must survive.
        let mut points = Vec::new();
        for i in 0..24u32 {
            points.push((i, vec![i as f32 * 0.01, 1.0]));
            points.push((100 + i, vec![500.0 + i as f32 * 0.01, -3.0]));
        }
        let index =
            ShardIndex::build(&entries(&points), IndexMode::pq(2, 1, 2, 8, 0), 5).unwrap();
        let got = index.search(&[0.05, 1.0], 4);
        assert_eq!(got.len(), 4);
        assert!(got.iter().all(|s| s.id.class < 100), "all answers from the near cluster");
        assert_eq!(index.stats().reranked_rows, 0, "rerank 0 never rescores");
    }

    #[test]
    fn rerank_counter_tracks_rescored_rows() {
        let gallery = grid_gallery(40);
        let index = ShardIndex::build(&gallery, IndexMode::sq8(4, 2, 12), 3).unwrap();
        index.search(&[1.0, 1.0], 5);
        let stats = index.stats();
        assert!(stats.reranked_rows > 0);
        assert!(stats.reranked_rows <= 12.max(5) as u64, "at most max(rerank, m) rescored");
    }

    #[test]
    fn sq8_decode_respects_quantization_error_bound() {
        let gallery = grid_gallery(50);
        let index = ShardIndex::build(&gallery, IndexMode::sq8(4, 4, 0), 7).unwrap();
        let (_, steps) = index.sq8_params().unwrap();
        for row in 0..index.len() {
            let decoded = index.decode_row(row);
            for (d, (&got, &want)) in decoded.iter().zip(index.feature(row)).enumerate() {
                let bound = steps[d] * 0.5001 + 1e-5;
                assert!(
                    (got - want).abs() <= bound,
                    "row {row} dim {d}: |{got} - {want}| > {bound}"
                );
            }
        }
    }

    #[test]
    fn compressed_modes_shrink_the_scan_footprint() {
        let gallery: Vec<(VideoId, Tensor)> = (0..400u32)
            .map(|i| {
                let v: Vec<f32> = (0..8).map(|d| ((i * 31 + d * 7) % 97) as f32).collect();
                (VideoId { class: i, instance: 0 }, Tensor::from_vec(v, &[8]).unwrap())
            })
            .collect();
        let exact = ShardIndex::build(&gallery, IndexMode::Exact, 0).unwrap();
        // 4-bit codes: at this tiny scale an 8-bit codebook (256
        // codewords) would outweigh the codes themselves.
        let pq = ShardIndex::build(&gallery, IndexMode::pq(8, 2, 4, 4, 0), 1).unwrap();
        let sq8 = ShardIndex::build(&gallery, IndexMode::sq8(8, 2, 0), 1).unwrap();
        assert_eq!(exact.code_bytes(), 0);
        assert_eq!(exact.scan_bytes_per_row(), 32.0, "8 dims x 4 bytes");
        assert!(pq.code_bytes() > 0);
        assert!(pq.scan_bytes_per_row() < exact.scan_bytes_per_row() / 4.0);
        assert!(sq8.scan_bytes_per_row() < exact.scan_bytes_per_row() / 2.0);
        // The f32 matrix stays resident in every mode (writer-side truth).
        assert_eq!(pq.feature_bytes(), exact.feature_bytes());
    }

    #[test]
    fn rejects_bad_pq_parameters() {
        let gallery = grid_gallery(8);
        assert!(ShardIndex::build(&gallery, IndexMode::pq(2, 1, 0, 8, 0), 0).is_err());
        assert!(ShardIndex::build(&gallery, IndexMode::pq(2, 1, 2, 0, 0), 0).is_err());
        assert!(ShardIndex::build(&gallery, IndexMode::pq(2, 1, 2, 9, 0), 0).is_err());
        // dim 2 is not divisible by m_sub 3.
        assert!(ShardIndex::build(&gallery, IndexMode::pq(2, 1, 3, 8, 0), 0).is_err());
        assert!(ShardIndex::build(&gallery, IndexMode::sq8(0, 1, 0), 0).is_err());
        assert!(ShardIndex::build(&gallery, IndexMode::sq8(2, 3, 0), 0).is_err());
    }

    #[test]
    fn compressed_queries_are_audited() {
        let gallery = grid_gallery(40);
        let index = ShardIndex::build(&gallery, IndexMode::pq(4, 2, 2, 8, 0), 11).unwrap();
        index.search(&[1.0, 1.0], 5);
        let stats = index.stats();
        assert_eq!(stats.audit_queries, 1, "first compressed query is audited");
        assert!(stats.recall_at_m().is_some());
    }

    #[test]
    fn breakdown_buckets_by_mode() {
        let gallery = grid_gallery(30);
        let exact = ShardIndex::build(&gallery, IndexMode::Exact, 0).unwrap();
        let pq = ShardIndex::build(&gallery, IndexMode::pq(3, 2, 2, 8, 0), 1).unwrap();
        exact.search(&[1.0, 1.0], 3);
        pq.search(&[1.0, 1.0], 3);
        pq.search(&[2.0, 1.0], 3);
        let mut b = IndexBreakdown::default();
        b.absorb(exact.mode(), &exact.stats());
        b.absorb(pq.mode(), &pq.stats());
        assert_eq!(b.total.queries, 3);
        assert_eq!(b.exact.queries, 1);
        assert_eq!(b.pq.queries, 2);
        assert_eq!(b.ivf.queries, 0);
        assert!(b.pq.recall_at_m().is_some());
        assert_eq!(b.exact.recall_at_m(), None);
    }

    #[test]
    fn from_parts_round_trips_a_trained_index() {
        for mode in [
            IndexMode::Exact,
            IndexMode::ivf(4, 2),
            IndexMode::pq(4, 2, 2, 8, 6),
            IndexMode::sq8(4, 2, 0),
        ] {
            let gallery = grid_gallery(36);
            let built = ShardIndex::build(&gallery, mode, 17).unwrap();
            let parts = built.parts();
            let back = ShardIndex::from_parts(
                parts.ids.to_vec(),
                parts.feats.to_vec(),
                built.dim(),
                mode,
                parts.centroids.to_vec(),
                parts.assign.to_vec(),
                parts.aux.clone(),
                parts.codes.to_vec(),
            )
            .unwrap();
            for q in [[0.4, 0.2], [5.0, 3.0], [2.5, 1.5]] {
                assert_eq!(back.search(&q, 5), built.search(&q, 5), "{mode:?}");
            }
            assert_eq!(back.code_bytes(), built.code_bytes());
        }
    }
}
