//! Live gallery mutation: the batch description applied by
//! [`crate::RetrievalSystem::apply`] and the receipt it returns.
//!
//! Galleries mutate through *epoch transactions*: a writer stages the
//! next generation of every touched shard off to the side, rebuilds the
//! per-shard [`crate::ShardIndex`] deterministically (seeded k-means,
//! [`crate::shard_seed`] per shard, exactly the discipline the persist
//! path restores with), and publishes all of them atomically under the
//! system's epoch gate. In-flight queries keep scoring the generation
//! they captured at admission; queries admitted after the publish see
//! the whole batch. No query ever observes a half-applied batch.
//!
//! Determinism: given the same starting gallery and the same mutation
//! sequence, the staged row order — and therefore the rebuilt index,
//! its k-means, and every subsequent ranked list — is a pure function
//! of the inputs. Inserts of new ids route to the smallest staged shard
//! (ties to the lowest node index) and append at the tail; updates
//! overwrite in place; deletes close the gap preserving row order.

use duo_tensor::Tensor;
use duo_video::VideoId;

/// One gallery mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Upsert: a new id is appended to the smallest shard, an existing
    /// id has its feature overwritten in place (same shard, same row).
    Insert {
        /// The gallery video being inserted or updated.
        id: VideoId,
        /// Its embedding; must match the gallery feature dimension.
        feature: Tensor,
    },
    /// Removes an id from the gallery. Deleting an absent id is a
    /// counted no-op ([`EpochTransition::delete_misses`]), not an error.
    Delete {
        /// The gallery video to remove.
        id: VideoId,
    },
}

/// An ordered batch of mutations applied as one epoch transaction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MutationBatch {
    mutations: Vec<Mutation>,
}

impl MutationBatch {
    /// An empty batch (applying it publishes nothing).
    pub fn new() -> Self {
        MutationBatch::default()
    }

    /// Appends an insert/update.
    pub fn insert(mut self, id: VideoId, feature: Tensor) -> Self {
        self.mutations.push(Mutation::Insert { id, feature });
        self
    }

    /// Appends a delete.
    pub fn delete(mut self, id: VideoId) -> Self {
        self.mutations.push(Mutation::Delete { id });
        self
    }

    /// Appends an already-built mutation.
    pub fn push(&mut self, mutation: Mutation) {
        self.mutations.push(mutation);
    }

    /// The mutations, in application order.
    pub fn mutations(&self) -> &[Mutation] {
        &self.mutations
    }

    /// Number of mutations in the batch.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// Whether the batch holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }
}

/// The receipt of one published epoch transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochTransition {
    /// The epoch number queries observe after this publish.
    pub epoch: u64,
    /// New ids appended to the gallery.
    pub inserted: u64,
    /// Existing ids whose features were overwritten in place.
    pub updated: u64,
    /// Ids removed from the gallery.
    pub deleted: u64,
    /// Deletes that named an absent id (counted no-ops).
    pub delete_misses: u64,
    /// Shards whose index generation was rebuilt and swapped.
    pub rebuilt_shards: u64,
    /// Rows moved between shards by a rebalance transaction.
    pub rows_moved: u64,
}
duo_tensor::impl_to_json!(struct EpochTransition {
    epoch, inserted, updated, deleted, delete_misses, rebuilt_shards, rows_moved
});

/// Monotonic mutation counters for a whole system, accumulated across
/// every published epoch (see
/// [`crate::RetrievalSystem::mutation_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MutationStats {
    /// Epoch transactions published (mutation batches + rebalances).
    pub epochs_published: u64,
    /// Individual mutations applied (inserts + updates + deletes;
    /// delete misses excluded).
    pub mutations_applied: u64,
    /// New ids appended, total.
    pub inserted: u64,
    /// In-place feature updates, total.
    pub updated: u64,
    /// Ids removed, total.
    pub deleted: u64,
    /// Deletes of absent ids, total.
    pub delete_misses: u64,
    /// Rebalance transactions published.
    pub rebalances: u64,
    /// Rows moved between shards by rebalances, total.
    pub rows_rebalanced: u64,
}
duo_tensor::impl_to_json!(struct MutationStats {
    epochs_published, mutations_applied, inserted, updated, deleted,
    delete_misses, rebalances, rows_rebalanced
});

impl MutationStats {
    /// Folds an apply/rebalance outcome into the totals. Outcomes that
    /// published an epoch absorb fully; a no-op outcome (empty batch,
    /// all delete misses, already balanced) still records its misses
    /// but counts no epoch.
    pub fn absorb_outcome(&mut self, t: &EpochTransition) {
        if t.rebuilt_shards > 0 {
            self.absorb(t);
        } else {
            self.delete_misses += t.delete_misses;
        }
    }

    /// Folds one epoch receipt into the running totals.
    pub fn absorb(&mut self, t: &EpochTransition) {
        self.epochs_published += 1;
        self.mutations_applied += t.inserted + t.updated + t.deleted;
        self.inserted += t.inserted;
        self.updated += t.updated;
        self.deleted += t.deleted;
        self.delete_misses += t.delete_misses;
        if t.rows_moved > 0 {
            self.rebalances += 1;
        }
        self.rows_rebalanced += t.rows_moved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_tensor::ToJson;

    #[test]
    fn batch_builder_preserves_order() {
        let id = |c| VideoId { class: c, instance: 0 };
        let f = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let batch = MutationBatch::new().insert(id(1), f.clone()).delete(id(2)).insert(id(3), f);
        assert_eq!(batch.len(), 3);
        assert!(matches!(batch.mutations()[1], Mutation::Delete { .. }));
    }

    #[test]
    fn stats_absorb_counts_rebalances_only_when_rows_moved() {
        let mut stats = MutationStats::default();
        stats.absorb(&EpochTransition { epoch: 1, inserted: 2, deleted: 1, ..Default::default() });
        stats.absorb(&EpochTransition { epoch: 2, rows_moved: 5, ..Default::default() });
        assert_eq!(stats.epochs_published, 2);
        assert_eq!(stats.mutations_applied, 3);
        assert_eq!(stats.rebalances, 1);
        assert_eq!(stats.rows_rebalanced, 5);
    }

    #[test]
    fn transition_serializes_to_json() {
        let t = EpochTransition { epoch: 3, inserted: 1, ..Default::default() };
        let json = t.to_json().to_string();
        assert!(json.contains("\"epoch\":3"), "{json}");
        assert!(json.contains("\"inserted\":1"), "{json}");
    }
}
