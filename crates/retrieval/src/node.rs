use crate::{FaultPlan, IndexMode, IndexStats, ShardIndex};
use duo_tensor::Tensor;
use duo_video::VideoId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A gallery entry scored against a query embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredId {
    /// The gallery video.
    pub id: VideoId,
    /// Squared Euclidean distance to the query embedding (lower = more
    /// similar).
    pub distance: f32,
}
duo_tensor::impl_to_json!(struct ScoredId { id, distance });

/// Operational state of a data node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeStatus {
    /// Node answers queries.
    Online,
    /// Node is down; its shard is unavailable.
    Offline,
}
duo_tensor::impl_to_json!(enum NodeStatus { Online, Offline });

/// Why a node attempt produced no shard answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// The node is down — hard [`NodeStatus::Offline`] or inside a
    /// scheduled [`crate::FlapWindow`].
    Offline,
    /// The injected fault schedule failed this query transiently; a
    /// retry (which consumes the next query index) may succeed.
    Transient,
    /// The node thread panicked mid-query (contained by the fan-out).
    Panicked,
}

/// A successful shard answer plus its chaos metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAnswer {
    /// Local top-`m` results, nearest first.
    pub results: Vec<ScoredId>,
    /// Virtual service latency injected by the fault plan, microseconds
    /// (zero without a plan). The resilience layer compares this against
    /// its per-node deadline.
    pub delay_us: u64,
    /// The node-local query index this attempt consumed.
    pub index: u64,
}

/// One shard of the distributed gallery.
///
/// A node stores its share of the gallery in a [`ShardIndex`] — a
/// structure-of-arrays feature matrix with an optional IVF coarse
/// quantizer (see [`crate::index`]) — and answers local top-`m`
/// nearest-neighbour queries through it. Status is behind a read–write
/// lock so a failure-injection harness can flip nodes offline while
/// queries are in flight; an optional seeded [`FaultPlan`] injects
/// transient errors, latency, and flap schedules deterministically (see
/// [`crate::chaos`]).
///
/// The index itself sits behind an `Arc` generation pointer: queries
/// clone the pointer ([`DataNode::snapshot`]) and score one immutable
/// generation end to end, while an epoch publisher swaps the pointer to
/// the next generation ([`crate::RetrievalSystem::apply`]). Retired
/// generations' scan counters fold into a node-level accumulator at the
/// swap, so [`DataNode::index_stats`] stays monotonic across epochs.
#[derive(Debug)]
pub struct DataNode {
    name: String,
    index: RwLock<Arc<ShardIndex>>,
    /// The k-means seed every generation of this shard trains with
    /// ([`crate::shard_seed`] of the node position, by convention).
    seed: u64,
    status: RwLock<NodeStatus>,
    fault_plan: RwLock<Option<FaultPlan>>,
    queries_seen: AtomicU64,
    /// Scan counters of retired index generations, folded in at swap.
    retired_stats: Mutex<IndexStats>,
}

impl DataNode {
    /// Creates an online exact-mode node with the given shard contents.
    ///
    /// # Panics
    ///
    /// Panics when entries disagree on feature dimension — the
    /// validation the seed scan repeated per entry per query, hoisted to
    /// construction.
    pub fn new(name: impl Into<String>, entries: Vec<(VideoId, Tensor)>) -> Self {
        Self::with_index_mode(name, entries, IndexMode::Exact, 0)
            .expect("gallery features share one dimension")
    }

    /// Creates an online node whose shard is indexed in `mode`; `seed`
    /// feeds the IVF k-means (use [`crate::shard_seed`] for the
    /// per-shard convention; exact mode ignores it). The seed is kept:
    /// every later epoch rebuild of this shard trains with it too.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RetrievalError::BadConfig`] for invalid IVF
    /// parameters or entries with disagreeing dimensions.
    pub fn with_index_mode(
        name: impl Into<String>,
        entries: Vec<(VideoId, Tensor)>,
        mode: IndexMode,
        seed: u64,
    ) -> crate::Result<Self> {
        Ok(DataNode {
            name: name.into(),
            index: RwLock::new(Arc::new(ShardIndex::build(&entries, mode, seed)?)),
            seed,
            status: RwLock::new(NodeStatus::Online),
            fault_plan: RwLock::new(None),
            queries_seen: AtomicU64::new(0),
            retired_stats: Mutex::new(IndexStats::default()),
        })
    }

    /// Creates an online node serving an already-built index generation
    /// (the `DUOINDX3` load path: the trained structure comes off disk,
    /// so nothing retrains). `seed` must be the seed the index was
    /// trained with — later epoch rebuilds of this shard reuse it.
    pub(crate) fn from_prebuilt(
        name: impl Into<String>,
        index: ShardIndex,
        seed: u64,
    ) -> Self {
        DataNode {
            name: name.into(),
            index: RwLock::new(Arc::new(index)),
            seed,
            status: RwLock::new(NodeStatus::Online),
            fault_plan: RwLock::new(None),
            queries_seen: AtomicU64::new(0),
            retired_stats: Mutex::new(IndexStats::default()),
        }
    }

    /// Node name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gallery entries held by this node's current generation.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the current generation is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// The current index generation. The returned `Arc` pins an
    /// immutable [`ShardIndex`]: queries that scan it are unaffected by
    /// any epoch published afterwards. Iterate
    /// [`ShardIndex::rows`] on it to read the shard's `(id, feature)`
    /// contents without copying the gallery.
    pub fn snapshot(&self) -> Arc<ShardIndex> {
        Arc::clone(&self.index.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The k-means seed this shard's generations train with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Publishes a new index generation, retiring the current one. The
    /// retired generation's scan counters fold into the node's
    /// accumulator so [`DataNode::index_stats`] never moves backwards.
    /// Crate-internal: callers go through the system's epoch gate
    /// ([`crate::RetrievalSystem::apply`]), which makes multi-shard
    /// publishes atomic.
    pub(crate) fn install_index(&self, next: Arc<ShardIndex>) {
        let mut slot = self.index.write().unwrap_or_else(|e| e.into_inner());
        let retired = std::mem::replace(&mut *slot, next);
        self.retired_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&retired.stats());
    }

    /// How this shard answers queries ([`IndexMode::Exact`] or IVF).
    pub fn index_mode(&self) -> IndexMode {
        self.snapshot().mode()
    }

    /// The shard's scan counters: the live generation's plus every
    /// retired generation's (monotonic across epoch publishes).
    pub fn index_stats(&self) -> IndexStats {
        let mut total = *self.retired_stats.lock().unwrap_or_else(|e| e.into_inner());
        total.merge(&self.snapshot().stats());
        total
    }

    /// Current operational status.
    ///
    /// A poisoned lock is recovered rather than propagated: status is a
    /// plain `Copy` flag with no invariants a panicking writer could have
    /// half-applied.
    pub fn status(&self) -> NodeStatus {
        *self.status.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes the node offline (failure injection).
    pub fn set_offline(&self) {
        *self.status.write().unwrap_or_else(|e| e.into_inner()) = NodeStatus::Offline;
    }

    /// Brings the node back online.
    pub fn set_online(&self) {
        *self.status.write().unwrap_or_else(|e| e.into_inner()) = NodeStatus::Online;
    }

    /// Installs (or with `None`, removes) a deterministic fault plan.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault_plan.write().unwrap_or_else(|e| e.into_inner()) = plan;
    }

    /// A copy of the installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_plan.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of fault-aware query attempts this node has seen (the next
    /// attempt consumes this index in the fault schedule).
    pub fn queries_seen(&self) -> u64 {
        self.queries_seen.load(Ordering::SeqCst)
    }

    /// Fault-aware local query: consumes one index of the node's fault
    /// schedule and answers, fails, or reports itself down accordingly.
    ///
    /// Scores the current generation at call time. The resilient
    /// fan-out uses [`DataNode::try_query_at`] instead, pinning the
    /// generation captured at query admission so retries and hedges of
    /// one query can never straddle an epoch publish.
    ///
    /// # Errors
    ///
    /// [`NodeFault::Offline`] when hard-offline or inside a flap window,
    /// [`NodeFault::Transient`] when the schedule fails this attempt.
    pub fn try_query(&self, query: &Tensor, m: usize) -> Result<NodeAnswer, NodeFault> {
        let snap = self.snapshot();
        self.try_query_at(&snap, query, m)
    }

    /// Like [`DataNode::try_query`], but scoring an explicit generation
    /// (from [`DataNode::snapshot`], typically captured under the
    /// system's epoch gate). The fault schedule and `queries_seen`
    /// counter live on the *node*, not the generation, so chaos
    /// trajectories are unaffected by epoch publishes.
    ///
    /// # Errors
    ///
    /// As for [`DataNode::try_query`].
    pub fn try_query_at(
        &self,
        snap: &ShardIndex,
        query: &Tensor,
        m: usize,
    ) -> Result<NodeAnswer, NodeFault> {
        if self.status() == NodeStatus::Offline {
            return Err(NodeFault::Offline);
        }
        let index = self.queries_seen.fetch_add(1, Ordering::SeqCst);
        let decision = self
            .fault_plan
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|plan| {
                let d = plan.decision(index);
                if plan.wall_clock && d.delay_us > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(
                        d.delay_us.min(FaultPlan::WALL_CLOCK_CAP_US),
                    ));
                }
                d
            })
            .unwrap_or_else(crate::FaultDecision::clean);
        if decision.offline {
            return Err(NodeFault::Offline);
        }
        if decision.transient {
            return Err(NodeFault::Transient);
        }
        let results = snap.search(query.as_slice(), m);
        Ok(NodeAnswer { results, delay_us: decision.delay_us, index })
    }

    /// Local top-`m` nearest entries to `query`, or `None` when offline.
    ///
    /// Results are sorted ascending by distance; ties break by id for
    /// determinism across shard layouts.
    pub fn query(&self, query: &Tensor, m: usize) -> Option<Vec<ScoredId>> {
        if self.status() == NodeStatus::Offline {
            return None;
        }
        Some(self.snapshot().search(query.as_slice(), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n]).unwrap()
    }

    fn sample_node() -> DataNode {
        DataNode::new(
            "node-0",
            vec![
                (VideoId { class: 0, instance: 0 }, feat(vec![0.0, 0.0])),
                (VideoId { class: 1, instance: 0 }, feat(vec![1.0, 0.0])),
                (VideoId { class: 2, instance: 0 }, feat(vec![3.0, 4.0])),
            ],
        )
    }

    #[test]
    fn query_returns_nearest_first() {
        let node = sample_node();
        let res = node.query(&feat(vec![0.9, 0.0]), 2).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].id.class, 1);
        assert_eq!(res[1].id.class, 0);
        assert!(res[0].distance <= res[1].distance);
    }

    #[test]
    fn offline_node_returns_none() {
        let node = sample_node();
        node.set_offline();
        assert_eq!(node.status(), NodeStatus::Offline);
        assert!(node.query(&feat(vec![0.0, 0.0]), 1).is_none());
        node.set_online();
        assert!(node.query(&feat(vec![0.0, 0.0]), 1).is_some());
    }

    #[test]
    fn m_larger_than_shard_returns_all() {
        let node = sample_node();
        let res = node.query(&feat(vec![0.0, 0.0]), 10).unwrap();
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn try_query_without_plan_matches_query() {
        let node = sample_node();
        let q = feat(vec![0.5, 0.5]);
        let plain = node.query(&q, 3).unwrap();
        let answer = node.try_query(&q, 3).unwrap();
        assert_eq!(answer.results, plain);
        assert_eq!(answer.delay_us, 0);
        assert_eq!(answer.index, 0);
        assert_eq!(node.queries_seen(), 1);
    }

    #[test]
    fn try_query_follows_the_fault_schedule() {
        let node = sample_node();
        let plan = FaultPlan::transient(77, 0.5).with_flap(0, 2);
        let schedule = plan.schedule(32);
        node.set_fault_plan(Some(plan));
        let q = feat(vec![0.0, 0.0]);
        for (i, d) in schedule.iter().enumerate() {
            let got = node.try_query(&q, 2);
            if d.offline {
                assert_eq!(got, Err(NodeFault::Offline), "index {i}");
            } else if d.transient {
                assert_eq!(got, Err(NodeFault::Transient), "index {i}");
            } else {
                let ans = got.unwrap();
                assert_eq!(ans.index, i as u64);
                assert_eq!(ans.delay_us, d.delay_us);
            }
        }
    }

    #[test]
    fn hard_offline_beats_the_plan_and_skips_no_index() {
        let node = sample_node();
        node.set_fault_plan(Some(FaultPlan::none(3)));
        node.set_offline();
        assert_eq!(node.try_query(&feat(vec![0.0, 0.0]), 1), Err(NodeFault::Offline));
        assert_eq!(node.queries_seen(), 0, "hard-down attempts consume no schedule index");
    }

    #[test]
    fn ivf_node_answers_like_exact_at_full_probe() {
        let entries: Vec<(VideoId, Tensor)> = (0..24u32)
            .map(|i| (VideoId { class: i, instance: 0 }, feat(vec![i as f32, 0.5])))
            .collect();
        let exact = DataNode::new("exact", entries.clone());
        let ivf =
            DataNode::with_index_mode("ivf", entries, IndexMode::ivf(4, 4), 11).unwrap();
        let q = feat(vec![9.4, 0.5]);
        assert_eq!(ivf.query(&q, 6), exact.query(&q, 6));
        assert!(ivf.index_stats().probed_lists > 0);
        assert_eq!(exact.index_stats().probed_lists, 0);
    }

    #[test]
    fn mixed_dimension_entries_fail_index_build() {
        let entries = vec![
            (VideoId { class: 0, instance: 0 }, feat(vec![0.0, 0.0])),
            (VideoId { class: 1, instance: 0 }, feat(vec![0.0])),
        ];
        assert!(DataNode::with_index_mode("bad", entries, IndexMode::Exact, 0).is_err());
    }

    #[test]
    fn snapshot_rows_borrow_in_row_order() {
        let node = sample_node();
        let snap = node.snapshot();
        let got: Vec<_> = snap.rows().collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, VideoId { class: 0, instance: 0 });
        assert_eq!(got[2].1, &[3.0, 4.0]);
    }

    #[test]
    fn install_index_pins_old_snapshots_and_folds_stats() {
        let node = sample_node();
        let q = feat(vec![0.0, 0.0]);
        let old = node.snapshot();
        node.query(&q, 1).unwrap();
        assert_eq!(node.index_stats().queries, 1);
        // Publish a one-row generation; the pinned snapshot still holds
        // all three rows, the node now serves one, and the retired
        // generation's counters survive in the accumulator.
        let next = crate::ShardIndex::build(
            &[(VideoId { class: 9, instance: 0 }, feat(vec![5.0, 5.0]))],
            IndexMode::Exact,
            0,
        )
        .unwrap();
        node.install_index(std::sync::Arc::new(next));
        assert_eq!(old.len(), 3, "pinned generation is immutable");
        assert_eq!(node.len(), 1);
        let res = node.query(&q, 3).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id.class, 9);
        assert_eq!(node.index_stats().queries, 2, "stats stay monotonic across the swap");
    }

    #[test]
    fn tie_break_is_deterministic() {
        let node = DataNode::new(
            "t",
            vec![
                (VideoId { class: 5, instance: 1 }, feat(vec![1.0])),
                (VideoId { class: 5, instance: 0 }, feat(vec![1.0])),
            ],
        );
        let res = node.query(&feat(vec![0.0]), 2).unwrap();
        assert_eq!(res[0].id.instance, 0, "equal distances break ties by id");
    }
}
