use duo_tensor::Tensor;
use duo_video::VideoId;
use std::sync::RwLock;

/// A gallery entry scored against a query embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredId {
    /// The gallery video.
    pub id: VideoId,
    /// Squared Euclidean distance to the query embedding (lower = more
    /// similar).
    pub distance: f32,
}
duo_tensor::impl_to_json!(struct ScoredId { id, distance });

/// Operational state of a data node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeStatus {
    /// Node answers queries.
    Online,
    /// Node is down; its shard is unavailable.
    Offline,
}
duo_tensor::impl_to_json!(enum NodeStatus { Online, Offline });

/// One shard of the distributed gallery.
///
/// A node stores `(id, feature)` pairs for its share of the gallery and
/// answers local top-`m` nearest-neighbour queries. Status is behind a
/// read–write lock so a failure-injection harness can flip nodes offline
/// while queries are in flight.
#[derive(Debug)]
pub struct DataNode {
    name: String,
    entries: Vec<(VideoId, Tensor)>,
    status: RwLock<NodeStatus>,
}

impl DataNode {
    /// Creates an online node with the given shard contents.
    pub fn new(name: impl Into<String>, entries: Vec<(VideoId, Tensor)>) -> Self {
        DataNode { name: name.into(), entries, status: RwLock::new(NodeStatus::Online) }
    }

    /// Node name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gallery entries held by this node.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(id, feature)` entries stored on this shard (for snapshots).
    pub fn entries(&self) -> &[(VideoId, Tensor)] {
        &self.entries
    }

    /// Current operational status.
    ///
    /// A poisoned lock is recovered rather than propagated: status is a
    /// plain `Copy` flag with no invariants a panicking writer could have
    /// half-applied.
    pub fn status(&self) -> NodeStatus {
        *self.status.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes the node offline (failure injection).
    pub fn set_offline(&self) {
        *self.status.write().unwrap_or_else(|e| e.into_inner()) = NodeStatus::Offline;
    }

    /// Brings the node back online.
    pub fn set_online(&self) {
        *self.status.write().unwrap_or_else(|e| e.into_inner()) = NodeStatus::Online;
    }

    /// Local top-`m` nearest entries to `query`, or `None` when offline.
    ///
    /// Results are sorted ascending by distance; ties break by id for
    /// determinism across shard layouts.
    pub fn query(&self, query: &Tensor, m: usize) -> Option<Vec<ScoredId>> {
        if self.status() == NodeStatus::Offline {
            return None;
        }
        let mut scored: Vec<ScoredId> = self
            .entries
            .iter()
            .map(|(id, feat)| ScoredId {
                id: *id,
                distance: feat.sq_distance(query).expect("gallery features share query dims"),
            })
            .collect();
        scored.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| (a.id.class, a.id.instance).cmp(&(b.id.class, b.id.instance)))
        });
        scored.truncate(m);
        Some(scored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n]).unwrap()
    }

    fn sample_node() -> DataNode {
        DataNode::new(
            "node-0",
            vec![
                (VideoId { class: 0, instance: 0 }, feat(vec![0.0, 0.0])),
                (VideoId { class: 1, instance: 0 }, feat(vec![1.0, 0.0])),
                (VideoId { class: 2, instance: 0 }, feat(vec![3.0, 4.0])),
            ],
        )
    }

    #[test]
    fn query_returns_nearest_first() {
        let node = sample_node();
        let res = node.query(&feat(vec![0.9, 0.0]), 2).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].id.class, 1);
        assert_eq!(res[1].id.class, 0);
        assert!(res[0].distance <= res[1].distance);
    }

    #[test]
    fn offline_node_returns_none() {
        let node = sample_node();
        node.set_offline();
        assert_eq!(node.status(), NodeStatus::Offline);
        assert!(node.query(&feat(vec![0.0, 0.0]), 1).is_none());
        node.set_online();
        assert!(node.query(&feat(vec![0.0, 0.0]), 1).is_some());
    }

    #[test]
    fn m_larger_than_shard_returns_all() {
        let node = sample_node();
        let res = node.query(&feat(vec![0.0, 0.0]), 10).unwrap();
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let node = DataNode::new(
            "t",
            vec![
                (VideoId { class: 5, instance: 1 }, feat(vec![1.0])),
                (VideoId { class: 5, instance: 0 }, feat(vec![1.0])),
            ],
        );
        let res = node.query(&feat(vec![0.0]), 2).unwrap();
        assert_eq!(res[0].id.instance, 0, "equal distances break ties by id");
    }
}
