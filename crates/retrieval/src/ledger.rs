//! Query accounting shared by every attacker-facing surface.
//!
//! The paper's threat model makes query efficiency a first-class metric:
//! each query the adversary submits is counted, and an optional hard
//! budget turns overshoot into an error instead of silent extra access.
//! [`QueryLedger`] is that counter, factored out so the single-client
//! [`crate::BlackBox`] and multi-client serving layers account queries
//! with the exact same semantics.

use crate::{Result, RetrievalError};

/// A query counter with an optional hard budget.
///
/// Rejected charges are *not* counted: a query that bounces off the
/// budget never reached the model, so it costs the adversary nothing on
/// the efficiency metric (matching [`crate::BlackBox`]'s long-standing
/// behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLedger {
    used: u64,
    budget: Option<u64>,
}

impl QueryLedger {
    /// Creates a ledger with no budget (unlimited queries).
    pub fn unlimited() -> Self {
        QueryLedger { used: 0, budget: None }
    }

    /// Creates a ledger with a hard budget.
    pub fn with_budget(budget: u64) -> Self {
        QueryLedger { used: 0, budget: Some(budget) }
    }

    /// Creates a ledger from an optional budget.
    pub fn new(budget: Option<u64>) -> Self {
        QueryLedger { used: 0, budget }
    }

    /// Counts one query against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalError::BudgetExhausted`] — without counting the
    /// query — when the budget is already spent.
    pub fn charge(&mut self) -> Result<()> {
        if let Some(budget) = self.budget {
            if self.used >= budget {
                return Err(RetrievalError::BudgetExhausted { budget });
            }
        }
        self.used += 1;
        Ok(())
    }

    /// Returns one previously charged query to the budget.
    ///
    /// Used when an admitted query is later shed without ever reaching
    /// the model (e.g. its deadline expired in the queue): shed requests
    /// are never billed, so the serving layer refunds the admission-time
    /// charge. Saturates at zero.
    pub fn refund(&mut self) {
        self.used = self.used.saturating_sub(1);
    }

    /// Number of queries charged so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The remaining allowance, if a budget is set.
    pub fn remaining(&self) -> Option<u64> {
        self.budget.map(|b| b.saturating_sub(self.used))
    }

    /// Whether the next charge would be rejected.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_ledger_never_rejects() {
        let mut ledger = QueryLedger::unlimited();
        for _ in 0..1000 {
            ledger.charge().unwrap();
        }
        assert_eq!(ledger.used(), 1000);
        assert_eq!(ledger.remaining(), None);
        assert!(!ledger.is_exhausted());
    }

    #[test]
    fn budget_rejects_without_counting() {
        let mut ledger = QueryLedger::with_budget(2);
        ledger.charge().unwrap();
        ledger.charge().unwrap();
        assert!(matches!(
            ledger.charge(),
            Err(RetrievalError::BudgetExhausted { budget: 2 })
        ));
        assert_eq!(ledger.used(), 2, "rejected charges must not count");
        assert!(ledger.is_exhausted());
    }

    #[test]
    fn refund_returns_charge_and_saturates() {
        let mut ledger = QueryLedger::with_budget(2);
        ledger.charge().unwrap();
        ledger.charge().unwrap();
        assert!(ledger.is_exhausted());
        ledger.refund();
        assert_eq!(ledger.used(), 1);
        assert!(!ledger.is_exhausted());
        ledger.refund();
        ledger.refund();
        assert_eq!(ledger.used(), 0, "refund saturates at zero");
    }

    #[test]
    fn remaining_counts_down() {
        let mut ledger = QueryLedger::new(Some(3));
        assert_eq!(ledger.remaining(), Some(3));
        ledger.charge().unwrap();
        assert_eq!(ledger.remaining(), Some(2));
    }
}
