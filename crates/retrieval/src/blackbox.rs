use crate::{QueryLedger, QueryOracle, RetrievalSystem, Result};
use duo_video::{Video, VideoId};

/// The attacker-facing surface of the victim service.
///
/// Per the paper's adversary model (§III-B), the attacker can only submit
/// videos and observe the returned retrieval list `R^m(v)`. `BlackBox`
/// enforces that contract:
///
/// * queries are **8-bit quantized** before reaching the model, like any
///   uploaded video file;
/// * every call is **counted**, since query efficiency is a first-class
///   metric for query-based attacks;
/// * an optional **budget** makes exceeding the allowance an error, so
///   attack implementations cannot silently overshoot.
#[derive(Debug)]
pub struct BlackBox {
    system: RetrievalSystem,
    ledger: QueryLedger,
}

impl BlackBox {
    /// Wraps a retrieval system with unlimited query budget.
    pub fn new(system: RetrievalSystem) -> Self {
        BlackBox { system, ledger: QueryLedger::unlimited() }
    }

    /// Wraps a retrieval system with a hard query budget.
    pub fn with_budget(system: RetrievalSystem, budget: u64) -> Self {
        BlackBox { system, ledger: QueryLedger::with_budget(budget) }
    }

    /// Number of queries issued so far.
    pub fn queries_used(&self) -> u64 {
        self.ledger.used()
    }

    /// The remaining budget, if one is set.
    pub fn budget_remaining(&self) -> Option<u64> {
        self.ledger.remaining()
    }

    /// Length `m` of returned retrieval lists.
    pub fn m(&self) -> usize {
        self.system.config().m
    }

    /// Submits a query video and returns `R^m(v)`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RetrievalError::BudgetExhausted`] when the query
    /// budget is exhausted, and propagates retrieval failures.
    pub fn retrieve(&mut self, video: &Video) -> Result<Vec<VideoId>> {
        self.ledger.charge()?;
        let mut submitted = video.clone();
        submitted.quantize();
        self.system.retrieve(&submitted)
    }

    /// Unwraps the underlying system (ends the black-box constraint; used
    /// by evaluation harnesses, never by attacks).
    pub fn into_inner(self) -> RetrievalSystem {
        self.system
    }

    /// Read access to the wrapped system for *evaluation* (e.g. computing
    /// mAP baselines). Attack code must only use [`BlackBox::retrieve`].
    pub fn system_mut(&mut self) -> &mut RetrievalSystem {
        &mut self.system
    }
}

impl QueryOracle for BlackBox {
    fn retrieve(&mut self, video: &Video) -> Result<Vec<VideoId>> {
        BlackBox::retrieve(self, video)
    }

    fn queries_used(&self) -> u64 {
        BlackBox::queries_used(self)
    }

    fn budget_remaining(&self) -> Option<u64> {
        BlackBox::budget_remaining(self)
    }

    fn m(&self) -> usize {
        BlackBox::m(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RetrievalConfig;
    use duo_models::{Architecture, Backbone, BackboneConfig};
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};

    fn make_blackbox(budget: Option<u64>) -> (BlackBox, SyntheticDataset) {
        let mut rng = Rng64::new(141);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 4, 1, 0);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 8).copied().collect();
        let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            backbone,
            &ds,
            &gallery,
            RetrievalConfig { m: 4, nodes: 2, threaded: false, ..Default::default() },
        )
        .unwrap();
        let bb = match budget {
            Some(b) => BlackBox::with_budget(sys, b),
            None => BlackBox::new(sys),
        };
        (bb, ds)
    }

    #[test]
    fn queries_are_counted() {
        let (mut bb, ds) = make_blackbox(None);
        let v = ds.video(ds.train()[0]);
        assert_eq!(bb.queries_used(), 0);
        bb.retrieve(&v).unwrap();
        bb.retrieve(&v).unwrap();
        assert_eq!(bb.queries_used(), 2);
    }

    #[test]
    fn budget_is_enforced() {
        let (mut bb, ds) = make_blackbox(Some(2));
        let v = ds.video(ds.train()[0]);
        assert!(bb.retrieve(&v).is_ok());
        assert_eq!(bb.budget_remaining(), Some(1));
        assert!(bb.retrieve(&v).is_ok());
        assert!(
            matches!(
                bb.retrieve(&v),
                Err(crate::RetrievalError::BudgetExhausted { budget: 2 })
            ),
            "third query must exceed the budget with a matchable error"
        );
        assert_eq!(bb.queries_used(), 2, "rejected queries are not counted");
    }

    #[test]
    fn inputs_are_quantized_before_retrieval() {
        // Two videos that agree after rounding must retrieve identically,
        // regardless of sub-integer perturbations.
        let (mut bb, ds) = make_blackbox(None);
        let v = ds.video(ds.train()[3]);
        let mut v2 = v.clone();
        for x in v2.tensor_mut().as_mut_slice().iter_mut() {
            // Stay within the same rounding bucket.
            *x = (*x + 0.3).clamp(0.0, 255.0);
            if x.round() != (*x - 0.3).clamp(0.0, 255.0).round() {
                *x -= 0.3;
            }
        }
        let r1 = bb.retrieve(&v).unwrap();
        let r2 = bb.retrieve(&v2).unwrap();
        assert_eq!(r1, r2);
    }
}
