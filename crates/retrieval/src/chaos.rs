//! Deterministic fault injection for data nodes.
//!
//! DUO attacks a *deployed, distributed* service under a hard query
//! budget, so the serving substrate has to be exercised under realistic
//! faults: transient errors, latency spikes, and nodes that flap in and
//! out of service — not just the binary [`crate::DataNode::set_offline`]
//! switch. [`FaultPlan`] supplies exactly that, with one non-negotiable
//! property: **every decision is a pure function of the plan and the
//! node-local query index**. The wall clock never enters the decision
//! path, so the same seed replays the same fault schedule bit for bit,
//! across runs and across threaded/inline fan-out.
//!
//! Injected latency is *virtual*: a node attempt reports how long it
//! would have taken (`delay_us`), and the resilience layer compares that
//! against its per-node deadline to decide timeouts. Setting
//! [`FaultPlan::wall_clock`] additionally sleeps the injected delay so
//! concurrency tests see real contention, but the schedule itself never
//! depends on elapsed time.

use duo_tensor::Rng64;

/// A half-open interval of node-query indices during which the node is
/// down (a "flap"): offline for queries `start..end`, back afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapWindow {
    /// First node-query index the flap covers.
    pub start: u64,
    /// One past the last covered index.
    pub end: u64,
}
duo_tensor::impl_to_json!(struct FlapWindow { start, end });

impl FlapWindow {
    /// Whether `index` falls inside the flap.
    pub fn covers(&self, index: u64) -> bool {
        index >= self.start && index < self.end
    }
}

/// The fault verdict for one node query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// The node is inside a flap window: behaves exactly like
    /// [`crate::NodeStatus::Offline`] for this query.
    pub offline: bool,
    /// The query fails transiently (a retry may succeed).
    pub transient: bool,
    /// Virtual service latency injected into the answer, microseconds.
    pub delay_us: u64,
}

impl FaultDecision {
    /// A decision that injects nothing.
    pub fn clean() -> Self {
        FaultDecision { offline: false, transient: false, delay_us: 0 }
    }
}

/// A seeded, deterministic fault schedule for one data node.
///
/// The plan maps a node-local query index to a [`FaultDecision`] using a
/// dedicated [`Rng64`] stream derived from `(seed, index)` — never the
/// clock, never global state. [`FaultPlan::none`] (or simply not
/// installing a plan) injects nothing, which keeps the no-chaos retrieval
/// path bit-identical to a system without the chaos layer.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-index decision stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that a query fails transiently.
    pub transient_p: f32,
    /// Base injected latency per query, microseconds.
    pub latency_base_us: u64,
    /// Uniform extra latency in `[0, latency_jitter_us)`, microseconds.
    pub latency_jitter_us: u64,
    /// Probability in `[0, 1]` of a latency spike on top of the base.
    pub spike_p: f32,
    /// Spike magnitude, microseconds.
    pub spike_us: u64,
    /// Scheduled offline windows in node-query-index space.
    pub flaps: Vec<FlapWindow>,
    /// Actually sleep the injected delay (capped at
    /// [`FaultPlan::WALL_CLOCK_CAP_US`]) so concurrent tests see real
    /// slowness. Decisions are identical either way.
    pub wall_clock: bool,
}

impl FaultPlan {
    /// Upper bound on a real injected sleep, so `wall_clock` plans can
    /// never hang a test run.
    pub const WALL_CLOCK_CAP_US: u64 = 20_000;

    /// A plan that injects nothing (useful as a builder base).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_p: 0.0,
            latency_base_us: 0,
            latency_jitter_us: 0,
            spike_p: 0.0,
            spike_us: 0,
            flaps: Vec::new(),
            wall_clock: false,
        }
    }

    /// A plan with a transient-failure probability only.
    pub fn transient(seed: u64, transient_p: f32) -> Self {
        FaultPlan { transient_p, ..FaultPlan::none(seed) }
    }

    /// Adds a flap window (builder style).
    #[must_use]
    pub fn with_flap(mut self, start: u64, end: u64) -> Self {
        self.flaps.push(FlapWindow { start, end });
        self
    }

    /// Adds an injected latency distribution (builder style).
    #[must_use]
    pub fn with_latency(mut self, base_us: u64, jitter_us: u64, spike_p: f32, spike_us: u64) -> Self {
        self.latency_base_us = base_us;
        self.latency_jitter_us = jitter_us;
        self.spike_p = spike_p;
        self.spike_us = spike_us;
        self
    }

    /// The fault verdict for the `index`-th query this node sees.
    ///
    /// Pure: same plan and index always yield the same decision. The
    /// random draws use a stream forked from `(seed, index)` with a fixed
    /// draw order (transient, spike, jitter), so adding a fault dimension
    /// to a plan never perturbs the others' schedules retroactively.
    pub fn decision(&self, index: u64) -> FaultDecision {
        let offline = self.flaps.iter().any(|w| w.covers(index));
        let mut rng = Rng64::new(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let transient = self.transient_p > 0.0 && rng.uniform() < self.transient_p;
        let spiked = self.spike_p > 0.0 && rng.uniform() < self.spike_p;
        let jitter = if self.latency_jitter_us > 0 {
            (rng.as_rng().next_u64()) % self.latency_jitter_us
        } else {
            0
        };
        let delay_us =
            self.latency_base_us + jitter + if spiked { self.spike_us } else { 0 };
        FaultDecision { offline, transient, delay_us }
    }

    /// The first `n` decisions, for schedule inspection in tests.
    pub fn schedule(&self, n: u64) -> Vec<FaultDecision> {
        (0..n).map(|i| self.decision(i)).collect()
    }

    /// Whether the plan can inject anything at all.
    pub fn is_noop(&self) -> bool {
        self.transient_p <= 0.0
            && self.latency_base_us == 0
            && self.latency_jitter_us == 0
            && (self.spike_p <= 0.0 || self.spike_us == 0)
            && self.flaps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::transient(42, 0.3)
            .with_latency(100, 50, 0.1, 5_000)
            .with_flap(10, 20);
        let a = plan.schedule(200);
        let b = plan.schedule(200);
        assert_eq!(a, b, "decisions must be pure in (seed, index)");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::transient(1, 0.5).schedule(64);
        let b = FaultPlan::transient(2, 0.5).schedule(64);
        assert_ne!(a, b, "distinct seeds should produce distinct schedules");
    }

    #[test]
    fn flap_windows_cover_exactly_their_range() {
        let plan = FaultPlan::none(7).with_flap(3, 6);
        for i in 0..10u64 {
            assert_eq!(plan.decision(i).offline, (3..6).contains(&i), "index {i}");
        }
    }

    #[test]
    fn transient_rate_is_roughly_honoured() {
        let plan = FaultPlan::transient(99, 0.2);
        let hits = plan.schedule(2_000).iter().filter(|d| d.transient).count();
        let rate = hits as f32 / 2_000.0;
        assert!((0.15..0.25).contains(&rate), "rate {rate} should be near 0.2");
    }

    #[test]
    fn noop_plan_injects_nothing() {
        let plan = FaultPlan::none(5);
        assert!(plan.is_noop());
        for d in plan.schedule(64) {
            assert_eq!(d, FaultDecision::clean());
        }
    }

    #[test]
    fn latency_is_bounded_by_parameters() {
        let plan = FaultPlan::none(11).with_latency(100, 40, 1.0, 300);
        for d in plan.schedule(128) {
            assert!(d.delay_us >= 400 && d.delay_us < 440, "delay {}", d.delay_us);
        }
    }
}
