//! Distributed video retrieval system simulation.
//!
//! Mirrors the DNN-based cloud retrieval service of the paper's Figure 1:
//! a trained feature extractor converts the query video into an embedding,
//! the embedding is fanned out to distributed *data nodes* each holding a
//! shard of the gallery, and the per-node candidates are merged into the
//! global top-`m` list `R^m(v)` (descending similarity).
//!
//! The attacker-facing surface is [`BlackBox`]: retrieval lists only, with
//! query accounting and 8-bit input quantization — the exact contract the
//! paper's black-box adversary model assumes.
//!
//! # Example
//!
//! ```
//! use duo_retrieval::{RetrievalConfig, RetrievalSystem};
//! use duo_models::{Architecture, Backbone, BackboneConfig};
//! use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};
//! use duo_tensor::Rng64;
//!
//! let mut rng = Rng64::new(1);
//! let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 1, 1, 0);
//! let backbone = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng)?;
//! let sys = RetrievalSystem::build(backbone, &ds, ds.train(), RetrievalConfig::default())?;
//! let result = sys.retrieve(&ds.video(ds.train()[0]))?;
//! assert_eq!(result.len(), sys.config().m.min(ds.train().len()));
//! # Ok::<(), duo_retrieval::RetrievalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blackbox;
mod breaker;
pub mod chaos;
mod error;
pub mod index;
mod ledger;
mod metrics;
mod mutation;
mod node;
mod oracle;
mod persist;
mod resilience;
mod system;

pub use blackbox::BlackBox;
pub use breaker::{BreakerConfig, BreakerState, BreakerTransitions, CircuitBreaker};
pub use chaos::{FaultDecision, FaultPlan, FlapWindow};
pub use error::RetrievalError;
pub use index::{pq_subspace_seed, shard_seed, IndexBreakdown, IndexMode, IndexStats, ShardIndex, TopM};
pub use ledger::QueryLedger;
pub use metrics::{ap_at_m, mean_average_precision, ndcg_cooccurrence, recall_at_m};
pub use mutation::{EpochTransition, Mutation, MutationBatch, MutationStats};
pub use node::{DataNode, NodeAnswer, NodeFault, NodeStatus, ScoredId};
pub use oracle::QueryOracle;
pub use persist::GalleryIndex;
pub use resilience::{Coverage, QueryTelemetry, ResilienceConfig, Retrieved};
pub use system::{RetrievalConfig, RetrievalSystem};

/// Convenient result alias used across the retrieval crate.
pub type Result<T> = std::result::Result<T, RetrievalError>;
