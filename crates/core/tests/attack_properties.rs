//! Property-based tests on the attack crate's algorithmic kernels.

use duo_attack::{lp_box_admm, pscore, spa, SparseMasks};
use duo_check::{bools, check, prop_assert, prop_assert_eq, vec_of, Config};
use duo_tensor::{Rng64, Tensor};

check! {
    #![config(Config::default().with_cases(48))]

    /// lp-box ADMM selects exactly k entries and, for linear objectives,
    /// captures at least as much score mass as any random selection.
    fn admm_beats_random_selection(
        scores in vec_of(-5.0f32..5.0, 8..64),
        seed in 0u64..1000,
    ) {
        let k = scores.len() / 2;
        let mask = lp_box_admm(&scores, k, 40).unwrap();
        prop_assert_eq!(mask.iter().filter(|&&b| b).count(), k);
        let admm_mass: f32 =
            mask.iter().zip(&scores).filter(|(&b, _)| b).map(|(_, &s)| s).sum();
        let mut rng = Rng64::new(seed);
        let random_mass: f32 =
            rng.sample_indices(scores.len(), k).into_iter().map(|i| scores[i]).sum();
        prop_assert!(
            admm_mass >= random_mass - 1e-4,
            "ADMM mass {admm_mass} below random {random_mass}"
        );
    }

    /// The φ composition bounds: ‖φ‖∞ ≤ ‖θ‖∞ and supp(φ) ⊆ supp(𝕀⊙𝓕).
    fn phi_composition_bounds(seed in 0u64..500, frames in 2usize..6) {
        let dims = [frames, 4, 4, 3];
        let mut rng = Rng64::new(seed);
        let mut masks = SparseMasks::dense_init(&dims);
        masks.theta = Tensor::rand_uniform(&dims, -30.0, 30.0, rng.as_rng());
        masks.pixel_mask = Tensor::rand_uniform(&dims, 0.0, 1.0, rng.as_rng())
            .map(|x| if x > 0.5 { 1.0 } else { 0.0 });
        masks.frame_mask = (0..frames).map(|_| rng.uniform() > 0.4).collect();
        let phi = masks.phi();
        prop_assert!(phi.linf_norm() <= masks.theta.linf_norm() + 1e-6);
        prop_assert!(phi.l0_norm() <= masks.mask().l0_norm());
        prop_assert_eq!(masks.support_indices().len(), masks.mask().l0_norm());
    }

    /// Spa/PScore scale linearly with the perturbation support and size.
    fn metrics_scale_with_support(count in 1usize..60, magnitude in 0.5f32..30.0) {
        let mut phi = Tensor::zeros(&[4, 4, 4, 3]);
        for i in 0..count {
            phi.as_mut_slice()[i * 3] = magnitude;
        }
        prop_assert_eq!(spa(&phi), count);
        let expected = count as f32 * magnitude / phi.len() as f32;
        prop_assert!((pscore(&phi) - expected).abs() < 1e-4);
    }

    /// Active-frame bookkeeping matches the boolean mask exactly.
    fn active_frames_counts_mask(pattern in vec_of(bools(), 1..10)) {
        let frames = pattern.len();
        let dims = [frames, 2, 2, 3];
        let mut masks = SparseMasks::dense_init(&dims);
        masks.frame_mask = pattern.clone();
        prop_assert_eq!(masks.active_frames(), pattern.iter().filter(|&&b| b).count());
    }
}

/// Deterministic: ADMM agrees with exhaustive search on tiny instances.
#[test]
fn admm_matches_exhaustive_optimum_on_tiny_instances() {
    let mut rng = Rng64::new(701);
    for _ in 0..20 {
        let n = 8;
        let scores: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        for k in 1..n {
            let mask = lp_box_admm(&scores, k, 60).unwrap();
            let admm_mass: f32 =
                mask.iter().zip(&scores).filter(|(&b, _)| b).map(|(_, &s)| s).sum();
            // Exhaustive best k-subset mass.
            let mut best = f32::NEG_INFINITY;
            for bits in 0u32..(1 << n) {
                if bits.count_ones() as usize != k {
                    continue;
                }
                let mass: f32 =
                    (0..n).filter(|i| bits & (1 << i) != 0).map(|i| scores[i]).sum();
                best = best.max(mass);
            }
            assert!(
                (admm_mass - best).abs() < 1e-4,
                "k={k}: admm {admm_mass} vs optimum {best}"
            );
        }
    }
}
