//! Surrogate-model stealing (paper §IV-B1).
//!
//! The attacker uploads probe videos, reads back the retrieval lists, and
//! turns each list into ranking triplets `⟨v_r, v_i, v_j⟩` (i < j ⇒ `v_i`
//! ranks above `v_j`): the training set `T`. A fresh backbone is then fit
//! with the margin triplet loss (γ = 0.2) so its feature distances mimic
//! the victim's ranking behaviour.

use crate::{AttackError, Result};
use duo_models::{Architecture, Backbone, BackboneConfig, TripletLoss};
use duo_nn::{Adam, Optimizer, Parameterized};
use duo_retrieval::QueryOracle;
use duo_tensor::Rng64;
use duo_video::{SyntheticDataset, VideoId};
use std::collections::HashSet;

/// Configuration of the surrogate-stealing procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StealConfig {
    /// Surrogate backbone family (paper: C3D or Resnet18).
    pub arch: Architecture,
    /// Backbone width/feature-size configuration.
    pub backbone: BackboneConfig,
    /// Recursion depth `Z` of the list-expansion loop (Step 3).
    pub rounds: usize,
    /// Videos re-queried per retrieved list (`M`, Step 2).
    pub fanout: usize,
    /// Stop collecting once this many distinct videos are involved — the
    /// paper's "surrogate dataset size" axis (165 / 1,111 / 3,616 / 8,421).
    pub target_dataset_size: usize,
    /// Cap on training triplets (the full `T` grows as `Z·M·m²`).
    pub max_triplets: usize,
    /// Training epochs over `T`.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-accumulation batch size.
    pub batch: usize,
}
duo_tensor::impl_to_json!(struct StealConfig { arch, backbone, rounds, fanout, target_dataset_size, max_triplets, epochs, lr, batch });

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            arch: Architecture::C3d,
            backbone: BackboneConfig::experiment(),
            rounds: 3,
            fanout: 3,
            target_dataset_size: 60,
            max_triplets: 150,
            epochs: 2,
            lr: 3e-3,
            batch: 4,
        }
    }
}

impl StealConfig {
    /// Fast configuration used by tests.
    pub fn quick() -> Self {
        StealConfig {
            backbone: BackboneConfig::tiny(),
            rounds: 2,
            fanout: 2,
            target_dataset_size: 15,
            max_triplets: 30,
            epochs: 1,
            ..StealConfig::default()
        }
    }
}

/// Summary of a stealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StealReport {
    /// Distinct videos that appeared as probes or in retrieval lists —
    /// the paper's surrogate dataset size.
    pub distinct_videos: usize,
    /// Triplets the surrogate was trained on.
    pub triplets_used: usize,
    /// Black-box queries consumed by the collection phase.
    pub queries: u64,
    /// Mean triplet loss over the final epoch.
    pub final_loss: f32,
}
duo_tensor::impl_to_json!(struct StealReport { distinct_videos, triplets_used, queries, final_loss });

/// Steals a surrogate model from the black-box service.
///
/// `probe_pool` is the attacker's own stock of videos (the paper assumes
/// "sufficient training samples"); probes are drawn from it at random,
/// retrieval results are expanded breadth-first for `rounds` levels, and a
/// surrogate is trained on the harvested ranking triplets.
///
/// # Errors
///
/// Returns [`AttackError::BadConfig`] for an empty probe pool and
/// propagates query/training failures.
pub fn steal_surrogate(
    blackbox: &mut dyn QueryOracle,
    dataset: &SyntheticDataset,
    probe_pool: &[VideoId],
    config: StealConfig,
    rng: &mut Rng64,
) -> Result<(Backbone, StealReport)> {
    if probe_pool.is_empty() {
        return Err(AttackError::BadConfig("probe pool must not be empty".into()));
    }
    let queries_before = blackbox.queries_used();

    // ---- Collection: Steps 1–3 of §IV-B1 -----------------------------
    let mut triplets: Vec<(VideoId, VideoId, VideoId)> = Vec::new();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    // Seed the expansion from several independent probes so the harvested
    // ranking structure spans the gallery rather than one neighbourhood.
    let seeds = probe_pool.len().clamp(1, 8);
    let mut frontier: Vec<VideoId> = rng
        .sample_indices(probe_pool.len(), seeds)
        .into_iter()
        .map(|i| probe_pool[i])
        .collect();
    'collect: for _round in 0..config.rounds.max(1) {
        let mut next_frontier = Vec::new();
        for &probe in &frontier {
            seen.insert((probe.class, probe.instance));
            let list = blackbox.retrieve(&dataset.video(probe))?;
            for id in &list {
                seen.insert((id.class, id.instance));
            }
            // T ← ⟨v_r, v_i, v_j⟩ for all i < j.
            for i in 0..list.len() {
                for j in (i + 1)..list.len() {
                    triplets.push((probe, list[i], list[j]));
                }
            }
            // Step 2: uniformly select M videos from the list to re-query.
            if !list.is_empty() {
                let m = config.fanout.min(list.len());
                for &idx in rng.sample_indices(list.len(), m).iter() {
                    next_frontier.push(list[idx]);
                }
            }
            if seen.len() >= config.target_dataset_size {
                break 'collect;
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    let collection_queries = blackbox.queries_used() - queries_before;

    // ---- Training: triplet loss on the stolen ranking structure -------
    if triplets.len() > config.max_triplets {
        rng.shuffle(&mut triplets);
        triplets.truncate(config.max_triplets);
    }
    let mut surrogate = Backbone::new(config.arch, config.backbone, rng)?;
    let loss = TripletLoss::new();
    let mut optimizer = Adam::new(config.lr);
    let mut final_loss = 0.0f32;
    for _epoch in 0..config.epochs.max(1) {
        rng.shuffle(&mut triplets);
        let mut epoch_loss = 0.0f32;
        let mut in_batch = 0usize;
        for &(a, p, n) in &triplets {
            let va = dataset.video(a);
            let vp = dataset.video(p);
            let vn = dataset.video(n);
            let ea = surrogate.extract(&va)?;
            let ep = surrogate.extract(&vp)?;
            let en = surrogate.extract(&vn)?;
            let (l, ga, gp, gn) = loss.loss_and_grads(&ea, &ep, &en)?;
            epoch_loss += l;
            if l > 0.0 {
                // Re-forward each leg so its cache is live for backward.
                surrogate.extract_training(&va)?;
                surrogate.backward_params(&ga)?;
                surrogate.extract_training(&vp)?;
                surrogate.backward_params(&gp)?;
                surrogate.extract_training(&vn)?;
                surrogate.backward_params(&gn)?;
            }
            in_batch += 1;
            if in_batch >= config.batch {
                optimizer.step(&mut surrogate);
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            optimizer.step(&mut surrogate);
        }
        final_loss = epoch_loss / triplets.len().max(1) as f32;
    }
    // Ensure no stale gradient state leaks to attack-time backward passes.
    surrogate.zero_grad();

    Ok((
        surrogate,
        StealReport {
            distinct_videos: seen.len(),
            triplets_used: triplets.len(),
            queries: collection_queries,
            final_loss,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::BackboneConfig;
    use duo_retrieval::{BlackBox, RetrievalConfig, RetrievalSystem};
    use duo_video::{ClipSpec, DatasetKind};

    fn setup() -> (BlackBox, SyntheticDataset) {
        let mut rng = Rng64::new(191);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 7, 2, 1);
        let gallery: Vec<_> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
        let victim =
            Backbone::new(Architecture::Resnet34, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 4, nodes: 2, threaded: false, ..Default::default() },
        )
        .unwrap();
        (BlackBox::new(sys), ds)
    }

    #[test]
    fn steals_a_working_surrogate() {
        let (mut bb, ds) = setup();
        let mut rng = Rng64::new(192);
        let probes: Vec<_> = ds.test().iter().filter(|id| id.class < 10).copied().collect();
        let (surrogate, report) =
            steal_surrogate(&mut bb, &ds, &probes, StealConfig::quick(), &mut rng).unwrap();
        assert!(report.distinct_videos > 1);
        assert!(report.triplets_used > 0);
        assert!(report.queries > 0);
        assert_eq!(report.queries, bb.queries_used());
        // The surrogate must produce normalized features.
        let f = surrogate.extract(&ds.video(probes[0])).unwrap();
        assert!((f.l2_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empty_probe_pool_is_rejected() {
        let (mut bb, ds) = setup();
        let mut rng = Rng64::new(193);
        assert!(steal_surrogate(&mut bb, &ds, &[], StealConfig::quick(), &mut rng).is_err());
    }

    #[test]
    fn target_dataset_size_bounds_collection() {
        let (mut bb, ds) = setup();
        let mut rng = Rng64::new(194);
        let probes: Vec<_> = ds.test().iter().filter(|id| id.class < 10).copied().collect();
        let cfg = StealConfig { target_dataset_size: 6, ..StealConfig::quick() };
        let (_, report) = steal_surrogate(&mut bb, &ds, &probes, cfg, &mut rng).unwrap();
        // Collection stops at the first list crossing the threshold, so the
        // count can overshoot by at most one list length (m = 4).
        assert!(report.distinct_videos <= 6 + 4, "got {}", report.distinct_videos);
    }
}
