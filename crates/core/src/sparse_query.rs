//! SparseQuery (paper Algorithm 2): query-based rectification restricted
//! to the sparse support found by SparseTransfer.
//!
//! The objective (Eq. 2) is
//! `𝕋(v_adv) = ℍ(R^m(v_adv), R^m(v)) − ℍ(R^m(v_adv), R^m(v_t)) + η`,
//! where ℍ is the NDCG-based co-occurrence similarity: decreasing 𝕋 moves
//! the adversarial retrieval list away from the original's and toward the
//! target's. Each iteration samples one coordinate of the Cartesian basis
//! (without replacement) *inside the support of 𝕀⊙𝓕⊙θ* (Eq. 4), tries
//! `±ε`, and keeps whichever candidate lowers 𝕋 (Eq. 3).

use crate::{AttackError, AttackGoal, AttackOutcome, Result, SparseMasks};
use duo_retrieval::{ndcg_cooccurrence, QueryOracle, RetrievalError};
use duo_tensor::Rng64;
use duo_video::{Video, VideoId};

/// Configuration of the SparseQuery component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryConfig {
    /// Maximum iterations (`iter_numQ`; the paper uses 1,000).
    pub iter_num_q: usize,
    /// Margin constant η of Eq. 2 (shifts 𝕋, does not affect decisions).
    pub eta: f32,
    /// Per-pixel bound τ the rectified video must keep with respect to the
    /// *original* video.
    pub tau: f32,
    /// Step size ε; `None` derives it from θ as `clamp(mean |θ| on the
    /// support, 1, τ)` (Algorithm 2 line 3).
    pub epsilon: Option<f32>,
    /// Support coordinates moved per iteration. The retrieval list is the
    /// only feedback the black box exposes, and a single-pixel step almost
    /// never flips a top-m list; moving a small *group* of basis
    /// directions per query makes the discrete objective responsive.
    /// `0` selects `max(1, support/16)` automatically.
    pub group_size: usize,
    /// Targeted (default) or untargeted objective.
    pub goal: AttackGoal,
}
duo_tensor::impl_to_json!(struct QueryConfig { iter_num_q, eta, tau, epsilon, group_size, goal });

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            iter_num_q: 200,
            eta: 1.0,
            tau: 30.0,
            epsilon: None,
            group_size: 0,
            goal: AttackGoal::Targeted,
        }
    }
}

/// The query-based component of DUO.
#[derive(Debug, Clone, Copy)]
pub struct SparseQuery {
    config: QueryConfig,
}

impl SparseQuery {
    /// Creates the component.
    pub fn new(config: QueryConfig) -> Self {
        SparseQuery { config }
    }

    /// Runs Algorithm 2.
    ///
    /// * `v` / `v_t` — original and target videos (for the reference lists).
    /// * `masks` — the prior knowledge from SparseTransfer; only its
    ///   support is ever perturbed.
    /// * `start` — the initial adversarial video (`v + 𝕀⊙𝓕⊙θ`, clipped).
    ///
    /// Stops at `iter_numQ` iterations, support exhaustion with no
    /// progress, or black-box budget exhaustion (returning the best video
    /// found so far).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] if the support is empty, and
    /// propagates retrieval failures other than budget exhaustion.
    pub fn run(
        &self,
        blackbox: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        masks: &SparseMasks,
        start: Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        let support = masks.support_indices();
        if support.is_empty() {
            return Err(AttackError::BadConfig("SparseQuery needs a non-empty support".into()));
        }
        let queries_before = blackbox.queries_used();
        let r_v = blackbox.retrieve(v)?;
        // Untargeted runs skip the target-list query entirely: the
        // objective degenerates to ℍ(R(v_adv), R(v)) + η.
        let r_t = match self.config.goal {
            AttackGoal::Targeted => blackbox.retrieve(v_t)?,
            AttackGoal::Untargeted => Vec::new(),
        };
        let goal = self.config.goal;
        let objective = |list: &[VideoId]| -> f32 {
            let away = ndcg_cooccurrence(list, &r_v) + self.config.eta;
            match goal {
                AttackGoal::Targeted => away - ndcg_cooccurrence(list, &r_t),
                AttackGoal::Untargeted => away,
            }
        };

        let epsilon = self.config.epsilon.unwrap_or_else(|| {
            let theta = masks.theta.as_slice();
            let mean: f32 = support.iter().map(|&i| theta[i].abs()).sum::<f32>()
                / support.len() as f32;
            mean.clamp(1.0, self.config.tau)
        });

        let mut v_adv = start;
        let mut t_cur = objective(&blackbox.retrieve(&v_adv)?);
        let mut trajectory = vec![t_cur];

        // Cartesian-basis sampling without replacement (reshuffle when the
        // support is exhausted); each iteration consumes one group of
        // basis directions.
        let mut group = if self.config.group_size == 0 {
            (support.len() / 16).max(1)
        } else {
            self.config.group_size.min(support.len())
        };
        let mut order = support.clone();
        rng.shuffle(&mut order);
        let mut cursor = 0usize;
        // Adaptive escalation: when many consecutive groups fail to move
        // the discrete list objective, coordinate moves are too small to
        // cross any retrieval boundary — double the block size (up to the
        // full support) until progress resumes.
        let mut stale = 0usize;

        let original = v.tensor().as_slice().to_vec();
        let theta = masks.theta.as_slice();
        'outer: for _ in 0..self.config.iter_num_q {
            if blackbox.budget_remaining() == Some(0) {
                break;
            }
            if stale >= 16 && group < support.len() {
                group = (group * 2).min(support.len());
                stale = 0;
            }
            if cursor + group > order.len() {
                rng.shuffle(&mut order);
                cursor = 0;
            }
            let indices = &order[cursor..cursor + group];
            cursor += group;
            // A fresh random sign pattern per iteration: the group step is
            // one random direction q of the (restricted) Cartesian-product
            // basis, probed at +ε and −ε (Eq. 3/4). Biasing the pattern
            // toward the transfer prior's signs keeps the search centred
            // on the direction SparseTransfer found while still exploring.
            let signs: Vec<f32> = indices
                .iter()
                .map(|&idx| {
                    let prior = if theta[idx] < 0.0 { -1.0 } else { 1.0 };
                    if rng.uniform() < 0.7 {
                        prior
                    } else {
                        -prior
                    }
                })
                .collect();

            for &direction in &[1.0f32, -1.0] {
                if blackbox.budget_remaining() == Some(0) {
                    break 'outer;
                }
                let mut candidate = v_adv.clone();
                let cv = candidate.tensor_mut().as_mut_slice();
                let mut changed = false;
                for (&idx, &orient) in indices.iter().zip(&signs) {
                    let cur = cv[idx];
                    // Keep within both the 8-bit range and the τ-ball
                    // around the original video (CLIP of Eq. 3).
                    let lo = (original[idx] - self.config.tau).max(0.0);
                    let hi = (original[idx] + self.config.tau).min(255.0);
                    let proposed = (cur + direction * orient * epsilon).clamp(lo, hi);
                    if (proposed - cur).abs() > 1e-6 {
                        cv[idx] = proposed;
                        changed = true;
                    }
                }
                if !changed {
                    continue;
                }
                // Budget exhaustion mid-search is a normal stopping
                // condition, not a failure: keep the best video found.
                let list = match blackbox.retrieve(&candidate) {
                    Ok(list) => list,
                    Err(RetrievalError::BudgetExhausted { .. }) => break 'outer,
                    Err(e) => return Err(e.into()),
                };
                let t_new = objective(&list);
                if t_new < t_cur {
                    v_adv = candidate;
                    t_cur = t_new;
                    stale = 0;
                    break;
                }
                stale += 1;
            }
            trajectory.push(t_cur);
        }

        let perturbation = v_adv.perturbation_from(v)?;
        Ok(AttackOutcome {
            adversarial: v_adv,
            perturbation,
            queries: blackbox.queries_used() - queries_before,
            loss_trajectory: trajectory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SparseTransfer, TransferConfig};
    use duo_models::{Architecture, Backbone, BackboneConfig};
    use duo_retrieval::{BlackBox, RetrievalConfig, RetrievalSystem};
    use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};

    fn setup() -> (BlackBox, SyntheticDataset, Backbone) {
        let mut rng = Rng64::new(171);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 5, 1, 0);
        let gallery: Vec<_> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
        let victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() },
        )
        .unwrap();
        let surrogate =
            Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        (BlackBox::new(sys), ds, surrogate)
    }

    fn masks_for(
        surrogate: &mut Backbone,
        v: &duo_video::Video,
        vt: &duo_video::Video,
    ) -> SparseMasks {
        let cfg = TransferConfig {
            k: 300,
            n: 3,
            outer_iters: 1,
            theta_steps: 3,
            admm_iters: 15,
            ..TransferConfig::default()
        };
        SparseTransfer::new(surrogate, cfg).run(v, vt).unwrap()
    }

    #[test]
    fn objective_never_increases_along_trajectory() {
        let (mut bb, ds, mut surrogate) = setup();
        let v = ds.video(duo_video::VideoId { class: 0, instance: 0 });
        let vt = ds.video(duo_video::VideoId { class: 7, instance: 0 });
        let masks = masks_for(&mut surrogate, &v, &vt);
        let start = v.add_perturbation(&masks.phi()).unwrap();
        let mut rng = Rng64::new(172);
        let sq = SparseQuery::new(QueryConfig { iter_num_q: 25, ..QueryConfig::default() });
        let outcome = sq.run(&mut bb, &v, &vt, &masks, start, &mut rng).unwrap();
        for w in outcome.loss_trajectory.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "greedy acceptance must be monotone");
        }
    }

    #[test]
    fn perturbation_stays_on_support_and_in_tau_ball() {
        let (mut bb, ds, mut surrogate) = setup();
        let v = ds.video(duo_video::VideoId { class: 1, instance: 0 });
        let vt = ds.video(duo_video::VideoId { class: 8, instance: 0 });
        let masks = masks_for(&mut surrogate, &v, &vt);
        let start = v.add_perturbation(&masks.phi()).unwrap();
        let mut rng = Rng64::new(173);
        let cfg = QueryConfig { iter_num_q: 20, tau: 30.0, ..QueryConfig::default() };
        let outcome = SparseQuery::new(cfg).run(&mut bb, &v, &vt, &masks, start, &mut rng).unwrap();
        assert!(outcome.perturbation.linf_norm() <= 30.0 + 1e-3);
        // Every perturbed index must belong to the support.
        let mask = masks.mask();
        for (i, &p) in outcome.perturbation.as_slice().iter().enumerate() {
            if p != 0.0 {
                assert_eq!(mask.as_slice()[i], 1.0, "perturbed pixel {i} outside support");
            }
        }
    }

    #[test]
    fn respects_query_budget() {
        let (bb, ds, mut surrogate) = setup();
        let mut bb = BlackBox::with_budget(bb.into_inner(), 12);
        let v = ds.video(duo_video::VideoId { class: 2, instance: 0 });
        let vt = ds.video(duo_video::VideoId { class: 9, instance: 0 });
        let masks = masks_for(&mut surrogate, &v, &vt);
        let start = v.add_perturbation(&masks.phi()).unwrap();
        let mut rng = Rng64::new(174);
        let sq = SparseQuery::new(QueryConfig { iter_num_q: 500, ..QueryConfig::default() });
        let outcome = sq.run(&mut bb, &v, &vt, &masks, start, &mut rng).unwrap();
        assert!(outcome.queries <= 12, "budget must cap queries, used {}", outcome.queries);
    }

    #[test]
    fn empty_support_is_rejected() {
        let (mut bb, ds, _) = setup();
        let v = ds.video(duo_video::VideoId { class: 0, instance: 0 });
        let dims = v.tensor().dims().to_vec();
        let masks = SparseMasks {
            pixel_mask: duo_tensor::Tensor::zeros(&dims),
            frame_mask: vec![false; dims[0]],
            theta: duo_tensor::Tensor::zeros(&dims),
        };
        let mut rng = Rng64::new(175);
        let sq = SparseQuery::new(QueryConfig::default());
        assert!(sq.run(&mut bb, &v, &v, &masks, v.clone(), &mut rng).is_err());
    }
}
