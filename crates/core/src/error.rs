use duo_models::ModelError;
use duo_retrieval::RetrievalError;
use duo_tensor::TensorError;
use std::fmt;

/// Error type for attack construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// A surrogate/victim model operation failed.
    Model(ModelError),
    /// A black-box query failed (budget exhausted, nodes offline, …).
    Retrieval(RetrievalError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The attack was configured with invalid parameters.
    BadConfig(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Model(e) => write!(f, "model error: {e}"),
            AttackError::Retrieval(e) => write!(f, "retrieval error: {e}"),
            AttackError::Tensor(e) => write!(f, "tensor error: {e}"),
            AttackError::BadConfig(msg) => write!(f, "bad attack config: {msg}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Model(e) => Some(e),
            AttackError::Retrieval(e) => Some(e),
            AttackError::Tensor(e) => Some(e),
            AttackError::BadConfig(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<ModelError> for AttackError {
    fn from(e: ModelError) -> Self {
        AttackError::Model(e)
    }
}

#[doc(hidden)]
impl From<RetrievalError> for AttackError {
    fn from(e: RetrievalError) -> Self {
        AttackError::Retrieval(e)
    }
}

#[doc(hidden)]
impl From<TensorError> for AttackError {
    fn from(e: TensorError) -> Self {
        AttackError::Tensor(e)
    }
}
