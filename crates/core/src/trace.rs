//! Structured attack telemetry.
//!
//! [`AttackOutcome::loss_trajectory`] carries the raw 𝕋 curve; this module
//! adds the derived views the evaluation needs: per-query series for
//! Figure 5, acceptance statistics, and CSV export for external plotting.

use crate::AttackOutcome;
use std::io::Write;

/// Summary statistics of one attack run's query phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryStats {
    /// Number of recorded objective samples.
    pub samples: usize,
    /// Initial 𝕋 value.
    pub initial: f32,
    /// Final 𝕋 value.
    pub final_value: f32,
    /// Total objective decrease (`initial − final`).
    pub total_drop: f32,
    /// Number of iterations that strictly improved the objective.
    pub improvements: usize,
    /// Largest single-step improvement.
    pub best_step: f32,
    /// Black-box queries consumed.
    pub queries: u64,
}
duo_tensor::impl_to_json!(struct QueryStats { samples, initial, final_value, total_drop, improvements, best_step, queries });

/// Computes query-phase statistics from an attack outcome.
///
/// Returns `None` when the outcome recorded no trajectory (e.g. pure
/// transfer attacks such as TIMI).
pub fn query_stats(outcome: &AttackOutcome) -> Option<QueryStats> {
    let traj = &outcome.loss_trajectory;
    let (&initial, &final_value) = (traj.first()?, traj.last()?);
    let mut improvements = 0usize;
    let mut best_step = 0.0f32;
    for w in traj.windows(2) {
        let drop = w[0] - w[1];
        if drop > 0.0 {
            improvements += 1;
            best_step = best_step.max(drop);
        }
    }
    Some(QueryStats {
        samples: traj.len(),
        initial,
        final_value,
        total_drop: initial - final_value,
        improvements,
        best_step,
        queries: outcome.queries,
    })
}

/// Downsamples a trajectory to at most `points` evenly spaced samples
/// (always keeping the first and last), the series Figure 5 plots.
pub fn downsample(trajectory: &[f32], points: usize) -> Vec<(usize, f32)> {
    if trajectory.is_empty() || points == 0 {
        return Vec::new();
    }
    if trajectory.len() <= points {
        return trajectory.iter().copied().enumerate().collect();
    }
    let step = (trajectory.len() - 1) as f64 / (points - 1).max(1) as f64;
    (0..points)
        .map(|i| {
            let idx = ((i as f64 * step).round() as usize).min(trajectory.len() - 1);
            (idx, trajectory[idx])
        })
        .collect()
}

/// Writes one or more named trajectories as CSV (`iteration,<name>,…`),
/// padding shorter series with their final value so rows stay rectangular.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_trajectories_csv<W: Write>(
    series: &[(&str, &[f32])],
    mut w: W,
) -> std::io::Result<()> {
    write!(w, "iteration")?;
    for (name, _) in series {
        write!(w, ",{name}")?;
    }
    writeln!(w)?;
    let rows = series.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
    for i in 0..rows {
        write!(w, "{i}")?;
        for (_, t) in series {
            let v = t.get(i).or_else(|| t.last()).copied().unwrap_or(f32::NAN);
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_tensor::Tensor;
    use duo_video::{ClipSpec, Video};

    fn outcome_with(traj: Vec<f32>, queries: u64) -> AttackOutcome {
        let spec = ClipSpec::tiny();
        AttackOutcome {
            adversarial: Video::zeros(spec),
            perturbation: Tensor::zeros(&[spec.frames, spec.height, spec.width, spec.channels]),
            queries,
            loss_trajectory: traj,
        }
    }

    #[test]
    fn stats_capture_monotone_improvements() {
        let o = outcome_with(vec![2.0, 1.8, 1.8, 1.5, 1.5], 40);
        let s = query_stats(&o).unwrap();
        assert_eq!(s.samples, 5);
        assert_eq!(s.initial, 2.0);
        assert_eq!(s.final_value, 1.5);
        assert!((s.total_drop - 0.5).abs() < 1e-6);
        assert_eq!(s.improvements, 2);
        assert!((s.best_step - 0.3).abs() < 1e-6);
        assert_eq!(s.queries, 40);
    }

    #[test]
    fn stats_none_for_empty_trajectory() {
        assert!(query_stats(&outcome_with(vec![], 0)).is_none());
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let traj: Vec<f32> = (0..100).map(|i| 100.0 - i as f32).collect();
        let d = downsample(&traj, 5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], (0, 100.0));
        assert_eq!(d[4], (99, 1.0));
        // Short series pass through untouched.
        let short = downsample(&[3.0, 2.0], 10);
        assert_eq!(short, vec![(0, 3.0), (1, 2.0)]);
        assert!(downsample(&[], 5).is_empty());
    }

    #[test]
    fn csv_is_rectangular_with_padding() {
        let a = vec![2.0f32, 1.5, 1.0];
        let b = vec![2.0f32, 1.9];
        let mut buf = Vec::new();
        write_trajectories_csv(&[("duo", &a), ("vanilla", &b)], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "iteration,duo,vanilla");
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[3], "2,1,1.9", "short series pads with its final value");
    }
}
