//! The full DUO pipeline: loop SparseTransfer → SparseQuery for
//! `iter_numH` rounds (paper §IV-C "Summary"), re-initializing each round
//! from the previous round's rectified adversarial video to escape local
//! optima.

use crate::{
    AttackOutcome, AttackReport, QueryConfig, Result, SparseQuery, SparseTransfer, TransferConfig,
};
use duo_models::Backbone;
use duo_retrieval::{ap_at_m, BlackBox, QueryOracle};
use duo_tensor::Rng64;
use duo_video::{ClipSpec, Video};

/// Configuration of the complete DUO attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuoConfig {
    /// SparseTransfer (Algorithm 1) parameters.
    pub transfer: TransferConfig,
    /// SparseQuery (Algorithm 2) parameters.
    pub query: QueryConfig,
    /// Outer loop count `iter_numH` (paper: ≤ 4, default 2).
    pub iter_num_h: usize,
}
duo_tensor::impl_to_json!(struct DuoConfig { transfer, query, iter_num_h });

impl Default for DuoConfig {
    fn default() -> Self {
        DuoConfig {
            transfer: TransferConfig::default(),
            query: QueryConfig::default(),
            iter_num_h: 2,
        }
    }
}

impl DuoConfig {
    /// Paper-parameter defaults mapped onto a clip geometry: `k` is the
    /// paper's 40K budget scaled by element count, `n = 4`, `τ = 30`,
    /// `λ = e⁻⁵`, `iter_numH = 2`.
    pub fn for_spec(spec: ClipSpec) -> Self {
        let mut cfg = DuoConfig::default();
        cfg.transfer.k = spec.scale_budget(40_000);
        cfg
    }

    /// Keeps τ consistent across both components.
    pub fn with_tau(mut self, tau: f32) -> Self {
        self.transfer.tau = tau;
        self.query.tau = tau;
        self
    }

    /// Switches both components to the given goal (paper §I: DUO extends
    /// directly to untargeted attacks).
    pub fn with_goal(mut self, goal: crate::AttackGoal) -> Self {
        self.transfer.goal = goal;
        self.query.goal = goal;
        self
    }
}

/// The DUO attack bound to a (stolen) surrogate model.
pub struct DuoAttack {
    surrogate: Backbone,
    config: DuoConfig,
}

impl std::fmt::Debug for DuoAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DuoAttack")
            .field("surrogate", &self.surrogate.arch())
            .field("config", &self.config)
            .finish()
    }
}

impl DuoAttack {
    /// Binds the attack to a surrogate model.
    pub fn new(surrogate: Backbone, config: DuoConfig) -> Self {
        DuoAttack { surrogate, config }
    }

    /// The attack configuration.
    pub fn config(&self) -> DuoConfig {
        self.config
    }

    /// The surrogate model (e.g. for reuse across attack pairs).
    pub fn surrogate_mut(&mut self) -> &mut Backbone {
        &mut self.surrogate
    }

    /// Consumes the attack, returning the surrogate.
    pub fn into_surrogate(self) -> Backbone {
        self.surrogate
    }

    /// Generates `v_adv` for the pair `(v, v_t)` against the black-box
    /// service.
    ///
    /// # Errors
    ///
    /// Propagates surrogate and retrieval failures.
    pub fn run(
        &mut self,
        blackbox: &mut dyn QueryOracle,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        let queries_before = blackbox.queries_used();
        let mut current = v.clone();
        let mut trajectory = Vec::new();
        let tau = self.config.query.tau;
        for _round in 0..self.config.iter_num_h.max(1) {
            let masks = SparseTransfer::new(&mut self.surrogate, self.config.transfer)
                .run(&current, v_t)?;
            let start = clamp_to_ball(current.add_perturbation(&masks.phi())?, v, tau);
            let outcome = SparseQuery::new(self.config.query)
                .run(blackbox, v, v_t, &masks, start, rng)?;
            trajectory.extend(outcome.loss_trajectory);
            current = outcome.adversarial;
            if blackbox.budget_remaining() == Some(0) {
                break;
            }
        }
        let perturbation = current.perturbation_from(v)?;
        Ok(AttackOutcome {
            adversarial: current,
            perturbation,
            queries: blackbox.queries_used() - queries_before,
            loss_trajectory: trajectory,
        })
    }

    /// Runs DUO as an *untargeted* attack: the adversarial video's
    /// retrieval list is pushed away from the original's, with no target
    /// video involved (paper §I).
    ///
    /// # Errors
    ///
    /// Propagates surrogate and retrieval failures.
    pub fn run_untargeted(
        &mut self,
        blackbox: &mut dyn QueryOracle,
        v: &Video,
        rng: &mut Rng64,
    ) -> Result<AttackOutcome> {
        let saved = self.config;
        self.config = self.config.with_goal(crate::AttackGoal::Untargeted);
        let result = self.run(blackbox, v, v, rng);
        self.config = saved;
        result
    }

    /// Convenience: run the attack, then evaluate the paper's Table II
    /// metrics (`AP@m` between `R^m(v_adv)` and `R^m(v_t)`, Spa, PScore).
    ///
    /// The evaluation retrievals are uncounted follow-ups on the already
    /// wrapped system (the attacker grading themselves).
    ///
    /// # Errors
    ///
    /// Propagates surrogate and retrieval failures.
    pub fn run_and_evaluate(
        &mut self,
        blackbox: &mut BlackBox,
        v: &Video,
        v_t: &Video,
        rng: &mut Rng64,
    ) -> Result<(AttackOutcome, AttackReport)> {
        let outcome = self.run(blackbox, v, v_t, rng)?;
        let report = evaluate_outcome(blackbox, &outcome, v_t)?;
        Ok((outcome, report))
    }
}

/// Clamps `video` into the per-pixel `τ`-ball around `origin` (and the
/// 8-bit range).
pub(crate) fn clamp_to_ball(mut video: Video, origin: &Video, tau: f32) -> Video {
    let ov = origin.tensor().as_slice();
    for (x, &o) in video.tensor_mut().as_mut_slice().iter_mut().zip(ov) {
        *x = x.clamp((o - tau).max(0.0), (o + tau).min(255.0));
    }
    video
}

/// Computes the Table II metrics of an attack outcome against the target
/// video's retrieval list.
///
/// # Errors
///
/// Propagates retrieval failures.
pub fn evaluate_outcome(
    blackbox: &mut BlackBox,
    outcome: &AttackOutcome,
    v_t: &Video,
) -> Result<AttackReport> {
    let r_adv = blackbox.system_mut().retrieve(&quantized(&outcome.adversarial))?;
    let r_t = blackbox.system_mut().retrieve(&quantized(v_t))?;
    Ok(AttackReport {
        ap_at_m: ap_at_m(&r_adv, &r_t),
        spa: outcome.spa(),
        pscore: outcome.pscore(),
        queries: outcome.queries,
    })
}

fn quantized(v: &Video) -> Video {
    let mut q = v.clone();
    q.quantize();
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::{Architecture, BackboneConfig};
    use duo_retrieval::{RetrievalConfig, RetrievalSystem};
    use duo_video::{ClipSpec, DatasetKind, SyntheticDataset, VideoId};

    fn quick_config() -> DuoConfig {
        let mut cfg = DuoConfig::default();
        cfg.transfer.k = 300;
        cfg.transfer.n = 3;
        cfg.transfer.outer_iters = 1;
        cfg.transfer.theta_steps = 3;
        cfg.transfer.admm_iters = 15;
        cfg.query.iter_num_q = 15;
        cfg.iter_num_h = 2;
        cfg
    }

    fn setup() -> (BlackBox, SyntheticDataset, DuoAttack) {
        let mut rng = Rng64::new(181);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 6, 1, 0);
        let gallery: Vec<_> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
        let victim = Backbone::new(Architecture::Tpn, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() },
        )
        .unwrap();
        let surrogate =
            Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        (BlackBox::new(sys), ds, DuoAttack::new(surrogate, quick_config()))
    }

    #[test]
    fn pipeline_produces_sparse_bounded_perturbation() {
        let (mut bb, ds, mut attack) = setup();
        let v = ds.video(VideoId { class: 0, instance: 0 });
        let vt = ds.video(VideoId { class: 5, instance: 0 });
        let mut rng = Rng64::new(182);
        let outcome = attack.run(&mut bb, &v, &vt, &mut rng).unwrap();
        let total = v.tensor().len();
        assert!(outcome.spa() > 0, "some pixels must be perturbed");
        assert!(
            outcome.spa() < total / 10,
            "perturbation must be sparse: {} of {total}",
            outcome.spa()
        );
        assert!(outcome.perturbation.linf_norm() <= 30.0 + 1e-3);
        assert!(outcome.queries > 0);
    }

    #[test]
    fn more_outer_rounds_use_more_queries() {
        let (mut bb1, ds, mut attack1) = setup();
        let (mut bb2, _, mut attack2) = setup();
        attack2.config.iter_num_h = 1;
        let v = ds.video(VideoId { class: 1, instance: 0 });
        let vt = ds.video(VideoId { class: 6, instance: 0 });
        let o1 = attack1.run(&mut bb1, &v, &vt, &mut Rng64::new(183)).unwrap();
        let o2 = attack2.run(&mut bb2, &v, &vt, &mut Rng64::new(183)).unwrap();
        assert!(o1.queries > o2.queries, "{} vs {}", o1.queries, o2.queries);
    }

    #[test]
    fn evaluate_outcome_produces_finite_report() {
        let (mut bb, ds, mut attack) = setup();
        let v = ds.video(VideoId { class: 2, instance: 0 });
        let vt = ds.video(VideoId { class: 7, instance: 0 });
        let mut rng = Rng64::new(184);
        let (_, report) = attack.run_and_evaluate(&mut bb, &v, &vt, &mut rng).unwrap();
        assert!((0.0..=100.0).contains(&report.ap_at_m));
        assert!(report.pscore >= 0.0);
    }

    #[test]
    fn untargeted_attack_moves_list_away_from_original() {
        let (mut bb, ds, mut attack) = setup();
        let v = ds.video(VideoId { class: 3, instance: 0 });
        let mut rng = Rng64::new(185);
        let outcome = attack.run_untargeted(&mut bb, &v, &mut rng).unwrap();
        assert!(outcome.spa() > 0);
        assert!(outcome.perturbation.linf_norm() <= 30.0 + 1e-3);
        // The untargeted objective is ℍ(·, R(v)) + η: it must never rise
        // along the accepted trajectory.
        for w in outcome.loss_trajectory.windows(2) {
            assert!(w[1] <= w[0] + 1e-5);
        }
        // The goal switch must not leak into subsequent targeted runs.
        assert_eq!(attack.config().transfer.goal, crate::AttackGoal::Targeted);
    }

    #[test]
    fn with_goal_updates_both_components() {
        let cfg = DuoConfig::default().with_goal(crate::AttackGoal::Untargeted);
        assert_eq!(cfg.transfer.goal, crate::AttackGoal::Untargeted);
        assert_eq!(cfg.query.goal, crate::AttackGoal::Untargeted);
    }

    #[test]
    fn for_spec_scales_pixel_budget() {
        let tiny = DuoConfig::for_spec(ClipSpec::tiny());
        let paper = DuoConfig::for_spec(ClipSpec::paper());
        assert_eq!(paper.transfer.k, 40_000);
        assert!(tiny.transfer.k < paper.transfer.k);
    }

    #[test]
    fn with_tau_updates_both_components() {
        let cfg = DuoConfig::default().with_tau(15.0);
        assert_eq!(cfg.transfer.tau, 15.0);
        assert_eq!(cfg.query.tau, 15.0);
    }
}
