//! SparseTransfer (paper Algorithm 1): frame-pixel dual search on a
//! surrogate model.
//!
//! Solves Eq. 1 approximately by alternating three updates until the
//! iteration budget is spent:
//!
//! 1. **θ** — projected (sign) gradient descent on the surrogate feature
//!    loss `‖Fea(v_adv) − Fea(v_t)‖² + λ‖θ⊙𝕀⊙𝓕‖²` under `‖θ‖∞ ≤ τ`
//!    (or an ℓ2-ball projection for the Table IX variant).
//! 2. **𝕀** — lp-box ADMM selection of the `k` pixels with the highest
//!    benefit score `|∂L/∂φ| · (|θ| + τ/4)`.
//! 3. **𝓕** — the binary frame mask is relaxed to a continuous per-frame
//!    importance 𝓒 (perturbation-energy plus gradient-energy), then the
//!    top-`n` frames by `‖𝓒‖₂` are re-binarized (Algorithm 1 lines 5–7).

use crate::{lp_box_admm, AttackError, Result};
use duo_models::Backbone;
use duo_tensor::Tensor;
use duo_video::Video;

/// Which norm bounds the perturbation magnitude (Table IX compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerturbNorm {
    /// `‖θ‖∞ ≤ τ` (the paper's default formulation).
    Linf,
    /// `‖θ‖₂ ≤ τ·√(support)` — same per-pixel RMS budget, rounder geometry.
    L2,
}
duo_tensor::impl_to_json!(enum PerturbNorm { Linf, L2 });

/// What the attack optimizes for (paper §I: "we focus on the more
/// challenging targeted attacks, while our method can be easily extended
/// to launch untargeted attacks as well").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AttackGoal {
    /// Pull `R^m(v_adv)` toward `R^m(v_t)` (the paper's main setting).
    #[default]
    Targeted,
    /// Push `R^m(v_adv)` away from `R^m(v)`; the target video is ignored.
    Untargeted,
}
duo_tensor::impl_to_json!(enum AttackGoal { Targeted, Untargeted });

/// Configuration of the SparseTransfer component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferConfig {
    /// Total pixel budget `k` (`1ᵀ𝕀 = k`).
    pub k: usize,
    /// Frame budget `n` (`‖𝓕‖₂,₀ = n`).
    pub n: usize,
    /// Per-pixel perturbation bound τ, in 8-bit pixel units.
    pub tau: f32,
    /// Regularization weight λ of Eq. 1 (paper: e⁻⁵).
    pub lambda: f32,
    /// Alternation rounds of the θ/𝕀/𝓕 loop.
    pub outer_iters: usize,
    /// Gradient-descent steps per θ update.
    pub theta_steps: usize,
    /// lp-box ADMM iterations per 𝕀 update.
    pub admm_iters: usize,
    /// Norm constraining θ.
    pub norm: PerturbNorm,
    /// Targeted (default) or untargeted optimization.
    pub goal: AttackGoal,
}
duo_tensor::impl_to_json!(struct TransferConfig { k, n, tau, lambda, outer_iters, theta_steps, admm_iters, norm, goal });

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            k: 3_000,
            n: 4,
            tau: 30.0,
            lambda: (-5.0f32).exp(),
            outer_iters: 3,
            theta_steps: 8,
            admm_iters: 40,
            norm: PerturbNorm::Linf,
            goal: AttackGoal::Targeted,
        }
    }
}

/// The "prior knowledge" SparseTransfer hands to SparseQuery: the selected
/// pixels 𝕀, the selected frames 𝓕 and the magnitudes θ.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMasks {
    /// Binary pixel mask 𝕀 over `[N, H, W, C]` (1 = perturbed).
    pub pixel_mask: Tensor,
    /// Binary frame mask 𝓕 (length N, exactly `n` entries true).
    pub frame_mask: Vec<bool>,
    /// Perturbation magnitudes θ over `[N, H, W, C]`.
    pub theta: Tensor,
}

impl SparseMasks {
    /// All-selected masks with zero magnitude (the Algorithm 1 init).
    pub fn dense_init(dims: &[usize]) -> Self {
        SparseMasks {
            pixel_mask: Tensor::ones(dims),
            frame_mask: vec![true; dims[0]],
            theta: Tensor::zeros(dims),
        }
    }

    /// The combined binary mask `𝕀 ⊙ 𝓕` as a tensor.
    pub fn mask(&self) -> Tensor {
        let dims = self.pixel_mask.dims().to_vec();
        let per_frame: usize = dims[1..].iter().product();
        let mut out = self.pixel_mask.clone();
        let ov = out.as_mut_slice();
        for (f, &keep) in self.frame_mask.iter().enumerate() {
            if !keep {
                ov[f * per_frame..(f + 1) * per_frame].fill(0.0);
            }
        }
        out
    }

    /// The perturbation `φ = 𝕀 ⊙ 𝓕 ⊙ θ`.
    pub fn phi(&self) -> Tensor {
        self.mask().mul(&self.theta).expect("mask and theta share dims by construction")
    }

    /// Flat indices of the sparse support (`𝕀⊙𝓕 = 1`).
    pub fn support_indices(&self) -> Vec<usize> {
        self.mask()
            .as_slice()
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| (m != 0.0).then_some(i))
            .collect()
    }

    /// Number of active frames.
    pub fn active_frames(&self) -> usize {
        self.frame_mask.iter().filter(|&&b| b).count()
    }
}

/// The transfer-based component of DUO.
pub struct SparseTransfer<'a> {
    surrogate: &'a mut Backbone,
    config: TransferConfig,
}

impl<'a> SparseTransfer<'a> {
    /// Binds the component to a (stolen) surrogate model.
    pub fn new(surrogate: &'a mut Backbone, config: TransferConfig) -> Self {
        SparseTransfer { surrogate, config }
    }

    /// Runs Algorithm 1: returns the prior knowledge `(𝕀, 𝓕, θ)` for the
    /// pair `(v, v_t)`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] for zero budgets and propagates
    /// surrogate evaluation failures.
    pub fn run(&mut self, v: &Video, v_t: &Video) -> Result<SparseMasks> {
        let cfg = self.config;
        let dims = v.tensor().dims().to_vec();
        let frames = dims[0];
        let elements: usize = dims.iter().product();
        if cfg.n == 0 || cfg.k == 0 {
            return Err(AttackError::BadConfig("k and n must be positive".into()));
        }
        let n = cfg.n.min(frames);
        let k = cfg.k.min(elements);

        // Targeted: descend toward Fea(v_t). Untargeted: ascend away from
        // Fea(v) — same machinery with the reference feature and gradient
        // sign flipped.
        let (reference_feat, loss_sign) = match cfg.goal {
            AttackGoal::Targeted => (self.surrogate.extract(v_t)?, 1.0f32),
            AttackGoal::Untargeted => (self.surrogate.extract(v)?, -1.0f32),
        };
        let target_feat = reference_feat;
        let mut masks = SparseMasks::dense_init(&dims);
        if cfg.goal == AttackGoal::Untargeted {
            // The untargeted loss −‖Fea(v+φ) − Fea(v)‖² has an exact
            // stationary point at φ = 0; kick θ off it with a
            // deterministic ± pattern so the first gradient is informative.
            let kick = cfg.tau / 8.0;
            for (i, t) in masks.theta.as_mut_slice().iter_mut().enumerate() {
                *t = if (i.wrapping_mul(0x9E37_79B9) >> 16) & 1 == 0 { kick } else { -kick };
            }
        }
        let mut last_grad = Tensor::zeros(&dims);

        // θ update (Algorithm 1, line 3): sign/normalized gradient descent
        // with a geometrically decaying step (the paper decays its 0.1
        // step by 0.9 every 50 iterations; a faster decay suits our much
        // smaller step count and avoids ±step oscillation cancelling θ).
        let theta_pass = |masks: &mut SparseMasks,
                              last_grad: &mut Tensor,
                              surrogate: &mut Backbone|
         -> Result<()> {
            let mut step = cfg.tau * 0.5;
            for _ in 0..cfg.theta_steps {
                let mask = masks.mask();
                let phi = mask.mul(&masks.theta)?;
                let v_adv = v.add_perturbation(&phi)?;
                let feat = surrogate.extract_training(&v_adv)?;
                let grad_feat = feat.sub(&target_feat)?.scale(2.0 * loss_sign);
                let g_raw = surrogate.input_gradient(&v_adv, &grad_feat)?;
                *last_grad = g_raw.clone();
                // dL/dθ = (∂L/∂φ)⊙mask + 2λ·φ⊙mask. The paper's λ = e⁻⁵
                // balances a loss whose pixel gradients are O(1); our
                // models (and the 1/255 input scaling) produce far smaller
                // raw gradients, so the feature term is ℓ∞-normalized
                // before the regularizer is added — otherwise 2λφ would
                // dominate and silently anneal θ to zero.
                let gmax = g_raw.linf_norm().max(1e-12);
                let mut g_theta = g_raw.scale(1.0 / gmax).mul(&mask)?;
                g_theta.axpy(2.0 * cfg.lambda / cfg.tau.max(1.0), &phi.mul(&mask)?)?;
                match cfg.norm {
                    PerturbNorm::Linf => {
                        // Sign step then ℓ∞ projection.
                        masks.theta = masks
                            .theta
                            .zip(&g_theta, |t, g| t - step * sign(g))?
                            .clamp(-cfg.tau, cfg.tau);
                    }
                    PerturbNorm::L2 => {
                        // RMS-normalized step then ℓ2-ball projection.
                        let rms =
                            (g_theta.l2_norm() / (g_theta.len() as f32).sqrt()).max(1e-12);
                        masks.theta.axpy(-step / rms, &g_theta)?;
                        let support = masks.mask().l0_norm().max(1);
                        let radius = cfg.tau * (support as f32).sqrt();
                        let norm = masks.theta.l2_norm();
                        if norm > radius {
                            masks.theta = masks.theta.scale(radius / norm);
                        }
                        // Per-pixel values must stay within valid 8-bit
                        // perturbation range regardless of the ball.
                        masks.theta = masks.theta.clamp(-255.0, 255.0);
                    }
                }
                step *= 0.7;
            }
            Ok(())
        };

        for _round in 0..cfg.outer_iters {
            theta_pass(&mut masks, &mut last_grad, self.surrogate)?;

            // --- 𝕀 update with ADMM (line 4) ----------------------------
            let scores: Vec<f32> = last_grad
                .as_slice()
                .iter()
                .zip(masks.theta.as_slice())
                .map(|(&g, &t)| g.abs() * (t.abs() + 0.25 * cfg.tau))
                .collect();
            let selected = lp_box_admm(&scores, k, cfg.admm_iters)?;
            let pv = masks.pixel_mask.as_mut_slice();
            for (p, keep) in pv.iter_mut().zip(&selected) {
                *p = if *keep { 1.0 } else { 0.0 };
            }

            // --- 𝓕 update via continuous relaxation (lines 5–7) --------
            let per_frame: usize = dims[1..].iter().product();
            let theta_masked = masks.pixel_mask.mul(&masks.theta)?;
            let grad_masked = masks.pixel_mask.mul(&last_grad)?;
            let mut c: Vec<(usize, f32)> = (0..frames)
                .map(|f| {
                    let lo = f * per_frame;
                    let hi = lo + per_frame;
                    let e_theta: f32 = theta_masked.as_slice()[lo..hi]
                        .iter()
                        .map(|x| x * x)
                        .sum::<f32>()
                        .sqrt();
                    let e_grad: f32 = grad_masked.as_slice()[lo..hi]
                        .iter()
                        .map(|x| x * x)
                        .sum::<f32>()
                        .sqrt();
                    (f, e_theta + cfg.tau * e_grad)
                })
                .collect();
            c.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            masks.frame_mask = vec![false; frames];
            for &(f, _) in c.iter().take(n) {
                masks.frame_mask[f] = true;
            }
        }
        // Final θ polish under the final masks, so the returned magnitudes
        // are adapted to exactly the pixels/frames SparseQuery will keep.
        theta_pass(&mut masks, &mut last_grad, self.surrogate)?;
        Ok(masks)
    }
}

fn sign(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::{Architecture, BackboneConfig};
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, SyntheticVideoGenerator};

    fn setup() -> (Backbone, Video, Video) {
        let mut rng = Rng64::new(161);
        let surrogate =
            Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), 9);
        (surrogate, gen.generate(0, 0), gen.generate(5, 0))
    }

    fn quick_config() -> TransferConfig {
        TransferConfig {
            k: 400,
            n: 3,
            outer_iters: 2,
            theta_steps: 4,
            admm_iters: 20,
            ..TransferConfig::default()
        }
    }

    #[test]
    fn masks_satisfy_budgets() {
        let (mut s, v, vt) = setup();
        let masks = SparseTransfer::new(&mut s, quick_config()).run(&v, &vt).unwrap();
        assert_eq!(masks.pixel_mask.l0_norm(), 400, "exactly k pixels selected");
        assert_eq!(masks.active_frames(), 3, "exactly n frames selected");
        assert!(masks.phi().l0_norm() <= 400);
    }

    #[test]
    fn theta_respects_linf_budget() {
        let (mut s, v, vt) = setup();
        let cfg = quick_config();
        let masks = SparseTransfer::new(&mut s, cfg).run(&v, &vt).unwrap();
        assert!(masks.theta.linf_norm() <= cfg.tau + 1e-4);
        assert!(masks.phi().linf_norm() <= cfg.tau + 1e-4);
    }

    #[test]
    fn transfer_moves_features_toward_target() {
        let (mut s, v, vt) = setup();
        let masks = SparseTransfer::new(&mut s, quick_config()).run(&v, &vt).unwrap();
        let target = s.extract(&vt).unwrap();
        let before = s.extract(&v).unwrap().sq_distance(&target).unwrap();
        let v_adv = v.add_perturbation(&masks.phi()).unwrap();
        let after = s.extract(&v_adv).unwrap().sq_distance(&target).unwrap();
        assert!(
            after < before,
            "surrogate feature distance should shrink: {before} -> {after}"
        );
    }

    #[test]
    fn l2_variant_produces_bounded_perturbation() {
        let (mut s, v, vt) = setup();
        let cfg = TransferConfig { norm: PerturbNorm::L2, ..quick_config() };
        let masks = SparseTransfer::new(&mut s, cfg).run(&v, &vt).unwrap();
        let support = masks.mask().l0_norm().max(1);
        let radius = cfg.tau * (support as f32).sqrt();
        assert!(masks.phi().l2_norm() <= radius * 1.01);
    }

    #[test]
    fn support_indices_match_mask() {
        let (mut s, v, vt) = setup();
        let masks = SparseTransfer::new(&mut s, quick_config()).run(&v, &vt).unwrap();
        let support = masks.support_indices();
        let mask = masks.mask();
        assert_eq!(support.len(), mask.l0_norm());
        for &i in support.iter().take(20) {
            assert_eq!(mask.as_slice()[i], 1.0);
        }
    }

    #[test]
    fn rejects_zero_budgets() {
        let (mut s, v, vt) = setup();
        let cfg = TransferConfig { k: 0, ..quick_config() };
        assert!(SparseTransfer::new(&mut s, cfg).run(&v, &vt).is_err());
        let cfg = TransferConfig { n: 0, ..quick_config() };
        assert!(SparseTransfer::new(&mut s, cfg).run(&v, &vt).is_err());
    }

    #[test]
    fn oversized_budgets_are_clamped() {
        let (mut s, v, vt) = setup();
        let cfg = TransferConfig { k: 10_000_000, n: 99, ..quick_config() };
        let masks = SparseTransfer::new(&mut s, cfg).run(&v, &vt).unwrap();
        assert_eq!(masks.active_frames(), v.frames());
        assert_eq!(masks.pixel_mask.l0_norm(), v.tensor().len());
    }
}
