//! Perturbation-level attack metrics (paper §V-A) and outcome containers.

use duo_tensor::Tensor;
use duo_video::Video;

/// Sparsity metric `Spa = Σ_i ‖φ_i‖₀`: the number of perturbed scalars
/// across all frames. Lower is stealthier.
pub fn spa(perturbation: &Tensor) -> usize {
    perturbation.l0_norm()
}

/// Perceptibility score `PScore = (1/(N·B·C)) Σ |φ_i|`: mean absolute
/// perturbation per scalar. Lower is stealthier.
pub fn pscore(perturbation: &Tensor) -> f32 {
    if perturbation.is_empty() {
        return 0.0;
    }
    perturbation.l1_norm() / perturbation.len() as f32
}

/// The raw product of an attack run.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The adversarial video `v_adv`.
    pub adversarial: Video,
    /// The applied perturbation `φ = v_adv − v` (after range clipping).
    pub perturbation: Tensor,
    /// Black-box queries consumed by the run.
    pub queries: u64,
    /// Trajectory of the query objective 𝕋 (one entry per accepted or
    /// evaluated query iteration) — the data behind Figure 5.
    pub loss_trajectory: Vec<f32>,
}

impl AttackOutcome {
    /// Sparsity of the applied perturbation.
    pub fn spa(&self) -> usize {
        spa(&self.perturbation)
    }

    /// Perceptibility of the applied perturbation.
    pub fn pscore(&self) -> f32 {
        pscore(&self.perturbation)
    }
}

/// Paper-style evaluation row: targeted precision and stealthiness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackReport {
    /// `AP@m` between `R^m(v_adv)` and `R^m(v_t)`, in percent.
    pub ap_at_m: f32,
    /// Number of perturbed scalars.
    pub spa: usize,
    /// Mean absolute perturbation.
    pub pscore: f32,
    /// Black-box queries consumed.
    pub queries: u64,
}
duo_tensor::impl_to_json!(struct AttackReport { ap_at_m, spa, pscore, queries });

impl AttackReport {
    /// The paper's success criterion (§V-C): "a targeted AE attack
    /// succeeds if AP@m from R(v) and R(v_t) [the `baseline`] is lower
    /// than that from R(v_adv) and R(v_t)".
    pub fn succeeds_against(&self, baseline: &AttackReport) -> bool {
        self.ap_at_m > baseline.ap_at_m
    }
}

/// Fraction (%) of attack reports that beat their per-pair baselines —
/// the aggregate success rate of a batch of targeted attacks.
pub fn success_rate(attacked: &[AttackReport], baselines: &[AttackReport]) -> f32 {
    if attacked.is_empty() || attacked.len() != baselines.len() {
        return 0.0;
    }
    let wins = attacked
        .iter()
        .zip(baselines)
        .filter(|(a, b)| a.succeeds_against(b))
        .count();
    100.0 * wins as f32 / attacked.len() as f32
}

impl std::fmt::Display for AttackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AP@m {:>6.2}%  Spa {:>8}  PScore {:>6.3}  queries {:>6}",
            self.ap_at_m, self.spa, self.pscore, self.queries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spa_counts_nonzero_scalars() {
        let phi = Tensor::from_vec(vec![0.0, 3.0, -2.0, 0.0], &[4]).unwrap();
        assert_eq!(spa(&phi), 2);
    }

    #[test]
    fn pscore_is_mean_absolute_perturbation() {
        let phi = Tensor::from_vec(vec![0.0, 4.0, -4.0, 0.0], &[4]).unwrap();
        assert_eq!(pscore(&phi), 2.0);
        assert_eq!(pscore(&Tensor::zeros(&[0])), 0.0);
    }

    #[test]
    fn dense_perturbation_has_maximal_spa() {
        // TIMI-style dense perturbations touch every scalar: Spa equals the
        // clip element count, matching the 602,112 figures of Table II at
        // paper scale.
        let phi = Tensor::full(&[2, 3, 3, 3], 1.0);
        assert_eq!(spa(&phi), 54);
        assert!((pscore(&phi) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn success_criterion_matches_paper_definition() {
        let baseline = AttackReport { ap_at_m: 48.67, spa: 0, pscore: 0.0, queries: 0 };
        let win = AttackReport { ap_at_m: 56.40, spa: 2800, pscore: 0.14, queries: 100 };
        let lose = AttackReport { ap_at_m: 40.0, spa: 2800, pscore: 0.14, queries: 100 };
        assert!(win.succeeds_against(&baseline));
        assert!(!lose.succeeds_against(&baseline));
        assert!(!baseline.succeeds_against(&baseline), "equality is not success");
        assert_eq!(success_rate(&[win, lose], &[baseline, baseline]), 50.0);
        assert_eq!(success_rate(&[], &[]), 0.0);
        assert_eq!(success_rate(&[win], &[]), 0.0, "length mismatch yields 0");
    }

    #[test]
    fn report_display_is_stable() {
        let r = AttackReport { ap_at_m: 56.4, spa: 2800, pscore: 0.14, queries: 1000 };
        let s = r.to_string();
        assert!(s.contains("56.40"));
        assert!(s.contains("2800"));
    }
}
