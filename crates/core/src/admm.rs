//! lp-box ADMM projection for binary pixel selection (Wu & Ghanem, TPAMI
//! 2019), the tooling the paper cites for solving the mixed-integer mask
//! subproblem of Eq. 1.
//!
//! SparseTransfer's 𝕀-update maximizes a linear benefit score ⟨s, 𝕀⟩ over
//! `𝕀 ∈ {0,1}^n, 1ᵀ𝕀 = k`. lp-box ADMM replaces the binary constraint by
//! the intersection of the box `[0,1]^n` and the l2-sphere centred at ½
//! with radius √n/2, then alternates projections with scaled dual updates.
//! For a linear objective the exact optimum is the top-k of `s`, which
//! gives the property tests a ground truth to verify convergence against.

use crate::{AttackError, Result};

fn project_box(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = v.clamp(0.0, 1.0);
    }
}

fn project_sphere(x: &mut [f32]) {
    // Sphere centred at 1/2 with radius sqrt(n)/2.
    let n = x.len() as f32;
    let radius = n.sqrt() / 2.0;
    let mut norm = 0.0f32;
    for v in x.iter() {
        let d = v - 0.5;
        norm += d * d;
    }
    let norm = norm.sqrt().max(1e-12);
    for v in x.iter_mut() {
        *v = 0.5 + (*v - 0.5) * radius / norm;
    }
}

/// Projects onto the simplex-like affine set `{x | 1ᵀx = k}` (closed-form
/// shift since the constraint is a single hyperplane).
fn project_cardinality(x: &mut [f32], k: usize) {
    let n = x.len() as f32;
    let sum: f32 = x.iter().sum();
    let shift = (k as f32 - sum) / n;
    for v in x.iter_mut() {
        *v += shift;
    }
}

/// Selects the `k` highest-scoring entries as a binary mask via lp-box
/// ADMM.
///
/// Maximizes `⟨scores, x⟩` subject to `x ∈ {0,1}^n` and `Σx = k`. Returns
/// a `Vec<bool>` with exactly `k` entries set (after final rounding, the
/// top-k by the ADMM iterate with deterministic tie-breaking).
///
/// # Errors
///
/// Returns [`AttackError::BadConfig`] if `k > scores.len()`.
pub fn lp_box_admm(scores: &[f32], k: usize, iterations: usize) -> Result<Vec<bool>> {
    let n = scores.len();
    if k > n {
        return Err(AttackError::BadConfig(format!(
            "cannot select k={k} entries from {n} scores"
        )));
    }
    if k == 0 || n == 0 {
        return Ok(vec![false; n]);
    }
    if k == n {
        return Ok(vec![true; n]);
    }

    // Normalize scores so the penalty weight is scale-free.
    let max_abs = scores.iter().map(|s| s.abs()).fold(0.0f32, f32::max).max(1e-12);
    let s: Vec<f32> = scores.iter().map(|v| v / max_abs).collect();

    let rho = 1.0f32;
    let mut x: Vec<f32> = vec![k as f32 / n as f32; n];
    let mut y1 = x.clone(); // box copy
    let mut y2 = x.clone(); // sphere copy
    let mut u1 = vec![0.0f32; n]; // scaled duals
    let mut u2 = vec![0.0f32; n];

    for _ in 0..iterations {
        // x-update: minimize −⟨s,x⟩ + ρ/2(‖x−y1+u1‖² + ‖x−y2+u2‖²)
        // subject to 1ᵀx = k  →  unconstrained closed form then hyperplane
        // projection.
        for i in 0..n {
            x[i] = (s[i] / rho + (y1[i] - u1[i]) + (y2[i] - u2[i])) / 2.0;
        }
        project_cardinality(&mut x, k);

        // y1-update: box projection of x + u1.
        for i in 0..n {
            y1[i] = x[i] + u1[i];
        }
        project_box(&mut y1);

        // y2-update: sphere projection of x + u2.
        for i in 0..n {
            y2[i] = x[i] + u2[i];
        }
        project_sphere(&mut y2);

        // Dual ascent.
        for i in 0..n {
            u1[i] += x[i] - y1[i];
            u2[i] += x[i] - y2[i];
        }
    }

    // Round: exactly k entries, the largest iterate values first; break
    // ties by score, then by index, for determinism.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        x[b].total_cmp(&x[a]).then(s[b].total_cmp(&s[a])).then(a.cmp(&b))
    });
    let mut mask = vec![false; n];
    for &i in order.iter().take(k) {
        mask[i] = true;
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_tensor::Rng64;

    fn top_k_reference(scores: &[f32], k: usize) -> Vec<bool> {
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        let mut mask = vec![false; scores.len()];
        for &i in order.iter().take(k) {
            mask[i] = true;
        }
        mask
    }

    #[test]
    fn selects_exactly_k() {
        let mut rng = Rng64::new(151);
        let scores: Vec<f32> = (0..64).map(|_| rng.normal()).collect();
        for &k in &[0usize, 1, 7, 32, 64] {
            let mask = lp_box_admm(&scores, k, 50).unwrap();
            assert_eq!(mask.iter().filter(|&&b| b).count(), k);
        }
    }

    #[test]
    fn matches_top_k_for_linear_objective() {
        let mut rng = Rng64::new(152);
        for trial in 0..10 {
            let scores: Vec<f32> = (0..40).map(|_| rng.normal() * (trial as f32 + 1.0)).collect();
            let k = 1 + (trial as usize % 20);
            let admm = lp_box_admm(&scores, k, 100).unwrap();
            let reference = top_k_reference(&scores, k);
            // Compare selected score mass rather than exact sets, to allow
            // tie permutations.
            let mass = |m: &[bool]| -> f32 {
                m.iter().zip(&scores).filter(|(&b, _)| b).map(|(_, &s)| s).sum()
            };
            assert!(
                (mass(&admm) - mass(&reference)).abs() < 1e-3 * (1.0 + mass(&reference).abs()),
                "trial {trial}: admm mass {} vs top-k mass {}",
                mass(&admm),
                mass(&reference)
            );
        }
    }

    #[test]
    fn rejects_oversized_k() {
        assert!(lp_box_admm(&[1.0, 2.0], 3, 10).is_err());
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(lp_box_admm(&[], 0, 10).unwrap(), Vec::<bool>::new());
        assert_eq!(lp_box_admm(&[1.0, -1.0], 2, 10).unwrap(), vec![true, true]);
        assert_eq!(lp_box_admm(&[1.0, -1.0], 0, 10).unwrap(), vec![false, false]);
    }

    #[test]
    fn is_deterministic() {
        let scores: Vec<f32> = (0..32).map(|i| ((i * 7919) % 13) as f32).collect();
        let a = lp_box_admm(&scores, 10, 60).unwrap();
        let b = lp_box_admm(&scores, 10, 60).unwrap();
        assert_eq!(a, b);
    }
}
