//! The DUO attack: stealthy targeted black-box adversarial examples for
//! video retrieval systems via frame-pixel dual search (ICDCS 2023).
//!
//! DUO is a sequential pipeline over two components:
//!
//! 1. [`SparseTransfer`] (Algorithm 1) — on a stolen surrogate model,
//!    alternately optimizes the perturbation magnitude θ (projected
//!    gradient descent under ‖θ‖∞ ≤ τ), the binary pixel mask 𝕀 (lp-box
//!    ADMM under 1ᵀ𝕀 = k), and the binary frame mask 𝓕 (continuous
//!    relaxation 𝓒 followed by top-n selection on ‖𝓒‖₂).
//! 2. [`SparseQuery`] (Algorithm 2) — rectifies the transferred
//!    perturbation against the real black-box service with SimBA-style
//!    Cartesian-basis steps restricted to the sparse support, driven by
//!    the list-similarity objective 𝕋 of Eq. 2.
//!
//! The outer [`DuoAttack`] pipeline loops the two (`iter_numH ≤ 4`) to
//! escape local optima, and [`steal_surrogate`] implements the paper's
//! query-driven surrogate training-set construction (§IV-B1).
//!
//! # Example
//!
//! ```no_run
//! use duo_attack::{DuoAttack, DuoConfig};
//! # fn f(mut blackbox: duo_retrieval::BlackBox,
//! #      surrogate: duo_models::Backbone,
//! #      v: duo_video::Video, v_t: duo_video::Video,
//! #      rng: &mut duo_tensor::Rng64) -> Result<(), duo_attack::AttackError> {
//! let mut attack = DuoAttack::new(surrogate, DuoConfig::default());
//! let outcome = attack.run(&mut blackbox, &v, &v_t, rng)?;
//! println!("queries used: {}", outcome.queries);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admm;
mod error;
mod metrics;
mod pipeline;
mod sparse_query;
mod sparse_transfer;
mod steal;
mod trace;

pub use admm::lp_box_admm;
pub use error::AttackError;
pub use metrics::{pscore, spa, success_rate, AttackOutcome, AttackReport};
pub use pipeline::{evaluate_outcome, DuoAttack, DuoConfig};
pub use sparse_query::{QueryConfig, SparseQuery};
pub use sparse_transfer::{AttackGoal, PerturbNorm, SparseMasks, SparseTransfer, TransferConfig};
pub use steal::{steal_surrogate, StealConfig, StealReport};
pub use trace::{downsample, query_stats, write_trajectories_csv, QueryStats};

/// Convenient result alias used across the attack crate.
pub type Result<T> = std::result::Result<T, AttackError>;
