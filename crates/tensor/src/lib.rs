//! Dense `f32` N-dimensional tensor substrate for the DUO reproduction.
//!
//! This crate provides the numeric foundation that the rest of the
//! workspace builds on: a contiguous row-major [`Tensor`] type with shape
//! algebra, elementwise arithmetic, reductions and norms, blocked matrix
//! multiplication, im2col-based 2-D/3-D convolution kernels, pooling, and
//! deterministic random sampling helpers.
//!
//! The design goal is *auditability* rather than peak throughput: every
//! kernel has a straightforward reference implementation that the test
//! suite (including property-based tests) can check against, because the
//! attack algorithms implemented on top (SparseTransfer's gradient steps,
//! lp-box ADMM projections) are only as trustworthy as these primitives.
//!
//! # Example
//!
//! ```
//! use duo_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), duo_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod error;
pub mod json;
mod matmul;
mod par;
mod pool;
mod rng;
mod shape;
mod tensor;

pub use conv::{
    col2im2d, col2im3d, im2col2d, im2col3d, im2col3d_into, im2col3d_into_with, Conv2dSpec,
    Conv3dSpec,
};
pub use error::TensorError;
pub use json::{Json, ToJson};
pub use matmul::{
    gemm, gemm_bias, gemm_bias_packed, gemm_bias_with, gemm_packed, matmul_into,
    matmul_into_reference, matmul_into_serial, matmul_into_with, PackedA,
};
pub use par::{
    intra_op_threads, set_intra_op_threads, PoolError, ThreadPool, MAX_AUTO_THREADS,
    RING_CAPACITY,
};
pub use pool::{avg_pool3d, avg_pool3d_backward, max_pool3d, max_pool3d_backward, Pool3dSpec};
pub use rng::{RandomSource, Rng64, Xoshiro256pp};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient result alias used across the tensor crate.
pub type Result<T> = std::result::Result<T, TensorError>;
